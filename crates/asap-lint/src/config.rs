//! `lint.toml` loading. The build environment has no crates.io access, so
//! this is a hand-rolled parser for the *subset* of TOML the config uses:
//! `[rules.<name>]` tables with `crates`/`paths` string arrays, and
//! `[[allow]]` entries with `rule`/`path`/`reason` strings. Single-line
//! values only; `#` comments anywhere.

use crate::rules::RuleId;
use std::collections::BTreeMap;

/// Where a rule applies. A file is in scope when its workspace-relative
/// path either lives under `crates/<c>/` for a listed crate `c`, or starts
/// with one of the listed path prefixes. An empty scope means "nowhere".
#[derive(Debug, Default, Clone)]
pub struct RuleScope {
    pub crates: Vec<String>,
    pub paths: Vec<String>,
}

impl RuleScope {
    pub fn covers(&self, rel_path: &str) -> bool {
        self.crates
            .iter()
            .any(|c| rel_path.strip_prefix("crates/").is_some_and(|r| {
                r.strip_prefix(c.as_str()).is_some_and(|r| r.starts_with('/'))
            }))
            || self.paths.iter().any(|p| rel_path.starts_with(p.as_str()))
    }

    /// Scope matching every file — used by the fixture tests.
    pub fn everywhere() -> Self {
        Self {
            crates: Vec::new(),
            paths: vec![String::new()],
        }
    }
}

/// A committed file-level suppression.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: RuleId,
    pub path: String,
    pub reason: String,
}

#[derive(Debug, Default)]
pub struct LintConfig {
    pub scopes: BTreeMap<RuleId, RuleScope>,
    pub allows: Vec<AllowEntry>,
}

impl LintConfig {
    pub fn scope(&self, rule: RuleId) -> Option<&RuleScope> {
        self.scopes.get(&rule)
    }

    /// Is `rule` switched off for this whole file by a `[[allow]]` entry?
    pub fn file_allowed(&self, rule: RuleId, rel_path: &str) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.path == rel_path)
    }

    /// Parse `lint.toml` text. Returns `Err` with a message naming the
    /// offending line for anything outside the understood subset.
    pub fn parse(text: &str) -> Result<Self, String> {
        enum Target {
            None,
            Rule(RuleId),
            Allow,
        }
        let mut cfg = LintConfig::default();
        let mut target = Target::None;
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            let err = |msg: &str| format!("lint.toml:{}: {msg}", idx + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                if header.trim() != "allow" {
                    return Err(err("only [[allow]] array tables are supported"));
                }
                cfg.allows.push(AllowEntry {
                    rule: RuleId::R1,
                    path: String::new(),
                    reason: String::new(),
                });
                target = Target::Allow;
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = header
                    .trim()
                    .strip_prefix("rules.")
                    .ok_or_else(|| err("expected [rules.<name>]"))?;
                let id = RuleId::from_alias(name.trim())
                    .ok_or_else(|| err("unknown rule name"))?;
                cfg.scopes.entry(id).or_default();
                target = Target::Rule(id);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err("expected key = value"))?;
            let (key, value) = (key.trim(), value.trim());
            match &mut target {
                Target::None => return Err(err("key outside any table")),
                Target::Rule(id) => {
                    let scope = cfg.scopes.entry(*id).or_default();
                    match key {
                        "crates" => scope.crates = parse_string_array(value).map_err(&err)?,
                        "paths" => scope.paths = parse_string_array(value).map_err(&err)?,
                        _ => return Err(err("unknown rule key (want crates/paths)")),
                    }
                }
                Target::Allow => {
                    let entry = cfg.allows.last_mut().ok_or_else(|| err("internal"))?;
                    let s = parse_string(value).map_err(&err)?;
                    match key {
                        "rule" => {
                            entry.rule = RuleId::from_alias(&s)
                                .ok_or_else(|| err("unknown rule name"))?;
                        }
                        "path" => entry.path = s,
                        "reason" => entry.reason = s,
                        _ => return Err(err("unknown allow key (want rule/path/reason)")),
                    }
                }
            }
        }
        for a in &cfg.allows {
            if a.path.is_empty() || a.reason.is_empty() {
                return Err("lint.toml: every [[allow]] needs path and a non-empty reason".into());
            }
        }
        Ok(cfg)
    }
}

/// Strip a `#` comment, respecting `"…"` quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str) -> Result<String, &'static str> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or("expected a double-quoted string")
}

fn parse_string_array(value: &str) -> Result<Vec<String>, &'static str> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or("expected a [\"…\", …] array")?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_real_shape() {
        let cfg = LintConfig::parse(
            r#"
            # comment
            [rules.det_collections]
            crates = ["asap-sim", "asap-core"]  # trailing comment

            [rules.float_arith]
            paths = ["crates/asap-sim/src"]

            [[allow]]
            rule = "float_arith"
            path = "crates/asap-metrics/src/summary.rs"
            reason = "presentation layer"
            "#,
        )
        .expect("parses");
        let r1 = cfg.scope(RuleId::R1).expect("configured");
        assert!(r1.covers("crates/asap-sim/src/util.rs"));
        assert!(!r1.covers("crates/asap-simx/src/util.rs"), "no prefix bleed");
        assert!(!r1.covers("crates/asap-metrics/src/load.rs"));
        let r3 = cfg.scope(RuleId::R3).expect("configured");
        assert!(r3.covers("crates/asap-sim/src/event.rs"));
        assert!(!r3.covers("crates/asap-sim/tests/x.rs"));
        assert!(cfg.file_allowed(RuleId::R3, "crates/asap-metrics/src/summary.rs"));
        assert!(!cfg.file_allowed(RuleId::R1, "crates/asap-metrics/src/summary.rs"));
    }

    #[test]
    fn rejects_unknown_rules_and_reasonless_allows() {
        assert!(LintConfig::parse("[rules.nonsense]\n").is_err());
        assert!(LintConfig::parse("[[allow]]\nrule = \"unwrap\"\npath = \"x.rs\"\n").is_err());
        assert!(LintConfig::parse("stray = \"value\"\n").is_err());
    }
}
