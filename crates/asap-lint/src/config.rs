//! `lint.toml` loading. The build environment has no crates.io access, so
//! this is a hand-rolled parser for the *subset* of TOML the config uses:
//!
//! * `[rules.<name>]` tables with `crates`/`paths` string arrays plus the
//!   rule-specific keys `sinks` (digest-taint), `roots`/`root_traits`
//!   (panic-reachability);
//! * `[streams.<name>]` tables declaring the RNG stream-salt registry for
//!   R6 (`salt`/`salts`, `consts`, `owners`);
//! * `[[allow]]` entries with `rule`/`path`/`reason` strings.
//!
//! Values (arrays in particular) may span multiple lines: the parser joins
//! physical lines until brackets balance, so `[[allow]]` entries and long
//! crate lists can be formatted one element per line. `#` comments are
//! stripped anywhere outside strings.

use crate::lexer::normalize_literal;
use crate::rules::RuleId;
use std::collections::BTreeMap;

/// Where a rule applies. A file is in scope when its workspace-relative
/// path either lives under `crates/<c>/` for a listed crate `c`, or starts
/// with one of the listed path prefixes. An empty scope means "nowhere".
#[derive(Debug, Default, Clone)]
pub struct RuleScope {
    pub crates: Vec<String>,
    pub paths: Vec<String>,
}

impl RuleScope {
    pub fn covers(&self, rel_path: &str) -> bool {
        self.crates
            .iter()
            .any(|c| rel_path.strip_prefix("crates/").is_some_and(|r| {
                r.strip_prefix(c.as_str()).is_some_and(|r| r.starts_with('/'))
            }))
            || self.paths.iter().any(|p| rel_path.starts_with(p.as_str()))
    }

    /// Scope matching every file — used by the fixture tests.
    pub fn everywhere() -> Self {
        Self {
            crates: Vec::new(),
            paths: vec![String::new()],
        }
    }
}

/// One entry of the RNG stream-salt registry (rule R6). A stream is named
/// (`engine`, `fault`, …), carries the salt(s) that seed it — as normalized
/// numeric literals and/or the `const` identifiers holding them — and the
/// source files that *own* it. The salt may only be mentioned inside owner
/// files, and every `seed_from_u64` inside R6's scope must use a registered
/// salt (or carry a justifying pragma for derived child streams).
#[derive(Debug, Default, Clone)]
pub struct StreamDef {
    pub name: String,
    /// Normalized literal forms (lower-case, `_`-stripped), e.g.
    /// `0xfa170b5e55edc0de`.
    pub salts: Vec<String>,
    /// Identifier forms, e.g. `FAULT_STREAM_SALT`.
    pub consts: Vec<String>,
    /// Path prefixes of the owning files.
    pub owners: Vec<String>,
}

impl StreamDef {
    pub fn owns(&self, rel_path: &str) -> bool {
        self.owners.iter().any(|o| rel_path.starts_with(o.as_str()))
    }
}

/// A committed file-level suppression.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: RuleId,
    pub path: String,
    pub reason: String,
}

#[derive(Debug, Default)]
pub struct LintConfig {
    pub scopes: BTreeMap<RuleId, RuleScope>,
    pub allows: Vec<AllowEntry>,
    /// R6 stream-salt registry, in declaration order.
    pub streams: Vec<StreamDef>,
    /// R3 digest/event-ordering sink patterns (`Fnv64::*`, `Scheduled::cmp`,
    /// bare fn names). Functions these sinks (transitively) call are the
    /// digest path; float/clock/RandomState taint inside it is flagged.
    pub taint_sinks: Vec<String>,
    /// R4 reachability roots as `Type::fn` patterns (`Simulation::run`).
    pub panic_roots: Vec<String>,
    /// R4 reachability root traits: every method of every impl of these
    /// traits (plus trait default bodies) is a root (`Protocol`).
    pub panic_root_traits: Vec<String>,
}

impl LintConfig {
    pub fn scope(&self, rule: RuleId) -> Option<&RuleScope> {
        self.scopes.get(&rule)
    }

    /// Is `rule` switched off for this whole file by a `[[allow]]` entry?
    pub fn file_allowed(&self, rule: RuleId, rel_path: &str) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.path == rel_path)
    }

    /// The stream owning `rel_path`, if any.
    pub fn stream_of(&self, rel_path: &str) -> Option<&StreamDef> {
        self.streams.iter().find(|s| s.owns(rel_path))
    }

    /// Which stream a token mentions: `ident` matches registered const
    /// names, `literal` (already normalized by the lexer) matches salts.
    pub fn stream_of_salt(&self, ident: Option<&str>, literal: Option<&str>) -> Option<&StreamDef> {
        self.streams.iter().find(|s| {
            ident.is_some_and(|id| s.consts.iter().any(|c| c == id))
                || literal.is_some_and(|l| s.salts.iter().any(|sl| sl == l))
        })
    }

    /// Parse `lint.toml` text. Returns `Err` with a message naming the
    /// offending line for anything outside the understood subset.
    pub fn parse(text: &str) -> Result<Self, String> {
        enum Target {
            None,
            Rule(RuleId),
            Stream(usize),
            Allow,
        }
        let mut cfg = LintConfig::default();
        let mut target = Target::None;
        for (lineno, line) in logical_lines(text)? {
            let err = |msg: &str| format!("lint.toml:{lineno}: {msg}");
            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                if header.trim() != "allow" {
                    return Err(err("only [[allow]] array tables are supported"));
                }
                cfg.allows.push(AllowEntry {
                    rule: RuleId::R1,
                    path: String::new(),
                    reason: String::new(),
                });
                target = Target::Allow;
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let header = header.trim();
                if let Some(name) = header.strip_prefix("rules.") {
                    let id = RuleId::from_alias(name.trim())
                        .ok_or_else(|| err("unknown rule name"))?;
                    cfg.scopes.entry(id).or_default();
                    target = Target::Rule(id);
                } else if let Some(name) = header.strip_prefix("streams.") {
                    cfg.streams.push(StreamDef {
                        name: name.trim().to_string(),
                        ..StreamDef::default()
                    });
                    target = Target::Stream(cfg.streams.len() - 1);
                } else {
                    return Err(err("expected [rules.<name>] or [streams.<name>]"));
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err("expected key = value"))?;
            let (key, value) = (key.trim(), value.trim());
            match &target {
                Target::None => return Err(err("key outside any table")),
                Target::Rule(id) => {
                    let id = *id;
                    match key {
                        "crates" => {
                            cfg.scopes.entry(id).or_default().crates =
                                parse_string_array(value).map_err(&err)?;
                        }
                        "paths" => {
                            cfg.scopes.entry(id).or_default().paths =
                                parse_string_array(value).map_err(&err)?;
                        }
                        "sinks" if id == RuleId::R3 => {
                            cfg.taint_sinks = parse_string_array(value).map_err(&err)?;
                        }
                        "roots" if id == RuleId::R4 => {
                            cfg.panic_roots = parse_string_array(value).map_err(&err)?;
                        }
                        "root_traits" if id == RuleId::R4 => {
                            cfg.panic_root_traits = parse_string_array(value).map_err(&err)?;
                        }
                        _ => {
                            return Err(err(
                                "unknown rule key (want crates/paths, digest_taint sinks, \
                                 panic_reachability roots/root_traits)",
                            ))
                        }
                    }
                }
                Target::Stream(ix) => {
                    let stream = &mut cfg.streams[*ix];
                    match key {
                        "salt" => stream
                            .salts
                            .push(normalize_literal(&parse_string(value).map_err(&err)?)),
                        "salts" => {
                            stream.salts = parse_string_array(value)
                                .map_err(&err)?
                                .iter()
                                .map(|s| normalize_literal(s))
                                .collect();
                        }
                        "consts" => stream.consts = parse_string_array(value).map_err(&err)?,
                        "owners" => stream.owners = parse_string_array(value).map_err(&err)?,
                        _ => {
                            return Err(err(
                                "unknown stream key (want salt/salts/consts/owners)",
                            ))
                        }
                    }
                }
                Target::Allow => {
                    let entry = cfg.allows.last_mut().ok_or_else(|| err("internal"))?;
                    let s = parse_string(value).map_err(&err)?;
                    match key {
                        "rule" => {
                            entry.rule = RuleId::from_alias(&s)
                                .ok_or_else(|| err("unknown rule name"))?;
                        }
                        "path" => entry.path = s,
                        "reason" => entry.reason = s,
                        _ => return Err(err("unknown allow key (want rule/path/reason)")),
                    }
                }
            }
        }
        for a in &cfg.allows {
            if a.path.is_empty() || a.reason.is_empty() {
                return Err("lint.toml: every [[allow]] needs path and a non-empty reason".into());
            }
        }
        for s in &cfg.streams {
            if s.owners.is_empty() || (s.salts.is_empty() && s.consts.is_empty()) {
                return Err(format!(
                    "lint.toml: stream `{}` needs owners and at least one salt/const",
                    s.name
                ));
            }
        }
        Ok(cfg)
    }
}

/// Join physical lines into logical `(first_line_no, text)` statements:
/// a statement continues while `[`…`]` brackets are unbalanced (array
/// values spanning lines). Comments are stripped and quotes respected.
fn logical_lines(text: &str) -> Result<Vec<(usize, String)>, String> {
    let mut out = Vec::new();
    let mut buf = String::new();
    let mut start = 0usize;
    let mut depth = 0i32;
    for (idx, raw) in text.lines().enumerate() {
        let stripped = strip_comment(raw).trim();
        if stripped.is_empty() {
            continue;
        }
        if buf.is_empty() {
            start = idx + 1;
        } else {
            buf.push(' ');
        }
        buf.push_str(stripped);
        depth += bracket_delta(stripped);
        if depth < 0 {
            return Err(format!("lint.toml:{}: unbalanced `]`", idx + 1));
        }
        if depth == 0 {
            // A table header `[x]` / `[[x]]` is balanced on its own line and
            // must not absorb following keys — flush per balanced statement.
            out.push((start, std::mem::take(&mut buf)));
        }
    }
    if depth != 0 {
        return Err(format!("lint.toml:{start}: unterminated `[` (array value never closed)"));
    }
    Ok(out)
}

/// Net `[`/`]` count outside double-quoted strings.
fn bracket_delta(line: &str) -> i32 {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in line.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Strip a `#` comment, respecting `"…"` quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str) -> Result<String, &'static str> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or("expected a double-quoted string")
}

fn parse_string_array(value: &str) -> Result<Vec<String>, &'static str> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or("expected a [\"…\", …] array")?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_real_shape() {
        let cfg = LintConfig::parse(
            r#"
            # comment
            [rules.det_collections]
            crates = ["asap-sim", "asap-core"]  # trailing comment

            [rules.digest_taint]
            paths = ["crates/asap-sim/src"]
            sinks = ["Fnv64::*", "EventKey::cmp"]

            [rules.panic_reachability]
            roots = ["Simulation::run"]
            root_traits = ["Protocol"]

            [streams.fault]
            salt = "0xFA17_0B5E_55ED_C0DE"
            consts = ["FAULT_STREAM_SALT"]
            owners = ["crates/asap-sim/src/fault.rs"]

            [[allow]]
            rule = "digest_taint"
            path = "crates/asap-metrics/src/summary.rs"
            reason = "presentation layer"
            "#,
        )
        .expect("parses");
        let r1 = cfg.scope(RuleId::R1).expect("configured");
        assert!(r1.covers("crates/asap-sim/src/util.rs"));
        assert!(!r1.covers("crates/asap-simx/src/util.rs"), "no prefix bleed");
        assert!(!r1.covers("crates/asap-metrics/src/load.rs"));
        let r3 = cfg.scope(RuleId::R3).expect("configured");
        assert!(r3.covers("crates/asap-sim/src/event.rs"));
        assert!(!r3.covers("crates/asap-sim/tests/x.rs"));
        assert!(cfg.file_allowed(RuleId::R3, "crates/asap-metrics/src/summary.rs"));
        assert!(!cfg.file_allowed(RuleId::R1, "crates/asap-metrics/src/summary.rs"));
        assert_eq!(cfg.taint_sinks, vec!["Fnv64::*", "EventKey::cmp"]);
        assert_eq!(cfg.panic_roots, vec!["Simulation::run"]);
        assert_eq!(cfg.panic_root_traits, vec!["Protocol"]);
        let fault = &cfg.streams[0];
        assert_eq!(fault.name, "fault");
        assert_eq!(fault.salts, vec!["0xfa170b5e55edc0de"], "salt normalized");
        assert!(fault.owns("crates/asap-sim/src/fault.rs"));
        assert!(cfg
            .stream_of_salt(Some("FAULT_STREAM_SALT"), None)
            .is_some());
        assert!(cfg
            .stream_of_salt(None, Some("0xfa170b5e55edc0de"))
            .is_some());
    }

    #[test]
    fn arrays_and_allow_entries_span_lines() {
        let cfg = LintConfig::parse(
            r#"
            [rules.det_collections]
            crates = [
                "asap-sim",   # one per line
                "asap-core",
                "asap-search",
            ]

            [[allow]]
            rule = "det_collections"
            path = "crates/asap-overlay/src/collections.rs"
            reason = "defines the deterministic aliases"

            [streams.adversary]
            salts = [
                "0xBAD5_EED5_0DD0_5A17",
            ]
            owners = [
                "crates/asap-sim/src/adversary.rs",
            ]
            "#,
        )
        .expect("multi-line arrays parse");
        let r1 = cfg.scope(RuleId::R1).expect("configured");
        assert_eq!(r1.crates.len(), 3);
        assert!(r1.covers("crates/asap-search/src/lib.rs"));
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.streams[0].salts, vec!["0xbad5eed50dd05a17"]);
    }

    #[test]
    fn rejects_unknown_rules_and_reasonless_allows() {
        assert!(LintConfig::parse("[rules.nonsense]\n").is_err());
        assert!(LintConfig::parse("[[allow]]\nrule = \"unwrap\"\npath = \"x.rs\"\n").is_err());
        assert!(LintConfig::parse("stray = \"value\"\n").is_err());
        assert!(
            LintConfig::parse("[streams.x]\nsalt = \"0x1\"\n").is_err(),
            "stream without owners rejected"
        );
        assert!(
            LintConfig::parse("[rules.det_collections]\ncrates = [\"a\",\n").is_err(),
            "unterminated array rejected"
        );
    }
}
