//! A minimal Rust lexer: just enough to find identifiers, numeric literals,
//! and punctuation with accurate line/column spans, while *never* looking
//! inside comments, strings, or char literals. The build environment has no
//! crates.io access, so this replaces `syn`/`proc-macro2`; the syntax layer
//! in [`crate::syntax`] and the rules in [`crate::rules`] are token-pattern
//! checks, which a token stream serves as well as a syntax tree.

use crate::pragma::{self, Pragma};

/// One lexed token. Columns are 1-based byte offsets within the line
/// (identical to character columns for ASCII sources, which is all this
/// repo contains).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub line: u32,
    pub col: u32,
    pub kind: TokKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    Ident(String),
    /// A numeric literal; `float` is true for `1.5`, `2e3`, `1f64`, ….
    /// `raw` is the literal text normalized for comparison: lower-cased with
    /// `_` separators stripped (so `0xFA17_0B5E` matches `0xfa170b5e`) — the
    /// RNG stream-salt registry (rule R6) matches against it.
    Num { float: bool, raw: String },
    Punct(char),
}

impl Tok {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// Rendered width of the token, for diagnostic carets.
    pub fn width(&self) -> usize {
        match &self.kind {
            TokKind::Ident(s) => s.len(),
            TokKind::Num { raw, .. } => raw.len().max(1),
            TokKind::Punct(_) => 1,
        }
    }
}

/// Normalize a numeric literal for registry comparison: strip `_`, lowercase.
pub fn normalize_literal(text: &str) -> String {
    text.chars()
        .filter(|&c| c != '_')
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

#[derive(Debug, Default)]
pub struct LexOutput {
    pub tokens: Vec<Tok>,
    pub pragmas: Vec<Pragma>,
}

/// Lex `source` into tokens and pragmas. Never fails: unterminated
/// constructs simply run to end-of-file (the real compiler reports those).
pub fn lex(source: &str) -> LexOutput {
    Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        line_had_code: false,
        out: LexOutput::default(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
    line_had_code: bool,
    out: LexOutput,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
            self.line_had_code = false;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn run(mut self) -> LexOutput {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            match c {
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                _ if c.is_ascii_whitespace() => self.bump(),
                _ if c.is_ascii_digit() => self.number(),
                _ if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                _ => {
                    self.push(TokKind::Punct(c as char));
                    self.bump();
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind) {
        self.out.tokens.push(Tok {
            line: self.line,
            col: self.col,
            kind,
        });
        self.line_had_code = true;
    }

    /// Handle `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'`, and `r#ident`;
    /// returns false (without consuming) when the `r`/`b` is a plain ident.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c = self.peek(0);
        let (mut i, raw) = match (c, self.peek(1)) {
            (b'r', b'"') | (b'r', b'#') => (1, true),
            (b'b', b'"') => (1, false),
            (b'b', b'\'') => {
                // Byte literal b'…': same shape as a char literal.
                self.bump();
                self.char_or_lifetime();
                return true;
            }
            (b'b', b'r') if matches!(self.peek(2), b'"' | b'#') => (2, true),
            _ => return false,
        };
        if raw {
            let mut hashes = 0;
            while self.peek(i) == b'#' {
                hashes += 1;
                i += 1;
            }
            if self.peek(i) != b'"' {
                // `r#ident` (raw identifier): consume the prefix, lex the rest
                // as a normal identifier.
                if hashes == 1 {
                    self.bump();
                    self.bump();
                    self.ident();
                    return true;
                }
                return false;
            }
            for _ in 0..=i {
                self.bump(); // prefix + opening quote
            }
            // Scan for `"` followed by `hashes` hash marks.
            while self.pos < self.src.len() {
                if self.peek(0) == b'"' {
                    let done = (1..=hashes).all(|k| self.peek(k) == b'#');
                    self.bump();
                    if done {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        return true;
                    }
                } else {
                    self.bump();
                }
            }
            return true;
        }
        // b"…": byte string with escapes.
        self.bump();
        self.string();
        true
    }

    fn line_comment(&mut self) {
        let own_line = !self.line_had_code;
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        if let Some(p) = pragma::parse_comment(text, line, col, own_line) {
            self.out.pragmas.push(p);
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
    }

    fn string(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        self.bump(); // the quote
        let c = self.peek(0);
        if c == b'_' || c.is_ascii_alphabetic() {
            // Identifier-shaped: lifetime unless a quote closes right after
            // a single character (`'a'`).
            let mut i = 0;
            while {
                let b = self.peek(i);
                b == b'_' || b.is_ascii_alphanumeric()
            } {
                i += 1;
            }
            let closes = self.peek(i) == b'\'';
            for _ in 0..i {
                self.bump();
            }
            if closes {
                self.bump();
            }
            return;
        }
        // Escape or plain symbol char literal.
        if c == b'\\' {
            self.bump();
            self.bump();
        } else {
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        while {
            let b = self.peek(0);
            b == b'_' || b.is_ascii_alphanumeric()
        } {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap_or("")
            .to_string();
        self.out.tokens.push(Tok {
            line,
            col,
            kind: TokKind::Ident(text),
        });
        self.line_had_code = true;
    }

    fn number(&mut self) {
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            // Radix literal: no dots, no exponents, letters are digits.
            self.bump();
            self.bump();
            while {
                let b = self.peek(0);
                b == b'_' || b.is_ascii_alphanumeric()
            } {
                self.bump();
            }
        } else {
            while {
                let b = self.peek(0);
                b == b'_' || b.is_ascii_digit()
            } {
                self.bump();
            }
            if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                float = true;
                self.bump();
                while {
                    let b = self.peek(0);
                    b == b'_' || b.is_ascii_digit()
                } {
                    self.bump();
                }
            }
            if matches!(self.peek(0), b'e' | b'E')
                && (self.peek(1).is_ascii_digit()
                    || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
            {
                float = true;
                self.bump();
                self.bump();
                while {
                    let b = self.peek(0);
                    b == b'_' || b.is_ascii_digit()
                } {
                    self.bump();
                }
            }
            // Type suffix (`1u32`, `1.0f64`, `1f32`).
            if self.peek(0) == b'f' && self.peek(1).is_ascii_digit() {
                float = true;
            }
            while {
                let b = self.peek(0);
                b == b'_' || b.is_ascii_alphanumeric()
            } {
                self.bump();
            }
        }
        let raw = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        self.out.tokens.push(Tok {
            line,
            col,
            kind: TokKind::Num {
                float,
                raw: normalize_literal(raw),
            },
        });
        self.line_had_code = true;
    }
}

/// Mark which tokens sit inside `#[cfg(test)]`-gated items (or `#[test]`
/// functions): rules R3/R4 exempt test code, which may assert on floats and
/// unwrap freely. `#[cfg(not(test))]` does not gate.
pub fn mark_test_regions(tokens: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let (idents, after_attr) = scan_attribute(tokens, i + 2);
        let is_cfg_test = idents.iter().any(|s| s == "cfg")
            && idents.iter().any(|s| s == "test")
            && !idents.iter().any(|s| s == "not");
        let is_test_attr = idents.len() == 1 && idents[0] == "test";
        if !(is_cfg_test || is_test_attr) {
            i = after_attr;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = after_attr;
        while j < tokens.len()
            && tokens[j].is_punct('#')
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = scan_attribute(tokens, j + 2).1;
        }
        // The gated item extends to its first top-level `{…}` block or, for
        // block-less items (`use`, type aliases), the terminating `;`.
        let mut k = j;
        while k < tokens.len() {
            if tokens[k].is_punct('{') {
                k = matching_brace(tokens, k);
                break;
            }
            if tokens[k].is_punct(';') {
                break;
            }
            k += 1;
        }
        for flag in in_test.iter_mut().take((k + 1).min(tokens.len())).skip(i) {
            *flag = true;
        }
        i = k + 1;
    }
    in_test
}

/// Scan an attribute's interior from just past `#[`; returns the identifiers
/// seen and the index just past the closing `]`.
fn scan_attribute(tokens: &[Tok], mut i: usize) -> (Vec<String>, usize) {
    let mut depth = 1u32;
    let mut idents = Vec::new();
    while i < tokens.len() && depth > 0 {
        match &tokens[i].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => depth -= 1,
            TokKind::Ident(s) => idents.push(s.clone()),
            _ => {}
        }
        i += 1;
    }
    (idents, i)
}

/// Index of the token just past the brace block opening at `open` (which
/// must be `{`); saturates at end-of-stream for unbalanced input.
fn matching_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0u32;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = r##"
            // HashMap in a comment
            /* HashSet in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"HashSet"#;
            let c = 'H';
            let real = HashBrown;
        "##;
        assert_eq!(
            idents(src),
            vec!["let", "s", "let", "r", "let", "c", "let", "real", "HashBrown"]
        );
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> Ctx<'a, M> { unwrap }";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"Ctx".to_string()));
    }

    #[test]
    fn float_literals_are_classified() {
        let toks = lex("let x = 1.5 + 2 + 3e4 + 0x1F + 1f64; a.0").tokens;
        let floats: Vec<bool> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Num { float, .. } => Some(*float),
                _ => None,
            })
            .collect();
        // 1.5 float, 2 int, 3e4 float, 0x1F int, 1f64 float, 0 (tuple) int
        assert_eq!(floats, vec![true, false, true, false, true, false]);
    }

    #[test]
    fn spans_are_one_based() {
        let toks = lex("ab\n  cd").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn pragma_parses() {
        let out = lex("x(); // lint: allow(unwrap, float, reason=math is exact, always)");
        assert_eq!(out.pragmas.len(), 1);
        let p = &out.pragmas[0];
        assert!(!p.own_line);
        assert!(!p.malformed);
        assert_eq!(p.rules, vec!["unwrap", "float"]);
        assert_eq!(p.reason.as_deref(), Some("math is exact, always"));
    }

    #[test]
    fn own_line_pragma_and_malformed() {
        let out = lex("  // lint: allow(unwrap)\ny();\n// lint: suppress(x)\n");
        assert_eq!(out.pragmas.len(), 2);
        assert!(out.pragmas[0].own_line);
        assert!(out.pragmas[0].reason.is_none());
        assert!(out.pragmas[1].malformed);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }\nfn tail() { c }";
        let out = lex(src);
        let marks = mark_test_regions(&out.tokens);
        let flagged: Vec<&str> = out
            .tokens
            .iter()
            .zip(&marks)
            .filter(|(_, &m)| m)
            .filter_map(|(t, _)| t.ident())
            .collect();
        assert!(flagged.contains(&"b"));
        assert!(!flagged.contains(&"a"));
        assert!(!flagged.contains(&"tail"));
    }

    #[test]
    fn cfg_not_test_is_not_gated() {
        let src = "#[cfg(not(test))]\nfn live() { a.unwrap(); }";
        let out = lex(src);
        let marks = mark_test_regions(&out.tokens);
        assert!(marks.iter().all(|&m| !m));
    }
}
