//! The single home of the `// lint: allow(...)` suppression pragma: parsing
//! (called from the lexer, which owns comment extraction), target-line
//! resolution, suppression matching, and validation. Before this module the
//! parser lived in `lexer.rs` while validation and matching lived in
//! `rules.rs`, and the two could drift; now every consumer goes through one
//! implementation.
//!
//! Validation is strict by design: a malformed pragma, a pragma naming an
//! **unknown rule id**, or a missing `reason=` is a hard `P0` error — a
//! suppression that silently fails to apply (or applies without
//! justification) is worse than no suppression at all. `P0` problems are
//! reported for every scanned file, even ones no rule is scoped to.

use crate::lexer::LexOutput;
use crate::rules::RuleId;

/// A `// lint: allow(...)` suppression comment (parsed, not yet validated —
/// see [`problems`]).
#[derive(Debug, Clone)]
pub struct Pragma {
    pub line: u32,
    pub col: u32,
    /// True when the pragma comment is the only thing on its line, in which
    /// case it suppresses the *next* code line instead of its own.
    pub own_line: bool,
    /// Raw rule names as written, e.g. `["unwrap"]`.
    pub rules: Vec<String>,
    /// The `reason=` text, required for a pragma to be honored.
    pub reason: Option<String>,
    /// Set when the comment mentions `lint:` but does not parse.
    pub malformed: bool,
}

/// Parse a line comment into a [`Pragma`], if it carries one. Accepted
/// shape: `// lint: allow(rule[, rule…][, reason=free text])`.
pub fn parse_comment(comment: &str, line: u32, col: u32, own_line: bool) -> Option<Pragma> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("lint:")?.trim();
    let malformed = Pragma {
        line,
        col,
        own_line,
        rules: Vec::new(),
        reason: None,
        malformed: true,
    };
    let Some(args) = rest
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|a| a.strip_prefix('('))
        .and_then(|a| a.rfind(')').map(|end| &a[..end]))
    else {
        return Some(malformed);
    };
    let mut rules = Vec::new();
    let mut reason = None;
    let mut parts = args.split(',');
    while let Some(part) = parts.next() {
        let part = part.trim();
        if let Some(r) = part.strip_prefix("reason=") {
            // The reason is free text and may itself contain commas: consume
            // the remainder of the argument list.
            let tail: Vec<&str> = parts.collect();
            let mut full = r.to_string();
            for t in tail {
                full.push(',');
                full.push_str(t);
            }
            reason = Some(full.trim().to_string());
            break;
        }
        if !part.is_empty() {
            rules.push(part.to_string());
        }
    }
    Some(Pragma {
        line,
        col,
        own_line,
        rules,
        reason,
        malformed: false,
    })
}

/// Which source line each pragma suppresses: its own line, or (for own-line
/// pragmas) the first code line after it. Returns `(pragma_index,
/// suppressed_line)` pairs for all well-formed, reasoned pragmas.
pub fn targets(lexed: &LexOutput) -> Vec<(usize, u32)> {
    lexed
        .pragmas
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.malformed && p.reason.is_some())
        .map(|(i, p)| {
            let target = if p.own_line {
                lexed
                    .tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > p.line)
                    .unwrap_or(p.line)
            } else {
                p.line
            };
            (i, target)
        })
        .collect()
}

/// Does some pragma suppress `rule` on `line`? (The pragma must name the
/// rule — by id, canonical name, or alias — and carry a reason; an own-line
/// pragma covers the next code line.)
pub fn suppresses(rule: RuleId, line: u32, lexed: &LexOutput, targets: &[(usize, u32)]) -> bool {
    targets.iter().any(|&(i, target)| {
        target == line
            && lexed.pragmas[i]
                .rules
                .iter()
                .any(|r| RuleId::from_alias(r) == Some(rule))
    })
}

/// Diagnostics for the pragmas themselves: malformed syntax, unknown rule
/// names, and missing `reason=` are hard errors.
pub fn problems(pragmas: &[Pragma]) -> Vec<(u32, u32, String)> {
    let mut out = Vec::new();
    for p in pragmas {
        if p.malformed {
            out.push((
                p.line,
                p.col,
                "malformed lint pragma; expected `// lint: allow(rule, …, reason=…)`".into(),
            ));
            continue;
        }
        if p.rules.is_empty() {
            out.push((p.line, p.col, "lint pragma names no rules".into()));
        }
        for r in &p.rules {
            if RuleId::from_alias(r).is_none() {
                out.push((p.line, p.col, format!("lint pragma names unknown rule `{r}`")));
            }
        }
        if p.reason.as_deref().unwrap_or("").is_empty() {
            out.push((
                p.line,
                p.col,
                "lint pragma is missing a non-empty `reason=…`".into(),
            ));
        }
    }
    out
}
