//! CLI entry point for `cargo lint`.
//!
//! Usage: `cargo lint [PATH …]`. With no arguments, lints every `.rs` file
//! in the workspace (found by ascending from the current directory to the
//! one containing `lint.toml`). With arguments, lints just those files —
//! handy for pre-commit hooks.
//!
//! Exit codes: 0 clean, 1 violations found, 2 setup error (missing or
//! invalid `lint.toml`, unreadable file).
#![allow(clippy::print_stdout)]

use std::path::Path;
use std::process::ExitCode;

use asap_lint::{lint_source, lint_workspace, LintConfig};

fn main() -> ExitCode {
    let cwd = std::env::current_dir().unwrap_or_else(|_| Path::new(".").to_path_buf());
    let root = asap_lint::find_root(&cwd);
    let cfg_path = root.join("lint.toml");
    let cfg_text = match std::fs::read_to_string(&cfg_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", cfg_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match LintConfig::parse(&cfg_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        return run_workspace(&root, &cfg);
    }
    run_files(&root, &cfg, &files)
}

fn run_workspace(root: &Path, cfg: &LintConfig) -> ExitCode {
    let report = match lint_workspace(root, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for rendered in &report.rendered {
        println!("{rendered}");
    }
    if report.is_clean() {
        println!(
            "asap-lint: {} files clean (rules R1-R5, lint.toml at {})",
            report.files_scanned,
            root.join("lint.toml").display()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "asap-lint: {} violation(s) in {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::from(1)
    }
}

fn run_files(root: &Path, cfg: &LintConfig, files: &[String]) -> ExitCode {
    let mut total = 0usize;
    for arg in files {
        let path = Path::new(arg);
        let abs = if path.is_absolute() {
            path.to_path_buf()
        } else {
            // Resolve relative to the invocation directory, not the root:
            // `cargo lint src/util.rs` from inside a crate should work.
            std::env::current_dir()
                .map(|d| d.join(path))
                .unwrap_or_else(|_| path.to_path_buf())
        };
        let rel = abs
            .strip_prefix(root)
            .unwrap_or(&abs)
            .to_string_lossy()
            .replace('\\', "/");
        let source = match std::fs::read_to_string(&abs) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", abs.display());
                return ExitCode::from(2);
            }
        };
        for d in lint_source(&rel, &source, cfg) {
            println!("{}", d.render(Some(&source)));
            total += 1;
        }
    }
    if total == 0 {
        println!("asap-lint: {} file(s) clean", files.len());
        ExitCode::SUCCESS
    } else {
        println!("asap-lint: {total} violation(s)");
        ExitCode::from(1)
    }
}
