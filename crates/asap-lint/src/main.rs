//! CLI entry point for `cargo lint`.
//!
//! Usage: `cargo lint [--format human|json|github] [PATH …]`.
//!
//! With no path arguments, lints every `.rs` file in the workspace (found
//! by ascending from the current directory to the one containing
//! `lint.toml`). With paths, the *whole workspace* is still analyzed — the
//! interprocedural rules need the full call graph — but only findings in
//! the named files are reported, which is what a pre-commit hook wants.
//!
//! Formats: `human` (default, rustc-style with source excerpts), `json`
//! (findings + call-graph summary, consumed by CI), `github` (one
//! `::error` workflow command per finding, for inline PR annotations).
//!
//! Exit codes: 0 clean, 1 violations found, 2 setup error (missing or
//! invalid `lint.toml`, unknown flag, unreadable file).
#![allow(clippy::print_stdout)]

use std::collections::BTreeSet;
use std::path::Path;
use std::process::ExitCode;

use asap_lint::{lint_workspace, LintConfig, Report};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Github,
}

fn main() -> ExitCode {
    let cwd = std::env::current_dir().unwrap_or_else(|_| Path::new(".").to_path_buf());
    let root = asap_lint::find_root(&cwd);
    let cfg_path = root.join("lint.toml");
    let cfg_text = match std::fs::read_to_string(&cfg_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", cfg_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match LintConfig::parse(&cfg_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let mut format = Format::Human;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--format=") {
            match parse_format(v) {
                Some(f) => format = f,
                None => return bad_format(v),
            }
        } else if arg == "--format" {
            match args.next().as_deref().and_then(parse_format) {
                Some(f) => format = f,
                None => return bad_format("(missing)"),
            }
        } else if arg.starts_with("--") {
            eprintln!("error: unknown flag `{arg}` (want --format human|json|github)");
            return ExitCode::from(2);
        } else {
            files.push(arg);
        }
    }

    // The graph rules need the whole workspace even when reporting on a
    // subset of files.
    let mut report = match lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if !files.is_empty() {
        let keep: BTreeSet<String> = files
            .iter()
            .map(|arg| {
                let path = Path::new(arg);
                let abs = if path.is_absolute() {
                    path.to_path_buf()
                } else {
                    // Resolve relative to the invocation directory, not the
                    // root: `cargo lint src/util.rs` inside a crate works.
                    std::env::current_dir()
                        .map(|d| d.join(path))
                        .unwrap_or_else(|_| path.to_path_buf())
                };
                abs.strip_prefix(&root)
                    .unwrap_or(&abs)
                    .to_string_lossy()
                    .replace('\\', "/")
            })
            .collect();
        let kept: Vec<usize> = (0..report.diagnostics.len())
            .filter(|&i| keep.contains(&report.diagnostics[i].path))
            .collect();
        report.rendered = kept.iter().map(|&i| report.rendered[i].clone()).collect();
        report.diagnostics = kept
            .into_iter()
            .map(|i| report.diagnostics[i].clone())
            .collect();
    }
    emit(&report, format, &root)
}

fn parse_format(s: &str) -> Option<Format> {
    match s {
        "human" => Some(Format::Human),
        "json" => Some(Format::Json),
        "github" => Some(Format::Github),
        _ => None,
    }
}

fn bad_format(got: &str) -> ExitCode {
    eprintln!("error: unknown format `{got}` (want human, json, or github)");
    ExitCode::from(2)
}

fn emit(report: &Report, format: Format, root: &Path) -> ExitCode {
    match format {
        Format::Json => println!("{}", report.to_json()),
        Format::Github => {
            for d in &report.diagnostics {
                println!("{}", d.github_annotation());
            }
        }
        Format::Human => {
            for rendered in &report.rendered {
                println!("{rendered}");
            }
            if report.is_clean() {
                let (fns, edges) = report
                    .graph_summary
                    .values()
                    .fold((0, 0), |(f, e), (df, de)| (f + df, e + de));
                println!(
                    "asap-lint: {} files clean (rules R1-R6; call graph: {} fns, {} edges; lint.toml at {})",
                    report.files_scanned,
                    fns,
                    edges,
                    root.join("lint.toml").display()
                );
            } else {
                println!(
                    "asap-lint: {} violation(s) in {} files scanned",
                    report.diagnostics.len(),
                    report.files_scanned
                );
            }
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
