//! A lightweight Rust *syntax* layer on top of the token lexer: item
//! extraction (free functions, `impl` methods, `trait` declarations) with
//! body token ranges, plus call-site extraction from those bodies. This is
//! what the workspace call graph ([`crate::callgraph`]) is built from.
//!
//! It is deliberately not a full parser — no expressions, no types, no
//! generic resolution — just enough structure for interprocedural rules:
//! *which functions exist, which trait/impl do they belong to, and which
//! names do they call*. The approximations (documented inline) are all
//! over-approximations of the real call relation, which keeps the
//! reachability rules (R4 panic-reachability, R3 digest-taint, R6 stream
//! discipline) sound-for-reachability at the cost of occasional extra edges
//! that the fixture tests and pragma triage keep in check.

use crate::lexer::Tok;

/// One function definition (free fn, impl method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// The `impl` target type for methods (`impl Foo` / `impl Tr for Foo`
    /// both give `Foo`); `None` for free functions and trait declarations.
    pub self_ty: Option<String>,
    /// The trait being implemented (`impl Tr for Foo` gives `Tr`), or — for
    /// a default method body inside `trait Tr { … }` — the declaring trait.
    pub trait_name: Option<String>,
    pub line: u32,
    pub col: u32,
    /// Token index range of the signature: `fn` through the token before
    /// the body `{` (or the `;` of a body-less declaration).
    pub sig: (usize, usize),
    /// Token index range of the body, *inside* the braces (empty for
    /// body-less trait method declarations).
    pub body: (usize, usize),
    /// Inside a `#[cfg(test)]` region or `#[test]` fn.
    pub is_test: bool,
}

impl FnDef {
    /// `Type::name` for methods, plain `name` for free functions.
    pub fn qual_name(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => match &self.trait_name {
                Some(t) => format!("{t}::{}", self.name),
                None => self.name.clone(),
            },
        }
    }
}

/// A `trait Name { … }` declaration and its method names (declared or
/// defaulted) — used to resolve "every implementation of trait T" roots.
#[derive(Debug, Clone)]
pub struct TraitDef {
    pub name: String,
    pub methods: Vec<String>,
}

/// Everything the syntax pass extracts from one file.
#[derive(Debug, Default)]
pub struct FileSyntax {
    pub fns: Vec<FnDef>,
    pub traits: Vec<TraitDef>,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    /// `.name(` — a method call; resolves to any visible impl method `name`.
    Method(String),
    /// `Qual::name(` — resolves to methods `name` on impls of `Qual` when
    /// `Qual` looks like a type, else (module path segment) to free `name`.
    Path(String, String),
    /// `name(` — a free call; also covers tuple-struct constructors, which
    /// simply resolve to nothing.
    Free(String),
}

/// Keywords that precede `(` without being calls.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "in", "as", "loop", "move", "else", "let", "mut",
    "ref", "dyn",
];

/// Parse the item structure of a lexed file. `in_test` comes from
/// [`crate::lexer::mark_test_regions`].
pub fn parse(tokens: &[Tok], in_test: &[bool]) -> FileSyntax {
    let mut out = FileSyntax::default();
    walk(tokens, in_test, 0, tokens.len(), None, None, &mut out);
    out
}

#[derive(Clone)]
struct ImplCtx {
    self_ty: Option<String>,
    trait_name: Option<String>,
}

/// Linear scan of `[i, end)` collecting items. `impl_ctx` is set inside an
/// `impl` block, `trait_ctx` inside a `trait` block.
fn walk(
    tokens: &[Tok],
    in_test: &[bool],
    mut i: usize,
    end: usize,
    impl_ctx: Option<&ImplCtx>,
    trait_ctx: Option<&str>,
    out: &mut FileSyntax,
) {
    while i < end {
        let id = tokens[i].ident().unwrap_or("");
        match id {
            "impl" => {
                let Some((ctx, open)) = parse_impl_header(tokens, i + 1, end) else {
                    i += 1;
                    continue;
                };
                let close = matching(tokens, open, end, '{', '}');
                walk(tokens, in_test, open + 1, close, Some(&ctx), None, out);
                i = close + 1;
            }
            "trait" => {
                let Some(name_ix) = next_ident(tokens, i + 1, end) else {
                    i += 1;
                    continue;
                };
                let name = tokens[name_ix].ident().unwrap_or("").to_string();
                // Supertraits/where clauses hold no braces; the body starts
                // at the first `{`.
                let Some(open) = next_punct(tokens, name_ix + 1, end, '{') else {
                    i = name_ix + 1;
                    continue;
                };
                let close = matching(tokens, open, end, '{', '}');
                let before = out.fns.len();
                walk(tokens, in_test, open + 1, close, None, Some(&name), out);
                let methods = out.fns[before..].iter().map(|f| f.name.clone()).collect();
                out.traits.push(TraitDef { name, methods });
                i = close + 1;
            }
            "fn" => {
                let (def, next) = parse_fn(tokens, in_test, i, end, impl_ctx, trait_ctx);
                if let Some(def) = def {
                    out.fns.push(def);
                }
                i = next;
            }
            "mod" => {
                // `mod name { … }`: descend; `mod name;` skip. No path
                // tracking — names are resolved workspace-wide anyway.
                match next_ident(tokens, i + 1, end) {
                    Some(n) => match tokens.get(n + 1) {
                        Some(t) if t.is_punct('{') => {
                            i = n + 2;
                        }
                        _ => i = n + 1,
                    },
                    None => i += 1,
                }
            }
            "macro_rules" => {
                // Skip `macro_rules! name { … }` entirely: its token
                // patterns would read as phantom items and calls.
                match next_punct(tokens, i + 1, end, '{') {
                    Some(open) => i = matching(tokens, open, end, '{', '}') + 1,
                    None => i += 1,
                }
            }
            _ => i += 1,
        }
    }
}

/// Parse from just past `impl`: optional generics, a type path, optionally
/// `for` + second path, up to the opening `{`. Returns the context and the
/// index of that `{`.
fn parse_impl_header(tokens: &[Tok], mut i: usize, end: usize) -> Option<(ImplCtx, usize)> {
    if i < end && tokens[i].is_punct('<') {
        i = skip_angles(tokens, i, end);
    }
    let mut first_path_last = None; // last path ident at angle-depth 0
    let mut second_path_last = None;
    let mut saw_for = false;
    while i < end {
        let t = &tokens[i];
        if t.is_punct('{') {
            let (trait_name, self_ty) = if saw_for {
                (first_path_last, second_path_last)
            } else {
                (None, first_path_last)
            };
            return Some((ImplCtx { self_ty, trait_name }, i));
        }
        if t.is_punct(';') {
            return None;
        }
        if t.is_punct('<') {
            i = skip_angles(tokens, i, end);
            continue;
        }
        if let Some(id) = t.ident() {
            match id {
                "for" => saw_for = true,
                "where" => {
                    // Where clauses name types we must not mistake for the
                    // impl target; scan straight to the body brace.
                    let open = next_punct(tokens, i + 1, end, '{')?;
                    let (trait_name, self_ty) = if saw_for {
                        (first_path_last, second_path_last)
                    } else {
                        (None, first_path_last)
                    };
                    return Some((ImplCtx { self_ty, trait_name }, open));
                }
                "dyn" | "mut" | "const" => {}
                _ => {
                    if saw_for {
                        second_path_last = Some(id.to_string());
                    } else {
                        first_path_last = Some(id.to_string());
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Parse a `fn` item starting at the `fn` token. Returns the definition
/// (None if unparseable) and the index to resume scanning from.
fn parse_fn(
    tokens: &[Tok],
    in_test: &[bool],
    fn_ix: usize,
    end: usize,
    impl_ctx: Option<&ImplCtx>,
    trait_ctx: Option<&str>,
) -> (Option<FnDef>, usize) {
    let Some(name_ix) = next_ident(tokens, fn_ix + 1, end) else {
        return (None, fn_ix + 1);
    };
    let name = tokens[name_ix].ident().unwrap_or("").to_string();
    let mut i = name_ix + 1;
    if i < end && tokens[i].is_punct('<') {
        i = skip_angles(tokens, i, end);
    }
    // Parameter list.
    let Some(open_paren) = next_punct(tokens, i, end, '(') else {
        return (None, name_ix + 1);
    };
    let after_params = matching(tokens, open_paren, end, '(', ')') + 1;
    // Scan to the body `{` or a declaration-terminating `;`, skipping
    // return-type parens/angles on the way.
    let mut j = after_params;
    let (sig_end, body) = loop {
        if j >= end {
            return (None, after_params);
        }
        let t = &tokens[j];
        if t.is_punct('{') {
            let close = matching(tokens, j, end, '{', '}');
            break (j, (j + 1, close));
        }
        if t.is_punct(';') {
            break (j, (j, j)); // body-less declaration
        }
        if t.is_punct('(') {
            j = matching(tokens, j, end, '(', ')') + 1;
            continue;
        }
        if t.is_punct('<') {
            j = skip_angles(tokens, j, end);
            continue;
        }
        j += 1;
    };
    let def = FnDef {
        name,
        self_ty: impl_ctx.and_then(|c| c.self_ty.clone()),
        trait_name: impl_ctx
            .and_then(|c| c.trait_name.clone())
            .or_else(|| trait_ctx.map(str::to_string)),
        line: tokens[name_ix].line,
        col: tokens[name_ix].col,
        sig: (fn_ix, sig_end),
        body: (body.0.min(end), body.1.min(end)),
        is_test: in_test.get(name_ix).copied().unwrap_or(false),
    };
    (Some(def), body.1.min(end).max(sig_end) + 1)
}

/// Extract call sites from a function's body token range.
pub fn calls_in(tokens: &[Tok], body: (usize, usize)) -> Vec<Call> {
    let (start, end) = body;
    let mut out = Vec::new();
    for i in start..end.min(tokens.len()) {
        let Some(name) = tokens[i].ident() else {
            continue;
        };
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        // `fn helper(` inside the body: a nested definition, not a call.
        if prev.is_some_and(|t| t.ident() == Some("fn")) {
            continue;
        }
        if prev.is_some_and(|t| t.is_punct('.')) {
            out.push(Call::Method(name.to_string()));
        } else if prev.is_some_and(|t| t.is_punct(':'))
            && i >= 2
            && tokens[i - 2].is_punct(':')
        {
            // `Qual::name(`. Walk back over `::` to the qualifier segment
            // (skipping turbofish generics is not needed: `::<…>::` keeps
            // the qualifier one more hop back, which the loop handles).
            if let Some(qual) = i.checked_sub(3).and_then(|q| tokens[q].ident()) {
                out.push(Call::Path(qual.to_string(), name.to_string()));
            } else {
                out.push(Call::Free(name.to_string()));
            }
        } else {
            out.push(Call::Free(name.to_string()));
        }
    }
    out
}

fn next_ident(tokens: &[Tok], mut i: usize, end: usize) -> Option<usize> {
    while i < end {
        if tokens[i].ident().is_some() {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn next_punct(tokens: &[Tok], mut i: usize, end: usize, c: char) -> Option<usize> {
    while i < end {
        if tokens[i].is_punct(c) {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Index just past a balanced `open..close` group starting at `open`.
/// Saturates at `end` for unbalanced input.
fn matching(tokens: &[Tok], open: usize, end: usize, oc: char, cc: char) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        if tokens[i].is_punct(oc) {
            depth += 1;
        } else if tokens[i].is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// Skip a generics group starting at `<`; `->` arrows inside (Fn-trait
/// sugar) must not count as closing angles. Returns the index just past the
/// matching `>`.
fn skip_angles(tokens: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        if tokens[i].is_punct('<') {
            depth += 1;
        } else if tokens[i].is_punct('>') {
            // `->`: the `-` immediately precedes; not a closer.
            if i > 0 && tokens[i - 1].is_punct('-') {
                i += 1;
                continue;
            }
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, mark_test_regions};

    fn parse_src(src: &str) -> FileSyntax {
        let lexed = lex(src);
        let in_test = mark_test_regions(&lexed.tokens);
        parse(&lexed.tokens, &in_test)
    }

    #[test]
    fn free_impl_and_trait_fns_are_extracted() {
        let s = parse_src(
            r#"
            pub fn free(x: u32) -> u32 { helper(x) }
            fn helper(x: u32) -> u32 { x }
            pub struct Sim;
            impl Sim {
                pub fn run(&mut self) { self.step(); dispatch(self) }
                fn step(&mut self) {}
            }
            pub trait Protocol {
                fn on_query(&mut self);
                fn on_init(&mut self) { self.on_query() }
            }
            impl Protocol for Sim {
                fn on_query(&mut self) { free(1); }
            }
            "#,
        );
        let names: Vec<String> = s.fns.iter().map(|f| f.qual_name()).collect();
        assert_eq!(
            names,
            vec![
                "free",
                "helper",
                "Sim::run",
                "Sim::step",
                "Protocol::on_query",
                "Protocol::on_init",
                "Sim::on_query"
            ]
        );
        let on_query_impl = s.fns.last().expect("has fns");
        assert_eq!(on_query_impl.trait_name.as_deref(), Some("Protocol"));
        assert_eq!(s.traits.len(), 1);
        assert_eq!(s.traits[0].methods, vec!["on_query", "on_init"]);
    }

    #[test]
    fn generic_fns_and_impls_parse() {
        let s = parse_src(
            "impl<'a, P: Protocol> Simulation<'a, P> {\n\
             fn go<F: Fn(u32) -> u32>(&self, f: F) -> Vec<u32> { vec![f(1)] }\n}\n\
             fn free_generic<T>(t: T) where T: Clone { drop(t) }",
        );
        let names: Vec<String> = s.fns.iter().map(|f| f.qual_name()).collect();
        assert_eq!(names, vec!["Simulation::go", "free_generic"]);
    }

    #[test]
    fn calls_are_classified() {
        let s = parse_src("fn f() { g(); x.h(); Type::make(); path::seg::free_in_mod(); }");
        let lexed = lex("fn f() { g(); x.h(); Type::make(); path::seg::free_in_mod(); }");
        let calls = calls_in(&lexed.tokens, s.fns[0].body);
        assert_eq!(
            calls,
            vec![
                Call::Free("g".into()),
                Call::Method("h".into()),
                Call::Path("Type".into(), "make".into()),
                Call::Path("seg".into(), "free_in_mod".into()),
            ]
        );
    }

    #[test]
    fn test_regions_mark_fns() {
        let s = parse_src(
            "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }",
        );
        let flags: Vec<(String, bool)> =
            s.fns.iter().map(|f| (f.name.clone(), f.is_test)).collect();
        assert_eq!(
            flags,
            vec![
                ("live".to_string(), false),
                ("helper".to_string(), true),
                ("t".to_string(), true)
            ]
        );
    }

    #[test]
    fn trait_method_declarations_have_empty_bodies() {
        let s = parse_src("trait T { fn decl(&self); fn with_default(&self) { self.decl() } }");
        assert_eq!(s.fns[0].body.0, s.fns[0].body.1, "declaration has no body");
        assert!(s.fns[1].body.1 > s.fns[1].body.0, "default body captured");
    }
}
