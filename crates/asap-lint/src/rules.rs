//! The rule set. R1/R2/R5 are token-pattern checks over single files; R3
//! (digest-taint), R4 (panic-reachability), and R6 (rng-stream-discipline)
//! are *interprocedural*: this module contributes their site detectors
//! (which tokens constitute taint, a panic, a seed call, a salt mention),
//! and [`crate::analysis`] decides which sites are violations by walking
//! the workspace call graph. Scoping comes from `lint.toml`; suppression
//! comes from `// lint: allow(…)` pragmas ([`crate::pragma`]) or committed
//! `[[allow]]` entries.

use crate::config::LintConfig;
use crate::lexer::{LexOutput, Tok, TokKind};

/// Stable rule identifiers (the `R<n>` in diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// No RandomState-hashed std collections in simulation-facing crates.
    R1,
    /// No ambient clocks or entropy outside the bench harness.
    R2,
    /// Digest taint: no floats/clocks/RandomState in any function reachable
    /// from a digest/event-ordering sink through the call graph (plus the
    /// direct float ban on the configured digest-path files).
    R3,
    /// Panic reachability: no `unwrap()`/`expect()` in functions reachable
    /// from `Simulation::run` or any `Protocol` implementation.
    R4,
    /// No release-mode `assert!`/`panic!` family macros on simulation hot
    /// paths; invariants belong at construction time plus `debug_assert!`.
    R5,
    /// RNG stream discipline: every subsystem draws only from its own
    /// salted stream. Registered salts may not leak outside their owner
    /// files, and every `seed_from_u64` must use a registered salt.
    R6,
}

pub const ALL_RULES: [RuleId; 6] = [
    RuleId::R1,
    RuleId::R2,
    RuleId::R3,
    RuleId::R4,
    RuleId::R5,
    RuleId::R6,
];

impl RuleId {
    /// Canonical lower-case name, used in `lint.toml` and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::R1 => "det-collections",
            RuleId::R2 => "ambient-entropy",
            RuleId::R3 => "digest-taint",
            RuleId::R4 => "panic-reachability",
            RuleId::R5 => "release-assert",
            RuleId::R6 => "rng-stream-discipline",
        }
    }

    pub fn id(self) -> &'static str {
        match self {
            RuleId::R1 => "R1",
            RuleId::R2 => "R2",
            RuleId::R3 => "R3",
            RuleId::R4 => "R4",
            RuleId::R5 => "R5",
            RuleId::R6 => "R6",
        }
    }

    /// Accepts the id (`R1`), the canonical name, snake_case, the short
    /// aliases used in pragmas, and the pre-call-graph names (`float-arith`,
    /// `unwrap`) so existing in-tree pragmas keep applying.
    pub fn from_alias(s: &str) -> Option<RuleId> {
        match s {
            "R1" | "r1" | "det-collections" | "det_collections" | "hashmap" => Some(RuleId::R1),
            "R2" | "r2" | "ambient-entropy" | "ambient_entropy" | "entropy" => Some(RuleId::R2),
            "R3" | "r3" | "digest-taint" | "digest_taint" | "float-arith" | "float_arith"
            | "float" => Some(RuleId::R3),
            "R4" | "r4" | "panic-reachability" | "panic_reachability" | "unwrap" | "expect" => {
                Some(RuleId::R4)
            }
            "R5" | "r5" | "release-assert" | "release_assert" => Some(RuleId::R5),
            "R6" | "r6" | "rng-stream-discipline" | "rng_stream_discipline" | "stream" => {
                Some(RuleId::R6)
            }
            _ => None,
        }
    }

    /// R3/R4/R5/R6 exempt `#[cfg(test)]` regions: test assertions may
    /// compare floats, unwrap, assert, and seed throwaway RNGs freely.
    /// R1/R2 apply to tests too — a test that iterates a RandomState map or
    /// reads a wall clock is exactly as flaky as a protocol that does.
    pub fn skips_test_code(self) -> bool {
        matches!(self, RuleId::R3 | RuleId::R4 | RuleId::R5 | RuleId::R6)
    }

    pub fn summary(self, found: &str) -> String {
        match self {
            RuleId::R1 => format!(
                "`{found}` hashes with per-process RandomState; iteration order is nondeterministic"
            ),
            RuleId::R2 => format!("`{found}` is an ambient clock/entropy source"),
            RuleId::R3 => format!("`{found}` taints a digest/event-ordering path"),
            RuleId::R4 => format!("`{found}()` can panic in code reachable from the simulation"),
            RuleId::R5 => format!(
                "release-mode `{found}!` on a simulation hot path can abort a run mid-trace"
            ),
            RuleId::R6 => format!("RNG stream discipline: {found}"),
        }
    }

    pub fn help(self) -> &'static str {
        match self {
            RuleId::R1 => {
                "use DetHashMap/DetHashSet (asap_sim::collections, re-exported from \
                 asap_overlay::collections) or BTreeMap/BTreeSet"
            }
            RuleId::R2 => {
                "take time from Ctx::now_us() and randomness from the seeded Ctx::rng; \
                 only asap-bench may touch the host clock"
            }
            RuleId::R3 => {
                "keep digest and event-ordering state in integer µs/bytes; float summaries \
                 belong to the metrics summary layer (see the lint.toml allowlist)"
            }
            RuleId::R4 => {
                "handle the None/Err arm (the engine must survive any message interleaving), \
                 or justify with `// lint: allow(panic-reachability, reason=…)`"
            }
            RuleId::R5 => {
                "prove the invariant once at construction time (before Simulation::run) \
                 and downgrade the hot-path check to `debug_assert!`, or justify with \
                 `// lint: allow(release-assert, reason=…)`"
            }
            RuleId::R6 => {
                "seed subsystem RNGs as `SmallRng::seed_from_u64(run_seed ^ <STREAM_SALT>)` \
                 using the salt registered for this file in lint.toml [streams.*]; derived \
                 child streams need `// lint: allow(rng-stream-discipline, reason=…)`"
            }
        }
    }
}

/// One rule violation, before suppression filtering.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: RuleId,
    pub line: u32,
    pub col: u32,
    pub width: usize,
    pub found: String,
    /// Interprocedural context (an example call path, the owning stream…),
    /// appended to the diagnostic summary when present.
    pub note: Option<String>,
}

fn violation(rule: RuleId, tok: &Tok, found: &str) -> Violation {
    Violation {
        rule,
        line: tok.line,
        col: tok.col,
        width: tok.width(),
        found: found.to_string(),
        note: None,
    }
}

const BANNED_COLLECTIONS: [&str; 2] = ["HashMap", "HashSet"];
const BANNED_ENTROPY: [&str; 4] = ["thread_rng", "from_entropy", "SystemTime", "Instant"];
const BANNED_FLOAT_TYPES: [&str; 2] = ["f32", "f64"];
const BANNED_PANICS: [&str; 2] = ["unwrap", "expect"];
/// Idents that taint a digest path beyond floats: per-process hash state and
/// ambient clock/entropy sources.
const TAINT_IDENTS: [&str; 5] = [
    "RandomState",
    "SystemTime",
    "Instant",
    "thread_rng",
    "from_entropy",
];
/// R5 matches these idents followed by `!`. The `debug_assert*` family lexes
/// as distinct idents, so it is exempt by construction.
const BANNED_RELEASE_ASSERTS: [&str; 5] =
    ["assert", "assert_eq", "assert_ne", "panic", "unreachable"];

/// Run the *intraprocedural* face of `rule` over a lexed file: R1/R2/R5
/// token patterns plus R3's direct float ban (which applies to the
/// configured digest-path files independent of the call graph). R4 and R6
/// have no intraprocedural face — their sites are judged by
/// [`crate::analysis`]. `in_test[i]` marks tokens inside `#[cfg(test)]`
/// regions (see [`crate::lexer::mark_test_regions`]).
pub fn check(rule: RuleId, lexed: &LexOutput, in_test: &[bool]) -> Vec<Violation> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if rule.skips_test_code() && in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        match rule {
            RuleId::R1 => {
                if let Some(id) = tok.ident() {
                    if BANNED_COLLECTIONS.contains(&id) {
                        out.push(violation(rule, tok, id));
                    }
                }
            }
            RuleId::R2 => {
                if let Some(id) = tok.ident() {
                    if BANNED_ENTROPY.contains(&id) {
                        out.push(violation(rule, tok, id));
                    }
                }
            }
            RuleId::R3 => match &tok.kind {
                TokKind::Ident(id) if BANNED_FLOAT_TYPES.contains(&id.as_str()) => {
                    out.push(violation(rule, tok, id));
                }
                TokKind::Num { float: true, .. } => {
                    out.push(violation(rule, tok, "float literal"));
                }
                _ => {}
            },
            RuleId::R5 => {
                if let Some(id) = tok.ident() {
                    if BANNED_RELEASE_ASSERTS.contains(&id)
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                    {
                        out.push(violation(rule, tok, id));
                    }
                }
            }
            RuleId::R4 | RuleId::R6 => {}
        }
    }
    out
}

/// R4 sites: `.unwrap(` / `.expect(` / `Option::unwrap(` … inside the token
/// range `[start, end)` (a function body). Test tokens are skipped.
pub fn panic_sites(lexed: &LexOutput, in_test: &[bool], range: (usize, usize)) -> Vec<Violation> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in range.0..range.1.min(toks.len()) {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        if let Some(id) = toks[i].ident() {
            if BANNED_PANICS.contains(&id)
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && i > 0
                && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'))
            {
                out.push(violation(RuleId::R4, &toks[i], id));
            }
        }
    }
    out
}

/// R3 taint sites inside `[start, end)`: float types/literals plus the
/// nondeterminism sources in [`TAINT_IDENTS`]. Test tokens are skipped.
pub fn taint_sites(lexed: &LexOutput, in_test: &[bool], range: (usize, usize)) -> Vec<Violation> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let end = range.1.min(toks.len());
    for (i, tok) in toks.iter().enumerate().take(end).skip(range.0) {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        match &tok.kind {
            TokKind::Ident(id)
                if BANNED_FLOAT_TYPES.contains(&id.as_str())
                    || TAINT_IDENTS.contains(&id.as_str()) =>
            {
                out.push(violation(RuleId::R3, tok, id));
            }
            TokKind::Num { float: true, .. } => {
                out.push(violation(RuleId::R3, tok, "float literal"));
            }
            _ => {}
        }
    }
    out
}

/// R6 direct checks over one file (run on every file in the rule's scope):
///
/// 1. A registered stream salt (literal or const identifier) mentioned in a
///    file its stream does not own leaks that stream to another subsystem.
/// 2. A `seed_from_u64(…)` call whose arguments mention no registered salt
///    creates an undisciplined stream (derived child streams carry a
///    justifying pragma).
pub fn check_streams(
    lexed: &LexOutput,
    in_test: &[bool],
    rel_path: &str,
    cfg: &LintConfig,
) -> Vec<Violation> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let (ident, literal) = match &tok.kind {
            TokKind::Ident(id) => (Some(id.as_str()), None),
            TokKind::Num { raw, .. } => (None, Some(raw.as_str())),
            TokKind::Punct(_) => (None, None),
        };
        if let Some(stream) = cfg.stream_of_salt(ident, literal) {
            if !stream.owns(rel_path) {
                let what = ident.unwrap_or("salt literal");
                out.push(Violation {
                    note: Some(format!(
                        "stream `{}` is owned by {}",
                        stream.name,
                        stream.owners.join(", ")
                    )),
                    ..violation(
                        RuleId::R6,
                        tok,
                        &format!("`{what}` is the salt of stream `{}`, used outside its owner", stream.name),
                    )
                });
            }
        }
        if ident == Some("seed_from_u64") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let close = arg_close(toks, i + 1);
            let salted = (i + 2..close).any(|j| match &toks[j].kind {
                TokKind::Ident(id) => cfg.stream_of_salt(Some(id), None).is_some(),
                TokKind::Num { raw, .. } => cfg.stream_of_salt(None, Some(raw)).is_some(),
                TokKind::Punct(_) => false,
            });
            if !salted {
                out.push(violation(
                    RuleId::R6,
                    tok,
                    "`seed_from_u64` draws no registered stream salt",
                ));
            }
        }
    }
    out
}

/// Index of the `)` matching the `(` at `open` (saturating at end).
fn arg_close(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, mark_test_regions};

    #[test]
    fn stream_salts_are_matched_by_const_and_literal() {
        let toml = r#"
            [streams.fault]
            salt = "0xFA17_0B5E_55ED_C0DE"
            consts = ["FAULT_STREAM_SALT"]
            owners = ["crates/asap-sim/src/fault.rs"]
        "#;
        let cfg = LintConfig::parse(toml).expect("config parses");
        let src = "fn seed(run: u64) -> u64 { run ^ 0xFA17_0B5E_55ED_C0DE ^ FAULT_STREAM_SALT }";
        let lexed = lex(src);
        let in_test = mark_test_regions(&lexed.tokens);
        let owner = check_streams(&lexed, &in_test, "crates/asap-sim/src/fault.rs", &cfg);
        assert!(owner.is_empty(), "owner file may mention its salt");
        let outsider = check_streams(&lexed, &in_test, "crates/asap-sim/src/engine.rs", &cfg);
        assert_eq!(outsider.len(), 2, "literal + const both flagged: {outsider:?}");
    }

    #[test]
    fn unsalted_seeding_is_flagged() {
        let toml = r#"
            [streams.fault]
            consts = ["FAULT_STREAM_SALT"]
            owners = ["crates/asap-sim/src/fault.rs"]
        "#;
        let cfg = LintConfig::parse(toml).expect("config parses");
        let good = lex("fn f(s: u64) { let r = SmallRng::seed_from_u64(s ^ FAULT_STREAM_SALT); }");
        let bad = lex("fn f(s: u64) { let r = SmallRng::seed_from_u64(s.wrapping_add(1)); }");
        let fixture_path = "crates/asap-sim/src/fault.rs";
        let gt = mark_test_regions(&good.tokens);
        let bt = mark_test_regions(&bad.tokens);
        assert!(check_streams(&good, &gt, fixture_path, &cfg).is_empty());
        let v = check_streams(&bad, &bt, fixture_path, &cfg);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::R6);
    }

    #[test]
    fn taint_and_panic_sites_respect_ranges_and_tests() {
        let src = "fn a() { let x = 1.5; o.unwrap(); }\n\
                   #[cfg(test)] mod t { fn b() { q.unwrap(); let y: f64 = 0.0; } }";
        let lexed = lex(src);
        let in_test = mark_test_regions(&lexed.tokens);
        let whole = (0, lexed.tokens.len());
        let panics = panic_sites(&lexed, &in_test, whole);
        assert_eq!(panics.len(), 1, "test unwrap exempt: {panics:?}");
        let taints = taint_sites(&lexed, &in_test, whole);
        assert_eq!(taints.len(), 1, "test float exempt: {taints:?}");
        assert!(panic_sites(&lexed, &in_test, (0, 0)).is_empty(), "empty range");
    }
}
