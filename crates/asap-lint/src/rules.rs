//! The rule set. Each rule is a token-pattern check; scoping (which crates
//! or paths a rule covers) comes from `lint.toml`, and suppression comes
//! from `// lint: allow(…)` pragmas or committed `[[allow]]` entries.

use crate::lexer::{LexOutput, Pragma, Tok, TokKind};

/// Stable rule identifiers (the `R<n>` in diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// No RandomState-hashed std collections in simulation-facing crates.
    R1,
    /// No ambient clocks or entropy outside the bench harness.
    R2,
    /// No floating point in digest- or event-ordering paths.
    R3,
    /// No `unwrap()`/`expect()` in code reachable from `Simulation::run`.
    R4,
    /// No release-mode `assert!`/`panic!` family macros on simulation hot
    /// paths; invariants belong at construction time plus `debug_assert!`.
    R5,
}

pub const ALL_RULES: [RuleId; 5] =
    [RuleId::R1, RuleId::R2, RuleId::R3, RuleId::R4, RuleId::R5];

impl RuleId {
    /// Canonical lower-case name, used in `lint.toml` and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::R1 => "det-collections",
            RuleId::R2 => "ambient-entropy",
            RuleId::R3 => "float-arith",
            RuleId::R4 => "unwrap",
            RuleId::R5 => "release-assert",
        }
    }

    pub fn id(self) -> &'static str {
        match self {
            RuleId::R1 => "R1",
            RuleId::R2 => "R2",
            RuleId::R3 => "R3",
            RuleId::R4 => "R4",
            RuleId::R5 => "R5",
        }
    }

    /// Accepts the id (`R1`), the canonical name, snake_case, and the
    /// short aliases used in pragmas.
    pub fn from_alias(s: &str) -> Option<RuleId> {
        match s {
            "R1" | "r1" | "det-collections" | "det_collections" | "hashmap" => Some(RuleId::R1),
            "R2" | "r2" | "ambient-entropy" | "ambient_entropy" | "entropy" => Some(RuleId::R2),
            "R3" | "r3" | "float-arith" | "float_arith" | "float" => Some(RuleId::R3),
            "R4" | "r4" | "unwrap" | "expect" => Some(RuleId::R4),
            "R5" | "r5" | "release-assert" | "release_assert" => Some(RuleId::R5),
            _ => None,
        }
    }

    /// R3/R4/R5 exempt `#[cfg(test)]` regions: test assertions may compare
    /// floats, unwrap, and assert freely. R1/R2 apply to tests too — a test
    /// that iterates a RandomState map or reads a wall clock is exactly as
    /// flaky as a protocol that does.
    pub fn skips_test_code(self) -> bool {
        matches!(self, RuleId::R3 | RuleId::R4 | RuleId::R5)
    }

    pub fn summary(self, found: &str) -> String {
        match self {
            RuleId::R1 => format!(
                "`{found}` hashes with per-process RandomState; iteration order is nondeterministic"
            ),
            RuleId::R2 => format!("`{found}` is an ambient clock/entropy source"),
            RuleId::R3 => format!("floating-point (`{found}`) in a digest/event-ordering path"),
            RuleId::R4 => format!("`{found}()` can panic in code reachable from Simulation::run"),
            RuleId::R5 => format!(
                "release-mode `{found}!` on a simulation hot path can abort a run mid-trace"
            ),
        }
    }

    pub fn help(self) -> &'static str {
        match self {
            RuleId::R1 => {
                "use DetHashMap/DetHashSet (asap_sim::collections, re-exported from \
                 asap_overlay::collections) or BTreeMap/BTreeSet"
            }
            RuleId::R2 => {
                "take time from Ctx::now_us() and randomness from the seeded Ctx::rng; \
                 only asap-bench may touch the host clock"
            }
            RuleId::R3 => {
                "keep digest and event-ordering state in integer µs/bytes; float summaries \
                 belong to the metrics summary layer (see the lint.toml allowlist)"
            }
            RuleId::R4 => {
                "handle the None/Err arm (the engine must survive any message interleaving), \
                 or justify with `// lint: allow(unwrap, reason=…)`"
            }
            RuleId::R5 => {
                "prove the invariant once at construction time (before Simulation::run) \
                 and downgrade the hot-path check to `debug_assert!`, or justify with \
                 `// lint: allow(release-assert, reason=…)`"
            }
        }
    }
}

/// One rule violation, before suppression filtering.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: RuleId,
    pub line: u32,
    pub col: u32,
    pub width: usize,
    pub found: String,
}

fn violation(rule: RuleId, tok: &Tok, found: &str) -> Violation {
    Violation {
        rule,
        line: tok.line,
        col: tok.col,
        width: tok.width(),
        found: found.to_string(),
    }
}

const BANNED_COLLECTIONS: [&str; 2] = ["HashMap", "HashSet"];
const BANNED_ENTROPY: [&str; 4] = ["thread_rng", "from_entropy", "SystemTime", "Instant"];
const BANNED_FLOAT_TYPES: [&str; 2] = ["f32", "f64"];
const BANNED_PANICS: [&str; 2] = ["unwrap", "expect"];
/// R5 matches these idents followed by `!`. The `debug_assert*` family lexes
/// as distinct idents, so it is exempt by construction.
const BANNED_RELEASE_ASSERTS: [&str; 5] =
    ["assert", "assert_eq", "assert_ne", "panic", "unreachable"];

/// Run `rule` over a lexed file. `in_test[i]` marks tokens inside
/// `#[cfg(test)]` regions (see [`crate::lexer::mark_test_regions`]).
pub fn check(rule: RuleId, lexed: &LexOutput, in_test: &[bool]) -> Vec<Violation> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if rule.skips_test_code() && in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        match rule {
            RuleId::R1 => {
                if let Some(id) = tok.ident() {
                    if BANNED_COLLECTIONS.contains(&id) {
                        out.push(violation(rule, tok, id));
                    }
                }
            }
            RuleId::R2 => {
                if let Some(id) = tok.ident() {
                    if BANNED_ENTROPY.contains(&id) {
                        out.push(violation(rule, tok, id));
                    }
                }
            }
            RuleId::R3 => match &tok.kind {
                TokKind::Ident(id) if BANNED_FLOAT_TYPES.contains(&id.as_str()) => {
                    out.push(violation(rule, tok, id));
                }
                TokKind::Num { float: true } => {
                    out.push(violation(rule, tok, "float literal"));
                }
                _ => {}
            },
            RuleId::R4 => {
                if let Some(id) = tok.ident() {
                    if BANNED_PANICS.contains(&id)
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                        && i > 0
                        && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'))
                    {
                        out.push(violation(rule, tok, id));
                    }
                }
            }
            RuleId::R5 => {
                if let Some(id) = tok.ident() {
                    if BANNED_RELEASE_ASSERTS.contains(&id)
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                    {
                        out.push(violation(rule, tok, id));
                    }
                }
            }
        }
    }
    out
}

/// Which source line each own-line pragma suppresses: the first code line
/// after it. Returns `(pragma_index, suppressed_line)` pairs for all
/// well-formed pragmas.
pub fn pragma_targets(lexed: &LexOutput) -> Vec<(usize, u32)> {
    lexed
        .pragmas
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.malformed && p.reason.is_some())
        .map(|(i, p)| {
            let target = if p.own_line {
                lexed
                    .tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > p.line)
                    .unwrap_or(p.line)
            } else {
                p.line
            };
            (i, target)
        })
        .collect()
}

/// Does some pragma suppress `v`? (Pragma must name the rule and carry a
/// reason; an own-line pragma covers the next code line.)
pub fn suppressed(v: &Violation, lexed: &LexOutput, targets: &[(usize, u32)]) -> bool {
    targets.iter().any(|&(i, line)| {
        line == v.line
            && lexed.pragmas[i]
                .rules
                .iter()
                .any(|r| RuleId::from_alias(r) == Some(v.rule))
    })
}

/// Diagnostics for the pragmas themselves: malformed syntax, unknown rule
/// names, and missing `reason=` are hard errors — a suppression that
/// silently fails to apply (or applies without justification) is worse
/// than no suppression at all.
pub fn pragma_problems(pragmas: &[Pragma]) -> Vec<(u32, u32, String)> {
    let mut out = Vec::new();
    for p in pragmas {
        if p.malformed {
            out.push((
                p.line,
                p.col,
                "malformed lint pragma; expected `// lint: allow(rule, …, reason=…)`".into(),
            ));
            continue;
        }
        if p.rules.is_empty() {
            out.push((p.line, p.col, "lint pragma names no rules".into()));
        }
        for r in &p.rules {
            if RuleId::from_alias(r).is_none() {
                out.push((p.line, p.col, format!("lint pragma names unknown rule `{r}`")));
            }
        }
        if p.reason.as_deref().unwrap_or("").is_empty() {
            out.push((
                p.line,
                p.col,
                "lint pragma is missing a non-empty `reason=…`".into(),
            ));
        }
    }
    out
}
