//! The interprocedural pass: evaluates the call-graph rules (R4
//! panic-reachability, R3 digest-taint, R6 rng-stream-discipline) over a
//! set of lexed+parsed files and the [`CallGraph`] built from them. The
//! token-level site detectors live in [`crate::rules`]; this module decides
//! which sites are violations by reachability, and attaches the
//! interprocedural context (example call paths, owning streams) that makes
//! the diagnostics actionable.

use crate::callgraph::{self, CallGraph, CrateDeps};
use crate::config::LintConfig;
use crate::lexer::{self, LexOutput};
use crate::rules::{self, RuleId, Violation};
use crate::syntax::{self, Call, FileSyntax};
use std::collections::BTreeMap;

/// One source file, lexed and parsed — the unit the analyses share.
pub struct FileData {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    pub source: String,
    pub lexed: LexOutput,
    pub in_test: Vec<bool>,
    pub syntax: FileSyntax,
}

/// Lex, test-mark, and item-parse one file.
pub fn load(rel: String, source: String) -> FileData {
    let lexed = lexer::lex(&source);
    let in_test = lexer::mark_test_regions(&lexed.tokens);
    let syntax = syntax::parse(&lexed.tokens, &in_test);
    FileData {
        rel,
        source,
        lexed,
        in_test,
        syntax,
    }
}

/// Build the workspace call graph over the loaded files.
pub fn build_graph(files: &[FileData], deps: Option<&CrateDeps>) -> CallGraph {
    let units: Vec<(String, &FileSyntax, Vec<Vec<Call>>)> = files
        .iter()
        .map(|f| {
            let calls = f
                .syntax
                .fns
                .iter()
                .map(|d| syntax::calls_in(&f.lexed.tokens, d.body))
                .collect();
            (f.rel.clone(), &f.syntax, calls)
        })
        .collect();
    CallGraph::build(&units, deps)
}

/// Run every graph rule whose table is present in `cfg`. Returns
/// `(file_index, violation)` pairs, unsuppressed — pragma filtering happens
/// in [`crate::lint_unit`] where the per-file pragma targets live.
pub fn graph_violations(
    files: &[FileData],
    graph: &CallGraph,
    cfg: &LintConfig,
) -> Vec<(usize, Violation)> {
    let by_path: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(ix, f)| (f.rel.as_str(), ix))
        .collect();
    let mut out = Vec::new();
    panic_reachability(files, graph, cfg, &by_path, &mut out);
    digest_taint(files, graph, cfg, &by_path, &mut out);
    stream_discipline(files, graph, cfg, &mut out);
    out
}

/// R4: `unwrap`/`expect` in any function reachable from the configured
/// roots (`Simulation::run`) or any implementation of a root trait
/// (`Protocol`). Unlike the old path-scoped check this follows calls across
/// files and crates, so a helper in `asap-bloom` that the engine reaches is
/// flagged even though `asap-bloom` never appears in a `paths` list.
fn panic_reachability(
    files: &[FileData],
    graph: &CallGraph,
    cfg: &LintConfig,
    by_path: &BTreeMap<&str, usize>,
    out: &mut Vec<(usize, Violation)>,
) {
    if cfg.scope(RuleId::R4).is_none() {
        return;
    }
    let mut roots: Vec<usize> = Vec::new();
    for p in &cfg.panic_roots {
        roots.extend(graph.match_pattern(p));
    }
    for t in &cfg.panic_root_traits {
        roots.extend(graph.trait_impl_methods(t));
    }
    roots.sort_unstable();
    roots.dedup();
    if roots.is_empty() {
        return;
    }
    let seen = graph.reach(&roots, |_| false);
    for (ix, node) in graph.nodes.iter().enumerate() {
        if !seen[ix] || cfg.file_allowed(RuleId::R4, &node.file) {
            continue;
        }
        let Some(&fix) = by_path.get(node.file.as_str()) else {
            continue;
        };
        let f = &files[fix];
        let sites = rules::panic_sites(&f.lexed, &f.in_test, node.def.body);
        if sites.is_empty() {
            continue;
        }
        let note = graph
            .example_path(&roots, ix)
            .map(|p| format!("reachable via {}", p.join(" → ")));
        for mut v in sites {
            v.note.clone_from(&note);
            out.push((fix, v));
        }
    }
}

/// R3 (interprocedural face): any function *reachable from* a digest or
/// event-ordering sink — i.e. anything the digest computation transitively
/// calls, across crate boundaries — may not contain floats, wall clocks,
/// or RandomState. Files already covered by R3's direct `paths` scope are
/// skipped (the token check reports every float there); the taint pass
/// extends coverage to the helpers those files call in crates the `paths`
/// list never mentions (asap-overlay graph queries under `check_overlay`,
/// asap-bloom filter reads under the digest, …). `[[allow]]` entries do
/// not apply here: an allowlisted float module must never become a digest
/// callee.
fn digest_taint(
    files: &[FileData],
    graph: &CallGraph,
    cfg: &LintConfig,
    by_path: &BTreeMap<&str, usize>,
    out: &mut Vec<(usize, Violation)>,
) {
    let Some(direct_scope) = cfg.scope(RuleId::R3) else {
        return;
    };
    let mut sinks: Vec<usize> = Vec::new();
    for p in &cfg.taint_sinks {
        sinks.extend(graph.match_pattern(p));
    }
    sinks.sort_unstable();
    sinks.dedup();
    if sinks.is_empty() {
        return;
    }
    // The digest path: the sinks plus everything they transitively call.
    let fwd = graph.reach(&sinks, |_| false);
    let is_sink = |ix: usize| sinks.binary_search(&ix).is_ok();
    for (ix, node) in graph.nodes.iter().enumerate() {
        if !fwd[ix] || direct_scope.covers(&node.file) {
            continue;
        }
        let Some(&fix) = by_path.get(node.file.as_str()) else {
            continue;
        };
        let f = &files[fix];
        let sites = rules::taint_sites(&f.lexed, &f.in_test, node.def.body);
        if sites.is_empty() {
            continue;
        }
        let note = if is_sink(ix) {
            Some(format!("`{}` is a configured digest sink", node.def.qual_name()))
        } else {
            graph
                .example_path(&sinks, ix)
                .map(|p| format!("on the digest path via {}", p.join(" → ")))
        };
        for mut v in sites {
            v.note.clone_from(&note);
            out.push((fix, v));
        }
    }
}

/// R6: the per-file registry checks from [`rules::check_streams`] over
/// every production file in scope, with unsalted-seed findings annotated by
/// the subsystem stream(s) whose owner functions reach the offending
/// function (boundary-stopped: a stream's closure does not extend through
/// another stream's owner files).
fn stream_discipline(
    files: &[FileData],
    graph: &CallGraph,
    cfg: &LintConfig,
    out: &mut Vec<(usize, Violation)>,
) {
    let Some(scope) = cfg.scope(RuleId::R6) else {
        return;
    };
    // Per-stream boundary-stopped reachability.
    let owned_by_other = |stream: &str, file: &str| {
        cfg.stream_of(file).is_some_and(|s| s.name != stream)
    };
    let stream_reach: Vec<(&str, Vec<bool>)> = cfg
        .streams
        .iter()
        .map(|s| {
            let roots: Vec<usize> = graph
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| s.owns(&n.file))
                .map(|(ix, _)| ix)
                .collect();
            let seen = graph.reach(&roots, |n| owned_by_other(&s.name, &graph.nodes[n].file));
            (s.name.as_str(), seen)
        })
        .collect();
    for (fix, f) in files.iter().enumerate() {
        if !scope.covers(&f.rel)
            || !callgraph::is_production_path(&f.rel)
            || cfg.file_allowed(RuleId::R6, &f.rel)
        {
            continue;
        }
        for mut v in rules::check_streams(&f.lexed, &f.in_test, &f.rel, cfg) {
            if v.note.is_none() {
                // Unsalted seed: name the subsystem(s) this function serves.
                if let Some(node) = enclosing_node(graph, &f.rel, &f.lexed, v.line, v.col) {
                    let reaching: Vec<&str> = stream_reach
                        .iter()
                        .filter(|(name, seen)| {
                            seen[node] && cfg.stream_of(&f.rel).is_none_or(|s| s.name != *name)
                        })
                        .map(|(name, _)| *name)
                        .collect();
                    if !reaching.is_empty() {
                        v.note = Some(format!(
                            "on a call path from stream(s): {}",
                            reaching.join(", ")
                        ));
                    }
                }
            }
            out.push((fix, v));
        }
    }
}

/// The graph node whose body contains the token at `(line, col)` in `rel`.
fn enclosing_node(
    graph: &CallGraph,
    rel: &str,
    lexed: &LexOutput,
    line: u32,
    col: u32,
) -> Option<usize> {
    let tok_ix = lexed
        .tokens
        .iter()
        .position(|t| t.line == line && t.col == col)?;
    graph
        .nodes
        .iter()
        .position(|n| n.file == rel && n.def.body.0 <= tok_ix && tok_ix < n.def.body.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(files: &[(&str, &str)], toml: &str) -> (Vec<FileData>, CallGraph, LintConfig) {
        let cfg = LintConfig::parse(toml).expect("config parses");
        let data: Vec<FileData> = files
            .iter()
            .map(|(p, s)| load(p.to_string(), s.to_string()))
            .collect();
        let graph = build_graph(&data, None);
        (data, graph, cfg)
    }

    #[test]
    fn panic_reachability_crosses_files() {
        let (files, graph, cfg) = unit(
            &[
                (
                    "a.rs",
                    "pub struct Sim; impl Sim { pub fn run(&mut self) { helper(); } }",
                ),
                ("b.rs", "pub fn helper() { maybe().unwrap(); }\nfn maybe() -> Option<u32> { None }"),
                ("c.rs", "pub fn island() { nothing().unwrap(); }\nfn nothing() -> Option<u32> { None }"),
            ],
            "[rules.panic_reachability]\nroots = [\"Sim::run\"]\n",
        );
        let v = graph_violations(&files, &graph, &cfg);
        assert_eq!(v.len(), 1, "only the reachable unwrap: {v:?}");
        assert_eq!(files[v[0].0].rel, "b.rs");
        assert_eq!(v[0].1.rule, RuleId::R4);
        let note = v[0].1.note.as_deref().expect("has a path note");
        assert!(note.contains("Sim::run"), "note names the root: {note}");
    }

    #[test]
    fn digest_taint_covers_the_sink_callee_closure() {
        let (files, graph, cfg) = unit(
            &[
                (
                    "digest.rs",
                    "pub struct Fnv64; impl Fnv64 { pub fn write(&mut self, b: u64) { mix(b) } }",
                ),
                ("mixer.rs", "pub fn mix(b: u64) { let _scale = 0.5; }"),
                ("far.rs", "pub fn unrelated() { let _x = 1.25; }"),
            ],
            "[rules.digest_taint]\npaths = [\"never/\"]\nsinks = [\"Fnv64::*\"]\n",
        );
        let v = graph_violations(&files, &graph, &cfg);
        let flagged: Vec<&str> = v.iter().map(|(fix, _)| files[*fix].rel.as_str()).collect();
        assert_eq!(flagged, vec!["mixer.rs"], "sink callee flagged, off-path float ignored");
        let note = v[0].1.note.as_deref().expect("has a path note");
        assert!(note.contains("Fnv64::write"), "note names the sink: {note}");
    }

    #[test]
    fn stream_notes_name_the_reaching_subsystem() {
        let (files, graph, cfg) = unit(
            &[
                (
                    "crates/asap-sim/src/fault.rs",
                    "pub fn fault_tick() { reseed(7); }",
                ),
                (
                    "crates/asap-sim/src/util.rs",
                    "pub fn reseed(s: u64) { let _r = SmallRng::seed_from_u64(s); }",
                ),
            ],
            "[rules.rng_stream_discipline]\ncrates = [\"asap-sim\"]\n\
             [streams.fault]\nconsts = [\"FAULT_STREAM_SALT\"]\n\
             owners = [\"crates/asap-sim/src/fault.rs\"]\n",
        );
        let v = graph_violations(&files, &graph, &cfg);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].1.rule, RuleId::R6);
        let note = v[0].1.note.as_deref().expect("annotated");
        assert!(note.contains("fault"), "note names the stream: {note}");
    }
}
