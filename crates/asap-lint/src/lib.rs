//! `asap-lint`: repo-specific determinism & safety static analysis.
//!
//! The ASAP evaluation is a deterministic trace-driven simulation whose
//! replay digests are pinned in `crates/asap-bench/golden/`. Those digests
//! catch nondeterminism only *after* it ships; this tool rejects it at
//! analysis time. Run as `cargo lint` (alias in `.cargo/config.toml`);
//! scoping lives in `lint.toml` at the workspace root. Rules:
//!
//! * **R1 `det-collections`** — no `std::collections::HashMap`/`HashSet`
//!   (RandomState-seeded) in simulation-facing crates; use the fixed-seed
//!   `DetHashMap`/`DetHashSet` aliases or `BTreeMap`/`BTreeSet`.
//! * **R2 `ambient-entropy`** — no `SystemTime`/`Instant`/`thread_rng`/
//!   `from_entropy` outside `asap-bench`.
//! * **R3 `float-arith`** — no `f32`/`f64` or float literals in digest- or
//!   event-ordering paths (the metrics summary layer is allowlisted).
//! * **R4 `unwrap`** — no `unwrap()`/`expect()` in non-test code reachable
//!   from `Simulation::run`; justify survivors with
//!   `// lint: allow(unwrap, reason=…)`.
//! * **R5 `release-assert`** — no release-mode `assert!`/`assert_eq!`/
//!   `assert_ne!`/`panic!`/`unreachable!` in the per-event dispatch files;
//!   prove invariants at construction time and keep hot-path checks as
//!   `debug_assert!` (exempt by construction), or justify with
//!   `// lint: allow(release-assert, reason=…)`.
//!
//! Everything is deny-by-default: any violation (or broken pragma) makes
//! the binary exit nonzero.

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{AllowEntry, LintConfig, RuleScope};
pub use rules::{RuleId, ALL_RULES};

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A rendered finding with its span and rule metadata.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub width: usize,
    /// `R1`…`R5`, or `P0` for pragma problems.
    pub rule_id: &'static str,
    pub rule_name: &'static str,
    pub summary: String,
    pub help: Option<&'static str>,
}

impl Diagnostic {
    /// Render in rustc style, with the offending source line and a caret
    /// span when `source` is provided.
    pub fn render(&self, source: Option<&str>) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "error[{}/{}]: {}",
            self.rule_id, self.rule_name, self.summary
        );
        let _ = writeln!(out, "  --> {}:{}:{}", self.path, self.line, self.col);
        if let Some(text) = source.and_then(|s| s.lines().nth(self.line as usize - 1)) {
            let gutter = self.line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(out, "{pad} |");
            let _ = writeln!(out, "{gutter} | {text}");
            let caret_pad = " ".repeat(self.col.saturating_sub(1) as usize);
            let carets = "^".repeat(self.width.max(1));
            let _ = writeln!(out, "{pad} | {caret_pad}{carets}");
        }
        if let Some(help) = self.help {
            let _ = writeln!(out, "  = help: {help}");
        }
        out
    }
}

/// Lint one file's source text against every rule `cfg` puts in scope for
/// `rel_path`. This is the unit the fixture tests drive directly.
pub fn lint_source(rel_path: &str, source: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
    let applicable: Vec<RuleId> = ALL_RULES
        .iter()
        .copied()
        .filter(|&r| cfg.scope(r).is_some_and(|s| s.covers(rel_path)))
        .filter(|&r| !cfg.file_allowed(r, rel_path))
        .collect();
    if applicable.is_empty() {
        return Vec::new();
    }
    let lexed = lexer::lex(source);
    let in_test = lexer::mark_test_regions(&lexed.tokens);
    let targets = rules::pragma_targets(&lexed);
    let mut out = Vec::new();
    for (line, col, summary) in rules::pragma_problems(&lexed.pragmas) {
        out.push(Diagnostic {
            path: rel_path.to_string(),
            line,
            col,
            width: 2,
            rule_id: "P0",
            rule_name: "pragma",
            summary,
            help: None,
        });
    }
    for rule in applicable {
        for v in rules::check(rule, &lexed, &in_test) {
            if rules::suppressed(&v, &lexed, &targets) {
                continue;
            }
            out.push(Diagnostic {
                path: rel_path.to_string(),
                line: v.line,
                col: v.col,
                width: v.width,
                rule_id: rule.id(),
                rule_name: rule.name(),
                summary: rule.summary(&v.found),
                help: Some(rule.help()),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule_id).cmp(&(b.line, b.col, b.rule_id)));
    out
}

/// Outcome of a workspace run.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
    /// (rel_path, rendered) pairs, ready to print.
    pub rendered: Vec<String>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Directories never descended into: build products, vendored third-party
/// shims (not ours to lint), VCS metadata, experiment output, and the
/// linter's own intentionally-violating test fixtures.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "results", "fixtures"];

/// Collect every `.rs` file under `root`, workspace-relative, sorted.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint the whole workspace rooted at `root` with `cfg`.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in collect_rust_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        let diags = lint_source(&rel, &source, cfg);
        report.files_scanned += 1;
        for d in &diags {
            report.rendered.push(d.render(Some(&source)));
        }
        report.diagnostics.extend(diags);
    }
    Ok(report)
}

/// Locate the workspace root: the nearest ancestor of `start` containing
/// `lint.toml`. Falls back to the compile-time manifest's grandparent so
/// `cargo run -p asap-lint` works from anywhere inside the repo.
pub fn find_root(start: &Path) -> PathBuf {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("lint.toml").is_file() {
            return d.to_path_buf();
        }
        dir = d.parent();
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| Path::new("."))
        .to_path_buf()
}
