//! `asap-lint`: repo-specific determinism & safety static analysis.
//!
//! The ASAP evaluation is a deterministic trace-driven simulation whose
//! replay digests are pinned in `crates/asap-bench/golden/`. Those digests
//! catch nondeterminism only *after* it ships; this tool rejects it at
//! analysis time. Run as `cargo lint` (alias in `.cargo/config.toml`);
//! scoping lives in `lint.toml` at the workspace root.
//!
//! The analyzer works in two layers. A token layer (lexer + per-file
//! pattern checks) drives the local rules; a syntax layer
//! ([`syntax`] item extraction over the same tokens) feeds a
//! workspace-wide call graph ([`callgraph`]) that drives the
//! interprocedural rules ([`analysis`]). Rules:
//!
//! * **R1 `det-collections`** — no `std::collections::HashMap`/`HashSet`
//!   (RandomState-seeded) in simulation-facing crates; use the fixed-seed
//!   `DetHashMap`/`DetHashSet` aliases or `BTreeMap`/`BTreeSet`.
//! * **R2 `ambient-entropy`** — no `SystemTime`/`Instant`/`thread_rng`/
//!   `from_entropy` outside `asap-bench`.
//! * **R3 `digest-taint`** — no floats on the configured digest-path
//!   files, and *interprocedurally*: no floats/clocks/RandomState in any
//!   function reachable from a digest/event-ordering sink (`sinks` in
//!   `lint.toml`) — anything the digest computation calls, wherever it
//!   lives.
//! * **R4 `panic-reachability`** — no `unwrap()`/`expect()` in non-test
//!   code reachable (through the call graph, across crates) from
//!   `Simulation::run` or any `Protocol` implementation; justify survivors
//!   with `// lint: allow(panic-reachability, reason=…)`.
//! * **R5 `release-assert`** — no release-mode `assert!`/`assert_eq!`/
//!   `assert_ne!`/`panic!`/`unreachable!` in the per-event dispatch files;
//!   prove invariants at construction time and keep hot-path checks as
//!   `debug_assert!` (exempt by construction), or justify with
//!   `// lint: allow(release-assert, reason=…)`.
//! * **R6 `rng-stream-discipline`** — every subsystem draws only from its
//!   own salted RNG stream: registered salts (`[streams.*]` in
//!   `lint.toml`) may not appear outside their owner files, and every
//!   `seed_from_u64` must mix in a registered salt.
//!
//! Everything is deny-by-default: any violation (or broken pragma) makes
//! the binary exit nonzero. Pragma problems (`P0`) are reported for every
//! scanned file, even ones no rule is scoped to.

pub mod analysis;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod syntax;

pub use config::{AllowEntry, LintConfig, RuleScope, StreamDef};
pub use rules::{RuleId, ALL_RULES};

use callgraph::CallGraph;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A rendered finding with its span and rule metadata.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub width: usize,
    /// `R1`…`R6`, or `P0` for pragma problems.
    pub rule_id: &'static str,
    pub rule_name: &'static str,
    pub summary: String,
    /// Interprocedural context: an example call path, the owning stream….
    pub note: Option<String>,
    pub help: Option<&'static str>,
}

impl Diagnostic {
    /// Render in rustc style, with the offending source line and a caret
    /// span when `source` is provided.
    pub fn render(&self, source: Option<&str>) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "error[{}/{}]: {}",
            self.rule_id, self.rule_name, self.summary
        );
        let _ = writeln!(out, "  --> {}:{}:{}", self.path, self.line, self.col);
        if let Some(text) = source.and_then(|s| s.lines().nth(self.line as usize - 1)) {
            let gutter = self.line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(out, "{pad} |");
            let _ = writeln!(out, "{gutter} | {text}");
            let caret_pad = " ".repeat(self.col.saturating_sub(1) as usize);
            let carets = "^".repeat(self.width.max(1));
            let _ = writeln!(out, "{pad} | {caret_pad}{carets}");
        }
        if let Some(note) = &self.note {
            let _ = writeln!(out, "  = note: {note}");
        }
        if let Some(help) = self.help {
            let _ = writeln!(out, "  = help: {help}");
        }
        out
    }

    /// One-line GitHub Actions workflow command (`::error …::…`) so the CI
    /// lint job surfaces findings as inline PR annotations.
    pub fn github_annotation(&self) -> String {
        let mut message = self.summary.clone();
        if let Some(note) = &self.note {
            message.push_str(" — ");
            message.push_str(note);
        }
        format!(
            "::error file={},line={},col={},title={} {}::{}",
            gh_property(&self.path),
            self.line,
            self.col,
            self.rule_id,
            gh_property(self.rule_name),
            gh_message(&message),
        )
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"path\":{},\"line\":{},\"col\":{},\"rule_id\":{},\"rule\":{},\"summary\":{}",
            json_string(&self.path),
            self.line,
            self.col,
            json_string(self.rule_id),
            json_string(self.rule_name),
            json_string(&self.summary),
        );
        if let Some(note) = &self.note {
            let _ = write!(out, ",\"note\":{}", json_string(note));
        }
        if let Some(help) = self.help {
            let _ = write!(out, ",\"help\":{}", json_string(help));
        }
        out.push('}');
        out
    }
}

/// Escape a GitHub workflow-command message (data portion).
fn gh_message(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escape a GitHub workflow-command property (before the `::`).
fn gh_property(s: &str) -> String {
    gh_message(s).replace(':', "%3A").replace(',', "%2C")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The full outcome of linting one unit (one file or the whole workspace):
/// diagnostics plus the call graph they were judged against.
pub struct UnitOutcome {
    pub files: Vec<analysis::FileData>,
    pub diagnostics: Vec<Diagnostic>,
    pub graph: CallGraph,
}

/// Lint a set of files as one unit: token rules per file, then the
/// interprocedural rules over the call graph built from *all* of them.
/// `deps` (the crate dependency closure) bounds cross-crate resolution;
/// `None` lets every name resolve everywhere (fixture units).
pub fn lint_unit(
    inputs: Vec<(String, String)>,
    cfg: &LintConfig,
    deps: Option<&callgraph::CrateDeps>,
) -> UnitOutcome {
    let files: Vec<analysis::FileData> = inputs
        .into_iter()
        .map(|(rel, source)| analysis::load(rel, source))
        .collect();
    let graph = analysis::build_graph(&files, deps);

    // (file index, violation) from both layers, then shared suppression.
    let mut violations: Vec<(usize, rules::Violation)> = Vec::new();
    for (fix, f) in files.iter().enumerate() {
        for rule in ALL_RULES {
            if cfg.scope(rule).is_some_and(|s| s.covers(&f.rel))
                && !cfg.file_allowed(rule, &f.rel)
            {
                violations.extend(
                    rules::check(rule, &f.lexed, &f.in_test)
                        .into_iter()
                        .map(|v| (fix, v)),
                );
            }
        }
    }
    violations.extend(analysis::graph_violations(&files, &graph, cfg));

    let mut diagnostics = Vec::new();
    for (fix, f) in files.iter().enumerate() {
        // Pragma problems are hard errors on every file — including files
        // no rule is scoped to, so a typo'd suppression can never sit
        // silently in the tree.
        for (line, col, summary) in pragma::problems(&f.lexed.pragmas) {
            diagnostics.push(Diagnostic {
                path: f.rel.clone(),
                line,
                col,
                width: 2,
                rule_id: "P0",
                rule_name: "pragma",
                summary,
                note: None,
                help: None,
            });
        }
        let targets = pragma::targets(&f.lexed);
        for (vfix, v) in &violations {
            if *vfix != fix || pragma::suppresses(v.rule, v.line, &f.lexed, &targets) {
                continue;
            }
            diagnostics.push(Diagnostic {
                path: f.rel.clone(),
                line: v.line,
                col: v.col,
                width: v.width,
                rule_id: v.rule.id(),
                rule_name: v.rule.name(),
                summary: v.rule.summary(&v.found),
                note: v.note.clone(),
                help: Some(v.rule.help()),
            });
        }
    }
    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule_id).cmp(&(b.path.as_str(), b.line, b.col, b.rule_id))
    });
    diagnostics.dedup_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule_id) == (b.path.as_str(), b.line, b.col, b.rule_id)
    });
    UnitOutcome {
        files,
        diagnostics,
        graph,
    }
}

/// Lint one file's source text. This is the unit the fixture tests drive
/// directly; the call graph is built from just this file.
pub fn lint_source(rel_path: &str, source: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
    lint_unit(vec![(rel_path.to_string(), source.to_string())], cfg, None).diagnostics
}

/// Outcome of a workspace run.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
    /// Rendered text, aligned index-for-index with `diagnostics`.
    pub rendered: Vec<String>,
    /// Per-crate `(functions, edges)` call-graph summary.
    pub graph_summary: BTreeMap<String, (usize, usize)>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable report: findings plus the call-graph summary. This
    /// is what `cargo lint --format json` prints and what the CI annotation
    /// step consumes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"files_scanned\":{}", self.files_scanned);
        out.push_str(",\"graph\":{");
        for (i, (krate, (fns, edges))) in self.graph_summary.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"functions\":{fns},\"edges\":{edges}}}",
                json_string(krate)
            );
        }
        out.push_str("},\"findings\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Directories never descended into: build products, vendored third-party
/// shims (not ours to lint), VCS metadata, experiment output, and the
/// linter's own intentionally-violating test fixtures.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "results", "fixtures"];

/// Collect every `.rs` file under `root`, workspace-relative, sorted.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint the whole workspace rooted at `root` with `cfg`: every `.rs` file
/// becomes one unit, so the interprocedural rules see the complete
/// first-party call graph (bounded by the crate dependency DAG parsed from
/// the `Cargo.toml` manifests).
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> std::io::Result<Report> {
    let mut inputs = Vec::new();
    for path in collect_rust_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push((rel, std::fs::read_to_string(&path)?));
    }
    let deps = callgraph::parse_crate_deps(root);
    let outcome = lint_unit(inputs, cfg, Some(&deps));
    let sources: BTreeMap<&str, &str> = outcome
        .files
        .iter()
        .map(|f| (f.rel.as_str(), f.source.as_str()))
        .collect();
    let rendered = outcome
        .diagnostics
        .iter()
        .map(|d| d.render(sources.get(d.path.as_str()).copied()))
        .collect();
    Ok(Report {
        files_scanned: outcome.files.len(),
        diagnostics: outcome.diagnostics,
        rendered,
        graph_summary: outcome.graph.summary(),
    })
}

/// Locate the workspace root: the nearest ancestor of `start` containing
/// `lint.toml`. Falls back to the compile-time manifest's grandparent so
/// `cargo run -p asap-lint` works from anywhere inside the repo.
pub fn find_root(start: &Path) -> PathBuf {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("lint.toml").is_file() {
            return d.to_path_buf();
        }
        dir = d.parent();
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| Path::new("."))
        .to_path_buf()
}
