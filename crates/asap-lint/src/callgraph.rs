//! The workspace call graph: one node per (non-test, production) function
//! definition, edges by name-based resolution of the call sites the syntax
//! layer extracts, filtered through the crate dependency DAG so a call in
//! `asap-sim` can never resolve into a crate that `asap-sim` does not
//! depend on. This is what makes the interprocedural rules (R4
//! panic-reachability, R3 digest-taint, R6 stream discipline) *workspace*
//! analyses instead of per-file pattern scans.
//!
//! Resolution is a deliberate over-approximation of the real call relation:
//!
//! * `.name(…)` method calls resolve to **every** visible impl method named
//!   `name` (no receiver types without rustc). Extra edges only ever grow
//!   reachable sets, so the reachability rules stay conservative.
//! * `Qual::name(…)` resolves to methods of impls of `Qual` when any exist,
//!   else (a module-path qualifier) to any visible *free* function named
//!   `name` — never to methods, so `Vec::new()` cannot edge into every
//!   first-party `new`.
//! * `name(…)` resolves to visible free functions named `name`.
//!
//! Test code (`#[cfg(test)]` regions, `tests/`, `benches/`, `examples/`)
//! contributes no nodes: the graph models what can execute in production.

use crate::syntax::{Call, FileSyntax, FnDef};
use std::collections::{BTreeMap, BTreeSet};

/// A function node: where it lives plus its parsed definition.
#[derive(Debug)]
pub struct FnNode {
    /// Workspace-relative file path, `/`-separated.
    pub file: String,
    /// Owning crate (`asap-sim`, …; `asap-p2p` for the root `src/`).
    pub krate: String,
    pub def: FnDef,
}

/// Crate dependency closure: `visible["asap-sim"]` contains `asap-sim`
/// itself and every crate it (transitively) depends on. `None` disables
/// filtering (single-unit fixture graphs).
pub type CrateDeps = BTreeMap<String, BTreeSet<String>>;

#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[caller]` → callee node indices, deduplicated.
    pub edges: Vec<Vec<usize>>,
    /// Trait name → implementing/default method node indices.
    trait_methods: BTreeMap<String, Vec<usize>>,
}

/// Which crate a workspace-relative path belongs to.
pub fn crate_of(rel_path: &str) -> String {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    if rel_path.starts_with("src/") {
        return "asap-p2p".to_string();
    }
    if rel_path.starts_with("xtask/") {
        return "xtask".to_string();
    }
    // Fixture paths and anything unrecognized share one pseudo-crate, which
    // the dependency filter treats as seeing everything.
    "(unit)".to_string()
}

/// Is this file part of the production build — i.e. does it contribute
/// call-graph nodes? (Unit tests inside `src/` files are excluded per-fn
/// via `FnDef::is_test`.)
pub fn is_production_path(rel_path: &str) -> bool {
    !(rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
        || rel_path.contains("/examples/")
        || rel_path.starts_with("tests/")
        || rel_path.starts_with("benches/")
        || rel_path.starts_with("examples/"))
}

impl CallGraph {
    /// Build the graph over `(rel_path, syntax, calls_per_fn)` units.
    /// `calls[k][j]` are the call sites of `files[k]`'s `j`-th fn.
    pub fn build(
        files: &[(String, &FileSyntax, Vec<Vec<Call>>)],
        deps: Option<&CrateDeps>,
    ) -> CallGraph {
        let mut g = CallGraph::default();
        let mut node_calls: Vec<Vec<Call>> = Vec::new();
        for (path, syntax, calls) in files {
            if !is_production_path(path) {
                continue;
            }
            let krate = crate_of(path);
            for (j, def) in syntax.fns.iter().enumerate() {
                if def.is_test {
                    continue;
                }
                if let Some(tr) = &def.trait_name {
                    g.trait_methods
                        .entry(tr.clone())
                        .or_default()
                        .push(g.nodes.len());
                }
                g.nodes.push(FnNode {
                    file: path.clone(),
                    krate: krate.clone(),
                    def: def.clone(),
                });
                node_calls.push(calls.get(j).cloned().unwrap_or_default());
            }
        }

        // Name indexes over the nodes.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut frees: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (ix, n) in g.nodes.iter().enumerate() {
            match &n.def.self_ty {
                Some(ty) => {
                    methods.entry(&n.def.name).or_default().push(ix);
                    typed.entry((ty, &n.def.name)).or_default().push(ix);
                }
                None => {
                    if n.def.trait_name.is_some() {
                        // Trait default method: callable as a method.
                        methods.entry(&n.def.name).or_default().push(ix);
                    } else {
                        frees.entry(&n.def.name).or_default().push(ix);
                    }
                }
            }
        }

        let visible = |caller: usize, callee: usize| -> bool {
            let Some(deps) = deps else { return true };
            let from = &g.nodes[caller].krate;
            let to = &g.nodes[callee].krate;
            from == to
                || from == "(unit)"
                || deps.get(from).is_some_and(|set| set.contains(to))
        };

        g.edges = vec![Vec::new(); g.nodes.len()];
        for (caller, calls) in node_calls.iter().enumerate() {
            let mut targets: BTreeSet<usize> = BTreeSet::new();
            for call in calls {
                match call {
                    Call::Method(name) => {
                        if let Some(v) = methods.get(name.as_str()) {
                            targets.extend(v.iter().copied());
                        }
                    }
                    Call::Path(qual, name) => {
                        let self_qual = qual == "Self";
                        let resolved = if self_qual {
                            g.nodes[caller]
                                .def
                                .self_ty
                                .as_deref()
                                .and_then(|ty| typed.get(&(ty, name.as_str())))
                        } else {
                            typed.get(&(qual.as_str(), name.as_str()))
                        };
                        if let Some(v) = resolved {
                            targets.extend(v.iter().copied());
                        } else if !self_qual {
                            // Module-path qualifier: fall back to free fns.
                            // Deliberately NOT to methods — `Vec::new()` /
                            // `SmallRng::seed_from_u64()` would otherwise
                            // edge into every first-party `new`/`seed…`
                            // method and drown the reachability rules.
                            // (Generic `T::method(x)` UFCS is the one shape
                            // this under-approximates; it does not occur on
                            // the simulation paths these rules guard.)
                            if let Some(v) = frees.get(name.as_str()) {
                                targets.extend(v.iter().copied());
                            }
                        }
                    }
                    Call::Free(name) => {
                        if let Some(v) = frees.get(name.as_str()) {
                            targets.extend(v.iter().copied());
                        }
                    }
                }
            }
            g.edges[caller] = targets
                .into_iter()
                .filter(|&t| visible(caller, t))
                .collect();
        }
        g
    }

    /// Nodes matching a `Type::name` / `Type::*` / bare-`name` pattern.
    pub fn match_pattern(&self, pattern: &str) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some((ty, name)) = pattern.split_once("::") {
            for (ix, n) in self.nodes.iter().enumerate() {
                let ty_matches = n.def.self_ty.as_deref() == Some(ty)
                    || (n.def.self_ty.is_none() && n.def.trait_name.as_deref() == Some(ty));
                if ty_matches && (name == "*" || n.def.name == name) {
                    out.push(ix);
                }
            }
        } else {
            for (ix, n) in self.nodes.iter().enumerate() {
                if n.def.name == pattern {
                    out.push(ix);
                }
            }
        }
        out
    }

    /// Every method node of every impl of `trait_name` (plus the trait's
    /// own default bodies).
    pub fn trait_impl_methods(&self, trait_name: &str) -> Vec<usize> {
        self.trait_methods
            .get(trait_name)
            .cloned()
            .unwrap_or_default()
    }

    /// Forward reachability (callee direction) from `roots`, inclusive.
    /// `stop(n)` halts expansion *through* a node: the node is still marked
    /// reachable, but its callees are not visited via it.
    pub fn reach(&self, roots: &[usize], stop: impl Fn(usize) -> bool) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = Vec::new();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                stack.push(r);
            }
        }
        while let Some(n) = stack.pop() {
            if stop(n) {
                continue;
            }
            for &m in &self.edges[n] {
                if !seen[m] {
                    seen[m] = true;
                    stack.push(m);
                }
            }
        }
        seen
    }

    /// One shortest call path `root → … → target` for diagnostics, as
    /// `Type::fn` segments. Roots are searched breadth-first so the message
    /// names a minimal chain.
    pub fn example_path(&self, roots: &[usize], target: usize) -> Option<Vec<String>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            if n == target {
                let mut path = vec![n];
                let mut cur = n;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(
                    path.into_iter()
                        .map(|ix| self.nodes[ix].def.qual_name())
                        .collect(),
                );
            }
            for &m in &self.edges[n] {
                if !seen[m] {
                    seen[m] = true;
                    parent[m] = Some(n);
                    queue.push_back(m);
                }
            }
        }
        None
    }

    /// Per-crate `(functions, edges)` summary — pinned by the
    /// `lint_selfcheck` test so analyzer regressions (lost nodes, resolution
    /// changes) are loud.
    pub fn summary(&self) -> BTreeMap<String, (usize, usize)> {
        let mut out: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for (ix, n) in self.nodes.iter().enumerate() {
            let e = out.entry(n.krate.clone()).or_default();
            e.0 += 1;
            e.1 += self.edges[ix].len();
        }
        out
    }
}

/// Parse the `asap-*` dependency sets out of every first-party crate
/// manifest under `root` (plus the root package itself), and close them
/// transitively. A line-oriented scan is enough: first-party deps appear as
/// `asap-foo.workspace = true` or `asap-foo = { … }` under a
/// `[dependencies]`/`[dev-dependencies]`/`[build-dependencies]` table.
pub fn parse_crate_deps(root: &std::path::Path) -> CrateDeps {
    let mut direct: CrateDeps = BTreeMap::new();
    let mut manifests: Vec<(String, std::path::PathBuf)> =
        vec![("asap-p2p".to_string(), root.join("Cargo.toml"))];
    let xtask = root.join("xtask/Cargo.toml");
    if xtask.is_file() {
        manifests.push(("xtask".to_string(), xtask));
    }
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().to_string();
            let manifest = entry.path().join("Cargo.toml");
            if manifest.is_file() {
                manifests.push((name, manifest));
            }
        }
    }
    for (name, manifest) in manifests {
        let text = std::fs::read_to_string(&manifest).unwrap_or_default();
        let mut in_deps = false;
        let mut set: BTreeSet<String> = BTreeSet::new();
        for line in text.lines() {
            let line = line.trim();
            if let Some(header) = line.strip_prefix('[') {
                in_deps = header.contains("dependencies");
                continue;
            }
            if !in_deps {
                continue;
            }
            if let Some((key, _)) = line.split_once('=') {
                let dep = key.trim().trim_end_matches(".workspace").trim();
                if dep.starts_with("asap-") {
                    set.insert(dep.to_string());
                }
            }
        }
        set.insert(name.clone());
        direct.insert(name, set);
    }
    // Transitive closure (the DAG is tiny; fixpoint iteration is fine).
    let mut changed = true;
    while changed {
        changed = false;
        let keys: Vec<String> = direct.keys().cloned().collect();
        for k in keys {
            let current = direct.get(&k).cloned().unwrap_or_default();
            let mut grown = current.clone();
            for dep in &current {
                if let Some(indirect) = direct.get(dep) {
                    grown.extend(indirect.iter().cloned());
                }
            }
            if grown.len() != current.len() {
                direct.insert(k, grown);
                changed = true;
            }
        }
    }
    direct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, mark_test_regions};
    use crate::syntax;

    fn build_unit(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<(String, FileSyntax, Vec<Vec<Call>>)> = files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let in_test = mark_test_regions(&lexed.tokens);
                let s = syntax::parse(&lexed.tokens, &in_test);
                let calls = s
                    .fns
                    .iter()
                    .map(|f| syntax::calls_in(&lexed.tokens, f.body))
                    .collect();
                (path.to_string(), s, calls)
            })
            .collect();
        let refs: Vec<(String, &FileSyntax, Vec<Vec<Call>>)> = parsed
            .iter()
            .map(|(p, s, c)| (p.clone(), s, c.clone()))
            .collect();
        CallGraph::build(&refs, None)
    }

    #[test]
    fn cross_file_edges_and_reachability() {
        let g = build_unit(&[
            ("a.rs", "pub fn entry() { helper(); }"),
            ("b.rs", "pub fn helper() { leaf(); } pub fn leaf() {} pub fn island() {}"),
        ]);
        let entry = g.match_pattern("entry")[0];
        let island = g.match_pattern("island")[0];
        let leaf = g.match_pattern("leaf")[0];
        let seen = g.reach(&[entry], |_| false);
        assert!(seen[leaf], "entry → helper → leaf");
        assert!(!seen[island], "island is unreachable");
        assert_eq!(
            g.example_path(&[entry], leaf).unwrap(),
            vec!["entry", "helper", "leaf"]
        );
    }

    #[test]
    fn trait_impl_methods_resolve_as_roots() {
        let g = build_unit(&[(
            "p.rs",
            "pub trait Protocol { fn on_query(&mut self); }\n\
             struct A; impl Protocol for A { fn on_query(&mut self) { deep() } }\n\
             fn deep() {}",
        )]);
        let roots = g.trait_impl_methods("Protocol");
        assert_eq!(roots.len(), 2, "declaration + impl");
        let deep = g.match_pattern("deep")[0];
        assert!(g.reach(&roots, |_| false)[deep]);
    }

    #[test]
    fn method_calls_over_approximate_but_respect_stop() {
        let g = build_unit(&[(
            "m.rs",
            "struct S; impl S { fn step(&self) { inner() } }\n\
             fn inner() {}\n\
             fn caller(s: &S) { s.step(); }",
        )]);
        let caller = g.match_pattern("caller")[0];
        let step = g.match_pattern("S::step")[0];
        let inner = g.match_pattern("inner")[0];
        let all = g.reach(&[caller], |_| false);
        assert!(all[step] && all[inner]);
        let stopped = g.reach(&[caller], |n| n == step);
        assert!(stopped[step], "stop nodes are included");
        assert!(!stopped[inner], "…but not expanded through");
    }

    #[test]
    fn tests_and_test_dirs_contribute_no_nodes() {
        let g = build_unit(&[
            ("src/a.rs", "#[cfg(test)] mod t { fn phantom() {} } fn real() {}"),
            ("crates/x/tests/it.rs", "fn integration_only() {}"),
        ]);
        let names: Vec<String> = g.nodes.iter().map(|n| n.def.qual_name()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn dependency_dag_filters_resolution() {
        let mut deps: CrateDeps = BTreeMap::new();
        deps.insert(
            "asap-sim".into(),
            ["asap-sim", "asap-overlay"].map(String::from).into(),
        );
        deps.insert("asap-bench".into(), ["asap-bench", "asap-sim"].map(String::from).into());
        deps.insert("asap-overlay".into(), ["asap-overlay"].map(String::from).into());
        let files = [
            ("crates/asap-sim/src/lib.rs", "pub fn tick() { shared(); }"),
            ("crates/asap-overlay/src/lib.rs", "pub fn shared() {}"),
            ("crates/asap-bench/src/lib.rs", "pub fn shared() {}"),
        ];
        let parsed: Vec<(String, FileSyntax, Vec<Vec<Call>>)> = files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let in_test = mark_test_regions(&lexed.tokens);
                let s = syntax::parse(&lexed.tokens, &in_test);
                let calls = s
                    .fns
                    .iter()
                    .map(|f| syntax::calls_in(&lexed.tokens, f.body))
                    .collect();
                (path.to_string(), s, calls)
            })
            .collect();
        let refs: Vec<(String, &FileSyntax, Vec<Vec<Call>>)> = parsed
            .iter()
            .map(|(p, s, c)| (p.clone(), s, c.clone()))
            .collect();
        let g = CallGraph::build(&refs, Some(&deps));
        let tick = g.match_pattern("tick")[0];
        let targets: Vec<&str> = g.edges[tick]
            .iter()
            .map(|&t| g.nodes[t].file.as_str())
            .collect();
        assert_eq!(
            targets,
            vec!["crates/asap-overlay/src/lib.rs"],
            "the bench `shared` is invisible to asap-sim"
        );
    }
}
