//! Call-graph self-check: pins the per-crate function and edge counts the
//! analyzer extracts from the real workspace. A drop here means the syntax
//! layer stopped seeing code (a lexer/parser regression silently shrinking
//! every interprocedural rule's reach); a jump means resolution got noisier.
//!
//! When a legitimate code change shifts the numbers, re-pin from:
//! `cargo lint --format json | python3 -m json.tool` (the `graph` object).

use std::collections::BTreeMap;
use std::path::Path;

use asap_lint::{lint_workspace, LintConfig};

/// `(crate, functions, edges)` as of this commit.
const PINNED: &[(&str, usize, usize)] = &[
    ("asap-bench", 187, 1583),
    ("asap-bloom", 63, 76),
    ("asap-core", 125, 1848),
    ("asap-lint", 91, 197),
    ("asap-metrics", 70, 50),
    ("asap-net", 66, 588),
    ("asap-overlay", 39, 47),
    ("asap-search", 48, 278),
    ("asap-sim", 280, 1198),
    ("asap-topology", 44, 67),
    ("asap-trace", 55, 81),
    ("asap-workload", 70, 255),
    ("xtask", 7, 6),
];

#[test]
fn call_graph_shape_matches_pinned_counts() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives at <root>/crates/asap-lint");
    let cfg_text =
        std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml at workspace root");
    let cfg = LintConfig::parse(&cfg_text).expect("committed lint.toml parses");
    let report = lint_workspace(root, &cfg).expect("workspace walk succeeds");

    let expected: BTreeMap<String, (usize, usize)> = PINNED
        .iter()
        .map(|&(k, f, e)| (k.to_string(), (f, e)))
        .collect();
    let actual = &report.graph_summary;
    if *actual != expected {
        let fmt = |m: &BTreeMap<String, (usize, usize)>| {
            m.iter()
                .map(|(k, (f, e))| format!("    (\"{k}\", {f}, {e}),"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        panic!(
            "call-graph shape drifted from the pins.\n\
             expected:\n{}\nactual (paste into PINNED if intentional):\n{}",
            fmt(&expected),
            fmt(actual)
        );
    }

    // Global sanity floors: the graph must stay *connected enough* to power
    // reachability rules, independent of exact pins.
    let fns: usize = actual.values().map(|(f, _)| f).sum();
    let edges: usize = actual.values().map(|(_, e)| e).sum();
    assert!(fns > 500, "only {fns} functions — syntax layer regression?");
    assert!(edges > fns, "only {edges} edges for {fns} fns — resolution broke?");
}
