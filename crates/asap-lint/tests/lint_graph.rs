//! Fixture tests for the interprocedural (call-graph) rules: R6 stream
//! discipline, R3v2 digest taint, and the cross-file R4 reachability class
//! the old lexer-only checker could not see. Configs are parsed from TOML
//! snippets so these also exercise the `lint.toml` parser end to end.

use asap_lint::{lint_source, lint_unit, LintConfig};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).expect("fixture readable")
}

fn findings(name: &str, toml: &str) -> Vec<(String, u32)> {
    let cfg = LintConfig::parse(toml).expect("test config parses");
    lint_source(name, &fixture(name), &cfg)
        .into_iter()
        .map(|d| (d.rule_id.to_string(), d.line))
        .collect()
}

/// R6 config: one stream whose salt const is owned by `alpha.rs` and the
/// clean fixture; the multi-line array exercises logical-line joining.
const R6_TOML: &str = "\
[rules.rng_stream_discipline]
paths = [
    \"\",
]

[streams.alpha]
consts = [\"ALPHA_STREAM_SALT\"]
owners = [
    \"alpha.rs\",
    \"r6_stream_ok.rs\",
]
";

#[test]
fn r6_flags_foreign_salts_and_unsalted_seeds() {
    // Line 7: ALPHA_STREAM_SALT referenced outside its owner files.
    // Line 11: seed_from_u64 with no registered salt in its arguments.
    assert_eq!(
        findings("r6_stream.rs", R6_TOML),
        vec![("R6".to_string(), 7), ("R6".to_string(), 11)]
    );
}

#[test]
fn r6_allows_owners_and_justified_derived_streams() {
    assert_eq!(
        findings("r6_stream_ok.rs", R6_TOML),
        Vec::<(String, u32)>::new(),
        "owner salt use is fine; the derived stream carries a pragma"
    );
}

/// R3 config: the fixture path is outside the direct `paths` scope, so any
/// finding comes from the taint pass over the sink's callee closure.
const TAINT_TOML: &str = "\
[rules.digest_taint]
paths = [\"elsewhere/\"]
sinks = [\"Digest::write_u64\"]
";

#[test]
fn r3_taint_flags_floats_in_the_sink_callee_closure() {
    // `widen` is called by the sink: both the `f64` cast and the `1.5`
    // literal on line 13 fire. `off_path` has floats but is unreachable
    // from the sink, so it stays clean.
    assert_eq!(
        findings("taint_sink.rs", TAINT_TOML),
        vec![("R3".to_string(), 13), ("R3".to_string(), 13)]
    );
}

#[test]
fn r3_taint_notes_name_the_digest_path() {
    let cfg = LintConfig::parse(TAINT_TOML).expect("test config parses");
    let diags = lint_source("taint_sink.rs", &fixture("taint_sink.rs"), &cfg);
    let note = diags[0].note.as_deref().expect("taint finding has a note");
    assert!(note.contains("Digest::write_u64"), "note names the sink: {note}");
}

#[test]
fn r3_taint_respects_pragmas() {
    assert_eq!(
        findings("taint_sink_ok.rs", TAINT_TOML),
        Vec::<(String, u32)>::new()
    );
}

/// Regression for the false-negative class the lexer-only R4 had: the
/// panicking helper lives in a file no `paths` list ever named, and is a
/// violation only because a `Protocol` impl in *another* file reaches it.
#[test]
fn r4_crosses_files_from_protocol_impls() {
    let cfg = LintConfig::parse(
        "[rules.panic_reachability]\nroot_traits = [\"Protocol\"]\n",
    )
    .expect("test config parses");
    let out = lint_unit(
        vec![
            ("reach_entry.rs".to_string(), fixture("reach_entry.rs")),
            ("reach_helper.rs".to_string(), fixture("reach_helper.rs")),
        ],
        &cfg,
        None,
    );
    let got: Vec<(String, String, u32)> = out
        .diagnostics
        .iter()
        .map(|d| (d.path.clone(), d.rule_id.to_string(), d.line))
        .collect();
    assert_eq!(
        got,
        vec![("reach_helper.rs".to_string(), "R4".to_string(), 6)],
        "the reachable unwrap fires; `untouched` (line 10) does not"
    );
    let note = out.diagnostics[0].note.as_deref().expect("has a path note");
    assert!(
        note.contains("on_message") && note.contains("fetch_remote"),
        "note shows the call path from the Protocol impl: {note}"
    );
}
