//! The committed `lint.toml` applied to the real workspace must report
//! zero violations — this is the same invariant CI's `cargo lint` job
//! enforces, kept here so `cargo test` alone catches regressions.

use std::path::Path;

use asap_lint::{lint_workspace, LintConfig};

#[test]
fn workspace_is_lint_clean_under_committed_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives at <root>/crates/asap-lint");
    let cfg_text =
        std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml at workspace root");
    let cfg = LintConfig::parse(&cfg_text).expect("committed lint.toml parses");
    let report = lint_workspace(root, &cfg).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 40,
        "walker found only {} files — skip list too aggressive?",
        report.files_scanned
    );
    if !report.is_clean() {
        for rendered in &report.rendered {
            eprintln!("{rendered}");
        }
        panic!(
            "{} lint violation(s) in the workspace (see above)",
            report.diagnostics.len()
        );
    }
}
