//! Fixture: R6 stream-discipline violations — a foreign stream's salt
//! referenced outside its owner file, and an unsalted `seed_from_u64`.

const LOCAL_SEED: u64 = 7;

pub fn seed_foreign(run: u64) -> u64 {
    run ^ ALPHA_STREAM_SALT
}

pub fn make_rng(run: u64) -> SmallRng {
    SmallRng::seed_from_u64(run ^ LOCAL_SEED)
}
