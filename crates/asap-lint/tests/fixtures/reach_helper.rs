//! Fixture (cross-file, with reach_entry.rs): the unwrap here is only a
//! violation because reach_entry.rs makes it reachable; `untouched` stays
//! clean because nothing reaches it.

pub fn fetch_remote(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn untouched(v: Option<u32>) -> u32 {
    v.expect("never called from a Protocol impl")
}
