//! Fixture: R3 digest-taint suppressed by an own-line pragma.

pub struct Digest(u64);

impl Digest {
    pub fn write_u64(&mut self, v: u64) {
        self.0 ^= widen(v);
    }
}

fn widen(v: u64) -> u64 {
    // lint: allow(digest-taint, reason=fixture demonstrates suppression; rounding proven exact)
    let scaled = (v as f64) * 1.5;
    scaled as u64
}
