//! Fixture: `#[cfg(test)]` regions are exempt from R3/R4 but not R1.

pub fn live(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn float_and_unwrap_ok_here() {
        let x: f64 = 1.5;
        assert!(x > 1.0);
        Some(3).unwrap();
    }

    #[test]
    fn hashmap_still_banned() {
        let mut m = std::collections::HashMap::new();
        m.insert(1, 2);
    }
}
