//! Fixture (cross-file, with reach_helper.rs): the Protocol method calls a
//! helper defined in another file. The pre-call-graph R4 scoped by path
//! lists and missed this class entirely.

pub struct Proto;

impl Protocol for Proto {
    fn on_message(&mut self, v: Option<u32>) -> u32 {
        fetch_remote(v)
    }
}
