//! Fixture: R6 clean — the owner file may use its own salt, and a derived
//! child stream carries a justifying pragma.

pub fn owner_seed(run: u64) -> SmallRng {
    SmallRng::seed_from_u64(run ^ ALPHA_STREAM_SALT)
}

pub fn derived(parent: &mut SmallRng) -> SmallRng {
    // lint: allow(rng-stream-discipline, reason=derived child stream seeded from the parent stream's output)
    SmallRng::seed_from_u64(parent.gen())
}
