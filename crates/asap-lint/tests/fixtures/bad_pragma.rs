//! Fixture: a reason-less pragma is a hard error AND does not suppress.

pub fn f(x: Option<u32>) -> u32 {
    // lint: allow(unwrap)
    x.unwrap()
}
