//! Fixture: a reason-less pragma is a hard error AND does not suppress;
//! so is a pragma naming an unknown rule id.

pub struct Proto;

impl Protocol for Proto {
    fn on_query(&mut self, x: Option<u32>) -> u32 {
        // lint: allow(unwrap)
        x.unwrap()
    }

    fn on_timer(&mut self, x: Option<u32>) -> u32 {
        // lint: allow(unwrap-everything, reason=this rule id does not exist)
        x.unwrap()
    }
}
