//! Fixture: R4 panic-reachability — unwrap/expect in a Protocol method.

pub struct Proto;

impl Protocol for Proto {
    fn on_query(&mut self, queue: &mut Vec<u32>) -> u32 {
        let head = queue.pop().unwrap();
        let checked = queue.first().expect("nonempty");
        head + *checked
    }
}
