//! Fixture: R4 unwrap violations.

pub fn deliver(queue: &mut Vec<u32>) -> u32 {
    let head = queue.pop().unwrap();
    let checked = queue.first().expect("nonempty");
    head + *checked
}
