//! Fixture: pragma-suppressed violations do not fire (new name + legacy alias).

pub struct Proto;

impl Protocol for Proto {
    fn on_query(&mut self, queue: &mut Vec<u32>) -> u32 {
        // lint: allow(panic-reachability, reason=fixture demonstrates own-line suppression)
        queue.pop().unwrap()
    }

    fn on_message(&mut self, queue: &mut Vec<u32>) -> u32 {
        queue.pop().unwrap() // lint: allow(unwrap, reason=legacy alias keeps working)
    }
}
