//! Fixture: pragma-suppressed violations do not fire.

pub fn head(queue: &mut Vec<u32>) -> u32 {
    // lint: allow(unwrap, reason=fixture demonstrates own-line suppression)
    queue.pop().unwrap()
}

pub fn trailing(queue: &mut Vec<u32>) -> u32 {
    queue.pop().unwrap() // lint: allow(unwrap, reason=same-line form)
}
