//! Fixture: entirely clean file. Mentions of HashMap in comments and
//! "HashSet" in strings must not fire.

use std::collections::BTreeMap;

pub fn build() -> BTreeMap<u32, u32> {
    let banned = "HashSet";
    let mut m = BTreeMap::new();
    m.insert(1, banned.len() as u32);
    m
}
