//! Fixture: R5 release-assert violations and exemptions.

pub fn dispatch(budget: u32, hops: u16) -> u32 {
    assert!(budget > 0, "a hot-path release assert");
    assert_eq!(hops % 2, 0);
    debug_assert!(budget < 10_000);
    debug_assert_ne!(hops, u16::MAX);
    match budget {
        1 => panic!("impossible"),
        2 => unreachable!("also impossible"),
        _ => {}
    }
    // lint: allow(release-assert, reason=fixture stands in for construction-time validation)
    assert_ne!(budget, 99);
    u32::from(hops) + budget
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_are_fine_in_tests() {
        assert!(super::dispatch(3, 0) >= 3);
    }
}
