//! Fixture: R2 ambient-entropy violations.

pub fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    let i = std::time::Instant::now();
    let _ = (t, i);
    0
}

pub fn roll() -> u32 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
