//! Fixture: R3 digest-taint — a float helper reachable from a digest sink,
//! in a file the direct `paths` scope never covers.

pub struct Digest(u64);

impl Digest {
    pub fn write_u64(&mut self, v: u64) {
        self.0 ^= widen(v);
    }
}

fn widen(v: u64) -> u64 {
    let scaled = (v as f64) * 1.5;
    scaled as u64
}

fn off_path(v: u64) -> u64 {
    ((v as f64) * 2.5) as u64
}
