//! Fixture: R3 float-arith violations.

pub fn mean(xs: &[u64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().map(|&x| x as f64).sum();
    sum / n + 0.5
}
