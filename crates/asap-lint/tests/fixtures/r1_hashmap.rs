//! Fixture: R1 det-collections violations.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn build() -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    let _s: HashSet<u32> = HashSet::new();
    m.insert(1, 2);
    m
}
