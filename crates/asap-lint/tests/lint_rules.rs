//! Fixture-driven rule tests: each fixture under `tests/fixtures/` carries
//! known violations, and we assert the exact rule IDs and line numbers the
//! linter reports — not just counts — so span regressions fail loudly.

use asap_lint::{lint_source, LintConfig, RuleScope, ALL_RULES};

/// Config with every rule in scope for every path (fixtures bypass
/// `lint.toml` scoping so they exercise the rules themselves). R4 roots
/// mirror the workspace config so `impl Protocol` fixtures are reachable.
fn everywhere() -> LintConfig {
    let mut cfg = LintConfig::default();
    for rule in ALL_RULES {
        cfg.scopes.insert(rule, RuleScope::everywhere());
    }
    cfg.panic_roots = vec!["Simulation::run".to_string()];
    cfg.panic_root_traits = vec!["Protocol".to_string()];
    cfg
}

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).expect("fixture readable")
}

/// `(rule_id, line)` pairs for a fixture, in report order.
fn findings(name: &str) -> Vec<(String, u32)> {
    lint_source(name, &fixture(name), &everywhere())
        .into_iter()
        .map(|d| (d.rule_id.to_string(), d.line))
        .collect()
}

fn lines_for(name: &str, rule_id: &str) -> Vec<u32> {
    findings(name)
        .into_iter()
        .filter(|(r, _)| r == rule_id)
        .map(|(_, l)| l)
        .collect()
}

#[test]
fn r1_flags_every_hashmap_and_hashset_mention() {
    assert_eq!(lines_for("r1_hashmap.rs", "R1"), vec![3, 4, 6, 7, 8, 8]);
    // Nothing else fires on this fixture.
    assert_eq!(findings("r1_hashmap.rs").len(), 6);
}

#[test]
fn r2_flags_clocks_and_entropy() {
    assert_eq!(lines_for("r2_entropy.rs", "R2"), vec![4, 5, 11]);
}

#[test]
fn r3_flags_float_types_and_literals() {
    assert_eq!(lines_for("r3_float.rs", "R3"), vec![3, 4, 5, 5, 6]);
}

#[test]
fn r4_flags_unwrap_and_expect_in_protocol_impls() {
    // The fixture's panicking fn is an `impl Protocol` method, which the
    // `panic_root_traits` config makes a reachability root.
    assert_eq!(lines_for("r4_unwrap.rs", "R4"), vec![7, 8]);
}

#[test]
fn r5_flags_release_asserts_only() {
    // assert!/assert_eq! at 4/5 and panic!/unreachable! at 9/10 fire; the
    // debug_assert* family (6/7), the pragma-suppressed assert_ne! (14),
    // and the #[cfg(test)] assert are exempt.
    assert_eq!(lines_for("r5_release_assert.rs", "R5"), vec![4, 5, 9, 10]);
    assert_eq!(findings("r5_release_assert.rs").len(), 4);
}

#[test]
fn pragmas_suppress_in_both_positions() {
    assert_eq!(
        findings("pragma_ok.rs"),
        Vec::<(String, u32)>::new(),
        "own-line and same-line pragmas with reasons must fully suppress"
    );
}

#[test]
fn bad_pragmas_error_and_do_not_suppress() {
    // Line 8: reason-less pragma; line 13: unknown rule id. Both are P0
    // hard errors, and neither suppresses the unwrap on the next line.
    let got = findings("bad_pragma.rs");
    assert_eq!(
        got,
        vec![
            ("P0".to_string(), 8),
            ("R4".to_string(), 9),
            ("P0".to_string(), 13),
            ("R4".to_string(), 14),
        ],
        "each pragma is a hard error AND the unwraps still fire"
    );
}

#[test]
fn clean_fixture_is_clean() {
    assert_eq!(findings("clean.rs"), Vec::<(String, u32)>::new());
}

#[test]
fn cfg_test_exempts_r3_r4_but_not_r1() {
    assert_eq!(lines_for("cfg_test_exempt.rs", "R3"), Vec::<u32>::new());
    assert_eq!(lines_for("cfg_test_exempt.rs", "R4"), Vec::<u32>::new());
    assert_eq!(lines_for("cfg_test_exempt.rs", "R1"), vec![18]);
}

#[test]
fn scoping_gates_rules_per_file() {
    // Same source, but a config whose R4 scope does not cover the path.
    let mut cfg = LintConfig::default();
    cfg.scopes
        .insert(asap_lint::RuleId::R4, RuleScope::default());
    let diags = lint_source("r4_unwrap.rs", &fixture("r4_unwrap.rs"), &cfg);
    assert!(diags.is_empty(), "out-of-scope files produce no diagnostics");
}

#[test]
fn workspace_config_keeps_fault_layer_in_scope() {
    // The fault-injection layer is replay state: its decisions feed the
    // pinned golden digests, so it must stay inside R2 (no ambient
    // entropy — all randomness from the dedicated seeded stream) and R3
    // (integer-only ppm probabilities and µs jitter), with no [[allow]]
    // escape hatch.
    let toml = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../lint.toml"),
    )
    .expect("workspace lint.toml readable");
    let cfg = LintConfig::parse(&toml).expect("workspace lint.toml parses");
    let fault = "crates/asap-sim/src/fault.rs";
    for rule in [asap_lint::RuleId::R2, asap_lint::RuleId::R3] {
        let scope = cfg.scope(rule).expect("rule configured");
        assert!(scope.covers(fault), "{rule:?} must cover {fault}");
        assert!(
            !cfg.file_allowed(rule, fault),
            "{rule:?} must not be allowed-off for {fault}"
        );
    }
}

#[test]
fn workspace_config_scopes_r5_to_dispatch_files() {
    // R5 pins the no-release-assert policy to the per-event dispatch files
    // (hot paths), while protocol constructors stay free to reject bad
    // configs with release asserts.
    let toml = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../lint.toml"),
    )
    .expect("workspace lint.toml readable");
    let cfg = LintConfig::parse(&toml).expect("workspace lint.toml parses");
    let scope = cfg.scope(asap_lint::RuleId::R5).expect("R5 configured");
    for covered in [
        "crates/asap-topology/src/latency.rs",
        "crates/asap-sim/src/engine.rs",
        "crates/asap-sim/src/event.rs",
        "crates/asap-sim/src/fault.rs",
        "crates/asap-core/src/delivery.rs",
        "crates/asap-core/src/protocol.rs",
    ] {
        assert!(scope.covers(covered), "R5 must cover {covered}");
        assert!(!cfg.file_allowed(asap_lint::RuleId::R5, covered));
    }
    // Constructors outside the dispatch files are intentionally out of scope.
    assert!(!scope.covers("crates/asap-search/src/gsa.rs"));
    assert!(!scope.covers("crates/asap-search/src/flooding.rs"));
}

#[test]
fn diagnostics_render_with_span_and_caret() {
    let src = fixture("r4_unwrap.rs");
    let diags = lint_source("crates/x/src/lib.rs", &src, &everywhere());
    let annotation = diags[0].github_annotation();
    assert!(
        annotation.starts_with("::error file=crates/x/src/lib.rs,line=7,col="),
        "workflow-command annotation well-formed: {annotation}"
    );
    let rendered = diags[0].render(Some(&src));
    assert!(rendered.contains("error[R4/panic-reachability]"), "{rendered}");
    assert!(rendered.contains("--> crates/x/src/lib.rs:7:"), "{rendered}");
    assert!(rendered.contains("^^^^^^"), "caret line present: {rendered}");
    assert!(rendered.contains("= note: reachable via"), "{rendered}");
    assert!(rendered.contains("= help:"), "{rendered}");
}
