//! Runtime content state: per-peer holdings evolving under content changes.
//!
//! Both the trace generator (to keep queries answerable) and the simulator
//! (to answer match checks) replay the same state machine. The per-peer
//! keyword multiset gives an O(terms) prefilter before the exact per-document
//! scan, which is what makes flooding-scale match checks affordable.

use crate::content::ContentModel;
use crate::ids::{DocId, InterestSet, KeywordId};
use asap_overlay::collections::DetHashMap;
use asap_overlay::PeerId;

/// Evolving shared-content state for every peer.
#[derive(Debug, Clone)]
pub struct ContentState {
    /// Sorted docs per peer.
    holdings: Vec<Vec<DocId>>,
    /// Holders per doc (unsorted).
    holders: Vec<Vec<PeerId>>,
    /// Keyword → occurrence count per peer (across that peer's docs).
    keyword_counts: Vec<DetHashMap<KeywordId, u32>>,
}

impl ContentState {
    /// Initialize from the model's initial holdings.
    pub fn from_model(model: &ContentModel) -> Self {
        let mut s = Self {
            holdings: vec![Vec::new(); model.num_peers()],
            holders: vec![Vec::new(); model.num_docs()],
            keyword_counts: vec![DetHashMap::default(); model.num_peers()],
        };
        for (p, docs) in model.initial_holdings.iter().enumerate() {
            for &d in docs {
                s.add(model, PeerId(p as u32), d);
            }
        }
        s
    }

    /// Peer starts sharing a document. Returns `false` if already held.
    pub fn add(&mut self, model: &ContentModel, peer: PeerId, doc: DocId) -> bool {
        let h = &mut self.holdings[peer.index()];
        let Err(pos) = h.binary_search(&doc) else {
            return false;
        };
        h.insert(pos, doc);
        self.holders[doc.index()].push(peer);
        let counts = &mut self.keyword_counts[peer.index()];
        for &kw in &model.doc(doc).keywords {
            *counts.entry(kw).or_insert(0) += 1;
        }
        true
    }

    /// Peer stops sharing a document. Returns `false` if it wasn't held.
    pub fn remove(&mut self, model: &ContentModel, peer: PeerId, doc: DocId) -> bool {
        let h = &mut self.holdings[peer.index()];
        let Ok(pos) = h.binary_search(&doc) else {
            return false;
        };
        h.remove(pos);
        let hs = &mut self.holders[doc.index()];
        // lint: allow(unwrap, reason=holders mirrors holdings by construction; silent repair would hide corruption)
        let i = hs.iter().position(|&p| p == peer).expect("holder invariant");
        hs.swap_remove(i);
        let counts = &mut self.keyword_counts[peer.index()];
        for &kw in &model.doc(doc).keywords {
            match counts.get_mut(&kw) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    counts.remove(&kw);
                }
                None => unreachable!("keyword count invariant"),
            }
        }
        true
    }

    #[inline]
    pub fn peer_docs(&self, peer: PeerId) -> &[DocId] {
        &self.holdings[peer.index()]
    }

    #[inline]
    pub fn holders(&self, doc: DocId) -> &[PeerId] {
        &self.holders[doc.index()]
    }

    pub fn peer_has_doc(&self, peer: PeerId, doc: DocId) -> bool {
        self.holdings[peer.index()].binary_search(&doc).is_ok()
    }

    /// Does `peer` share at least one document containing **all** `terms`?
    /// (The content-confirmation check.)
    pub fn peer_matches(&self, model: &ContentModel, peer: PeerId, terms: &[KeywordId]) -> bool {
        let counts = &self.keyword_counts[peer.index()];
        if !terms.iter().all(|t| counts.contains_key(t)) {
            return false; // cheap prefilter: some term absent everywhere
        }
        self.holdings[peer.index()]
            .iter()
            .any(|&d| model.doc(d).matches(terms))
    }

    /// All of `peer`'s documents matching `terms`.
    pub fn matching_docs<'a>(
        &'a self,
        model: &'a ContentModel,
        peer: PeerId,
        terms: &'a [KeywordId],
    ) -> impl Iterator<Item = DocId> + 'a {
        self.holdings[peer.index()]
            .iter()
            .copied()
            .filter(move |&d| model.doc(d).matches(terms))
    }

    /// The classes of the peer's current shared content — the topics `T(a)`
    /// an ad from this peer carries.
    pub fn peer_topics(&self, model: &ContentModel, peer: PeerId) -> InterestSet {
        self.holdings[peer.index()]
            .iter()
            .map(|&d| model.doc(d).class)
            .collect()
    }

    /// Raw `(holdings, holders)` views for checkpointing. `holdings` is
    /// sorted per peer; `holders` order is history-dependent (`swap_remove`
    /// on removal) and behavior-relevant, so both are serialized verbatim.
    /// The keyword multiset is derived state and is rebuilt on restore.
    pub fn parts(&self) -> (&[Vec<DocId>], &[Vec<PeerId>]) {
        (&self.holdings, &self.holders)
    }

    /// Rebuild content state from [`ContentState::parts`] output, restoring
    /// `holdings`/`holders` verbatim and re-deriving the per-peer keyword
    /// multiset from the holdings and the model.
    pub fn from_parts(
        model: &ContentModel,
        holdings: Vec<Vec<DocId>>,
        holders: Vec<Vec<PeerId>>,
    ) -> Self {
        let mut keyword_counts = vec![DetHashMap::default(); holdings.len()];
        for (docs, counts) in holdings.iter().zip(keyword_counts.iter_mut()) {
            for &d in docs {
                for &kw in &model.doc(d).keywords {
                    *counts.entry(kw).or_insert(0u32) += 1;
                }
            }
        }
        Self {
            holdings,
            holders,
            keyword_counts,
        }
    }

    /// Current distinct keywords of a peer (what its Bloom filter covers).
    pub fn peer_keywords(&self, peer: PeerId) -> impl Iterator<Item = KeywordId> + '_ {
        self.keyword_counts[peer.index()].keys().copied()
    }

    /// Number of distinct keywords a peer currently shares.
    pub fn peer_keyword_count(&self, peer: PeerId) -> usize {
        self.keyword_counts[peer.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;
    use crate::content::generate_model;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (ContentModel, ContentState) {
        let cfg = WorkloadConfig::reduced(300, 100, 11);
        let mut rng = SmallRng::seed_from_u64(11);
        let model = generate_model(&cfg, &mut rng);
        let state = ContentState::from_model(&model);
        (model, state)
    }

    #[test]
    fn initial_state_mirrors_model() {
        let (model, state) = setup();
        for p in 0..model.num_peers() {
            assert_eq!(
                state.peer_docs(PeerId(p as u32)),
                model.initial_holdings[p].as_slice()
            );
        }
    }

    #[test]
    fn holders_are_consistent() {
        let (model, state) = setup();
        for d in 0..model.num_docs() {
            for &h in state.holders(DocId(d as u32)) {
                assert!(state.peer_has_doc(h, DocId(d as u32)));
            }
        }
    }

    #[test]
    fn add_remove_roundtrip() {
        let (model, mut state) = setup();
        // Find a doc some peer doesn't hold.
        let peer = PeerId(0);
        let doc = (0..model.num_docs() as u32)
            .map(DocId)
            .find(|&d| !state.peer_has_doc(peer, d))
            .unwrap();
        let before_kw = state.peer_keyword_count(peer);
        assert!(state.add(&model, peer, doc));
        assert!(!state.add(&model, peer, doc), "double add rejected");
        assert!(state.peer_has_doc(peer, doc));
        assert!(state.holders(doc).contains(&peer));
        assert!(state.remove(&model, peer, doc));
        assert!(!state.remove(&model, peer, doc), "double remove rejected");
        assert_eq!(state.peer_keyword_count(peer), before_kw);
    }

    #[test]
    fn peer_matches_agrees_with_exhaustive_scan() {
        let (model, state) = setup();
        let mut checked = 0;
        for p in 0..model.num_peers().min(100) {
            let peer = PeerId(p as u32);
            for &d in state.peer_docs(peer).iter().take(3) {
                let doc = model.doc(d);
                let terms: Vec<KeywordId> =
                    doc.keywords.iter().copied().take(2).collect();
                assert!(state.peer_matches(&model, peer, &terms));
                checked += 1;
            }
        }
        assert!(checked > 0, "test exercised no matches");
    }

    #[test]
    fn peer_matches_rejects_cross_document_terms() {
        // Terms spread across two docs (but no single doc) must not match.
        let (model, state) = setup();
        'outer: for p in 0..model.num_peers() {
            let peer = PeerId(p as u32);
            let docs = state.peer_docs(peer);
            if docs.len() < 2 {
                continue;
            }
            for i in 0..docs.len() {
                for j in (i + 1)..docs.len() {
                    let (a, b) = (model.doc(docs[i]), model.doc(docs[j]));
                    let ka = a.keywords.iter().find(|k| !b.keywords.contains(k));
                    let kb = b.keywords.iter().find(|k| !a.keywords.contains(k));
                    if let (Some(&ka), Some(&kb)) = (ka, kb) {
                        let terms = [ka, kb];
                        let exhaustive = docs
                            .iter()
                            .any(|&d| model.doc(d).matches(&terms));
                        assert_eq!(state.peer_matches(&model, peer, &terms), exhaustive);
                        if !exhaustive {
                            break 'outer; // found and verified a negative case
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn topics_track_content_changes() {
        let (model, mut state) = setup();
        // Pick a sharer and remove all its docs: topics must become empty.
        let peer = (0..model.num_peers() as u32)
            .map(PeerId)
            .find(|&p| !state.peer_docs(p).is_empty())
            .unwrap();
        assert!(!state.peer_topics(&model, peer).is_empty());
        for d in state.peer_docs(peer).to_vec() {
            state.remove(&model, peer, d);
        }
        assert!(state.peer_topics(&model, peer).is_empty());
        assert_eq!(state.peer_keyword_count(peer), 0);
    }
}
