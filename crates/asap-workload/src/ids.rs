//! Dense identifiers for classes, keywords and documents, and the
//! interest-set bitmask.

/// One of the (paper: 14) semantic content classes — also the topic universe
/// `U` for ads and interests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u8);

impl ClassId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interned keyword (index into the [`crate::Vocabulary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeywordId(pub u32);

impl KeywordId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A document in the universal content set `D_all`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

impl DocId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A set of semantic classes as a bitmask (≤ 16 classes). Used both for a
/// peer's interests `I(p)` and an ad's topics `T(a)`; "node q is interested
/// in ad a if there is nonempty intersection between T(a) and I(q)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct InterestSet(pub u16);

impl InterestSet {
    pub const EMPTY: InterestSet = InterestSet(0);

    pub fn singleton(class: ClassId) -> Self {
        Self(1 << class.0)
    }

    pub fn insert(&mut self, class: ClassId) {
        self.0 |= 1 << class.0;
    }

    pub fn remove(&mut self, class: ClassId) {
        self.0 &= !(1 << class.0);
    }

    #[inline]
    pub fn contains(self, class: ClassId) -> bool {
        self.0 & (1 << class.0) != 0
    }

    /// The interest-overlap predicate from the paper.
    #[inline]
    pub fn intersects(self, other: InterestSet) -> bool {
        self.0 & other.0 != 0
    }

    pub fn union(self, other: InterestSet) -> Self {
        Self(self.0 | other.0)
    }

    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn iter(self) -> impl Iterator<Item = ClassId> {
        (0..16u8)
            .filter(move |&c| self.0 & (1 << c) != 0)
            .map(ClassId)
    }
}

impl FromIterator<ClassId> for InterestSet {
    fn from_iter<T: IntoIterator<Item = ClassId>>(iter: T) -> Self {
        let mut s = Self::EMPTY;
        for c in iter {
            s.insert(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = InterestSet::EMPTY;
        assert!(s.is_empty());
        s.insert(ClassId(3));
        s.insert(ClassId(13));
        assert!(s.contains(ClassId(3)));
        assert!(s.contains(ClassId(13)));
        assert!(!s.contains(ClassId(4)));
        assert_eq!(s.len(), 2);
        s.remove(ClassId(3));
        assert!(!s.contains(ClassId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn intersects_matches_paper_predicate() {
        let a: InterestSet = [ClassId(0), ClassId(5)].into_iter().collect();
        let b: InterestSet = [ClassId(5), ClassId(9)].into_iter().collect();
        let c = InterestSet::singleton(ClassId(1));
        assert!(a.intersects(b));
        assert!(!a.intersects(c));
        assert!(!InterestSet::EMPTY.intersects(a));
    }

    #[test]
    fn iter_yields_sorted_members() {
        let s: InterestSet = [ClassId(7), ClassId(2), ClassId(11)].into_iter().collect();
        let v: Vec<u8> = s.iter().map(|c| c.0).collect();
        assert_eq!(v, vec![2, 7, 11]);
    }

    #[test]
    fn union_combines() {
        let a = InterestSet::singleton(ClassId(1));
        let b = InterestSet::singleton(ClassId(2));
        let u = a.union(b);
        assert!(u.contains(ClassId(1)) && u.contains(ClassId(2)));
    }
}
