//! Synthetic content model and query/churn trace (paper §IV-B).
//!
//! The paper rebuilds a query trace from an eDonkey content-distribution
//! snapshot (923k files / 37k peers, Nov 2003) that is not redistributable.
//! This crate synthesizes a workload matching every marginal the paper's
//! evaluation actually consumes:
//!
//! * 10,000 peers, documents classified into **14 semantic classes**
//!   (Fig. 2), peer interests derived from owned content, free riders with
//!   random interests (Fig. 3);
//! * per-document copy counts with **mean ≈ 1.28 and ≈ 89 % singletons**
//!   (§V-A) — the property that makes random walk and GSA struggle;
//! * **30,000 search requests**, each guaranteed ≥ 1 matching document on a
//!   live peer at issue time, 10 % followed by a content change;
//! * **1,000 join + 1,000 departure** events (rejoin churn: departures feed
//!   the pool joins revive from); Poisson arrivals, λ = 8/s.
//!
//! The generator replays its own churn/content state chronologically while
//! emitting events, so the "always answerable" invariant holds by
//! construction (and is re-checked by tests).

pub mod config;
pub mod content;
pub mod ids;
pub mod state;
pub mod trace;
pub mod vocab;
pub mod zipf;

pub use asap_overlay::PeerId;
pub use config::{HeterogeneityPack, WorkloadConfig};
pub use content::ContentModel;
pub use ids::{ClassId, DocId, InterestSet, KeywordId};
pub use state::ContentState;
pub use trace::{QuerySpec, Trace, TraceEvent};
pub use vocab::Vocabulary;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A fully generated workload: the static content model, the event trace,
/// and the initial liveness of every peer.
#[derive(Debug)]
pub struct Workload {
    pub model: ContentModel,
    pub trace: Trace,
    /// Peers alive at simulation start (all of them, under rejoin churn;
    /// kept explicit so alternative churn models stay pluggable).
    pub initially_alive: Vec<bool>,
}

/// Generate the complete workload for `config`. Deterministic in
/// `config.seed`.
pub fn generate(config: &WorkloadConfig) -> Workload {
    config.validate();
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x40AD_10AD);
    let model = content::generate_model(config, &mut rng);
    let (trace, initially_alive) = trace::generate_trace(config, &model, &mut rng);
    Workload {
        model,
        trace,
        initially_alive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_reduced_workload() {
        let cfg = WorkloadConfig::reduced(300, 500, 77);
        let w = generate(&cfg);
        assert_eq!(w.model.num_peers(), 300);
        assert_eq!(
            w.trace
                .events
                .iter()
                .filter(|e| matches!(e.event, TraceEvent::Query(_)))
                .count(),
            500
        );
        assert_eq!(w.initially_alive.len(), 300);
    }

    #[test]
    fn deterministic() {
        let cfg = WorkloadConfig::reduced(200, 300, 5);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.trace.events.len(), b.trace.events.len());
        for (x, y) in a.trace.events.iter().zip(&b.trace.events) {
            assert_eq!(x.time_us, y.time_us);
        }
    }
}
