//! Workload generation parameters (paper §IV-B).

/// Heterogeneous-workload knobs layered over the paper's homogeneous trace.
///
/// The paper evaluates one steady-state workload; real deployments are
/// spikier. Each knob perturbs one axis of the generator — and each is
/// **inert at its default**, taking the exact code path (and RNG draw
/// sequence) of the unperturbed generator, so every pinned golden digest
/// survives this struct's existence bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct HeterogeneityPack {
    /// Flash crowd: query inter-arrival gaps inside the spike window are
    /// divided by this factor (a `6.0` turns λ = 8/s into a 48/s burst).
    /// `1.0` = off.
    pub flash_boost: f64,
    /// Center of the spike window, as a fraction of the query sequence.
    pub flash_center: f64,
    /// Width of the spike window, as a fraction of the query sequence.
    pub flash_width: f64,
    /// Interest drift: probability a query's class is rotated away from the
    /// requester's static interest profile by an amount that grows with
    /// trace progress (late queries probe classes nobody advertised for
    /// early). `0.0` = off.
    pub drift_strength: f64,
    /// Content hotspot: probability a query re-targets its class's hottest
    /// document instead of a uniform draw, concentrating demand. `0.0` = off.
    pub hotspot_prob: f64,
    /// Heavy-tailed session lengths: probability a departure evicts the most
    /// recently rejoined peer instead of a uniform one, yielding many short
    /// sessions and a few long ones. `0.0` = off.
    pub session_tail: f64,
}

impl Default for HeterogeneityPack {
    fn default() -> Self {
        Self::inert()
    }
}

impl HeterogeneityPack {
    /// The paper's homogeneous workload: every knob off.
    pub fn inert() -> Self {
        Self {
            flash_boost: 1.0,
            flash_center: 0.5,
            flash_width: 0.0,
            drift_strength: 0.0,
            hotspot_prob: 0.0,
            session_tail: 0.0,
        }
    }

    /// A mid-trace query spike: the middle fifth of the query sequence
    /// arrives six times faster.
    pub fn flash_crowd() -> Self {
        Self {
            flash_boost: 6.0,
            flash_center: 0.5,
            flash_width: 0.2,
            ..Self::inert()
        }
    }

    /// Every axis on at once — the stress workload for robustness sweeps.
    pub fn stress() -> Self {
        Self {
            flash_boost: 6.0,
            flash_center: 0.5,
            flash_width: 0.2,
            drift_strength: 0.35,
            hotspot_prob: 0.40,
            session_tail: 0.70,
        }
    }

    pub fn is_inert(&self) -> bool {
        self.flash_boost == 1.0
            && self.drift_strength == 0.0
            && self.hotspot_prob == 0.0
            && self.session_tail == 0.0
    }

    /// Is query `i` of `total` inside the flash-crowd window?
    pub(crate) fn in_flash_window(&self, i: usize, total: usize) -> bool {
        let f = (i as f64 + 0.5) / total.max(1) as f64;
        (f - self.flash_center).abs() <= self.flash_width / 2.0
    }

    pub fn validate(&self) {
        assert!(self.flash_boost >= 1.0, "flash_boost < 1 would thin the crowd");
        assert!(
            (0.0..=1.0).contains(&self.flash_center)
                && (0.0..=1.0).contains(&self.flash_width)
                && (0.0..=1.0).contains(&self.drift_strength)
                && (0.0..=1.0).contains(&self.hotspot_prob)
                && (0.0..=1.0).contains(&self.session_tail),
            "pack fractions must be in [0, 1]"
        );
    }
}

/// Parameters of the synthetic eDonkey-like workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of P2P peers (paper: 10,000).
    pub peers: usize,
    /// Number of search requests (paper: 30,000).
    pub queries: usize,
    /// Fraction of requests followed by a content change (paper: 10 %).
    pub content_change_fraction: f64,
    /// Node join events inserted into the trace (paper: 1,000). Joining
    /// peers start the simulation offline.
    pub joins: usize,
    /// Node departure events (paper: 1,000).
    pub leaves: usize,
    /// Poisson request arrival rate, requests per second (paper: λ = 8).
    pub arrival_rate_hz: f64,
    /// Fraction of peers sharing nothing (free riders). Saroiu et al.'s
    /// measurements motivate ~¼.
    pub free_rider_fraction: f64,
    /// Mean shared documents per sharing peer (eDonkey: 923k files / 37k
    /// peers ≈ 25).
    pub mean_docs_per_sharer: f64,
    /// Probability a placed document replicates an existing one rather than
    /// being new. 0.22 yields the paper's ≈ 1.28 copies/doc with ≈ 89 %
    /// singletons (validated in tests).
    pub replica_prob: f64,
    /// Number of semantic classes (paper: 14).
    pub classes: usize,
    /// Zipf exponent for class popularity (shapes Fig. 2/3's skew).
    pub class_zipf_s: f64,
    /// Keywords per document, inclusive range.
    pub keywords_per_doc: (usize, usize),
    /// Query terms drawn from the target document, inclusive range.
    pub query_terms: (usize, usize),
    /// Distinct keywords in each class's vocabulary.
    pub vocab_per_class: usize,
    /// Heterogeneity knobs (inert by default; see [`HeterogeneityPack`]).
    pub pack: HeterogeneityPack,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's instance.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            peers: 10_000,
            queries: 30_000,
            content_change_fraction: 0.10,
            joins: 1_000,
            leaves: 1_000,
            arrival_rate_hz: 8.0,
            free_rider_fraction: 0.25,
            mean_docs_per_sharer: 25.0,
            replica_prob: 0.22,
            classes: 14,
            class_zipf_s: 0.95,
            keywords_per_doc: (3, 8),
            query_terms: (2, 4),
            vocab_per_class: 2_000,
            pack: HeterogeneityPack::inert(),
            seed,
        }
    }

    /// Structurally identical instance scaled down to `peers`/`queries`
    /// (churn and vocabulary scale proportionally).
    pub fn reduced(peers: usize, queries: usize, seed: u64) -> Self {
        let scale = peers as f64 / 10_000.0;
        let base = Self::paper_default(seed);
        Self {
            peers,
            queries,
            joins: ((1_000.0 * scale) as usize).max(2),
            leaves: ((1_000.0 * scale) as usize).max(2),
            vocab_per_class: ((2_000.0 * scale) as usize).clamp(50, 2_000),
            ..base
        }
    }

    pub fn validate(&self) {
        assert!(self.peers >= 4, "need at least 4 peers");
        assert!(self.queries >= 1, "need at least one query");
        assert!(
            self.joins < self.peers,
            "joiners are drawn from the peer population"
        );
        assert!(
            (0.0..=1.0).contains(&self.content_change_fraction)
                && (0.0..=1.0).contains(&self.free_rider_fraction)
                && (0.0..=1.0).contains(&self.replica_prob),
            "fractions must be in [0, 1]"
        );
        assert!(self.arrival_rate_hz > 0.0, "arrival rate must be positive");
        assert!(
            self.classes >= 1 && self.classes <= 16,
            "classes must fit the InterestSet bitmask"
        );
        assert!(
            self.keywords_per_doc.0 >= 1 && self.keywords_per_doc.0 <= self.keywords_per_doc.1,
            "bad keywords_per_doc range"
        );
        assert!(
            self.query_terms.0 >= 1 && self.query_terms.0 <= self.query_terms.1,
            "bad query_terms range"
        );
        self.pack.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        WorkloadConfig::paper_default(1).validate();
    }

    #[test]
    fn reduced_scales_churn() {
        let c = WorkloadConfig::reduced(1_000, 3_000, 1);
        c.validate();
        assert_eq!(c.joins, 100);
        assert_eq!(c.leaves, 100);
        assert_eq!(c.vocab_per_class, 200);
    }

    #[test]
    fn reduced_clamps_tiny_scales() {
        let c = WorkloadConfig::reduced(20, 50, 1);
        c.validate();
        assert!(c.joins >= 2);
        assert!(c.vocab_per_class >= 50);
    }

    #[test]
    #[should_panic(expected = "classes")]
    fn too_many_classes_rejected() {
        let mut c = WorkloadConfig::paper_default(1);
        c.classes = 17;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "joiners")]
    fn joins_bounded_by_peers() {
        let mut c = WorkloadConfig::reduced(100, 100, 1);
        c.joins = 100;
        c.validate();
    }

    #[test]
    fn default_pack_is_inert_and_presets_validate() {
        assert!(HeterogeneityPack::default().is_inert());
        assert!(WorkloadConfig::paper_default(1).pack.is_inert());
        for pack in [
            HeterogeneityPack::inert(),
            HeterogeneityPack::flash_crowd(),
            HeterogeneityPack::stress(),
        ] {
            pack.validate();
        }
        assert!(!HeterogeneityPack::flash_crowd().is_inert());
        assert!(!HeterogeneityPack::stress().is_inert());
    }

    #[test]
    fn flash_window_covers_the_configured_slice() {
        let p = HeterogeneityPack::flash_crowd();
        let total = 1_000;
        let inside = (0..total).filter(|&i| p.in_flash_window(i, total)).count();
        assert!(
            (inside as f64 / total as f64 - p.flash_width).abs() < 0.01,
            "window covered {inside}/{total}"
        );
        assert!(p.in_flash_window(total / 2, total));
        assert!(!p.in_flash_window(0, total));
        assert!(!p.in_flash_window(total - 1, total));
    }

    #[test]
    #[should_panic(expected = "flash_boost")]
    fn thinning_flash_boost_rejected() {
        let mut c = WorkloadConfig::paper_default(1);
        c.pack.flash_boost = 0.5;
        c.validate();
    }
}
