//! Workload generation parameters (paper §IV-B).

/// Parameters of the synthetic eDonkey-like workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of P2P peers (paper: 10,000).
    pub peers: usize,
    /// Number of search requests (paper: 30,000).
    pub queries: usize,
    /// Fraction of requests followed by a content change (paper: 10 %).
    pub content_change_fraction: f64,
    /// Node join events inserted into the trace (paper: 1,000). Joining
    /// peers start the simulation offline.
    pub joins: usize,
    /// Node departure events (paper: 1,000).
    pub leaves: usize,
    /// Poisson request arrival rate, requests per second (paper: λ = 8).
    pub arrival_rate_hz: f64,
    /// Fraction of peers sharing nothing (free riders). Saroiu et al.'s
    /// measurements motivate ~¼.
    pub free_rider_fraction: f64,
    /// Mean shared documents per sharing peer (eDonkey: 923k files / 37k
    /// peers ≈ 25).
    pub mean_docs_per_sharer: f64,
    /// Probability a placed document replicates an existing one rather than
    /// being new. 0.22 yields the paper's ≈ 1.28 copies/doc with ≈ 89 %
    /// singletons (validated in tests).
    pub replica_prob: f64,
    /// Number of semantic classes (paper: 14).
    pub classes: usize,
    /// Zipf exponent for class popularity (shapes Fig. 2/3's skew).
    pub class_zipf_s: f64,
    /// Keywords per document, inclusive range.
    pub keywords_per_doc: (usize, usize),
    /// Query terms drawn from the target document, inclusive range.
    pub query_terms: (usize, usize),
    /// Distinct keywords in each class's vocabulary.
    pub vocab_per_class: usize,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's instance.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            peers: 10_000,
            queries: 30_000,
            content_change_fraction: 0.10,
            joins: 1_000,
            leaves: 1_000,
            arrival_rate_hz: 8.0,
            free_rider_fraction: 0.25,
            mean_docs_per_sharer: 25.0,
            replica_prob: 0.22,
            classes: 14,
            class_zipf_s: 0.95,
            keywords_per_doc: (3, 8),
            query_terms: (2, 4),
            vocab_per_class: 2_000,
            seed,
        }
    }

    /// Structurally identical instance scaled down to `peers`/`queries`
    /// (churn and vocabulary scale proportionally).
    pub fn reduced(peers: usize, queries: usize, seed: u64) -> Self {
        let scale = peers as f64 / 10_000.0;
        let base = Self::paper_default(seed);
        Self {
            peers,
            queries,
            joins: ((1_000.0 * scale) as usize).max(2),
            leaves: ((1_000.0 * scale) as usize).max(2),
            vocab_per_class: ((2_000.0 * scale) as usize).clamp(50, 2_000),
            ..base
        }
    }

    pub fn validate(&self) {
        assert!(self.peers >= 4, "need at least 4 peers");
        assert!(self.queries >= 1, "need at least one query");
        assert!(
            self.joins < self.peers,
            "joiners are drawn from the peer population"
        );
        assert!(
            (0.0..=1.0).contains(&self.content_change_fraction)
                && (0.0..=1.0).contains(&self.free_rider_fraction)
                && (0.0..=1.0).contains(&self.replica_prob),
            "fractions must be in [0, 1]"
        );
        assert!(self.arrival_rate_hz > 0.0, "arrival rate must be positive");
        assert!(
            self.classes >= 1 && self.classes <= 16,
            "classes must fit the InterestSet bitmask"
        );
        assert!(
            self.keywords_per_doc.0 >= 1 && self.keywords_per_doc.0 <= self.keywords_per_doc.1,
            "bad keywords_per_doc range"
        );
        assert!(
            self.query_terms.0 >= 1 && self.query_terms.0 <= self.query_terms.1,
            "bad query_terms range"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        WorkloadConfig::paper_default(1).validate();
    }

    #[test]
    fn reduced_scales_churn() {
        let c = WorkloadConfig::reduced(1_000, 3_000, 1);
        c.validate();
        assert_eq!(c.joins, 100);
        assert_eq!(c.leaves, 100);
        assert_eq!(c.vocab_per_class, 200);
    }

    #[test]
    fn reduced_clamps_tiny_scales() {
        let c = WorkloadConfig::reduced(20, 50, 1);
        c.validate();
        assert!(c.joins >= 2);
        assert!(c.vocab_per_class >= 50);
    }

    #[test]
    #[should_panic(expected = "classes")]
    fn too_many_classes_rejected() {
        let mut c = WorkloadConfig::paper_default(1);
        c.classes = 17;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "joiners")]
    fn joins_bounded_by_peers() {
        let mut c = WorkloadConfig::reduced(100, 100, 1);
        c.joins = 100;
        c.validate();
    }
}
