//! The static content model: documents, initial holdings, interests.
//!
//! Generation recipe (validated against the paper's published marginals in
//! tests):
//!
//! 1. Class popularity is Zipf-skewed over the 14 classes (Fig. 2/3 shape).
//! 2. Each peer is a free rider with probability `free_rider_fraction`;
//!    sharers draw 1–3 interest classes (primary from the Zipf, extras
//!    uniform) — the paper's *interest clustering* assumption. Free riders
//!    get 1–3 random interests ("assigned randomly").
//! 3. Each sharer places `1 + Geometric` documents. A placement is a
//!    *replica* of an existing document from the peer's interest classes
//!    with probability `replica_prob` (chosen from the class placement pool,
//!    i.e. preferentially by current copy count), otherwise a fresh document
//!    whose keywords come from its class vocabulary (Zipf-weighted ranks).
//!    `replica_prob = 0.22` reproduces the eDonkey trace statistics the
//!    paper cites: ≈ 1.28 copies per document, ≈ 89 % singletons.

use crate::config::WorkloadConfig;
use crate::ids::{ClassId, DocId, InterestSet, KeywordId};
use crate::vocab::Vocabulary;
use crate::zipf::{geometric, Zipf};
use asap_overlay::PeerId;
use rand::rngs::SmallRng;
use rand::Rng;

/// One document: its semantic class and sorted, distinct keyword set.
#[derive(Debug, Clone)]
pub struct Document {
    pub class: ClassId,
    pub keywords: Vec<KeywordId>,
}

impl Document {
    /// The paper's match predicate: the document matches a request iff it
    /// contains **all** query terms.
    pub fn matches(&self, terms: &[KeywordId]) -> bool {
        terms.iter().all(|t| self.keywords.binary_search(t).is_ok())
    }
}

/// The universal content set `D_all` plus per-peer initial holdings and
/// interests.
#[derive(Debug)]
pub struct ContentModel {
    pub vocab: Vocabulary,
    pub docs: Vec<Document>,
    /// Initial shared documents per peer, sorted; empty for free riders.
    pub initial_holdings: Vec<Vec<DocId>>,
    /// `I(p)` for every peer.
    pub interests: Vec<InterestSet>,
    /// Documents grouped by class (query-target lookup).
    pub class_docs: Vec<Vec<DocId>>,
    pub num_classes: usize,
}

impl ContentModel {
    pub fn num_peers(&self) -> usize {
        self.initial_holdings.len()
    }

    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    #[inline]
    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }

    /// A peer that initially shares nothing.
    pub fn is_free_rider(&self, p: PeerId) -> bool {
        self.initial_holdings[p.index()].is_empty()
    }

    /// Fig. 2: for each class, the number of peers whose shared content
    /// includes at least one document of that class.
    pub fn class_node_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for holdings in &self.initial_holdings {
            let classes: InterestSet = holdings
                .iter()
                .map(|&d| self.doc(d).class)
                .collect();
            for c in classes.iter() {
                counts[c.index()] += 1;
            }
        }
        counts
    }

    /// Fig. 3: for each class, the number of peers holding that interest.
    pub fn interest_node_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &i in &self.interests {
            for c in i.iter() {
                counts[c.index()] += 1;
            }
        }
        counts
    }

    /// `(mean copies per document, fraction of single-copy documents)` over
    /// the initial placement — the paper reports ≈ 1.28 and 89 %.
    pub fn copy_stats(&self) -> (f64, f64) {
        let mut copies = vec![0usize; self.docs.len()];
        for holdings in &self.initial_holdings {
            for &d in holdings {
                copies[d.index()] += 1;
            }
        }
        let placed: Vec<usize> = copies.into_iter().filter(|&c| c > 0).collect();
        if placed.is_empty() {
            return (0.0, 0.0);
        }
        let total: usize = placed.iter().sum();
        let singles = placed.iter().filter(|&&c| c == 1).count();
        (
            total as f64 / placed.len() as f64,
            singles as f64 / placed.len() as f64,
        )
    }
}

/// Generate the content model.
pub fn generate_model(config: &WorkloadConfig, rng: &mut SmallRng) -> ContentModel {
    let class_pop = Zipf::new(config.classes, config.class_zipf_s);
    let word_rank = Zipf::new(config.vocab_per_class, 1.0);
    let vocab = Vocabulary::for_classes(config.classes, config.vocab_per_class);

    // Interests.
    let mut interests = Vec::with_capacity(config.peers);
    let mut free_rider = Vec::with_capacity(config.peers);
    for _ in 0..config.peers {
        let is_fr = rng.gen_bool(config.free_rider_fraction);
        free_rider.push(is_fr);
        let mut set = InterestSet::EMPTY;
        if is_fr {
            // "The interests of free-riding nodes are assigned randomly."
            let n = rng.gen_range(1..=3);
            while set.len() < n {
                set.insert(ClassId(rng.gen_range(0..config.classes as u8)));
            }
        } else {
            set.insert(ClassId(class_pop.sample(rng) as u8));
            if rng.gen_bool(0.5) {
                set.insert(ClassId(rng.gen_range(0..config.classes as u8)));
            }
            if rng.gen_bool(0.15) {
                set.insert(ClassId(rng.gen_range(0..config.classes as u8)));
            }
        }
        interests.push(set);
    }

    // Documents and placements. Every fresh document draws its eventual
    // copy count up front — 89 % stay singletons, the rest follow a
    // geometric tail with conditional mean ≈ 3.55, so the marginal mean is
    // 0.89·1 + 0.11·3.55 ≈ 1.28 (the eDonkey statistics the paper cites).
    // Replica placements then fill the open quotas of their class.
    let mut docs: Vec<Document> = Vec::new();
    let mut class_docs: Vec<Vec<DocId>> = vec![Vec::new(); config.classes];
    // Per class: documents with unfilled copy quota (doc, copies remaining).
    let mut open_pool: Vec<Vec<(DocId, u32)>> = vec![Vec::new(); config.classes];
    let mut initial_holdings: Vec<Vec<DocId>> = vec![Vec::new(); config.peers];

    for p in 0..config.peers {
        if free_rider[p] {
            continue;
        }
        let my_interests: Vec<ClassId> = interests[p].iter().collect();
        let n_docs = 1 + geometric(config.mean_docs_per_sharer - 1.0, rng);
        for _ in 0..n_docs {
            let class = my_interests[rng.gen_range(0..my_interests.len())];
            let pool = &mut open_pool[class.index()];
            let doc_id = if rng.gen_bool(config.replica_prob) && !pool.is_empty() {
                // Replica: fill a random open quota of this class.
                let slot = rng.gen_range(0..pool.len());
                let (id, _) = pool[slot];
                if initial_holdings[p].contains(&id) {
                    continue; // a peer holds at most one copy
                }
                pool[slot].1 -= 1;
                if pool[slot].1 == 0 {
                    pool.swap_remove(slot);
                }
                id
            } else {
                let id = DocId(docs.len() as u32);
                docs.push(make_document(config, class, &word_rank, rng));
                class_docs[class.index()].push(id);
                let extra_copies = sample_extra_copies(rng);
                if extra_copies > 0 {
                    pool.push((id, extra_copies));
                }
                id
            };
            initial_holdings[p].push(doc_id);
        }
        initial_holdings[p].sort_unstable();
    }

    ContentModel {
        vocab,
        docs,
        initial_holdings,
        interests,
        class_docs,
        num_classes: config.classes,
    }
}

/// Copies beyond the first a fresh document will eventually receive:
/// 0 with probability 0.89; otherwise `1 + Geometric(mean 1.55)`, i.e. total
/// copies `2 + G` with conditional mean 3.55. Marginal mean: 1 + 0.11·2.55 ≈
/// 1.28.
fn sample_extra_copies(rng: &mut SmallRng) -> u32 {
    if rng.gen_bool(0.89) {
        0
    } else {
        1 + geometric(1.55, rng) as u32
    }
}

/// Sample a fresh document of `class`: 3–8 distinct keywords, Zipf-weighted
/// ranks within the class vocabulary.
pub fn make_document(
    config: &WorkloadConfig,
    class: ClassId,
    word_rank: &Zipf,
    rng: &mut SmallRng,
) -> Document {
    let (lo, hi) = config.keywords_per_doc;
    let n = rng.gen_range(lo..=hi).min(config.vocab_per_class);
    let mut keywords: Vec<KeywordId> = Vec::with_capacity(n);
    let mut guard = 0;
    while keywords.len() < n && guard < n * 50 {
        guard += 1;
        let rank = word_rank.sample(rng);
        let kw = KeywordId((class.index() * config.vocab_per_class + rank) as u32);
        if !keywords.contains(&kw) {
            keywords.push(kw);
        }
    }
    keywords.sort_unstable();
    Document { class, keywords }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn model(peers: usize, seed: u64) -> ContentModel {
        let cfg = WorkloadConfig::reduced(peers, 100, seed);
        let mut rng = SmallRng::seed_from_u64(seed);
        generate_model(&cfg, &mut rng)
    }

    #[test]
    fn document_match_predicate() {
        let d = Document {
            class: ClassId(0),
            keywords: vec![KeywordId(2), KeywordId(5), KeywordId(9)],
        };
        assert!(d.matches(&[KeywordId(5)]));
        assert!(d.matches(&[KeywordId(2), KeywordId(9)]));
        assert!(!d.matches(&[KeywordId(2), KeywordId(3)]));
        assert!(d.matches(&[]));
    }

    #[test]
    fn copy_stats_match_edonkey_marginals() {
        let m = model(4_000, 1);
        let (mean, singles) = m.copy_stats();
        assert!(
            (mean - 1.28).abs() < 0.12,
            "mean copies {mean}, paper reports 1.28"
        );
        assert!(
            (singles - 0.89).abs() < 0.05,
            "singleton fraction {singles}, paper reports 0.89"
        );
    }

    #[test]
    fn free_rider_fraction_respected() {
        let m = model(3_000, 2);
        let frs = (0..3_000)
            .filter(|&p| m.is_free_rider(PeerId(p as u32)))
            .count();
        let frac = frs as f64 / 3_000.0;
        assert!((frac - 0.25).abs() < 0.05, "free riders {frac}");
    }

    #[test]
    fn sharer_interests_cover_their_content() {
        let m = model(1_000, 3);
        for p in 0..1_000u32 {
            for &d in &m.initial_holdings[p as usize] {
                assert!(
                    m.interests[p as usize].contains(m.doc(d).class),
                    "peer {p} shares a document outside its interests"
                );
            }
        }
    }

    #[test]
    fn every_peer_has_interests() {
        let m = model(1_000, 4);
        assert!(m.interests.iter().all(|i| !i.is_empty()));
    }

    #[test]
    fn class_distribution_is_skewed() {
        let m = model(4_000, 5);
        let counts = m.class_node_counts();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max > min.max(1) * 2,
            "Fig 2 shape: classes must be visibly skewed ({counts:?})"
        );
    }

    #[test]
    fn interest_counts_at_least_content_counts() {
        // Every sharer's content classes are among its interests, so Fig 3
        // counts dominate Fig 2 counts (free riders only add interests).
        let m = model(2_000, 6);
        let content = m.class_node_counts();
        let interest = m.interest_node_counts();
        for (c, (&cc, &ic)) in content.iter().zip(&interest).enumerate() {
            assert!(ic >= cc, "class {c}: interests {ic} < content {cc}");
        }
    }

    #[test]
    fn keywords_sorted_distinct_and_in_class_vocab() {
        let cfg = WorkloadConfig::reduced(500, 100, 7);
        let mut rng = SmallRng::seed_from_u64(7);
        let m = generate_model(&cfg, &mut rng);
        for d in &m.docs {
            assert!(d.keywords.windows(2).all(|w| w[0] < w[1]));
            let base = d.class.index() * cfg.vocab_per_class;
            for kw in &d.keywords {
                let i = kw.index();
                assert!(i >= base && i < base + cfg.vocab_per_class);
            }
        }
    }

    #[test]
    fn holdings_sorted_and_deduplicated() {
        let m = model(1_000, 8);
        for h in &m.initial_holdings {
            assert!(h.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
