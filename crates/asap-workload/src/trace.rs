//! The event trace: queries, content changes, churn — time-stamped and
//! generated chronologically against the evolving system state so that every
//! query is answerable when issued (paper: "all the search requests are
//! created such that there is at least one matching document existing in the
//! system at the request time").

use crate::config::WorkloadConfig;
use crate::content::ContentModel;
use crate::ids::{ClassId, DocId, KeywordId};
use crate::state::ContentState;
use crate::zipf::exp_gap_us;
use asap_overlay::PeerId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// One search request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    pub id: u32,
    pub requester: PeerId,
    /// Conjunctive search terms (all must appear in one document).
    pub terms: Vec<KeywordId>,
    /// The document the generator aimed at — ground truth for debugging and
    /// trace validation; protocols never see it.
    pub target: DocId,
}

/// A trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    Query(QuerySpec),
    /// Content change: a peer starts sharing (a replica of) a document.
    AddDocument { peer: PeerId, doc: DocId },
    /// Content change: a peer stops sharing a document.
    RemoveDocument { peer: PeerId, doc: DocId },
    /// A peer joins the overlay.
    Join(PeerId),
    /// A peer departs.
    Leave(PeerId),
}

/// Time-stamped event. Events with equal timestamps apply in vector order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    pub time_us: u64,
    pub event: TraceEvent,
}

/// The full trace, sorted by time.
#[derive(Debug, Default)]
pub struct Trace {
    pub events: Vec<TimedEvent>,
}

impl Trace {
    pub fn duration_us(&self) -> u64 {
        self.events.last().map_or(0, |e| e.time_us)
    }

    pub fn num_queries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Query(_)))
            .count()
    }

    /// Replay the trace and assert every query has ≥ 1 matching document on
    /// a live peer other than the requester at issue time. Returns the
    /// number of queries checked.
    pub fn validate(&self, model: &ContentModel, initially_alive: &[bool]) -> usize {
        let mut state = ContentState::from_model(model);
        let mut alive = initially_alive.to_vec();
        let mut checked = 0;
        for te in &self.events {
            match &te.event {
                TraceEvent::Query(q) => {
                    assert!(alive[q.requester.index()], "requester must be alive");
                    let ok = state.holders(q.target).iter().any(|&h| {
                        alive[h.index()]
                            && h != q.requester
                            && model.doc(q.target).matches(&q.terms)
                    });
                    assert!(ok, "query {} unanswerable at issue time", q.id);
                    checked += 1;
                }
                TraceEvent::AddDocument { peer, doc } => {
                    state.add(model, *peer, *doc);
                }
                TraceEvent::RemoveDocument { peer, doc } => {
                    state.remove(model, *peer, *doc);
                }
                TraceEvent::Join(p) => alive[p.index()] = true,
                TraceEvent::Leave(p) => alive[p.index()] = false,
            }
        }
        checked
    }
}

/// Generate the trace. Returns the event list and the initial liveness map.
pub fn generate_trace(
    config: &WorkloadConfig,
    model: &ContentModel,
    rng: &mut SmallRng,
) -> (Trace, Vec<bool>) {
    // --- timeline skeleton -------------------------------------------------
    // Query times: Poisson arrivals. Churn times: uniform over the duration.
    let pack = &config.pack;
    let mut query_times = Vec::with_capacity(config.queries);
    let mut t = 0u64;
    for i in 0..config.queries {
        let mut gap = exp_gap_us(config.arrival_rate_hz, rng);
        // Flash crowd: same exponential draw, compressed — the knob scales
        // the gap rather than drawing again, so an inert pack consumes the
        // exact RNG sequence of the unperturbed generator.
        if pack.flash_boost > 1.0 && pack.in_flash_window(i, config.queries) {
            gap = ((gap as f64 / pack.flash_boost) as u64).max(1);
        }
        t += gap;
        query_times.push(t);
    }
    let duration = t.max(1);

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Slot {
        Query,
        Join,
        Leave,
    }
    let mut slots: Vec<(u64, Slot)> = query_times.iter().map(|&t| (t, Slot::Query)).collect();
    for _ in 0..config.joins {
        slots.push((rng.gen_range(0..duration), Slot::Join));
    }
    for _ in 0..config.leaves {
        slots.push((rng.gen_range(0..duration), Slot::Leave));
    }
    slots.sort_by_key(|&(t, _)| t);

    // --- liveness setup ----------------------------------------------------
    // Rejoin churn: the whole population starts online; departures feed a
    // pool that join events revive from. This matches the paper's snapshot
    // semantics (the 10,000 selected peers own all content; churn moves
    // them off- and back on-line).
    let mut alive = vec![true; config.peers];
    let mut departed: Vec<PeerId> = Vec::new();
    let initially_alive = alive.clone();
    let mut alive_count = config.peers;
    // Rejoin order, newest last — the heavy-tail knob's eviction stack.
    let mut recent_joiners: Vec<PeerId> = Vec::new();

    // --- chronological generation ------------------------------------------
    let mut state = ContentState::from_model(model);
    let mut events = Vec::with_capacity(slots.len() + config.queries / 8);
    let mut query_id = 0u32;

    for (time_us, slot) in slots {
        match slot {
            Slot::Join => {
                // Revive a random departed peer; a join with nobody offline
                // is dropped (leaves and joins interleave randomly).
                if departed.is_empty() {
                    continue;
                }
                let i = rng.gen_range(0..departed.len());
                let p = departed.swap_remove(i);
                alive[p.index()] = true;
                alive_count += 1;
                if pack.session_tail > 0.0 {
                    recent_joiners.push(p);
                }
                events.push(TimedEvent {
                    time_us,
                    event: TraceEvent::Join(p),
                });
            }
            Slot::Leave => {
                // Never drain the network below a quarter of its size.
                if alive_count <= config.peers / 4 + 2 {
                    continue;
                }
                // Heavy-tailed sessions: prefer evicting the most recent
                // rejoiner, so rejoin→leave cycles produce a population of
                // short sessions on top of the uniform baseline.
                let mut picked = None;
                if pack.session_tail > 0.0 && rng.gen_bool(pack.session_tail) {
                    while let Some(p) = recent_joiners.pop() {
                        if alive[p.index()] {
                            picked = Some(p);
                            break;
                        }
                    }
                }
                let p = picked.unwrap_or_else(|| random_alive(&alive, alive_count, rng));
                alive[p.index()] = false;
                alive_count -= 1;
                departed.push(p);
                events.push(TimedEvent {
                    time_us,
                    event: TraceEvent::Leave(p),
                });
            }
            Slot::Query => {
                let progress = f64::from(query_id) / config.queries.max(1) as f64;
                let Some(q) = synthesize_query(
                    config, model, &state, &alive, alive_count, query_id, progress, rng,
                ) else {
                    continue; // no answerable target right now (vanishingly rare)
                };
                query_id += 1;
                events.push(TimedEvent {
                    time_us,
                    event: TraceEvent::Query(q),
                });
                // 10 % of requests are followed by a content change.
                if rng.gen_bool(config.content_change_fraction) {
                    if let Some(ev) = synthesize_change(model, &mut state, &alive, rng) {
                        events.push(TimedEvent { time_us, event: ev });
                    }
                }
            }
        }
    }

    (Trace { events }, initially_alive)
}

fn random_alive(alive: &[bool], alive_count: usize, rng: &mut SmallRng) -> PeerId {
    debug_assert!(alive_count > 0);
    loop {
        let p = rng.gen_range(0..alive.len());
        if alive[p] {
            return PeerId(p as u32);
        }
    }
}

/// Pick a requester and an answerable target document within its interests
/// (or, under interest drift, progressively outside them).
#[allow(clippy::too_many_arguments)]
fn synthesize_query(
    config: &WorkloadConfig,
    model: &ContentModel,
    state: &ContentState,
    alive: &[bool],
    alive_count: usize,
    id: u32,
    progress: f64,
    rng: &mut SmallRng,
) -> Option<QuerySpec> {
    let pack = &config.pack;
    // A few requester attempts; each tries several targets.
    for _ in 0..8 {
        let requester = random_alive(alive, alive_count, rng);
        let classes: Vec<ClassId> = model.interests[requester.index()].iter().collect();
        for _ in 0..32 {
            let mut class = classes[rng.gen_range(0..classes.len())];
            // Interest drift: rotate the class by an offset that grows with
            // trace progress — late queries probe classes the requester's
            // static profile (and everyone's cached ads) never covered.
            if pack.drift_strength > 0.0 && rng.gen_bool(pack.drift_strength) {
                let shift = 1 + (progress * (model.num_classes - 1) as f64) as usize;
                class = ClassId(((class.index() + shift) % model.num_classes) as u8);
            }
            let pool = &model.class_docs[class.index()];
            if pool.is_empty() {
                continue;
            }
            // Content hotspot: pile demand onto the class's first document
            // (an arbitrary-but-fixed "hit release") instead of spreading
            // uniformly over the pool.
            let doc = if pack.hotspot_prob > 0.0 && rng.gen_bool(pack.hotspot_prob) {
                pool[0]
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if state.peer_has_doc(requester, doc) {
                continue; // peers ask for documents they lack
            }
            if !state
                .holders(doc)
                .iter()
                .any(|&h| alive[h.index()] && h != requester)
            {
                continue; // no live copy
            }
            let terms = pick_terms(config, model, doc, rng);
            return Some(QuerySpec {
                id,
                requester,
                terms,
                target: doc,
            });
        }
    }
    None
}

/// Random distinct subset of the target document's keywords — so the target
/// matches by construction.
fn pick_terms(
    config: &WorkloadConfig,
    model: &ContentModel,
    doc: DocId,
    rng: &mut SmallRng,
) -> Vec<KeywordId> {
    let kws = &model.doc(doc).keywords;
    let (lo, hi) = config.query_terms;
    let n = rng.gen_range(lo..=hi).min(kws.len()).max(1);
    let mut picked: Vec<KeywordId> = kws.as_slice().to_vec();
    picked.shuffle(rng);
    picked.truncate(n);
    picked.sort_unstable();
    picked
}

/// A content change: 50/50 addition (replicating an existing document the
/// peer is interested in but lacks) or removal of a held document. Keeping
/// `D_all` fixed matches the trace-preparation step, where all documents come
/// from the snapshot.
fn synthesize_change(
    model: &ContentModel,
    state: &mut ContentState,
    alive: &[bool],
    rng: &mut SmallRng,
) -> Option<TraceEvent> {
    let alive_count = alive.iter().filter(|&&a| a).count();
    if rng.gen_bool(0.5) {
        // Addition.
        for _ in 0..16 {
            let peer = random_alive(alive, alive_count, rng);
            let classes: Vec<ClassId> = model.interests[peer.index()].iter().collect();
            let class = classes[rng.gen_range(0..classes.len())];
            let pool = &model.class_docs[class.index()];
            if pool.is_empty() {
                continue;
            }
            let doc = pool[rng.gen_range(0..pool.len())];
            if state.add(model, peer, doc) {
                return Some(TraceEvent::AddDocument { peer, doc });
            }
        }
        None
    } else {
        // Removal.
        for _ in 0..16 {
            let peer = random_alive(alive, alive_count, rng);
            let docs = state.peer_docs(peer);
            if docs.is_empty() {
                continue;
            }
            let doc = docs[rng.gen_range(0..docs.len())];
            state.remove(model, peer, doc);
            return Some(TraceEvent::RemoveDocument { peer, doc });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::generate_model;
    use rand::SeedableRng;

    fn workload(peers: usize, queries: usize, seed: u64) -> (ContentModel, Trace, Vec<bool>) {
        let cfg = WorkloadConfig::reduced(peers, queries, seed);
        let mut rng = SmallRng::seed_from_u64(seed);
        let model = generate_model(&cfg, &mut rng);
        let (trace, alive) = generate_trace(&cfg, &model, &mut rng);
        (model, trace, alive)
    }

    #[test]
    fn every_query_is_answerable() {
        let (model, trace, alive) = workload(400, 800, 21);
        let checked = trace.validate(&model, &alive);
        assert!(checked >= 790, "only {checked} queries generated/validated");
    }

    #[test]
    fn events_are_time_sorted() {
        let (_, trace, _) = workload(300, 500, 22);
        assert!(trace.events.windows(2).all(|w| w[0].time_us <= w[1].time_us));
    }

    #[test]
    fn churn_counts_near_config() {
        let (_, trace, alive) = workload(500, 600, 23);
        let joins = trace
            .events
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Join(_)))
            .count();
        let leaves = trace
            .events
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Leave(_)))
            .count();
        assert!(joins >= 20, "joins {joins}");
        assert!(leaves >= 40, "leaves {leaves}");
        assert!(joins <= leaves, "every join revives an earlier departure");
        assert!(alive.iter().all(|&a| a), "rejoin churn: everyone starts online");
    }

    #[test]
    fn content_changes_near_ten_percent() {
        let (_, trace, _) = workload(500, 2_000, 24);
        let changes = trace
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    TraceEvent::AddDocument { .. } | TraceEvent::RemoveDocument { .. }
                )
            })
            .count();
        let queries = trace.num_queries();
        let frac = changes as f64 / queries as f64;
        assert!((frac - 0.10).abs() < 0.03, "change fraction {frac}");
    }

    #[test]
    fn arrival_rate_near_lambda() {
        let (_, trace, _) = workload(300, 2_000, 25);
        let queries = trace.num_queries() as f64;
        let secs = trace.duration_us() as f64 / 1e6;
        let rate = queries / secs;
        assert!((rate - 8.0).abs() < 1.0, "arrival rate {rate}/s");
    }

    #[test]
    fn requesters_do_not_hold_target() {
        let (model, trace, alive) = workload(300, 400, 26);
        let mut state = ContentState::from_model(&model);
        let mut alive = alive;
        for te in &trace.events {
            match &te.event {
                TraceEvent::Query(q) => {
                    assert!(!state.peer_has_doc(q.requester, q.target));
                }
                TraceEvent::AddDocument { peer, doc } => {
                    state.add(&model, *peer, *doc);
                }
                TraceEvent::RemoveDocument { peer, doc } => {
                    state.remove(&model, *peer, *doc);
                }
                TraceEvent::Join(p) => alive[p.index()] = true,
                TraceEvent::Leave(p) => alive[p.index()] = false,
            }
        }
    }

    fn pack_workload(
        pack: crate::config::HeterogeneityPack,
        peers: usize,
        queries: usize,
        seed: u64,
    ) -> (WorkloadConfig, ContentModel, Trace, Vec<bool>) {
        let mut cfg = WorkloadConfig::reduced(peers, queries, seed);
        cfg.pack = pack;
        let mut rng = SmallRng::seed_from_u64(seed);
        let model = generate_model(&cfg, &mut rng);
        let (trace, alive) = generate_trace(&cfg, &model, &mut rng);
        (cfg, model, trace, alive)
    }

    #[test]
    fn stress_pack_traces_stay_answerable() {
        use crate::config::HeterogeneityPack;
        let (cfg, model, trace, alive) = pack_workload(HeterogeneityPack::stress(), 400, 800, 31);
        cfg.validate();
        let checked = trace.validate(&model, &alive);
        assert!(checked >= 700, "only {checked} stress queries validated");
    }

    #[test]
    fn flash_crowd_compresses_arrivals_inside_the_window() {
        use crate::config::HeterogeneityPack;
        let (_, _, trace, _) = pack_workload(HeterogeneityPack::flash_crowd(), 300, 2_000, 32);
        let times: Vec<u64> = trace
            .events
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Query(_)))
            .map(|e| e.time_us)
            .collect();
        let n = times.len();
        let mean_gap = |w: &[u64]| {
            w.windows(2).map(|g| (g[1] - g[0]) as f64).sum::<f64>() / (w.len() - 1) as f64
        };
        // The spike window spans the middle fifth of the query sequence.
        let inside = mean_gap(&times[(n * 2) / 5..(n * 3) / 5]);
        let outside = mean_gap(&times[..n / 3]);
        assert!(
            inside * 3.0 < outside,
            "flash window gaps ({inside:.0} µs) should be ≪ baseline ({outside:.0} µs)"
        );
    }

    #[test]
    fn drift_probes_outside_static_interests() {
        use crate::config::HeterogeneityPack;
        let drifted = HeterogeneityPack {
            drift_strength: 0.8,
            ..HeterogeneityPack::inert()
        };
        let (_, model, trace, _) = pack_workload(drifted, 300, 1_000, 33);
        let outside = |trace: &Trace| {
            trace
                .events
                .iter()
                .filter_map(|e| match &e.event {
                    TraceEvent::Query(q) => Some(q),
                    _ => None,
                })
                .filter(|q| {
                    let class = model.doc(q.target).class;
                    !model.interests[q.requester.index()].contains(class)
                })
                .count()
        };
        assert!(outside(&trace) > 0, "drift must reach uninterested classes");
        // The homogeneous generator picks targets from the requester's own
        // interests by construction — zero escapes.
        let (_, model2, baseline, _) = pack_workload(HeterogeneityPack::inert(), 300, 1_000, 33);
        let baseline_outside = baseline
            .events
            .iter()
            .filter_map(|e| match &e.event {
                TraceEvent::Query(q) => Some(q),
                _ => None,
            })
            .filter(|q| {
                let class = model2.doc(q.target).class;
                !model2.interests[q.requester.index()].contains(class)
            })
            .count();
        assert_eq!(baseline_outside, 0);
    }

    #[test]
    fn hotspot_concentrates_target_popularity() {
        use crate::config::HeterogeneityPack;
        let hot = HeterogeneityPack {
            hotspot_prob: 0.8,
            ..HeterogeneityPack::inert()
        };
        let distinct = |trace: &Trace| {
            let mut targets: Vec<DocId> = trace
                .events
                .iter()
                .filter_map(|e| match &e.event {
                    TraceEvent::Query(q) => Some(q.target),
                    _ => None,
                })
                .collect();
            targets.sort_unstable();
            targets.dedup();
            targets.len()
        };
        let (_, _, hot_trace, _) = pack_workload(hot, 300, 1_500, 34);
        let (_, _, cold_trace, _) = pack_workload(HeterogeneityPack::inert(), 300, 1_500, 34);
        assert!(
            distinct(&hot_trace) * 2 < distinct(&cold_trace),
            "hotspot must concentrate targets ({} vs {})",
            distinct(&hot_trace),
            distinct(&cold_trace)
        );
    }

    #[test]
    fn heavy_tail_produces_repeat_leavers() {
        use crate::config::HeterogeneityPack;
        let tail = HeterogeneityPack {
            session_tail: 0.9,
            ..HeterogeneityPack::inert()
        };
        let repeat_leavers = |trace: &Trace| {
            let mut leavers: Vec<PeerId> = trace
                .events
                .iter()
                .filter_map(|e| match e.event {
                    TraceEvent::Leave(p) => Some(p),
                    _ => None,
                })
                .collect();
            leavers.sort_unstable();
            let total = leavers.len();
            leavers.dedup();
            total - leavers.len() // leave events beyond each peer's first
        };
        let mk = |pack| {
            let mut cfg = WorkloadConfig::reduced(400, 2_000, 35);
            cfg.joins = 150;
            cfg.leaves = 150;
            cfg.pack = pack;
            let mut rng = SmallRng::seed_from_u64(35);
            let model = generate_model(&cfg, &mut rng);
            let (trace, _) = generate_trace(&cfg, &model, &mut rng);
            trace
        };
        let tailed = repeat_leavers(&mk(tail));
        let uniform = repeat_leavers(&mk(HeterogeneityPack::inert()));
        assert!(
            tailed > uniform,
            "rejoin-eviction bias must create repeat leavers ({tailed} vs {uniform})"
        );
    }

    #[test]
    fn query_terms_within_configured_range() {
        let cfg = WorkloadConfig::reduced(300, 400, 27);
        let mut rng = SmallRng::seed_from_u64(27);
        let model = generate_model(&cfg, &mut rng);
        let (trace, _) = generate_trace(&cfg, &model, &mut rng);
        for te in &trace.events {
            if let TraceEvent::Query(q) = &te.event {
                assert!(!q.terms.is_empty());
                assert!(q.terms.len() <= cfg.query_terms.1);
                assert!(model.doc(q.target).matches(&q.terms));
            }
        }
    }
}
