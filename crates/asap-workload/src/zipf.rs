//! Small sampling helpers (Zipf and geometric) built on `rand`'s primitives.

use rand::rngs::SmallRng;
use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank) ∝ 1/(rank+1)^s`, sampled by inverse CDF (binary search).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Self { cdf }
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.total_cmp(&u))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

/// Geometric sample with the given mean (support `0, 1, 2, …`), via
/// inversion. `mean = (1-p)/p`.
pub fn geometric(mean: f64, rng: &mut SmallRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (mean + 1.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (u.ln() / (1.0 - p).ln()).floor() as usize
}

/// Exponential inter-arrival gap in microseconds for a rate of `rate_hz`
/// events per second.
pub fn exp_gap_us(rate_hz: f64, rng: &mut SmallRng) -> u64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let secs = -u.ln() / rate_hz;
    (secs * 1e6) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_normalized() {
        let z = Zipf::new(14, 0.95);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        let total: f64 = (0..14).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_rank_zero_most_likely() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[80]);
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(5, 2.0);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn geometric_mean_close() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 30_000;
        let sum: usize = (0..n).map(|_| geometric(4.0, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn geometric_degenerate_mean() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(geometric(0.0, &mut rng), 0);
    }

    #[test]
    fn exp_gap_mean_close_to_inverse_rate() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 30_000u64;
        let sum: u64 = (0..n).map(|_| exp_gap_us(8.0, &mut rng)).sum();
        let mean_us = sum as f64 / n as f64;
        // 1/8 s = 125,000 µs
        assert!((mean_us - 125_000.0).abs() < 5_000.0, "mean {mean_us}");
    }
}
