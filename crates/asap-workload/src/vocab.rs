//! The interned keyword vocabulary.
//!
//! Keywords are the unit ASAP hashes into Bloom filters; the simulator works
//! with dense [`KeywordId`]s and resolves strings only when hashing.

use crate::ids::{ClassId, KeywordId};

/// Keyword table: id ↔ string. Built once by the content generator.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    words: Vec<String>,
}

impl Vocabulary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a new keyword, returning its id.
    pub fn intern(&mut self, word: String) -> KeywordId {
        let id = KeywordId(self.words.len() as u32);
        self.words.push(word);
        id
    }

    /// Build a class vocabulary of `per_class` words per class. Word strings
    /// are deterministic (`c<class>.kw<rank>`), so filters built from them
    /// are reproducible across runs.
    pub fn for_classes(classes: usize, per_class: usize) -> Self {
        let mut v = Self::new();
        for c in 0..classes {
            for r in 0..per_class {
                v.intern(format!("c{c}.kw{r}"));
            }
        }
        v
    }

    /// Id of rank `rank` within class `class`, assuming `for_classes` layout.
    pub fn class_word(&self, class: ClassId, per_class: usize, rank: usize) -> KeywordId {
        let id = class.index() * per_class + rank;
        debug_assert!(id < self.words.len());
        KeywordId(id as u32)
    }

    #[inline]
    pub fn word(&self, id: KeywordId) -> &str {
        &self.words[id.index()]
    }

    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_resolve() {
        let mut v = Vocabulary::new();
        let a = v.intern("alpha".into());
        let b = v.intern("beta".into());
        assert_eq!(v.word(a), "alpha");
        assert_eq!(v.word(b), "beta");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn class_layout() {
        let v = Vocabulary::for_classes(3, 10);
        assert_eq!(v.len(), 30);
        let id = v.class_word(ClassId(2), 10, 4);
        assert_eq!(v.word(id), "c2.kw4");
    }

    #[test]
    fn words_are_distinct() {
        let v = Vocabulary::for_classes(14, 100);
        let set: std::collections::BTreeSet<&str> =
            (0..v.len()).map(|i| v.word(KeywordId(i as u32))).collect();
        assert_eq!(set.len(), v.len());
    }
}
