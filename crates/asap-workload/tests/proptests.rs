//! Property-based tests for the workload generator: structural invariants
//! that must hold for any seed and (sane) size.

use asap_workload::{ContentState, TraceEvent, WorkloadConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated trace is answerable (live non-requester holder with
    /// a term-matching document at issue time), for arbitrary seeds.
    #[test]
    fn every_query_answerable(seed in 0u64..10_000) {
        let cfg = WorkloadConfig::reduced(200, 250, seed);
        let w = asap_workload::generate(&cfg);
        let checked = w.trace.validate(&w.model, &w.initially_alive);
        prop_assert!(checked > 200, "only {} queries", checked);
    }

    /// Replaying the trace never corrupts the content state: removals only
    /// remove held docs, adds only add absent docs, holder lists stay
    /// consistent.
    #[test]
    fn trace_replay_preserves_state_invariants(seed in 0u64..10_000) {
        let cfg = WorkloadConfig::reduced(150, 200, seed);
        let w = asap_workload::generate(&cfg);
        let mut state = ContentState::from_model(&w.model);
        for ev in &w.trace.events {
            match &ev.event {
                TraceEvent::AddDocument { peer, doc } => {
                    prop_assert!(!state.peer_has_doc(*peer, *doc), "double add");
                    state.add(&w.model, *peer, *doc);
                }
                TraceEvent::RemoveDocument { peer, doc } => {
                    prop_assert!(state.peer_has_doc(*peer, *doc), "phantom remove");
                    state.remove(&w.model, *peer, *doc);
                }
                _ => {}
            }
        }
        // Holder lists consistent with holdings.
        for p in 0..w.model.num_peers() {
            let peer = asap_workload::PeerId(p as u32);
            for &d in state.peer_docs(peer) {
                prop_assert!(state.holders(d).contains(&peer));
            }
        }
    }

    /// Copy statistics stay near the eDonkey marginals across seeds.
    #[test]
    fn copy_stats_stable_across_seeds(seed in 0u64..10_000) {
        let cfg = WorkloadConfig::reduced(1_500, 10, seed);
        let w = asap_workload::generate(&cfg);
        let (mean, singles) = w.model.copy_stats();
        prop_assert!((mean - 1.28).abs() < 0.25, "mean copies {}", mean);
        prop_assert!((singles - 0.89).abs() < 0.08, "singletons {}", singles);
    }

    /// Churn events keep liveness consistent: no dead peer leaves, no live
    /// peer joins, and the alive count never drops below a quarter.
    #[test]
    fn churn_liveness_consistent(seed in 0u64..10_000) {
        let cfg = WorkloadConfig::reduced(200, 300, seed);
        let w = asap_workload::generate(&cfg);
        let mut alive = w.initially_alive.clone();
        let mut count = alive.iter().filter(|&&a| a).count();
        for ev in &w.trace.events {
            match &ev.event {
                TraceEvent::Join(p) => {
                    prop_assert!(!alive[p.index()], "live peer joined");
                    alive[p.index()] = true;
                    count += 1;
                }
                TraceEvent::Leave(p) => {
                    prop_assert!(alive[p.index()], "dead peer left");
                    alive[p.index()] = false;
                    count -= 1;
                    prop_assert!(count > cfg.peers / 4, "network drained");
                }
                _ => {}
            }
        }
    }
}
