//! System-load accounting: bytes per message class per second, normalized by
//! the number of live peers.

/// Message classes distinguished by the load breakdown (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Baseline query (flooding / walker / GSA probe).
    Query,
    /// Baseline query hit returned to the requester.
    QueryHit,
    /// ASAP full ad (complete Bloom filter).
    FullAd,
    /// ASAP patch ad (changed filter bits).
    PatchAd,
    /// ASAP refresh ad (no content payload).
    RefreshAd,
    /// ASAP ads request to neighbors.
    AdsRequest,
    /// ASAP ads reply (cached ads with overlapping topics).
    AdsReply,
    /// ASAP content confirmation to an ad's source.
    Confirm,
    /// ASAP confirmation reply.
    ConfirmReply,
}

impl MsgClass {
    pub const COUNT: usize = 9;

    pub const ALL: [MsgClass; Self::COUNT] = [
        Self::Query,
        Self::QueryHit,
        Self::FullAd,
        Self::PatchAd,
        Self::RefreshAd,
        Self::AdsRequest,
        Self::AdsReply,
        Self::Confirm,
        Self::ConfirmReply,
    ];

    #[inline]
    pub fn index(self) -> usize {
        match self {
            Self::Query => 0,
            Self::QueryHit => 1,
            Self::FullAd => 2,
            Self::PatchAd => 3,
            Self::RefreshAd => 4,
            Self::AdsRequest => 5,
            Self::AdsReply => 6,
            Self::Confirm => 7,
            Self::ConfirmReply => 8,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Self::Query => "query",
            Self::QueryHit => "query-hit",
            Self::FullAd => "full-ad",
            Self::PatchAd => "patch-ad",
            Self::RefreshAd => "refresh-ad",
            Self::AdsRequest => "ads-request",
            Self::AdsReply => "ads-reply",
            Self::Confirm => "confirm",
            Self::ConfirmReply => "confirm-reply",
        }
    }

    /// Does this class count toward the per-search cost (Fig. 6)?
    /// Baselines: query messages only. ASAP: confirmation and ads-request
    /// traffic (ad *delivery* is system load, not search cost).
    pub fn is_search_cost(self) -> bool {
        matches!(
            self,
            Self::Query | Self::AdsRequest | Self::AdsReply | Self::Confirm | Self::ConfirmReply
        )
    }
}

/// Per-second byte counters by class, plus the live-peer timeline.
#[derive(Debug, Default)]
pub struct LoadRecorder {
    /// `buckets[second][class] = bytes`.
    buckets: Vec<[u64; MsgClass::COUNT]>,
    /// Total messages recorded per class (reconciliation view: every
    /// `record` call increments exactly one slot).
    msg_totals: [u64; MsgClass::COUNT],
    /// Step function: `(time_us, live_count)`, appended on every change.
    alive_steps: Vec<(u64, usize)>,
    /// Free-form run metadata (e.g. clamped scale knobs). Not part of any
    /// digested series — purely for sweep logs and run reports.
    notes: Vec<String>,
}

impl LoadRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sent message of `bytes` at `time_us`.
    pub fn record(&mut self, time_us: u64, class: MsgClass, bytes: usize) {
        let second = (time_us / 1_000_000) as usize;
        if second >= self.buckets.len() {
            self.buckets.resize(second + 1, [0; MsgClass::COUNT]);
        }
        self.buckets[second][class.index()] += bytes as u64;
        self.msg_totals[class.index()] += 1;
    }

    /// Record a change in the number of live peers.
    pub fn set_alive(&mut self, time_us: u64, count: usize) {
        self.alive_steps.push((time_us, count));
    }

    /// Number of whole seconds covered.
    pub fn seconds(&self) -> usize {
        self.buckets.len()
    }

    /// Total bytes per class over the whole run.
    pub fn class_totals(&self) -> [u64; MsgClass::COUNT] {
        let mut totals = [0u64; MsgClass::COUNT];
        for bucket in &self.buckets {
            for (t, b) in totals.iter_mut().zip(bucket) {
                *t += b;
            }
        }
        totals
    }

    pub fn total_bytes(&self) -> u64 {
        self.class_totals().iter().sum()
    }

    /// Total messages recorded per class. Every `record` call increments
    /// exactly one slot, so these reconcile exactly with per-message
    /// accounting kept elsewhere (e.g. the simulation auditor).
    pub fn class_message_totals(&self) -> [u64; MsgClass::COUNT] {
        self.msg_totals
    }

    /// Total number of `record` calls across all classes.
    pub fn messages_recorded(&self) -> u64 {
        self.msg_totals.iter().sum()
    }

    /// The raw live-peer step timeline `(time_us, count)`, in append order.
    pub fn alive_steps(&self) -> &[(u64, usize)] {
        &self.alive_steps
    }

    /// The raw per-second byte buckets, `buckets[second][class]`
    /// (checkpointing).
    pub fn buckets(&self) -> &[[u64; MsgClass::COUNT]] {
        &self.buckets
    }

    /// Rebuild a recorder from raw checkpointed state: byte buckets, message
    /// totals, alive timeline, and notes, all restored verbatim.
    pub fn from_parts(
        buckets: Vec<[u64; MsgClass::COUNT]>,
        msg_totals: [u64; MsgClass::COUNT],
        alive_steps: Vec<(u64, usize)>,
        notes: Vec<String>,
    ) -> Self {
        Self {
            buckets,
            msg_totals,
            alive_steps,
            notes,
        }
    }

    /// Attach a free-form metadata note to the run (e.g. "GSA budget
    /// clamped ..."). Notes never feed a metric or digest.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Run metadata notes, in the order they were attached.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Bytes attributed to per-search cost classes (Fig. 6 numerator).
    pub fn search_cost_bytes(&self) -> u64 {
        MsgClass::ALL
            .iter()
            .filter(|c| c.is_search_cost())
            .map(|c| self.class_totals()[c.index()])
            .sum()
    }

    /// Average live-peer count within `[second, second+1)`, from the step
    /// timeline (falls back to the last-known count).
    fn alive_during(&self, second: usize) -> f64 {
        if self.alive_steps.is_empty() {
            return 0.0;
        }
        let (lo, hi) = (second as u64 * 1_000_000, (second as u64 + 1) * 1_000_000);
        // Count in effect at the start of the window.
        let mut current = self.alive_steps[0].1;
        for &(t, c) in &self.alive_steps {
            if t <= lo {
                current = c;
            } else {
                break;
            }
        }
        // Time-weighted average over the window.
        let mut acc = 0.0;
        let mut cursor = lo;
        for &(t, c) in &self.alive_steps {
            if t <= lo {
                continue;
            }
            if t >= hi {
                break;
            }
            acc += (t - cursor) as f64 * current as f64;
            current = c;
            cursor = t;
        }
        acc += (hi - cursor) as f64 * current as f64;
        acc / 1_000_000.0
    }

    /// Bytes **per node** per second — the paper's system-load series
    /// (Fig. 10). Seconds with no live peers yield 0.
    pub fn load_series(&self) -> Vec<f64> {
        (0..self.buckets.len())
            .map(|s| {
                let alive = self.alive_during(s);
                if alive <= 0.0 {
                    0.0
                } else {
                    let bytes: u64 = self.buckets[s].iter().sum();
                    bytes as f64 / alive
                }
            })
            .collect()
    }

    /// Per-class load series for one class (breakdown plots).
    pub fn class_series(&self, class: MsgClass) -> Vec<f64> {
        (0..self.buckets.len())
            .map(|s| {
                let alive = self.alive_during(s);
                if alive <= 0.0 {
                    0.0
                } else {
                    self.buckets[s][class.index()] as f64 / alive
                }
            })
            .collect()
    }

    /// Mean of the load series (Fig. 8).
    pub fn mean_load(&self) -> f64 {
        crate::summary::mean(&self.load_series())
    }

    /// Standard deviation of the load series (Fig. 9).
    pub fn stddev_load(&self) -> f64 {
        crate::summary::stddev(&self.load_series())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_a_bijection() {
        let mut seen = [false; MsgClass::COUNT];
        for c in MsgClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {c:?}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn record_lands_in_right_bucket() {
        let mut r = LoadRecorder::new();
        r.record(500_000, MsgClass::Query, 100);
        r.record(1_500_000, MsgClass::Query, 60);
        r.record(1_600_000, MsgClass::FullAd, 40);
        assert_eq!(r.seconds(), 2);
        let totals = r.class_totals();
        assert_eq!(totals[MsgClass::Query.index()], 160);
        assert_eq!(totals[MsgClass::FullAd.index()], 40);
        assert_eq!(r.total_bytes(), 200);
    }

    #[test]
    fn load_series_normalizes_by_alive() {
        let mut r = LoadRecorder::new();
        r.set_alive(0, 10);
        r.record(200_000, MsgClass::Query, 1_000);
        assert_eq!(r.load_series(), vec![100.0]);
    }

    #[test]
    fn alive_step_change_mid_second_is_time_weighted() {
        let mut r = LoadRecorder::new();
        r.set_alive(0, 10);
        r.set_alive(500_000, 20); // halfway through second 0
        r.record(100_000, MsgClass::Query, 1_500);
        // Average alive = 15 ⇒ load = 100.
        assert_eq!(r.load_series(), vec![100.0]);
    }

    #[test]
    fn empty_recorder_is_benign() {
        let r = LoadRecorder::new();
        assert_eq!(r.seconds(), 0);
        assert_eq!(r.total_bytes(), 0);
        assert!(r.load_series().is_empty());
        assert_eq!(r.mean_load(), 0.0);
    }

    #[test]
    fn search_cost_classes_follow_paper() {
        assert!(MsgClass::Query.is_search_cost());
        assert!(MsgClass::Confirm.is_search_cost());
        assert!(MsgClass::AdsRequest.is_search_cost());
        assert!(!MsgClass::FullAd.is_search_cost(), "ad delivery is load, not cost");
        assert!(!MsgClass::PatchAd.is_search_cost());
        assert!(!MsgClass::RefreshAd.is_search_cost());
        // Hits flow back in both designs but the paper's baseline cost counts
        // query messages only.
        assert!(!MsgClass::QueryHit.is_search_cost());
    }

    #[test]
    fn message_totals_reconcile_with_record_calls() {
        let mut r = LoadRecorder::new();
        r.record(0, MsgClass::Query, 10);
        r.record(2_000_000, MsgClass::Query, 20);
        r.record(0, MsgClass::FullAd, 1_000);
        let msgs = r.class_message_totals();
        assert_eq!(msgs[MsgClass::Query.index()], 2);
        assert_eq!(msgs[MsgClass::FullAd.index()], 1);
        assert_eq!(r.messages_recorded(), 3);
        // Bytes and message counts stay in step per class.
        assert_eq!(r.class_totals()[MsgClass::Query.index()], 30);
    }

    #[test]
    fn alive_steps_are_exposed_in_append_order() {
        let mut r = LoadRecorder::new();
        r.set_alive(0, 10);
        r.set_alive(500_000, 9);
        assert_eq!(r.alive_steps(), &[(0, 10), (500_000, 9)]);
    }

    #[test]
    fn notes_accumulate_in_order_without_touching_metrics() {
        let mut r = LoadRecorder::new();
        r.note("GSA budget clamped 90 -> 100 (floor 100)");
        r.note(String::from("second note"));
        assert_eq!(r.notes().len(), 2);
        assert!(r.notes()[0].contains("clamped"));
        assert_eq!(r.total_bytes(), 0);
        assert!(r.load_series().is_empty());
    }

    #[test]
    fn search_cost_bytes_filters_classes() {
        let mut r = LoadRecorder::new();
        r.record(0, MsgClass::Query, 10);
        r.record(0, MsgClass::FullAd, 1_000);
        r.record(0, MsgClass::Confirm, 5);
        assert_eq!(r.search_cost_bytes(), 15);
    }
}
