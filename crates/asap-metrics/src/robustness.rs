//! Protocol-robustness counters: retries, duplicate suppression, lost
//! confirmations, abandoned deliveries.
//!
//! These are *protocol-side* observations of an unreliable network — the
//! fault layer itself keeps separate drop/duplicate statistics in
//! `asap_sim::fault`. Counters are incremented through `Ctx` so the
//! simulation auditor can keep an independent mirror and reconcile the two
//! exactly at the end of a run (the same double-entry discipline as the
//! per-class byte accounting in [`crate::LoadRecorder`]).
//!
//! Everything here is integer arithmetic: counter values may be folded into
//! replay digests, so the module stays inside lint rule R3's no-float scope.

/// One countable robustness event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetryStat {
    /// A protocol retransmission: confirm resend, repair-fetch resend,
    /// ad re-advertisement, or a baseline query retransmit.
    Retries,
    /// A delivered message discarded as a duplicate by protocol-level
    /// suppression (flood seen-trackers).
    DuplicatesSuppressed,
    /// A confirmation that was given up on: the requester stopped waiting
    /// for a reply from that source (loss, or a dead source).
    ConfirmationsLost,
    /// A delivery abandoned after its retry budget ran out (e.g. a repair
    /// fetch whose replies never arrived).
    DeliveriesAbandoned,
}

impl RetryStat {
    pub const COUNT: usize = 4;

    pub const ALL: [RetryStat; Self::COUNT] = [
        Self::Retries,
        Self::DuplicatesSuppressed,
        Self::ConfirmationsLost,
        Self::DeliveriesAbandoned,
    ];

    #[inline]
    pub fn index(self) -> usize {
        match self {
            Self::Retries => 0,
            Self::DuplicatesSuppressed => 1,
            Self::ConfirmationsLost => 2,
            Self::DeliveriesAbandoned => 3,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Self::Retries => "retries",
            Self::DuplicatesSuppressed => "duplicates-suppressed",
            Self::ConfirmationsLost => "confirmations-lost",
            Self::DeliveriesAbandoned => "deliveries-abandoned",
        }
    }
}

/// Aggregate robustness counters for one run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RetryCounters {
    counts: [u64; RetryStat::COUNT],
}

impl RetryCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one event.
    #[inline]
    pub fn record(&mut self, stat: RetryStat) {
        self.counts[stat.index()] += 1;
    }

    #[inline]
    pub fn get(&self, stat: RetryStat) -> u64 {
        self.counts[stat.index()]
    }

    /// All four counters, indexed by [`RetryStat::index`].
    pub fn counts(&self) -> [u64; RetryStat::COUNT] {
        self.counts
    }

    /// Rebuild counters from a [`RetryCounters::counts`] snapshot
    /// (checkpointing).
    pub fn from_counts(counts: [u64; RetryStat::COUNT]) -> Self {
        Self { counts }
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_a_permutation() {
        let mut seen = [false; RetryStat::COUNT];
        for s in RetryStat::ALL {
            assert!(!seen[s.index()], "duplicate index for {s:?}");
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn record_and_total() {
        let mut c = RetryCounters::new();
        assert!(c.is_zero());
        c.record(RetryStat::Retries);
        c.record(RetryStat::Retries);
        c.record(RetryStat::ConfirmationsLost);
        assert_eq!(c.get(RetryStat::Retries), 2);
        assert_eq!(c.get(RetryStat::ConfirmationsLost), 1);
        assert_eq!(c.get(RetryStat::DuplicatesSuppressed), 0);
        assert_eq!(c.total(), 3);
        assert!(!c.is_zero());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = RetryStat::ALL.iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
