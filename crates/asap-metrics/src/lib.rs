//! Metrics for P2P search experiments (paper §V).
//!
//! Three ledgers cover everything the paper measures:
//!
//! * [`LoadRecorder`] — per-second, per-message-class byte accounting plus an
//!   alive-peer timeline; yields the *system load* series (bytes per node per
//!   second), its mean and standard deviation (Figs. 7–10);
//! * [`QueryLedger`] — per-query issue/answer times; yields success rate and
//!   average response time (Figs. 4–5);
//! * [`RetryCounters`] — protocol-robustness events (retries, duplicate
//!   suppression, lost confirmations, abandoned deliveries) observed under
//!   an unreliable network;
//! * [`summary`] — small statistics helpers shared by the harness.
//!
//! Search *cost* (Fig. 6) is derived from `LoadRecorder` class totals: the
//! paper counts only query messages for the baselines, and confirmation +
//! ads-request traffic for ASAP ("the search cost includes both content
//! confirmation and ads request messages in ASAP, while in the baselines it
//! refers to query messages only").

pub mod histogram;
pub mod load;
pub mod query_ledger;
pub mod robustness;
pub mod summary;

pub use histogram::{LogHistogram, SpanTracker};
pub use load::{LoadRecorder, MsgClass};
pub use query_ledger::{QueryLedger, QueryRecord};
pub use robustness::{RetryCounters, RetryStat};
