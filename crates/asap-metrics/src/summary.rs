//! Small statistics helpers shared by ledgers and the experiment harness.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for an empty slice.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Maximum; 0 for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// `p`-th percentile (0–100) by nearest-rank; 0 for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn max_and_percentile() {
        let xs = [1.0, 9.0, 5.0, 3.0];
        assert_eq!(max(&xs), 9.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 9.0);
        assert_eq!(percentile(&xs, 50.0), 5.0); // nearest rank of 1.5 rounds up
    }

    #[test]
    fn single_element() {
        assert_eq!(mean(&[42.0]), 42.0);
        assert_eq!(stddev(&[42.0]), 0.0);
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }
}
