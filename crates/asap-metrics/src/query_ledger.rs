//! Per-query outcome ledger: success rate and response time (Figs. 4–5).

/// Outcome record for one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryRecord {
    pub issue_us: u64,
    /// Time the first confirmed result reached the requester.
    pub first_answer_us: Option<u64>,
    /// Total confirmed results.
    pub answers: u32,
    registered: bool,
}

/// Issue/answer bookkeeping for every query in a run.
#[derive(Debug, Default)]
pub struct QueryLedger {
    records: Vec<QueryRecord>,
}

impl QueryLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register query `id` issued at `issue_us`. Ids may arrive in any order
    /// but must not repeat.
    pub fn register(&mut self, id: u32, issue_us: u64) {
        let idx = id as usize;
        if idx >= self.records.len() {
            self.records.resize(idx + 1, QueryRecord::default());
        }
        assert!(!self.records[idx].registered, "query {id} registered twice");
        self.records[idx] = QueryRecord {
            issue_us,
            first_answer_us: None,
            answers: 0,
            registered: true,
        };
    }

    /// Record a confirmed result for query `id` at `time_us`.
    pub fn answer(&mut self, id: u32, time_us: u64) {
        let rec = &mut self.records[id as usize];
        assert!(rec.registered, "answer for unregistered query {id}");
        debug_assert!(time_us >= rec.issue_us, "answer precedes issue");
        rec.answers += 1;
        if rec.first_answer_us.is_none() {
            rec.first_answer_us = Some(time_us);
        }
    }

    /// True iff query `id` is registered and already has an answer — the
    /// protocol-side signal that a retransmission is no longer needed.
    pub fn is_answered(&self, id: u32) -> bool {
        self.records
            .get(id as usize)
            .is_some_and(|r| r.registered && r.first_answer_us.is_some())
    }

    pub fn num_queries(&self) -> usize {
        self.records.iter().filter(|r| r.registered).count()
    }

    pub fn num_succeeded(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.registered && r.first_answer_us.is_some())
            .count()
    }

    /// "Percentage of search requests that obtain at least one result."
    pub fn success_rate(&self) -> f64 {
        let n = self.num_queries();
        if n == 0 {
            return 0.0;
        }
        self.num_succeeded() as f64 / n as f64
    }

    /// "The response time is averaged among all successful search requests."
    /// Milliseconds.
    pub fn avg_response_time_ms(&self) -> f64 {
        let times: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.registered)
            .filter_map(|r| r.first_answer_us.map(|a| (a - r.issue_us) as f64 / 1_000.0))
            .collect();
        crate::summary::mean(&times)
    }

    /// Registered queries that never received an answer.
    pub fn num_unanswered(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.registered && r.first_answer_us.is_none())
            .count()
    }

    pub fn records(&self) -> impl Iterator<Item = &QueryRecord> {
        self.records.iter().filter(|r| r.registered)
    }

    /// The raw record-vector length, unregistered tail slots included
    /// (checkpointing: `register` sizes the vector by the highest id seen,
    /// so the raw length is observable state).
    pub fn raw_len(&self) -> usize {
        self.records.len()
    }

    /// Rebuild a ledger from checkpointed state: the raw vector length and
    /// the registered `(id, issue_us, first_answer_us, answers)` entries.
    /// Slots not listed stay unregistered, exactly as `register` left them.
    pub fn from_parts(
        raw_len: usize,
        entries: impl IntoIterator<Item = (u32, u64, Option<u64>, u32)>,
    ) -> Self {
        let mut records = vec![QueryRecord::default(); raw_len];
        for (id, issue_us, first_answer_us, answers) in entries {
            records[id as usize] = QueryRecord {
                issue_us,
                first_answer_us,
                answers,
                registered: true,
            };
        }
        Self { records }
    }

    /// Registered records keyed by query id, in ascending id order.
    pub fn records_with_ids(&self) -> impl Iterator<Item = (u32, &QueryRecord)> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.registered)
            .map(|(i, r)| (i as u32, r))
    }

    /// Structural consistency check over every registered record:
    ///
    /// * a success implies a recorded response time not before the issue and
    ///   not after `end_time_us`;
    /// * the answer count and the first-answer time agree (one implies the
    ///   other);
    /// * issued = resolved + unanswered.
    ///
    /// Returns the list of violated clauses (empty when consistent).
    pub fn check_consistency(&self, end_time_us: u64) -> Vec<String> {
        let mut violations = Vec::new();
        for (id, rec) in self.records_with_ids() {
            match rec.first_answer_us {
                Some(t) => {
                    if t < rec.issue_us {
                        violations
                            .push(format!("query {id}: answered at {t} before issue {}", rec.issue_us));
                    }
                    if t > end_time_us {
                        violations.push(format!("query {id}: answered at {t} after end {end_time_us}"));
                    }
                    if rec.answers == 0 {
                        violations.push(format!("query {id}: first answer set but answer count is 0"));
                    }
                }
                None => {
                    if rec.answers != 0 {
                        violations.push(format!(
                            "query {id}: {} answers but no first-answer time",
                            rec.answers
                        ));
                    }
                }
            }
        }
        if self.num_queries() != self.num_succeeded() + self.num_unanswered() {
            violations.push(format!(
                "ledger split broken: {} issued != {} succeeded + {} unanswered",
                self.num_queries(),
                self.num_succeeded(),
                self.num_unanswered()
            ));
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_and_response_time() {
        let mut l = QueryLedger::new();
        l.register(0, 1_000_000);
        l.register(1, 2_000_000);
        l.register(2, 3_000_000);
        l.answer(0, 1_100_000); // 100 ms
        l.answer(0, 1_900_000); // second answer doesn't change first
        l.answer(2, 3_300_000); // 300 ms
        assert_eq!(l.num_queries(), 3);
        assert_eq!(l.num_succeeded(), 2);
        assert!((l.success_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((l.avg_response_time_ms() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn answers_counted() {
        let mut l = QueryLedger::new();
        l.register(0, 0);
        l.answer(0, 10);
        l.answer(0, 20);
        let rec = l.records().next().unwrap();
        assert_eq!(rec.answers, 2);
        assert_eq!(rec.first_answer_us, Some(10));
    }

    #[test]
    fn out_of_order_registration() {
        let mut l = QueryLedger::new();
        l.register(5, 50);
        l.register(2, 20);
        assert_eq!(l.num_queries(), 2);
    }

    #[test]
    fn empty_ledger() {
        let l = QueryLedger::new();
        assert_eq!(l.success_rate(), 0.0);
        assert_eq!(l.avg_response_time_ms(), 0.0);
    }

    #[test]
    fn unanswered_completes_the_split() {
        let mut l = QueryLedger::new();
        l.register(0, 0);
        l.register(1, 0);
        l.register(2, 0);
        l.answer(1, 5);
        assert_eq!(l.num_unanswered(), 2);
        assert_eq!(l.num_queries(), l.num_succeeded() + l.num_unanswered());
    }

    #[test]
    fn records_with_ids_skips_unregistered_slots() {
        let mut l = QueryLedger::new();
        l.register(3, 30);
        l.register(1, 10);
        let ids: Vec<u32> = l.records_with_ids().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn consistency_check_passes_on_sane_ledger() {
        let mut l = QueryLedger::new();
        l.register(0, 100);
        l.register(1, 200);
        l.answer(0, 150);
        assert!(l.check_consistency(1_000).is_empty());
    }

    #[test]
    fn consistency_check_flags_answer_after_end() {
        let mut l = QueryLedger::new();
        l.register(0, 100);
        l.answer(0, 5_000);
        let v = l.check_consistency(1_000);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("after end"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_rejected() {
        let mut l = QueryLedger::new();
        l.register(1, 0);
        l.register(1, 0);
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn answer_requires_registration() {
        let mut l = QueryLedger::new();
        l.register(0, 0);
        l.answer(0, 1); // fine
        let mut l2 = QueryLedger::new();
        l2.register(3, 0);
        l2.answer(1, 1); // unregistered slot
    }
}
