//! Integer-only log-scale histograms and query-lifecycle span aggregation.
//!
//! These back the `asap-trace` observability layer, so they obey the same
//! determinism policy as the digest path (lint rule R3): recording, merging,
//! and percentile lookup are pure integer arithmetic — no floats anywhere —
//! which keeps aggregated trace output byte-identical across platforms.

use std::collections::BTreeMap;

/// Power-of-two bucketed histogram for `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i` (1..=64) holds values `v` with
/// `2^(i-1) <= v < 2^i`. Log buckets keep the footprint constant while
/// spanning the full microsecond/byte ranges the simulator produces.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; Self::BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub const BUCKETS: usize = 65;

    pub const fn new() -> Self {
        Self {
            buckets: [0; Self::BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a sample: 0 for 0, otherwise its bit length.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (the largest sample it can hold).
    fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Integer mean (rounded down); 0 on an empty histogram.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Smallest recorded sample; 0 on an empty histogram.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket where the cumulative count first reaches
    /// `p_num / p_den` of all samples (e.g. `percentile(99, 100)` for p99).
    /// An approximation with at most 2x relative error — exactly what a
    /// log-bucketed histogram can promise — computed entirely in integers.
    pub fn percentile(&self, p_num: u64, p_den: u64) -> u64 {
        if self.count == 0 || p_den == 0 {
            return 0;
        }
        // Ceiling division: the rank of the sample we are looking for.
        let rank = (self.count * p_num).div_ceil(p_den).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs, low to
    /// high — the stable export shape for JSONL summaries.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bound(i), c))
            .collect()
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// Open/close span tracking for query lifecycles (issue → first answer).
///
/// Keys are query ids; durations land in a [`LogHistogram`]. A `BTreeMap`
/// keeps iteration deterministic without depending on the simulator's
/// fixed-seed hash collections.
#[derive(Debug, Clone, Default)]
pub struct SpanTracker {
    open: BTreeMap<u32, u64>,
    durations: LogHistogram,
    closed: u64,
    unmatched_closes: u64,
}

impl SpanTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// A span opened at `now_us`. Re-opening an id restarts its clock.
    pub fn open(&mut self, id: u32, now_us: u64) {
        self.open.insert(id, now_us);
    }

    /// Close span `id` at `now_us`; returns the duration for the *first*
    /// close of an open span, `None` for an id that was never opened or has
    /// already closed (later answers to the same query are not re-counted).
    pub fn close(&mut self, id: u32, now_us: u64) -> Option<u64> {
        let start = self.open.remove(&id)?;
        let dur = now_us.saturating_sub(start);
        self.durations.record(dur);
        self.closed += 1;
        Some(dur)
    }

    /// Record a close for an id that was never opened (bookkeeping only).
    pub fn note_unmatched_close(&mut self) {
        self.unmatched_closes += 1;
    }

    /// Spans opened and never closed (e.g. unanswered queries).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    pub fn closed_count(&self) -> u64 {
        self.closed
    }

    pub fn unmatched_closes(&self) -> u64 {
        self.unmatched_closes
    }

    /// Distribution of completed span durations, µs.
    pub fn durations(&self) -> &LogHistogram {
        &self.durations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_powers_land_in_distinct_buckets() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        assert_eq!(h.count(), 5);
        // 0 | 1 | 2..3 | 4..7
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (3, 2), (7, 1)]
        );
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = LogHistogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50, 100), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn percentile_is_bucket_bound_capped_at_max() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 7, bound 127
        }
        h.record(1_000_000);
        assert_eq!(h.percentile(50, 100), 127);
        // The p100 bucket bound exceeds the true max and is capped by it.
        assert_eq!(h.percentile(100, 100), 1_000_000);
    }

    #[test]
    fn merge_accumulates_both_sides() {
        let mut a = LogHistogram::new();
        a.record(5);
        let mut b = LogHistogram::new();
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn span_tracker_counts_first_close_only() {
        let mut s = SpanTracker::new();
        s.open(7, 100);
        assert_eq!(s.open_count(), 1);
        assert_eq!(s.close(7, 350), Some(250));
        assert_eq!(s.close(7, 400), None, "second answer not re-counted");
        assert_eq!(s.closed_count(), 1);
        assert_eq!(s.durations().max(), 250);
        assert_eq!(s.open_count(), 0);
    }

    #[test]
    fn unanswered_spans_stay_open() {
        let mut s = SpanTracker::new();
        s.open(1, 0);
        s.open(2, 10);
        s.close(1, 50);
        assert_eq!(s.open_count(), 1);
        assert_eq!(s.closed_count(), 1);
    }
}
