//! Property-based tests for the Bloom-filter substrate.

use asap_bloom::{BloomFilter, BloomParams, CountingBloom, FilterPatch, WireFilter};
use proptest::prelude::*;

fn params() -> BloomParams {
    BloomParams::for_capacity(300, 8)
}

fn keys_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-z]{1,12}", 0..120)
}

proptest! {
    /// The defining Bloom-filter invariant: anything inserted tests positive.
    #[test]
    fn no_false_negatives(keys in keys_strategy()) {
        let f = BloomFilter::from_keys(params(), keys.iter().map(String::as_str));
        for k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    /// A counting filter that inserts then removes a disjoint batch is
    /// bit-identical to one that never saw the batch.
    #[test]
    fn counting_remove_is_exact_inverse(
        stay in keys_strategy(),
        gone in keys_strategy(),
    ) {
        let mut with = CountingBloom::new(params());
        let mut without = CountingBloom::new(params());
        for k in &stay {
            with.insert(k);
            without.insert(k);
        }
        for k in &gone {
            with.insert(k);
        }
        for k in &gone {
            prop_assert!(with.remove(k));
        }
        prop_assert_eq!(with.snapshot(), without.snapshot());
    }

    /// diff → apply reproduces the target filter exactly, from any pair of
    /// states — the patch-ad consistency invariant.
    #[test]
    fn patch_roundtrip(old_keys in keys_strategy(), new_keys in keys_strategy()) {
        let old = BloomFilter::from_keys(params(), old_keys.iter().map(String::as_str));
        let new = BloomFilter::from_keys(params(), new_keys.iter().map(String::as_str));
        let patch = FilterPatch::diff(&old, &new);
        let mut repaired = old.clone();
        patch.apply(&mut repaired);
        prop_assert_eq!(repaired, new);
    }

    /// Patch size is bounded by the symmetric difference of set bits.
    #[test]
    fn patch_len_is_symmetric_difference(a in keys_strategy(), b in keys_strategy()) {
        let fa = BloomFilter::from_keys(params(), a.iter().map(String::as_str));
        let fb = BloomFilter::from_keys(params(), b.iter().map(String::as_str));
        let patch = FilterPatch::diff(&fa, &fb);
        let sa: std::collections::BTreeSet<u32> = fa.one_positions().into_iter().collect();
        let sb: std::collections::BTreeSet<u32> = fb.one_positions().into_iter().collect();
        prop_assert_eq!(patch.len(), sa.symmetric_difference(&sb).count());
    }

    /// The wire encoder always picks an encoding no larger than raw.
    #[test]
    fn wire_encoding_never_exceeds_raw(keys in keys_strategy()) {
        let f = BloomFilter::from_keys(params(), keys.iter().map(String::as_str));
        prop_assert!(WireFilter::size_of(&f) <= 4 + params().raw_bytes());
    }

    /// one_positions is sorted, deduplicated, and counts match.
    #[test]
    fn one_positions_invariants(keys in keys_strategy()) {
        let f = BloomFilter::from_keys(params(), keys.iter().map(String::as_str));
        let pos = f.one_positions();
        prop_assert_eq!(pos.len() as u32, f.count_ones());
        prop_assert!(pos.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(pos.iter().all(|&p| p < params().bits));
    }

    /// Merging a chain of successive patches into the starting filter is
    /// bit-identical to rebuilding from the final key set — incremental
    /// patch ads never drift from a from-scratch full ad, no matter how
    /// many content changes pile up.
    #[test]
    fn patch_chain_merge_equals_rebuild(
        s0 in keys_strategy(),
        s1 in keys_strategy(),
        s2 in keys_strategy(),
        s3 in keys_strategy(),
    ) {
        let filters: Vec<BloomFilter> = [&s0, &s1, &s2, &s3]
            .iter()
            .map(|s| BloomFilter::from_keys(params(), s.iter().map(String::as_str)))
            .collect();
        let mut merged = filters[0].clone();
        for w in filters.windows(2) {
            FilterPatch::diff(&w[0], &w[1]).apply(&mut merged);
        }
        prop_assert_eq!(&merged, &filters[3]);
    }

    /// Deleting one batch from a counting filter can never produce a false
    /// negative for keys still inserted — even when the batches overlap or
    /// contain duplicates, because every insert increments its counters.
    #[test]
    fn counting_delete_never_false_negative(
        keep in keys_strategy(),
        dropped in keys_strategy(),
    ) {
        let mut f = CountingBloom::new(params());
        for k in keep.iter().chain(dropped.iter()) {
            f.insert(k);
        }
        for k in &dropped {
            prop_assert!(f.remove(k), "removing an inserted key must succeed");
        }
        for k in &keep {
            prop_assert!(f.contains(k), "false negative for kept key {k:?}");
            prop_assert!(f.snapshot().contains(k), "snapshot lost kept key {k:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Saturation pinning (regression: delete used to decrement saturated cells)
// ---------------------------------------------------------------------------

proptest! {
    // Driving cells past saturation needs 65k+ inserts per case; a few
    // cases cover the space (hot-key count, bystander set) well enough.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Drive one key's cells past `u16::MAX`, then remove it just as many
    /// times: bystander keys must never go false-negative, the saturated
    /// cells must stay pinned at `MAX`, and the lost updates are counted.
    /// Before the fix, the removes walked the saturated cells back to zero
    /// and cleared bits that bystander keys still mapped to.
    #[test]
    fn saturated_cells_are_pinned_on_delete(
        hot in "[a-z]{1,12}",
        extra_inserts in 1u32..5_000,
        bystanders in keys_strategy(),
    ) {
        // Tiny filter so the hot key's cells really share bits with others.
        let p = BloomParams::for_capacity(20, 8);
        let mut f = CountingBloom::new(p);
        for k in &bystanders {
            f.insert(k);
        }
        let n = u32::from(u16::MAX) + extra_inserts;
        for _ in 0..n {
            f.insert(&hot);
        }
        prop_assert!(f.saturation_events() > 0, "cells never saturated — vacuous");
        let saturated: Vec<usize> = f
            .counts()
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == u16::MAX)
            .map(|(i, _)| i)
            .collect();
        prop_assert!(!saturated.is_empty());
        for _ in 0..n {
            prop_assert!(f.remove(&hot), "hot key still present");
        }
        for &cell in &saturated {
            prop_assert_eq!(
                f.counts()[cell],
                u16::MAX,
                "saturated cell {} must stay pinned",
                cell
            );
        }
        // Pinned cells keep their bits set, so the hot key stays a
        // (permanent, allowed) possible positive — and critically no
        // bystander ever goes false-negative.
        for k in &bystanders {
            prop_assert!(f.contains(k), "false negative for bystander {:?}", k);
        }
    }
}
