//! Variable-length filters — the paper's alternative to one global `m`.
//!
//! §III-B: "Suppose all nodes agree on a set of universal hash functions
//! {h₁ … h_k} and a pool of available filter lengths. Each node p chooses a
//! minimum filter length that is greater than |K_p|·k / ln 2. When mapping
//! or querying an item on a filter F with length l(F), we can use …
//! h'ᵢ = hᵢ mod l(F)."
//!
//! The upside is space efficiency for small sharers and no global `K_max`
//! cap; the downside the paper calls out — "a node may have to compute the
//! filter multiple times using different lengths for a search request" — is
//! visible in [`VariableFilter::contains`]: the querier derives positions
//! per filter length instead of reusing one precomputed probe set. The
//! default configuration uses fixed-length filters exactly as the paper
//! chose; this module exists for the ablation comparing the two.

use crate::hashing::KeyHash;

/// The pool of allowed filter lengths (bits), ascending. A power-of-two
/// ladder keeps the pool small while staying within 2× of the optimum.
pub const LENGTH_POOL: [u32; 9] = [256, 512, 1_024, 2_048, 4_096, 8_192, 16_384, 32_768, 65_536];

/// Pick the smallest pooled length `> |K_p|·k / ln 2` (falls back to the
/// largest length for huge keyword sets).
pub fn length_for(keywords: usize, hashes: u32) -> u32 {
    let need = (keywords.max(1) as f64 * hashes as f64 / std::f64::consts::LN_2).ceil() as u32;
    LENGTH_POOL
        .iter()
        .copied()
        .find(|&l| l > need)
        .unwrap_or(LENGTH_POOL[LENGTH_POOL.len() - 1])
}

/// A Bloom filter whose length comes from the shared pool. Probe positions
/// are derived from the same universal [`KeyHash`] used by fixed filters,
/// reduced modulo this filter's length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariableFilter {
    bits: u32,
    hashes: u32,
    words: Vec<u64>,
    ones: u32,
}

impl VariableFilter {
    /// An empty filter sized for `expected_keywords` entries.
    pub fn with_capacity(expected_keywords: usize, hashes: u32) -> Self {
        let bits = length_for(expected_keywords, hashes);
        Self {
            bits,
            hashes,
            words: vec![0; (bits as usize).div_ceil(64)],
            ones: 0,
        }
    }

    /// Build from a keyword set, sizing automatically.
    pub fn from_keys(keys: &[&str], hashes: u32) -> Self {
        let mut f = Self::with_capacity(keys.len(), hashes);
        for k in keys {
            f.insert(k);
        }
        f
    }

    pub fn len_bits(&self) -> u32 {
        self.bits
    }

    pub fn count_ones(&self) -> u32 {
        self.ones
    }

    pub fn insert(&mut self, key: &str) {
        let h = KeyHash::of(key);
        for bit in h.bits(self.bits, self.hashes) {
            let (w, mask) = (bit as usize / 64, 1u64 << (bit % 64));
            if self.words[w] & mask == 0 {
                self.words[w] |= mask;
                self.ones += 1;
            }
        }
    }

    pub fn contains(&self, key: &str) -> bool {
        self.contains_hash(&KeyHash::of(key))
    }

    /// Membership by universal hash — positions are reduced modulo *this*
    /// filter's length, so one `KeyHash` queries filters of any length.
    pub fn contains_hash(&self, h: &KeyHash) -> bool {
        h.bits(self.bits, self.hashes)
            .all(|bit| self.words[bit as usize / 64] & (1u64 << (bit % 64)) != 0)
    }

    pub fn contains_all<'a>(&self, keys: impl IntoIterator<Item = &'a str>) -> bool {
        keys.into_iter().all(|k| self.contains(k))
    }

    /// Wire size: min(raw bits, 2 bytes per set position) plus framing —
    /// same model as the fixed encoder.
    pub fn encoded_size(&self) -> usize {
        let raw = (self.bits as usize).div_ceil(8);
        let sparse = 2 * self.ones as usize;
        4 + raw.min(sparse)
    }

    /// Expected false-positive rate at the current load.
    pub fn false_positive_rate(&self) -> f64 {
        let load = f64::from(self.ones) / f64::from(self.bits);
        load.powi(self.hashes as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_pool_selection() {
        // 10 keywords × 8 / ln2 ≈ 116 → 256.
        assert_eq!(length_for(10, 8), 256);
        // 100 keywords ≈ 1,155 → 2,048.
        assert_eq!(length_for(100, 8), 2_048);
        // 1,000 keywords ≈ 11,542 → 16,384.
        assert_eq!(length_for(1_000, 8), 16_384);
        // Degenerate and huge inputs stay in the pool.
        assert_eq!(length_for(0, 8), 256);
        assert_eq!(length_for(1_000_000, 8), 65_536);
    }

    #[test]
    fn no_false_negatives_at_any_length() {
        for n in [3usize, 40, 300] {
            let keys: Vec<String> = (0..n).map(|i| format!("kw{i}")).collect();
            let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            let f = VariableFilter::from_keys(&refs, 8);
            for k in &refs {
                assert!(f.contains(k), "missing {k} at n={n}");
            }
        }
    }

    #[test]
    fn small_sharers_get_small_filters() {
        let small = VariableFilter::from_keys(&["a", "b", "c"], 8);
        let keys: Vec<String> = (0..500).map(|i| format!("kw{i}")).collect();
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let big = VariableFilter::from_keys(&refs, 8);
        assert!(small.len_bits() < big.len_bits());
        assert!(small.encoded_size() < big.encoded_size());
    }

    #[test]
    fn variable_beats_fixed_on_space_for_small_sets() {
        use crate::{BloomFilter, BloomParams, WireFilter};
        // A 10-keyword sharer under the paper's global m = 11,542…
        let keys: Vec<String> = (0..10).map(|i| format!("kw{i}")).collect();
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let fixed = BloomFilter::from_keys(
            BloomParams::paper_default(),
            refs.iter().copied(),
        );
        let var = VariableFilter::from_keys(&refs, 8);
        // …is already well-served by sparse encoding, but variable-length
        // raw is competitive and caps the worst case.
        assert!(var.encoded_size() <= WireFilter::size_of(&fixed) + 4);
        assert!(var.len_bits() <= 256);
    }

    #[test]
    fn fp_rate_reasonable_at_capacity() {
        let keys: Vec<String> = (0..100).map(|i| format!("kw{i}")).collect();
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let f = VariableFilter::from_keys(&refs, 8);
        assert!(f.false_positive_rate() < 0.05, "{}", f.false_positive_rate());
        let fps = (0..5_000)
            .filter(|i| f.contains(&format!("absent{i}")))
            .count();
        assert!(fps < 300, "measured {fps}/5000 false positives");
    }

    #[test]
    fn one_keyhash_queries_filters_of_different_lengths() {
        let h = KeyHash::of("shared-keyword");
        let mut small = VariableFilter::with_capacity(5, 8);
        let mut large = VariableFilter::with_capacity(5_000, 8);
        small.insert("shared-keyword");
        large.insert("shared-keyword");
        assert!(small.contains_hash(&h));
        assert!(large.contains_hash(&h));
    }
}
