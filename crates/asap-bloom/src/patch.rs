//! Incremental filter updates: the payload of a *patch ad*.
//!
//! "an ad patch for content filter changes is implemented by a list of
//! changed bit locations in the filter" (paper §III-B). We keep set and
//! cleared positions separate so a patch applies unambiguously.

use crate::filter::BloomFilter;

/// The set of bit positions that changed between two filter snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterPatch {
    /// Positions that were 0 in the old snapshot and 1 in the new one.
    pub set: Vec<u32>,
    /// Positions that were 1 in the old snapshot and 0 in the new one.
    pub cleared: Vec<u32>,
}

impl FilterPatch {
    /// Compute the patch that transforms `old` into `new`.
    ///
    /// # Panics
    /// Panics if the two filters have different parameters — patches only
    /// make sense within one filter geometry.
    pub fn diff(old: &BloomFilter, new: &BloomFilter) -> Self {
        assert_eq!(
            old.params(),
            new.params(),
            "patch requires identical filter parameters"
        );
        let mut patch = Self::default();
        // Walk the union of set positions of both filters.
        let (a, b) = (old.one_positions(), new.one_positions());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                }
                (Some(&x), Some(&y)) if x < y => {
                    patch.cleared.push(x);
                    i += 1;
                }
                (Some(_), Some(&y)) => {
                    patch.set.push(y);
                    j += 1;
                }
                (Some(&x), None) => {
                    patch.cleared.push(x);
                    i += 1;
                }
                (None, Some(&y)) => {
                    patch.set.push(y);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        patch
    }

    /// Apply the patch in place.
    pub fn apply(&self, filter: &mut BloomFilter) {
        for &b in &self.set {
            filter.set_bit(b);
        }
        for &b in &self.cleared {
            filter.clear_bit(b);
        }
    }

    /// Total number of changed bit positions.
    pub fn len(&self) -> usize {
        self.set.len() + self.cleared.len()
    }

    pub fn is_empty(&self) -> bool {
        self.set.is_empty() && self.cleared.is_empty()
    }

    /// Wire size in bytes: each changed position is a 16-bit index (the
    /// paper's `m = 11,542 < 2¹⁶`) plus a one-byte set/clear tag packed as a
    /// length-prefixed pair of lists — modelled as 2 bytes per position plus
    /// 4 bytes of list framing.
    pub fn encoded_size(&self) -> usize {
        4 + 2 * self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BloomParams;

    fn params() -> BloomParams {
        BloomParams::for_capacity(100, 8)
    }

    #[test]
    fn diff_then_apply_reproduces_target() {
        let old = BloomFilter::from_keys(params(), ["a", "b", "c"]);
        let new = BloomFilter::from_keys(params(), ["b", "c", "d", "e"]);
        let patch = FilterPatch::diff(&old, &new);
        let mut f = old.clone();
        patch.apply(&mut f);
        assert_eq!(f, new);
    }

    #[test]
    fn identical_filters_give_empty_patch() {
        let f = BloomFilter::from_keys(params(), ["same"]);
        let patch = FilterPatch::diff(&f, &f.clone());
        assert!(patch.is_empty());
        assert_eq!(patch.len(), 0);
        assert_eq!(patch.encoded_size(), 4);
    }

    #[test]
    fn patch_from_empty_is_all_sets() {
        let old = BloomFilter::empty(params());
        let new = BloomFilter::from_keys(params(), ["x", "y"]);
        let patch = FilterPatch::diff(&old, &new);
        assert!(patch.cleared.is_empty());
        assert_eq!(patch.set.len() as u32, new.count_ones());
    }

    #[test]
    fn patch_to_empty_is_all_clears() {
        let old = BloomFilter::from_keys(params(), ["x", "y"]);
        let new = BloomFilter::empty(params());
        let patch = FilterPatch::diff(&old, &new);
        assert!(patch.set.is_empty());
        assert_eq!(patch.cleared.len() as u32, old.count_ones());
    }

    #[test]
    fn encoded_size_counts_both_lists() {
        let old = BloomFilter::from_keys(params(), ["a"]);
        let new = BloomFilter::from_keys(params(), ["b"]);
        let patch = FilterPatch::diff(&old, &new);
        assert_eq!(patch.encoded_size(), 4 + 2 * patch.len());
        assert!(!patch.is_empty());
    }

    #[test]
    #[should_panic(expected = "identical filter parameters")]
    fn mismatched_params_rejected() {
        let a = BloomFilter::empty(BloomParams::for_capacity(10, 4));
        let b = BloomFilter::empty(BloomParams::for_capacity(20, 4));
        FilterPatch::diff(&a, &b);
    }
}
