//! Bloom filters for ASAP advertisements.
//!
//! An ASAP *ad* carries a synopsis of a peer's shared content as a Bloom filter
//! over the peer's keyword set (paper §III-B). This crate provides:
//!
//! * [`BloomParams`] — sizing and false-positive math (`m = ⌈n·k/ln 2⌉`,
//!   `p_min = (1/2)^k`),
//! * [`CountingBloom`] — a counting filter a peer maintains locally so that
//!   keyword *removals* are possible (the paper's `(i, x)` 2-tuples: bit `i`
//!   is set `x` times),
//! * [`BloomFilter`] — the flat bit-vector snapshot that travels inside a
//!   *full ad*,
//! * [`FilterPatch`] — the list of changed bit positions that travels inside a
//!   *patch ad*,
//! * [`WireFilter`] — the wire encoding (raw bits vs. sparse positions) with a
//!   byte-size model used for bandwidth accounting.
//!
//! Hashing uses the Kirsch–Mitzenmacher double-hashing scheme over two
//! independent deterministic 64-bit hashes, so a filter built on one node
//! queries identically on every other node (the paper's "set of universal
//! hash functions all nodes agree on").

pub mod encoding;
pub mod filter;
pub mod hashing;
pub mod params;
pub mod patch;
pub mod variable;

pub use encoding::WireFilter;
pub use filter::{BloomFilter, CountingBloom, ProbePlan};
pub use params::BloomParams;
pub use patch::FilterPatch;
pub use variable::VariableFilter;
