//! Deterministic keyword hashing shared by every node.
//!
//! The paper assumes "all nodes agree on a set of universal hash functions
//! {h₁ … h_k}". We realize the family with Kirsch–Mitzenmacher double
//! hashing: `gᵢ(x) = h₁(x) + i·h₂(x) (mod m)`, which is indistinguishable
//! from `k` independent hashes for Bloom-filter purposes while needing only
//! two base hashes per key.
//!
//! The base hashes must be *deterministic across processes* (ads are built on
//! one node and queried on another), so we use FNV-1a with two different
//! offset bases followed by a 64-bit finalizer, rather than
//! `std::collections`' randomly-keyed `DefaultHasher`.

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const FNV_OFFSET_A: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_OFFSET_B: u64 = 0x8422_2325_CBF2_9CE4;

#[inline]
fn fnv1a(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer — breaks up FNV's weak avalanche on short keys.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The two base hashes `(h₁, h₂)` of a keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyHash {
    h1: u64,
    h2: u64,
}

impl KeyHash {
    /// Hash a keyword. Keywords are compared case-insensitively throughout
    /// the system, so callers should lower-case beforehand; this function
    /// hashes the bytes exactly as given.
    #[inline]
    pub fn of(key: &str) -> Self {
        let bytes = key.as_bytes();
        Self {
            h1: mix(fnv1a(bytes, FNV_OFFSET_A)),
            // Force h2 odd so successive probes never collapse onto one bit
            // when m shares factors with h2.
            h2: mix(fnv1a(bytes, FNV_OFFSET_B)) | 1,
        }
    }

    /// The `i`-th derived bit position in a filter of `bits` bits.
    #[inline]
    pub fn bit(&self, i: u32, bits: u32) -> u32 {
        let g = self.h1.wrapping_add((i as u64).wrapping_mul(self.h2));
        (g % u64::from(bits)) as u32
    }

    /// Iterator over all `k` bit positions for filter parameters `(bits, k)`.
    #[inline]
    pub fn bits(&self, bits: u32, hashes: u32) -> impl Iterator<Item = u32> + '_ {
        (0..hashes).map(move |i| self.bit(i, bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let a = KeyHash::of("metallica");
        let b = KeyHash::of("metallica");
        assert_eq!(a, b);
        assert_eq!(
            a.bits(11_542, 8).collect::<Vec<_>>(),
            b.bits(11_542, 8).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(KeyHash::of("rock"), KeyHash::of("jazz"));
    }

    #[test]
    fn positions_in_range() {
        for key in ["a", "bb", "ccc", "a somewhat longer keyword 123"] {
            for pos in KeyHash::of(key).bits(997, 8) {
                assert!(pos < 997);
            }
        }
    }

    #[test]
    fn h2_is_odd() {
        for key in ["x", "y", "hello world", ""] {
            assert_eq!(KeyHash::of(key).h2 & 1, 1);
        }
    }

    #[test]
    fn probes_spread_over_filter() {
        // k = 8 positions of a single key should rarely all collide.
        let positions: std::collections::BTreeSet<u32> =
            KeyHash::of("spread-test").bits(11_542, 8).collect();
        assert!(positions.len() >= 6, "positions: {positions:?}");
    }

    #[test]
    fn distribution_roughly_uniform() {
        // Hash 10k distinct keys into 64 buckets via bit(0); expect each
        // bucket near 156 ± generous slack.
        let mut buckets = [0u32; 64];
        for i in 0..10_000 {
            let k = KeyHash::of(&format!("key-{i}"));
            buckets[k.bit(0, 64) as usize] += 1;
        }
        for (i, &c) in buckets.iter().enumerate() {
            assert!((80..=240).contains(&c), "bucket {i} has {c}");
        }
    }
}
