//! The counting filter peers maintain locally and the flat snapshot that
//! travels inside ads.

use crate::hashing::KeyHash;
use crate::params::BloomParams;
use std::rc::Rc;

/// Flat Bloom filter: the content synopsis carried by a *full ad* and cached
/// in remote ad repositories.
///
/// Membership tests never return false negatives; false positives occur with
/// probability governed by [`BloomParams`]. A search request matches an ad
/// when **all** query terms test positive (paper §III-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    params: BloomParams,
    words: Vec<u64>,
    ones: u32,
}

impl BloomFilter {
    /// An empty filter (what a free-rider would advertise — though free
    /// riders advertise nothing at all in ASAP).
    pub fn empty(params: BloomParams) -> Self {
        Self {
            words: vec![0; (params.bits as usize).div_ceil(64)],
            ones: 0,
            params,
        }
    }

    /// Build a filter directly from a keyword set.
    pub fn from_keys<'a>(params: BloomParams, keys: impl IntoIterator<Item = &'a str>) -> Self {
        let mut f = Self::empty(params);
        for k in keys {
            f.insert_hash(&KeyHash::of(k));
        }
        f
    }

    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.ones
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Fraction of bits set — the filter's load factor.
    pub fn fill_ratio(&self) -> f64 {
        f64::from(self.ones) / f64::from(self.params.bits)
    }

    #[inline]
    fn insert_hash(&mut self, h: &KeyHash) {
        for bit in h.bits(self.params.bits, self.params.hashes) {
            self.set_bit(bit);
        }
    }

    #[inline]
    pub(crate) fn set_bit(&mut self, bit: u32) {
        let (w, mask) = (bit as usize / 64, 1u64 << (bit % 64));
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.ones += 1;
        }
    }

    #[inline]
    pub(crate) fn clear_bit(&mut self, bit: u32) {
        let (w, mask) = (bit as usize / 64, 1u64 << (bit % 64));
        if self.words[w] & mask != 0 {
            self.words[w] &= !mask;
            self.ones -= 1;
        }
    }

    #[inline]
    pub fn get_bit(&self, bit: u32) -> bool {
        self.words[bit as usize / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Membership test for one keyword.
    #[inline]
    pub fn contains(&self, key: &str) -> bool {
        self.contains_hash(&KeyHash::of(key))
    }

    #[inline]
    pub fn contains_hash(&self, h: &KeyHash) -> bool {
        h.bits(self.params.bits, self.params.hashes)
            .all(|b| self.get_bit(b))
    }

    /// True when **every** term tests positive — the ad-match predicate used
    /// by the ASAP search loop.
    pub fn contains_all<'a>(&self, keys: impl IntoIterator<Item = &'a str>) -> bool {
        keys.into_iter().all(|k| self.contains(k))
    }

    /// Raw 64-bit words backing the bit vector (checkpointing).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a filter from [`BloomFilter::words`] output. The set-bit count
    /// is recomputed; returns `None` when the word count doesn't match
    /// `params.bits` or a bit beyond `params.bits` is set (corrupt input).
    pub fn from_words(params: BloomParams, words: Vec<u64>) -> Option<Self> {
        if words.len() != (params.bits as usize).div_ceil(64) {
            return None;
        }
        let tail_bits = params.bits as usize % 64;
        if tail_bits != 0 {
            let last = *words.last()?;
            if last >> tail_bits != 0 {
                return None;
            }
        }
        let ones = words.iter().map(|w| w.count_ones()).sum();
        Some(Self {
            params,
            words,
            ones,
        })
    }

    /// Positions of all set bits, ascending.
    pub fn one_positions(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.ones as usize);
        for (wi, &w) in self.words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let tz = w.trailing_zeros();
                out.push(wi as u32 * 64 + tz);
                w &= w - 1;
            }
        }
        out
    }

    /// Word-parallel multi-term membership test: equivalent to testing
    /// [`BloomFilter::contains_hash`] for every hash the plan was built
    /// from, but each probed word is fetched once and compared against a
    /// merged mask — up to 64 bit-probes collapse into one `u64` compare.
    /// Build the plan once per query and reuse it across every candidate
    /// filter (the ad-repository scan is the hot path this serves).
    ///
    /// Falls back to `false`-free behavior only for filters with the plan's
    /// parameters; with different parameters the probe positions would be
    /// wrong, so the caller must check [`ProbePlan::params`] first (the
    /// debug assert below catches mismatches in tests).
    #[inline]
    pub fn contains_plan(&self, plan: &ProbePlan) -> bool {
        debug_assert_eq!(self.params, plan.params, "plan built for other params");
        plan.probes
            .iter()
            .all(|&(w, mask)| self.words[w as usize] & mask == mask)
    }
}

/// Precomputed probe set for a fixed term list under fixed [`BloomParams`]:
/// every `(word, bit)` position the terms hash to, merged into one required
/// mask per distinct word and sorted ascending by word index (cache-friendly
/// forward scan). Probe positions depend only on the hashes and the
/// parameters — never on a particular filter — so one plan serves an entire
/// repository scan.
#[derive(Debug, Clone)]
pub struct ProbePlan {
    params: BloomParams,
    /// `(word index, required mask)`, strictly ascending by word index.
    probes: Vec<(u32, u64)>,
}

impl ProbePlan {
    /// Build the merged probe set for `hashes` (conjunctive: a filter
    /// matches when **all** hashes test positive, the ad-match predicate).
    pub fn new(params: BloomParams, hashes: &[KeyHash]) -> Self {
        let mut probes: Vec<(u32, u64)> =
            Vec::with_capacity(hashes.len() * params.hashes as usize);
        for h in hashes {
            for bit in h.bits(params.bits, params.hashes) {
                probes.push((bit / 64, 1u64 << (bit % 64)));
            }
        }
        probes.sort_unstable_by_key(|&(w, _)| w);
        probes.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 |= a.1;
                true
            } else {
                false
            }
        });
        Self { params, probes }
    }

    /// The parameters the probe positions were derived for.
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Number of distinct words the plan probes (≤ total bit-probes; the
    /// compression the word-parallel path buys).
    pub fn words_probed(&self) -> usize {
        self.probes.len()
    }
}

/// Counting Bloom filter a peer keeps for its **own** content so that
/// document removals can clear bits (paper §III-B: "a collection of 2-tuples
/// `(i, x)`, which means that the iᵗʰ bit is set for `x` times"; only the
/// positions travel over the network).
#[derive(Debug, Clone)]
pub struct CountingBloom {
    params: BloomParams,
    counts: Vec<u16>,
    /// Copy-on-write flat view: [`CountingBloom::snapshot_rc`] hands out the
    /// `Rc` for free, and the *next* mutation after a handout clones the bit
    /// vector exactly once (`Rc::make_mut`). Stable content ⇒ repeated ad
    /// emissions share one allocation.
    snapshot: Rc<BloomFilter>,
    /// Updates lost to saturated cells: increments absorbed by a cell
    /// already at `u16::MAX`, plus decrements pinned on such a cell. Once a
    /// cell saturates its true count is unknowable, so it stays at `MAX`
    /// forever — a permanent possible-false-positive, never a false
    /// negative. Diagnostic only: not checkpointed ([`Self::from_counts`]
    /// restores it to zero) and never read by the simulation.
    saturation_events: u64,
}

impl CountingBloom {
    pub fn new(params: BloomParams) -> Self {
        Self {
            counts: vec![0; params.bits as usize],
            snapshot: Rc::new(BloomFilter::empty(params)),
            params,
            saturation_events: 0,
        }
    }

    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Insert one keyword occurrence.
    pub fn insert(&mut self, key: &str) {
        self.insert_hash(&KeyHash::of(key));
    }

    /// Insert by precomputed hash (hot path for interned keyword tables).
    pub fn insert_hash(&mut self, h: &KeyHash) {
        for bit in h.bits(self.params.bits, self.params.hashes) {
            let c = &mut self.counts[bit as usize];
            if *c == u16::MAX {
                // Increment absorbed: the cell is saturated and stays there.
                self.saturation_events += 1;
                continue;
            }
            *c += 1;
            if *c == 1 {
                Rc::make_mut(&mut self.snapshot).set_bit(bit);
            }
        }
    }

    /// Remove one previously-inserted occurrence. Returns `false` (and leaves
    /// the filter untouched) if the key was never inserted — removing an
    /// absent key would corrupt other keys' bits.
    pub fn remove(&mut self, key: &str) -> bool {
        self.remove_hash(&KeyHash::of(key))
    }

    /// Remove by precomputed hash; see [`CountingBloom::remove`]. Two passes
    /// over the (deterministic) bit sequence instead of materializing it.
    ///
    /// Saturated cells (`u16::MAX`) are **pinned**: a saturated cell has
    /// absorbed at least one lost increment, so its true count is unknown
    /// and decrementing it could reach zero while keys still map there —
    /// clearing the bit and producing false negatives for *other* keys.
    /// Pinning trades that corruption for a permanent possible false
    /// positive on the saturated positions, which Bloom semantics allow.
    pub fn remove_hash(&mut self, h: &KeyHash) -> bool {
        if h.bits(self.params.bits, self.params.hashes)
            .any(|b| self.counts[b as usize] == 0)
        {
            return false;
        }
        for bit in h.bits(self.params.bits, self.params.hashes) {
            let c = &mut self.counts[bit as usize];
            if *c == u16::MAX {
                // Decrement pinned on a saturated cell.
                self.saturation_events += 1;
                continue;
            }
            *c -= 1;
            if *c == 0 {
                Rc::make_mut(&mut self.snapshot).clear_bit(bit);
            }
        }
        true
    }

    /// Membership test against the current state.
    pub fn contains(&self, key: &str) -> bool {
        self.snapshot.contains(key)
    }

    /// The flat snapshot to embed in a full ad, as an owned filter (clones
    /// the bit vector; prefer [`CountingBloom::snapshot_rc`] on hot paths).
    pub fn snapshot(&self) -> BloomFilter {
        (*self.snapshot).clone()
    }

    /// The flat snapshot as a shared handle — O(1), no bit-vector copy. The
    /// handle stays valid forever; the filter's next mutation diverges from
    /// it via copy-on-write rather than changing it in place.
    pub fn snapshot_rc(&self) -> Rc<BloomFilter> {
        Rc::clone(&self.snapshot)
    }

    /// Borrow the live snapshot without cloning.
    pub fn as_filter(&self) -> &BloomFilter {
        &self.snapshot
    }

    /// Raw per-bit occurrence counts (checkpointing).
    pub fn counts(&self) -> &[u16] {
        &self.counts
    }

    /// Updates lost to saturated cells so far (see the field docs). Zero in
    /// any healthy filter — the paper-default parameters would need a single
    /// bit position hit 65,535 times.
    pub fn saturation_events(&self) -> u64 {
        self.saturation_events
    }

    /// Rebuild a counting filter from [`CountingBloom::counts`] output. The
    /// flat snapshot is re-derived (bit set iff count > 0), which is exactly
    /// the invariant `insert_hash`/`remove_hash` maintain. Returns `None`
    /// when the count vector length doesn't match `params.bits`.
    pub fn from_counts(params: BloomParams, counts: Vec<u16>) -> Option<Self> {
        if counts.len() != params.bits as usize {
            return None;
        }
        let mut snapshot = BloomFilter::empty(params);
        for (bit, &c) in counts.iter().enumerate() {
            if c > 0 {
                snapshot.set_bit(bit as u32);
            }
        }
        Some(Self {
            params,
            counts,
            snapshot: Rc::new(snapshot),
            saturation_events: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BloomParams {
        BloomParams::for_capacity(200, 8)
    }

    #[test]
    fn no_false_negatives() {
        let keys: Vec<String> = (0..150).map(|i| format!("kw{i}")).collect();
        let f = BloomFilter::from_keys(params(), keys.iter().map(String::as_str));
        for k in &keys {
            assert!(f.contains(k), "inserted key {k} must test positive");
        }
    }

    #[test]
    fn contains_all_semantics() {
        let f = BloomFilter::from_keys(params(), ["alpha", "beta", "gamma"]);
        assert!(f.contains_all(["alpha", "beta"]));
        assert!(f.contains_all(Vec::<&str>::new()));
        // Overwhelmingly unlikely to be a false positive at this load.
        assert!(!f.contains_all(["alpha", "definitely-not-present-zzz"]));
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::empty(params());
        assert!(f.is_empty());
        assert!(!f.contains("anything"));
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn fp_rate_near_prediction() {
        let p = BloomParams::for_capacity(1_000, 8);
        let keys: Vec<String> = (0..1_000).map(|i| format!("present-{i}")).collect();
        let f = BloomFilter::from_keys(p, keys.iter().map(String::as_str));
        let trials = 20_000;
        let fps = (0..trials)
            .filter(|i| f.contains(&format!("absent-{i}")))
            .count();
        let rate = fps as f64 / trials as f64;
        let predicted = p.false_positive_rate(1_000);
        assert!(
            rate < predicted * 3.0 + 0.002,
            "measured {rate}, predicted {predicted}"
        );
    }

    #[test]
    fn one_positions_roundtrip() {
        let f = BloomFilter::from_keys(params(), ["x", "y", "z"]);
        let pos = f.one_positions();
        assert_eq!(pos.len() as u32, f.count_ones());
        let mut g = BloomFilter::empty(params());
        for p in pos {
            g.set_bit(p);
        }
        assert_eq!(f, g);
    }

    #[test]
    fn counting_remove_restores_exact_state() {
        let mut c = CountingBloom::new(params());
        c.insert("stay");
        let before = c.snapshot();
        c.insert("gone");
        assert!(c.contains("gone"));
        assert!(c.remove("gone"));
        assert_eq!(c.snapshot(), before, "remove must restore the bit vector");
        assert!(c.contains("stay"));
    }

    #[test]
    fn counting_shared_bits_survive_removal() {
        // Two occurrences of the same keyword: removing one keeps membership.
        let mut c = CountingBloom::new(params());
        c.insert("dup");
        c.insert("dup");
        assert!(c.remove("dup"));
        assert!(c.contains("dup"));
        assert!(c.remove("dup"));
        assert!(!c.contains("dup"));
    }

    #[test]
    fn counting_remove_absent_is_noop() {
        let mut c = CountingBloom::new(params());
        c.insert("real");
        let snap = c.snapshot();
        assert!(!c.remove("never-inserted"));
        assert_eq!(c.snapshot(), snap);
    }

    #[test]
    fn snapshot_equals_rebuild() {
        let mut c = CountingBloom::new(params());
        let keys: Vec<String> = (0..80).map(|i| format!("k{i}")).collect();
        for k in &keys {
            c.insert(k);
        }
        let rebuilt = BloomFilter::from_keys(params(), keys.iter().map(String::as_str));
        assert_eq!(c.snapshot(), rebuilt);
    }

    #[test]
    fn snapshot_rc_is_stable_under_copy_on_write() {
        let mut c = CountingBloom::new(params());
        c.insert("first");
        let held = c.snapshot_rc();
        let held_ones = held.count_ones();
        // Repeated handouts without intervening mutation share the allocation.
        assert!(Rc::ptr_eq(&held, &c.snapshot_rc()));
        // A mutation diverges the live filter without touching the handle.
        c.insert("second");
        assert_eq!(held.count_ones(), held_ones, "handed-out snapshot frozen");
        assert!(c.as_filter().count_ones() > held_ones);
        assert!(!Rc::ptr_eq(&held, &c.snapshot_rc()));
        assert_eq!(c.snapshot(), *c.snapshot_rc());
    }

    #[test]
    fn probe_plan_matches_per_hash_conjunction() {
        let p = params();
        let present: Vec<String> = (0..60).map(|i| format!("in{i}")).collect();
        let f = BloomFilter::from_keys(p, present.iter().map(String::as_str));
        // Equivalence over many term sets, mixing present and absent keys —
        // including false-positive territory on a loaded filter.
        for trial in 0..200 {
            let terms: Vec<String> = (0..1 + trial % 4)
                .map(|j| {
                    if (trial + j) % 3 == 0 {
                        format!("in{}", (trial * 7 + j) % 60)
                    } else {
                        format!("out{}", trial * 11 + j)
                    }
                })
                .collect();
            let hashes: Vec<KeyHash> = terms.iter().map(|t| KeyHash::of(t)).collect();
            let plan = ProbePlan::new(p, &hashes);
            let per_hash = hashes.iter().all(|h| f.contains_hash(h));
            assert_eq!(
                f.contains_plan(&plan),
                per_hash,
                "plan diverged from per-hash scan for {terms:?}"
            );
        }
    }

    #[test]
    fn probe_plan_merges_words_and_is_empty_safe() {
        let p = params();
        let hashes: Vec<KeyHash> = (0..4).map(|i| KeyHash::of(&format!("t{i}"))).collect();
        let plan = ProbePlan::new(p, &hashes);
        assert_eq!(plan.params(), p);
        assert!(plan.words_probed() <= 4 * p.hashes as usize);
        assert!(plan.words_probed() > 0);
        // Empty plan (zero terms) matches everything, like `all` on empty.
        let empty = ProbePlan::new(p, &[]);
        assert!(BloomFilter::empty(p).contains_plan(&empty));
    }

    #[test]
    fn saturated_cell_pins_on_delete_and_counts_events() {
        // One-hash filter makes the shared-cell scenario deterministic.
        let p = BloomParams {
            bits: 64,
            hashes: 1,
        };
        let mut c = CountingBloom::new(p);
        let key = "hot";
        for _ in 0..u32::from(u16::MAX) + 10 {
            c.insert(key);
        }
        assert_eq!(c.saturation_events(), 10, "10 increments absorbed");
        let bit = KeyHash::of(key)
            .bits(p.bits, p.hashes)
            .next()
            .map_or(0, |b| b as usize);
        assert_eq!(c.counts()[bit], u16::MAX);
        for i in 0..u32::from(u16::MAX) + 10 {
            assert!(c.remove(key), "remove #{i} failed");
        }
        assert_eq!(c.counts()[bit], u16::MAX, "cell must stay pinned");
        assert!(c.contains(key), "pinned cell keeps the bit set");
        assert_eq!(
            c.saturation_events(),
            10 + u64::from(u16::MAX) + 10,
            "every pinned decrement is counted"
        );
    }

    #[test]
    fn saturation_events_reset_by_from_counts() {
        let p = BloomParams {
            bits: 64,
            hashes: 1,
        };
        let mut c = CountingBloom::new(p);
        for _ in 0..u32::from(u16::MAX) + 1 {
            c.insert("x");
        }
        assert!(c.saturation_events() > 0);
        let restored = CountingBloom::from_counts(p, c.counts().to_vec())
            .unwrap_or_else(|| unreachable!("lengths match"));
        assert_eq!(restored.saturation_events(), 0, "diagnostic, not state");
        assert_eq!(restored.counts(), c.counts());
    }

    #[test]
    fn set_clear_bit_bookkeeping() {
        let mut f = BloomFilter::empty(params());
        f.set_bit(3);
        f.set_bit(3);
        assert_eq!(f.count_ones(), 1);
        f.clear_bit(3);
        f.clear_bit(3);
        assert_eq!(f.count_ones(), 0);
        assert!(f.is_empty());
    }
}
