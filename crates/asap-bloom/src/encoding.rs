//! Wire encoding of full-ad filters and its byte-size model.
//!
//! "For those peers who share few files and keywords, we use a compressed
//! representation of the filter as a collection of 2-tuples (i, x) …
//! Only the first number in each tuple is transmitted over the network."
//! (paper §III-B). So a sparse filter ships as a list of set-bit positions
//! (2 bytes each for `m < 2¹⁶`); a dense filter ships raw (`m/8` bytes).
//! The encoder picks whichever is smaller.

use crate::filter::BloomFilter;

/// Framing overhead of either encoding (kind tag + length + params echo).
const FRAMING: usize = 4;

/// Wire form of a full-ad content filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFilter {
    /// Raw bit vector, `⌈m/8⌉` bytes. Chosen for dense filters.
    Raw { bytes: usize },
    /// Sparse list of set-bit positions, 2 bytes each.
    Sparse { positions: usize },
}

impl WireFilter {
    /// Pick the cheaper encoding for `filter`.
    pub fn encode(filter: &BloomFilter) -> Self {
        let raw = filter.params().raw_bytes();
        let sparse = 2 * filter.count_ones() as usize;
        if sparse < raw {
            Self::Sparse {
                positions: filter.count_ones() as usize,
            }
        } else {
            Self::Raw { bytes: raw }
        }
    }

    /// Encoded size in bytes, including framing.
    pub fn encoded_size(&self) -> usize {
        FRAMING
            + match self {
                Self::Raw { bytes } => *bytes,
                Self::Sparse { positions } => 2 * positions,
            }
    }

    /// Size the cheaper encoding of `filter` would occupy on the wire.
    pub fn size_of(filter: &BloomFilter) -> usize {
        Self::encode(filter).encoded_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BloomParams;

    #[test]
    fn sparse_chosen_for_few_keys() {
        let p = BloomParams::paper_default(); // 11,542 bits = 1,443 raw bytes
        let f = BloomFilter::from_keys(p, ["one", "two"]);
        match WireFilter::encode(&f) {
            WireFilter::Sparse { positions } => {
                assert_eq!(positions, f.count_ones() as usize)
            }
            other => panic!("expected sparse, got {other:?}"),
        }
        assert!(WireFilter::size_of(&f) < p.raw_bytes());
    }

    #[test]
    fn raw_chosen_for_dense_filters() {
        let p = BloomParams::for_capacity(100, 8);
        // Grossly overload the filter so > raw_bytes/2 bits are set.
        let keys: Vec<String> = (0..2_000).map(|i| format!("k{i}")).collect();
        let f = BloomFilter::from_keys(p, keys.iter().map(String::as_str));
        match WireFilter::encode(&f) {
            WireFilter::Raw { bytes } => assert_eq!(bytes, p.raw_bytes()),
            other => panic!("expected raw, got {other:?}"),
        }
    }

    #[test]
    fn empty_filter_is_tiny() {
        let f = BloomFilter::empty(BloomParams::paper_default());
        assert_eq!(WireFilter::size_of(&f), 4);
    }

    #[test]
    fn paper_full_filter_close_to_1_43_kb() {
        let p = BloomParams::paper_default();
        let keys: Vec<String> = (0..1_000).map(|i| format!("kw{i}")).collect();
        let f = BloomFilter::from_keys(p, keys.iter().map(String::as_str));
        let size = WireFilter::size_of(&f) as f64 / 1024.0;
        assert!(size <= 1.45, "full ad filter should be ≤ ~1.43 KB, got {size}");
    }

    #[test]
    fn encoder_never_worse_than_raw() {
        let p = BloomParams::for_capacity(500, 8);
        for n in [0usize, 1, 10, 100, 500, 1500] {
            let keys: Vec<String> = (0..n).map(|i| format!("k{i}")).collect();
            let f = BloomFilter::from_keys(p, keys.iter().map(String::as_str));
            assert!(WireFilter::size_of(&f) <= FRAMING + p.raw_bytes());
        }
    }
}
