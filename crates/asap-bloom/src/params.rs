//! Filter sizing and false-positive probability math (paper §III-B).

/// Sizing parameters shared by every filter in the system.
///
/// The paper uses **fixed-length** filters: all peers agree on one `m`
/// (derived from the largest keyword set `K_max`) and one `k`, so a single
/// set of hash functions works everywhere. With `|K_max| = 1,000` and
/// `k = 8` the paper arrives at `m = ⌈1,000·8 / ln 2⌉ = 11,542` bits
/// (≈ 1.43 KB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BloomParams {
    /// Filter length in bits (`m`).
    pub bits: u32,
    /// Number of hash functions (`k`).
    pub hashes: u32,
}

impl BloomParams {
    /// Parameters sized for `capacity` elements with `k` hash functions at
    /// the optimal load point: `m = ⌈capacity · k / ln 2⌉`.
    ///
    /// # Panics
    /// Panics if `capacity` or `hashes` is zero.
    pub fn for_capacity(capacity: usize, hashes: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(hashes > 0, "need at least one hash function");
        let m = (capacity as f64 * hashes as f64 / std::f64::consts::LN_2).ceil();
        Self {
            bits: m as u32,
            hashes,
        }
    }

    /// The paper's default: `|K_max| = 1,000`, `k = 8` ⇒ `m = 11,542` bits.
    pub fn paper_default() -> Self {
        Self::for_capacity(1_000, 8)
    }

    /// Expected false-positive probability once `n` elements are inserted:
    /// `(1 - e^{-kn/m})^k`.
    pub fn false_positive_rate(&self, n: usize) -> f64 {
        let k = self.hashes as f64;
        let m = self.bits as f64;
        (1.0 - (-k * n as f64 / m).exp()).powf(k)
    }

    /// Minimum achievable false-positive probability for this `k`, reached at
    /// the optimal load point: `(1/2)^k` (≈ 0.39% for `k = 8`).
    pub fn min_false_positive_rate(&self) -> f64 {
        0.5f64.powi(self.hashes as i32)
    }

    /// Bits per element at the optimal load point: `k / ln 2`
    /// (≈ 11.54 for `k = 8`, as the paper reports).
    pub fn bits_per_element(&self) -> f64 {
        self.hashes as f64 / std::f64::consts::LN_2
    }

    /// Size of the raw (uncompressed) bit vector in bytes.
    pub fn raw_bytes(&self) -> usize {
        (self.bits as usize).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_published_numbers() {
        let p = BloomParams::paper_default();
        assert_eq!(p.bits, 11_542);
        assert_eq!(p.hashes, 8);
        // "1.43 KB"
        assert!((p.raw_bytes() as f64 / 1024.0 - 1.41).abs() < 0.05);
    }

    #[test]
    fn min_fp_rate_for_k8_is_0_39_percent() {
        let p = BloomParams::paper_default();
        assert!((p.min_false_positive_rate() - 0.0039).abs() < 0.0002);
    }

    #[test]
    fn bits_per_element_for_k8() {
        let p = BloomParams::paper_default();
        assert!((p.bits_per_element() - 11.54).abs() < 0.01);
    }

    #[test]
    fn fp_rate_at_capacity_close_to_minimum() {
        let p = BloomParams::for_capacity(500, 8);
        let at_cap = p.false_positive_rate(500);
        assert!((at_cap - p.min_false_positive_rate()).abs() < 0.001);
    }

    #[test]
    fn fp_rate_monotone_in_load() {
        let p = BloomParams::for_capacity(100, 4);
        let mut last = 0.0;
        for n in [1, 10, 50, 100, 200, 400] {
            let r = p.false_positive_rate(n);
            assert!(r > last, "fp rate must grow with load");
            last = r;
        }
    }

    #[test]
    fn empty_filter_never_false_positives() {
        let p = BloomParams::for_capacity(100, 4);
        assert_eq!(p.false_positive_rate(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        BloomParams::for_capacity(0, 8);
    }

    #[test]
    #[should_panic(expected = "hash")]
    fn zero_hashes_rejected() {
        BloomParams::for_capacity(10, 0);
    }
}
