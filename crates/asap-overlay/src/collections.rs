//! Deterministic hash collections for simulation-facing crates.
//!
//! `std::collections::HashMap`'s default `RandomState` seeds itself from
//! process entropy, so iteration order — and anything downstream of it —
//! differs between runs. The replay digests pinned in
//! `crates/asap-bench/golden/` demand bit-identical behavior, so every
//! simulation-facing crate uses these fixed-seed aliases instead (enforced
//! by `cargo lint`, rule R1). The hasher is FxHash-style: a rotate-xor-
//! multiply mix, seedless, not DoS-resistant — fine for a simulator whose
//! keys come from its own trace, never from an adversary.
//!
//! This module lives in `asap-overlay` (the lowest crate in the simulation
//! stack) and is re-exported as `asap_sim::collections`, the canonical path
//! for crates that already depend on the simulator.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash (the golden-ratio-derived constant used by the
/// rustc hasher); the exact value only matters for mixing quality.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fixed-seed, non-cryptographic hasher: every process, every run, every
/// platform produces the same hash for the same key.
#[derive(Debug, Default, Clone)]
pub struct DetHasher {
    hash: u64,
}

impl DetHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`DetHasher`]; `Default` yields the same state always.
pub type DetBuildHasher = BuildHasherDefault<DetHasher>;

/// Drop-in `HashMap` with deterministic, fixed-seed hashing. Construct with
/// `DetHashMap::default()` (the `new()` constructor is `RandomState`-only).
pub type DetHashMap<K, V> = HashMap<K, V, DetBuildHasher>;

/// Drop-in `HashSet` with deterministic, fixed-seed hashing.
pub type DetHashSet<T> = HashSet<T, DetBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = DetBuildHasher::default().build_hasher();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn hashes_are_stable_across_hasher_instances() {
        assert_eq!(hash_of(b"asap"), hash_of(b"asap"));
        assert_ne!(hash_of(b"asap"), hash_of(b"asap!"));
    }

    #[test]
    fn write_u64_matches_repeated_use() {
        let mut a = DetHasher::default();
        a.write_u64(42);
        let mut b = DetHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), DetHasher::default().finish());
    }

    #[test]
    fn map_iteration_order_is_reproducible() {
        let build = || {
            let mut m: DetHashMap<u64, u64> = DetHashMap::default();
            for k in 0..1_000u64 {
                m.insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k);
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(build(), build(), "same inserts, same order");
    }

    #[test]
    fn set_behaves_like_a_set() {
        let mut s: DetHashSet<u32> = DetHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
        assert!(s.remove(&7));
        assert!(s.is_empty());
    }
}
