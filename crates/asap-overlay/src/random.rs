//! Uniform random overlay: `G(n, M)` with `M = ⌈n · avg/2⌉` edges, repaired
//! to connectivity (paper: "connections are randomly created with an average
//! node degree of 5").

use crate::graph::{Overlay, PeerId};
use rand::rngs::SmallRng;
use rand::Rng;

pub fn generate(n: usize, avg_degree: f64, rng: &mut SmallRng) -> Overlay {
    let mut g = Overlay::with_peers(n);
    let target_edges = ((n as f64 * avg_degree) / 2.0).round() as usize;
    let mut added = 0;
    let mut attempts = 0;
    let max_attempts = target_edges * 20 + 100;
    while added < target_edges && attempts < max_attempts {
        attempts += 1;
        let a = PeerId(rng.gen_range(0..n as u32));
        let b = PeerId(rng.gen_range(0..n as u32));
        if g.add_edge(a, b) {
            added += 1;
        }
    }
    g.repair_connectivity(rng);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn hits_average_degree() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generate(1_000, 5.0, &mut rng);
        assert!((g.avg_degree() - 5.0).abs() < 0.2, "{}", g.avg_degree());
    }

    #[test]
    fn connected() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(generate(500, 5.0, &mut rng).is_connected());
    }

    #[test]
    fn degree_distribution_is_concentrated() {
        // A random graph's degrees hug the mean — no heavy tail.
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generate(2_000, 5.0, &mut rng);
        let max = g.degree_histogram().len() - 1;
        assert!(max < 25, "random overlay should have no big hubs, max {max}");
    }

    #[test]
    fn tiny_network() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generate(2, 1.0, &mut rng);
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 1);
    }
}
