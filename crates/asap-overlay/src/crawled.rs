//! Crawled-Limewire-like overlay.
//!
//! **Substitution note (see DESIGN.md §5).** The paper's third overlay is
//! "derived from a crawled Limewire network topology with an average node
//! degree 3.35"; the crawl itself is not available. Gnutella/Limewire crawls
//! of that era consistently show a heavy-tailed degree distribution with an
//! exponential cutoff and a large fraction of low-degree leaves. We
//! reconstruct that shape: degrees from a truncated power law (α ≈ −1.7,
//! steeper than the paper's synthetic power-law overlay, hence many leaves)
//! nudged to mean 3.35, paired with the configuration model, repaired to
//! connectivity. The two published properties — average degree 3.35 and
//! heavy tail — are reproduced exactly/structurally.

use crate::degree::{degree_sequence, TruncatedPowerLaw};
use crate::graph::Overlay;
use crate::powerlaw::pair_stubs;
use rand::rngs::SmallRng;

/// Degree exponent chosen to mimic measured Gnutella crawls (leaf-heavy).
const CRAWL_ALPHA: f64 = -1.7;
/// The paper's measured average degree for the crawled topology.
pub const CRAWL_AVG_DEGREE: f64 = 3.35;

pub fn generate(n: usize, rng: &mut SmallRng) -> Overlay {
    let cutoff = TruncatedPowerLaw::fit_cutoff(CRAWL_ALPHA, CRAWL_AVG_DEGREE, n);
    let dist = TruncatedPowerLaw::new(CRAWL_ALPHA, cutoff);
    let degs = degree_sequence(&dist, n, CRAWL_AVG_DEGREE, rng);
    pair_stubs(n, &degs, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn average_degree_is_3_35ish() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generate(2_000, &mut rng);
        let avg = g.avg_degree();
        assert!((avg - CRAWL_AVG_DEGREE).abs() < 0.5, "avg {avg}");
    }

    #[test]
    fn connected() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(generate(700, &mut rng).is_connected());
    }

    #[test]
    fn leaf_heavy() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generate(2_000, &mut rng);
        let hist = g.degree_histogram();
        let low: usize = hist.iter().take(3).sum(); // degree ≤ 2
        assert!(
            low * 3 > g.num_peers(),
            "expected ≥ 1/3 of peers at degree ≤ 2, got {low}/{}",
            g.num_peers()
        );
    }

    #[test]
    fn has_hubs() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generate(2_000, &mut rng);
        let max = g.degree_histogram().len() - 1;
        assert!(max >= 12, "crawled overlay should have hubs, max degree {max}");
    }
}
