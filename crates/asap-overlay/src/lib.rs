//! Logical P2P overlay topologies (paper §IV-A).
//!
//! Three overlays are evaluated: **random** (average degree 5), **power-law**
//! (same average, exponent α = −0.74), and **crawled** (derived from a
//! Limewire crawl, average degree 3.35 — reconstructed here as a heavy-tailed
//! generated graph, see [`crawled`]). 10,000 P2P peers are mapped onto random
//! physical nodes of the transit-stub network; the overlay decides who is a
//! neighbor, the physical network decides what a hop costs.
//!
//! The overlay is mutable: churn detaches a departing peer's edges and
//! re-attaches joining peers with a topology-appropriate rule (uniform for
//! random, degree-preferential for the heavy-tailed families).

pub mod collections;
pub mod crawled;
pub mod degree;
pub mod graph;
pub mod powerlaw;
pub mod random;

pub use graph::{Overlay, PeerId};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Which overlay family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverlayKind {
    /// Uniform random wiring, average degree 5.
    Random,
    /// Power-law degree distribution (α = −0.74), average degree 5.
    PowerLaw,
    /// Crawled-Limewire-like heavy-tailed graph, average degree 3.35.
    Crawled,
}

impl OverlayKind {
    /// All three families, in the paper's presentation order.
    pub const ALL: [OverlayKind; 3] = [Self::Random, Self::PowerLaw, Self::Crawled];

    /// The paper's average degree for this family.
    pub fn avg_degree(self) -> f64 {
        match self {
            Self::Random | Self::PowerLaw => 5.0,
            Self::Crawled => 3.35,
        }
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Self::Random => "random",
            Self::PowerLaw => "powerlaw",
            Self::Crawled => "crawled",
        }
    }
}

/// Overlay generation parameters.
#[derive(Debug, Clone)]
pub struct OverlayConfig {
    pub kind: OverlayKind,
    pub nodes: usize,
    pub seed: u64,
}

impl OverlayConfig {
    pub fn new(kind: OverlayKind, nodes: usize, seed: u64) -> Self {
        Self { kind, nodes, seed }
    }

    /// Generate the overlay graph.
    pub fn build(&self) -> Overlay {
        assert!(self.nodes >= 2, "an overlay needs at least two peers");
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x0E17_AA10_C0DE);
        match self.kind {
            OverlayKind::Random => random::generate(self.nodes, self.kind.avg_degree(), &mut rng),
            OverlayKind::PowerLaw => {
                powerlaw::generate(self.nodes, self.kind.avg_degree(), -0.74, &mut rng)
            }
            OverlayKind::Crawled => crawled::generate(self.nodes, &mut rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build_connected_overlays() {
        for kind in OverlayKind::ALL {
            let ov = OverlayConfig::new(kind, 500, 9).build();
            assert_eq!(ov.num_peers(), 500);
            assert!(ov.is_connected(), "{kind:?} must be connected");
        }
    }

    #[test]
    fn average_degrees_close_to_paper() {
        for kind in OverlayKind::ALL {
            let ov = OverlayConfig::new(kind, 2_000, 3).build();
            let avg = ov.avg_degree();
            let target = kind.avg_degree();
            assert!(
                (avg - target).abs() / target < 0.25,
                "{kind:?}: avg degree {avg}, target {target}"
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = OverlayConfig::new(OverlayKind::PowerLaw, 300, 4).build();
        let b = OverlayConfig::new(OverlayKind::PowerLaw, 300, 4).build();
        for p in 0..300 {
            assert_eq!(a.neighbors(PeerId(p)), b.neighbors(PeerId(p)));
        }
    }
}
