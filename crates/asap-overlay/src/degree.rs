//! Degree-sequence sampling for the heavy-tailed overlay families.

use rand::rngs::SmallRng;
use rand::Rng;

/// A discrete truncated power-law `P(d) ∝ d^alpha` for `d ∈ [1, d_max]`,
/// sampled by inverse CDF over the precomputed mass table.
#[derive(Debug, Clone)]
pub struct TruncatedPowerLaw {
    cdf: Vec<f64>,
}

impl TruncatedPowerLaw {
    /// Build the distribution. `alpha` is the (negative) exponent, e.g. the
    /// paper's −0.74.
    pub fn new(alpha: f64, d_max: usize) -> Self {
        assert!(d_max >= 1);
        let mut cdf = Vec::with_capacity(d_max);
        let mut acc = 0.0;
        for d in 1..=d_max {
            acc += (d as f64).powf(alpha);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Self { cdf }
    }

    /// Expected value of the distribution.
    pub fn mean(&self) -> f64 {
        let mut mean = 0.0;
        let mut prev = 0.0;
        for (i, &c) in self.cdf.iter().enumerate() {
            mean += (i + 1) as f64 * (c - prev);
            prev = c;
        }
        mean
    }

    /// Draw one degree.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        // First index whose cdf ≥ u.
        match self
            .cdf
            .binary_search_by(|c| c.total_cmp(&u))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Find the cutoff `d_max` whose truncated mean is closest to
    /// `target_mean` (binary search over the cutoff; the mean grows
    /// monotonically with it for `alpha > -2`).
    pub fn fit_cutoff(alpha: f64, target_mean: f64, n: usize) -> usize {
        let hard_cap = n.saturating_sub(1).max(2);
        let (mut lo, mut hi) = (1usize, hard_cap);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if Self::new(alpha, mid).mean() < target_mean {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo.max(2)
    }
}

/// Sample a degree sequence with the exact target *sum* `n · avg` (rounded to
/// the nearest even number, as required for a graphical pairing): draws from
/// the distribution, then nudges entries up/down to hit the sum.
pub fn degree_sequence(
    dist: &TruncatedPowerLaw,
    n: usize,
    avg: f64,
    rng: &mut SmallRng,
) -> Vec<usize> {
    let mut target = (n as f64 * avg).round() as usize;
    if target % 2 == 1 {
        target += 1;
    }
    let mut degs: Vec<usize> = (0..n).map(|_| dist.sample(rng)).collect();
    let mut sum: usize = degs.iter().sum();
    // Nudge random entries toward the target sum; ±1 steps keep the shape.
    while sum != target {
        let i = rng.gen_range(0..n);
        if sum < target {
            degs[i] += 1;
            sum += 1;
        } else if degs[i] > 1 {
            degs[i] -= 1;
            sum -= 1;
        }
    }
    degs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_normalized_and_monotone() {
        let d = TruncatedPowerLaw::new(-0.74, 50);
        assert!((d.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        for w in d.cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn mean_matches_samples() {
        let d = TruncatedPowerLaw::new(-0.74, 30);
        let mut rng = SmallRng::seed_from_u64(1);
        let trials = 40_000;
        let sum: usize = (0..trials).map(|_| d.sample(&mut rng)).sum();
        let empirical = sum as f64 / trials as f64;
        assert!(
            (empirical - d.mean()).abs() < 0.15,
            "empirical {empirical}, analytic {}",
            d.mean()
        );
    }

    #[test]
    fn fit_cutoff_hits_target_mean() {
        let cutoff = TruncatedPowerLaw::fit_cutoff(-0.74, 5.0, 10_000);
        let mean = TruncatedPowerLaw::new(-0.74, cutoff).mean();
        assert!((mean - 5.0).abs() < 0.5, "cutoff {cutoff} gives mean {mean}");
    }

    #[test]
    fn samples_in_range() {
        let d = TruncatedPowerLaw::new(-1.5, 10);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let s = d.sample(&mut rng);
            assert!((1..=10).contains(&s));
        }
    }

    #[test]
    fn degree_sequence_sum_is_even_and_on_target() {
        let d = TruncatedPowerLaw::new(-0.74, 20);
        let mut rng = SmallRng::seed_from_u64(3);
        let degs = degree_sequence(&d, 501, 5.0, &mut rng);
        let sum: usize = degs.iter().sum();
        assert_eq!(sum % 2, 0);
        assert!((sum as f64 - 501.0 * 5.0).abs() <= 1.0);
        assert!(degs.iter().all(|&d| d >= 1));
    }

    #[test]
    fn heavier_tail_with_shallower_alpha() {
        // α = −0.74 puts much more mass on high degrees than α = −2.5.
        let shallow = TruncatedPowerLaw::new(-0.74, 100);
        let steep = TruncatedPowerLaw::new(-2.5, 100);
        assert!(shallow.mean() > steep.mean() * 3.0);
    }
}
