//! Power-law overlay via the configuration model (paper: "node degrees …
//! follow a powerlaw distribution with α = −0.74", average degree 5).
//!
//! Degrees are drawn from a truncated discrete power law whose cutoff is
//! fitted so the mean lands on the target; stubs are then paired uniformly at
//! random, discarding self-loops and multi-edges (which loses a few stubs —
//! acceptable, the average is re-checked in tests), and the result is
//! repaired to connectivity.

use crate::degree::{degree_sequence, TruncatedPowerLaw};
use crate::graph::{Overlay, PeerId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

pub fn generate(n: usize, avg_degree: f64, alpha: f64, rng: &mut SmallRng) -> Overlay {
    let cutoff = TruncatedPowerLaw::fit_cutoff(alpha, avg_degree, n);
    let dist = TruncatedPowerLaw::new(alpha, cutoff);
    let degs = degree_sequence(&dist, n, avg_degree, rng);
    pair_stubs(n, &degs, rng)
}

/// Configuration-model pairing of a degree sequence.
pub(crate) fn pair_stubs(n: usize, degs: &[usize], rng: &mut SmallRng) -> Overlay {
    let mut stubs: Vec<PeerId> = Vec::with_capacity(degs.iter().sum());
    for (i, &d) in degs.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(PeerId(i as u32), d));
    }
    stubs.shuffle(rng);
    let mut g = Overlay::with_peers(n);
    for pair in stubs.chunks_exact(2) {
        // add_edge drops self-loops and duplicates.
        g.add_edge(pair[0], pair[1]);
    }
    g.repair_connectivity(rng);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn average_degree_near_target() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generate(2_000, 5.0, -0.74, &mut rng);
        let avg = g.avg_degree();
        assert!((avg - 5.0).abs() < 0.8, "avg {avg}");
    }

    #[test]
    fn connected() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(generate(800, 5.0, -0.74, &mut rng).is_connected());
    }

    #[test]
    fn has_heavier_tail_than_random() {
        fn degree_variance(g: &Overlay) -> f64 {
            let n = g.num_peers() as f64;
            let mean = g.avg_degree();
            (0..g.num_peers())
                .map(|i| {
                    let d = g.degree(crate::PeerId(i as u32)) as f64;
                    (d - mean) * (d - mean)
                })
                .sum::<f64>()
                / n
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let pl = generate(2_000, 5.0, -0.74, &mut rng);
        let rnd = crate::random::generate(2_000, 5.0, &mut rng);
        let (vp, vr) = (degree_variance(&pl), degree_variance(&rnd));
        // A binomial random graph has variance ≈ mean (~5); the truncated
        // power law at the same mean spreads far wider.
        assert!(
            vp > vr * 2.0,
            "powerlaw degree variance {vp} should dwarf random's {vr}"
        );
    }

    #[test]
    fn pairing_respects_degree_sequence_approximately() {
        let mut rng = SmallRng::seed_from_u64(4);
        let degs = vec![3usize; 100];
        let g = pair_stubs(100, &degs, &mut rng);
        // Self-loop/duplicate discards lose a few edges; expect ≥ 90%.
        assert!(g.num_edges() >= 135, "{} edges", g.num_edges());
        assert!(g.num_edges() <= 150 + 5, "{} edges", g.num_edges());
    }
}
