//! The mutable overlay graph.

use rand::rngs::SmallRng;
use rand::Rng;

/// Index of an overlay peer. Dense: `0..num_peers`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u32);

impl PeerId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Undirected overlay graph over a fixed peer-id space, supporting churn.
///
/// Departed peers keep their id (the simulator owns liveness); `detach`
/// removes all their edges, `attach_*` rewires a rejoining peer.
#[derive(Debug, Clone)]
pub struct Overlay {
    adj: Vec<Vec<PeerId>>,
}

impl Overlay {
    pub fn with_peers(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
        }
    }

    pub fn num_peers(&self) -> usize {
        self.adj.len()
    }

    /// The raw adjacency lists (checkpointing). Neighbor order is
    /// history-dependent (`swap_remove` on detach), behavior-relevant for
    /// protocols iterating neighbors, and therefore serialized verbatim.
    pub fn adjacency(&self) -> &[Vec<PeerId>] {
        &self.adj
    }

    /// Rebuild an overlay from [`Overlay::adjacency`] output, verbatim. The
    /// caller is responsible for handing back lists that keep the undirected
    /// invariant (every edge present in both directions).
    pub fn from_adjacency(adj: Vec<Vec<PeerId>>) -> Self {
        Self { adj }
    }

    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    #[inline]
    pub fn degree(&self, p: PeerId) -> usize {
        self.adj[p.index()].len()
    }

    #[inline]
    pub fn neighbors(&self, p: PeerId) -> &[PeerId] {
        &self.adj[p.index()]
    }

    pub fn avg_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / self.num_peers() as f64
    }

    pub fn has_edge(&self, a: PeerId, b: PeerId) -> bool {
        self.adj[a.index()].contains(&b)
    }

    /// Add an undirected edge. Silently ignores self-loops and duplicates so
    /// generators can sample freely.
    pub fn add_edge(&mut self, a: PeerId, b: PeerId) -> bool {
        if a == b || self.has_edge(a, b) {
            return false;
        }
        self.adj[a.index()].push(b);
        self.adj[b.index()].push(a);
        true
    }

    pub fn remove_edge(&mut self, a: PeerId, b: PeerId) -> bool {
        let Some(i) = self.adj[a.index()].iter().position(|&n| n == b) else {
            return false;
        };
        self.adj[a.index()].swap_remove(i);
        let j = self.adj[b.index()]
            .iter()
            .position(|&n| n == a)
            // lint: allow(unwrap, reason=add_edge always inserts both directions; asymmetry is memory corruption)
            .expect("undirected invariant");
        self.adj[b.index()].swap_remove(j);
        true
    }

    /// Remove all of `p`'s edges (a peer departing the network).
    pub fn detach(&mut self, p: PeerId) {
        let nbrs = std::mem::take(&mut self.adj[p.index()]);
        for n in nbrs {
            let i = self.adj[n.index()]
                .iter()
                .position(|&x| x == p)
                // lint: allow(unwrap, reason=add_edge always inserts both directions; asymmetry is memory corruption)
                .expect("undirected invariant");
            self.adj[n.index()].swap_remove(i);
        }
    }

    /// Rewire a (re)joining peer to `target_degree` peers chosen uniformly
    /// among `candidates` (the currently-alive peers).
    pub fn attach_uniform(
        &mut self,
        p: PeerId,
        candidates: &[PeerId],
        target_degree: usize,
        rng: &mut SmallRng,
    ) {
        let mut added = 0;
        let mut attempts = 0;
        while added < target_degree && attempts < candidates.len() * 4 + 16 {
            attempts += 1;
            let q = candidates[rng.gen_range(0..candidates.len())];
            if q != p && self.add_edge(p, q) {
                added += 1;
            }
        }
    }

    /// Rewire a (re)joining peer with degree-preferential attachment — new
    /// links favor high-degree peers, preserving a heavy-tailed shape under
    /// churn.
    pub fn attach_preferential(
        &mut self,
        p: PeerId,
        candidates: &[PeerId],
        target_degree: usize,
        rng: &mut SmallRng,
    ) {
        let total: usize = candidates.iter().map(|&c| self.degree(c) + 1).sum();
        let mut added = 0;
        let mut attempts = 0;
        while added < target_degree && attempts < candidates.len() * 4 + 16 {
            attempts += 1;
            let mut ticket = rng.gen_range(0..total.max(1));
            let mut chosen = candidates[0];
            for &c in candidates {
                let w = self.degree(c) + 1;
                if ticket < w {
                    chosen = c;
                    break;
                }
                ticket -= w;
            }
            if chosen != p && self.add_edge(p, chosen) {
                added += 1;
            }
        }
    }

    /// Whether the graph is a single connected component (isolated-vertex
    /// graphs with `n > 1` are disconnected).
    pub fn is_connected(&self) -> bool {
        let n = self.num_peers();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![PeerId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Connect all components by linking random members to component 0.
    /// Used by generators after probabilistic wiring.
    pub fn repair_connectivity(&mut self, rng: &mut SmallRng) {
        let n = self.num_peers();
        if n == 0 {
            return;
        }
        loop {
            let mut seen = vec![false; n];
            let mut stack = vec![PeerId(0)];
            seen[0] = true;
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        stack.push(v);
                    }
                }
            }
            let Some(orphan) = seen.iter().position(|&s| !s) else {
                return;
            };
            // Link the orphan component to a random reached node.
            let mut anchor = rng.gen_range(0..n);
            while !seen[anchor] {
                anchor = rng.gen_range(0..n);
            }
            self.add_edge(PeerId(orphan as u32), PeerId(anchor as u32));
        }
    }

    /// Degree histogram: `hist[d]` = number of peers with degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max = self.adj.iter().map(Vec::len).max().unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for nbrs in &self.adj {
            hist[nbrs.len()] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn add_remove_edge_roundtrip() {
        let mut g = Overlay::with_peers(3);
        assert!(g.add_edge(PeerId(0), PeerId(1)));
        assert!(!g.add_edge(PeerId(0), PeerId(1)), "duplicate rejected");
        assert!(!g.add_edge(PeerId(1), PeerId(0)), "reverse duplicate rejected");
        assert!(!g.add_edge(PeerId(2), PeerId(2)), "self loop rejected");
        assert_eq!(g.num_edges(), 1);
        assert!(g.remove_edge(PeerId(1), PeerId(0)));
        assert_eq!(g.num_edges(), 0);
        assert!(!g.remove_edge(PeerId(1), PeerId(0)));
    }

    #[test]
    fn detach_clears_both_sides() {
        let mut g = Overlay::with_peers(4);
        g.add_edge(PeerId(0), PeerId(1));
        g.add_edge(PeerId(0), PeerId(2));
        g.add_edge(PeerId(1), PeerId(2));
        g.detach(PeerId(0));
        assert_eq!(g.degree(PeerId(0)), 0);
        assert_eq!(g.degree(PeerId(1)), 1);
        assert_eq!(g.degree(PeerId(2)), 1);
        assert!(!g.has_edge(PeerId(1), PeerId(0)));
    }

    #[test]
    fn attach_uniform_reaches_target() {
        let mut g = Overlay::with_peers(10);
        let mut rng = SmallRng::seed_from_u64(1);
        let candidates: Vec<PeerId> = (1..10).map(PeerId).collect();
        g.attach_uniform(PeerId(0), &candidates, 4, &mut rng);
        assert_eq!(g.degree(PeerId(0)), 4);
    }

    #[test]
    fn attach_preferential_favors_hubs() {
        let mut g = Overlay::with_peers(22);
        let mut rng = SmallRng::seed_from_u64(2);
        // Peer 1 is a hub of degree 20.
        for i in 2..22 {
            g.add_edge(PeerId(1), PeerId(i));
        }
        let candidates: Vec<PeerId> = (1..22).map(PeerId).collect();
        let mut hub_hits = 0;
        for trial in 0..50 {
            let mut g2 = g.clone();
            let _ = trial;
            g2.attach_preferential(PeerId(0), &candidates, 1, &mut rng);
            if g2.has_edge(PeerId(0), PeerId(1)) {
                hub_hits += 1;
            }
        }
        // Hub holds 21/61 of the weight; uniform would give ~1/21.
        assert!(hub_hits > 8, "hub only chosen {hub_hits}/50 times");
    }

    #[test]
    fn connectivity_and_repair() {
        let mut g = Overlay::with_peers(6);
        g.add_edge(PeerId(0), PeerId(1));
        g.add_edge(PeerId(2), PeerId(3));
        assert!(!g.is_connected());
        let mut rng = SmallRng::seed_from_u64(3);
        g.repair_connectivity(&mut rng);
        assert!(g.is_connected());
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let mut g = Overlay::with_peers(5);
        g.add_edge(PeerId(0), PeerId(1));
        g.add_edge(PeerId(0), PeerId(2));
        let hist = g.degree_histogram();
        assert_eq!(hist.iter().sum::<usize>(), 5);
        assert_eq!(hist[0], 2); // peers 3, 4
        assert_eq!(hist[2], 1); // peer 0
    }

    #[test]
    fn empty_overlay_edge_cases() {
        let g = Overlay::with_peers(0);
        assert!(g.is_connected());
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.degree_histogram(), vec![0usize; 1]);
    }
}
