//! Diagnostic harness: runs ASAP(RW) on a small world and prints protocol
//! statistics plus a post-mortem of failed queries (where was the holder's
//! ad?). Used during calibration; kept as a debugging tool.

use asap_core::{Asap, AsapConfig};
use asap_metrics::MsgClass;
use asap_overlay::{OverlayConfig, OverlayKind};
use asap_sim::Simulation;
use asap_topology::{PhysicalNetwork, TransitStubConfig};
use asap_workload::{TraceEvent, WorkloadConfig};

fn main() {
    let seed = 1;
    let peers = 300;
    let refresh_s: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let phys = PhysicalNetwork::generate(&TransitStubConfig::reduced(seed));
    let workload = asap_workload::generate(&WorkloadConfig::reduced(peers, 400, seed));
    let overlay = OverlayConfig::new(OverlayKind::Random, peers, seed).build();
    let mut config = AsapConfig::rw().scaled_to(peers);
    config.warmup_stagger_us = 5_000_000;
    config.refresh_interval_us = refresh_s * 1_000_000;
    eprintln!("config: budget_unit={} cache_cap={} refresh={}s", config.budget_unit, config.cache_capacity, refresh_s);
    let protocol = Asap::new(config, &workload.model);
    let report = Simulation::builder(&phys, &workload, overlay.clone(), OverlayKind::Random, protocol, seed).run();
    let s = &report.protocol.stats;
    eprintln!("queries={} success={:.3} rt={:.1}ms", report.ledger.num_queries(), report.ledger.success_rate(), report.ledger.avg_response_time_ms());
    eprintln!("stats: local_hits={} fallbacks={} confirms={} positive={} repairs={} full_del={} patch_del={} refresh_del={}",
        s.local_lookup_hits, s.fallback_rounds, s.confirms_sent, s.confirms_positive, s.repair_fetches,
        s.full_deliveries, s.patch_deliveries, s.refresh_deliveries);
    let t = report.load.class_totals();
    for c in MsgClass::ALL { if t[c.index()] > 0 { eprintln!("  {:>14}: {}", c.label(), t[c.index()]); } }
    eprintln!("per-search cost = {:.0} B", report.load.search_cost_bytes() as f64 / report.ledger.num_queries() as f64);
    eprintln!("mean load = {:.1} B/node/s, stddev = {:.1}", report.load.mean_load(), report.load.stddev_load());

    // Post-mortem: for each failed query, where was the holder's ad?
    let mut failed = 0;
    let mut holder_own_ver_newer = 0; // holder changed content during trace
    let mut req_has = 0;
    let mut req_has_stale_or_old = 0;
    let mut nbr_has = 0;
    let mut nowhere = 0;
    
    // records() returns refs; collect outcomes by id order
    let recs: Vec<(u64, bool)> = report.ledger.records().map(|r| (r.issue_us, r.first_answer_us.is_some())).collect();
    let mut qi = 0usize;
    for ev in &workload.trace.events {
        if let TraceEvent::Query(q) = &ev.event {
            let ok = recs.get(qi).map(|r| r.1).unwrap_or(false);
            qi += 1;
            if ok { continue; }
            failed += 1;
            // find holders of the target in the final overlay state
            let holders: Vec<_> = (0..peers as u32).map(asap_overlay::PeerId)
                .filter(|&p| workload.model.initial_holdings[p.index()].binary_search(&q.target).is_ok())
                .collect();
            let asap = &report.protocol;
            let mut any_req = false; let mut any_fresh = false; let mut any_nbr = false;
            for &h in &holders {
                if asap.own_version(h) > 0 { holder_own_ver_newer += 1; }
                if let Some((_v, stale)) = asap.cached_version(q.requester, h) {
                    any_req = true;
                    if !stale { any_fresh = true; }
                }
                for &n in report.overlay.neighbors(q.requester) {
                    if asap.cached_version(n, h).is_some() { any_nbr = true; }
                }
            }
            if any_req && any_fresh { req_has += 1; }
            else if any_req { req_has_stale_or_old += 1; }
            else if any_nbr { nbr_has += 1; }
            else { nowhere += 1; }
        }
    }
    eprintln!("failed={failed}: req_has_fresh={req_has} req_stale={req_has_stale_or_old} nbr_has={nbr_has} nowhere={nowhere} holder_ver_bumps={holder_own_ver_newer}");
}


