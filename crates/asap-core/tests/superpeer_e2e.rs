//! End-to-end tests for the hierarchical (super-peer) ASAP deployment.

use asap_core::superpeer::{SuperAsap, SuperPeerConfig};
use asap_core::AsapConfig;
use asap_overlay::{OverlayConfig, OverlayKind, PeerId};
use asap_sim::{SimReport, Simulation};
use asap_topology::{PhysicalNetwork, TransitStubConfig};
use asap_workload::WorkloadConfig;

const PEERS: usize = 250;
const QUERIES: usize = 400;

fn run(seed: u64, super_fraction: f64) -> SimReport<SuperAsap> {
    let phys = PhysicalNetwork::generate(&TransitStubConfig::reduced(seed));
    let workload = asap_workload::generate(&WorkloadConfig::reduced(PEERS, QUERIES, seed));
    // Power-law overlay: hubs make natural super peers.
    let overlay = OverlayConfig::new(OverlayKind::PowerLaw, PEERS, seed).build();
    let mut asap = AsapConfig::rw().scaled_to(PEERS);
    asap.warmup_stagger_us = 5_000_000;
    let mut config = SuperPeerConfig::new(asap);
    config.super_fraction = super_fraction;
    let protocol = SuperAsap::new(config, &workload.model);
    Simulation::builder(&phys, &workload, overlay, OverlayKind::PowerLaw, protocol, seed).run()
}

#[test]
fn hierarchy_forms_and_answers_queries() {
    let report = run(1, 0.2);
    let stats = &report.protocol.stats;
    assert!(stats.supers > 0 && stats.leaves > 0, "both roles must exist");
    assert!(
        stats.supers < PEERS / 2,
        "super peers should be a minority ({})",
        stats.supers
    );
    assert!(
        report.ledger.success_rate() > 0.5,
        "success {}",
        report.ledger.success_rate()
    );
}

#[test]
fn leaves_route_queries_through_their_home() {
    let report = run(2, 0.2);
    let stats = &report.protocol.stats;
    assert!(stats.leaf_queries_forwarded > 0, "leaves must forward queries");
    assert!(
        stats.super_local_hits > 0,
        "super-peer repositories must answer lookups"
    );
}

#[test]
fn supers_are_high_degree_peers() {
    let report = run(3, 0.2);
    let proto = &report.protocol;
    let mut super_degrees = Vec::new();
    let mut leaf_degrees = Vec::new();
    for p in 0..PEERS as u32 {
        let peer = PeerId(p);
        let d = report.overlay.degree(peer);
        if proto.is_super(peer) {
            super_degrees.push(d);
        } else {
            leaf_degrees.push(d);
        }
    }
    let avg = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len().max(1) as f64;
    assert!(
        avg(&super_degrees) > avg(&leaf_degrees),
        "supers {:.1} vs leaves {:.1}",
        avg(&super_degrees),
        avg(&leaf_degrees)
    );
}

#[test]
fn digests_and_fetches_flow() {
    let report = run(4, 0.2);
    let stats = &report.protocol.stats;
    assert!(stats.registrations > 0);
    assert!(stats.digests_sent > 0);
    assert!(stats.fetches > 0, "interested supers must pull filters");
}

#[test]
fn all_super_mode_degenerates_gracefully() {
    // fraction = 1.0 ⇒ every node is its own home; still functional.
    let report = run(5, 1.0);
    assert_eq!(report.protocol.stats.leaves, 0);
    // Degenerate deployment: tiny single-entry digest walks cover little of
    // an all-super graph, so success leans on the one fallback round.
    assert!(report.ledger.success_rate() > 0.2);
}

#[test]
fn deterministic() {
    let a = run(6, 0.2);
    let b = run(6, 0.2);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.ledger.success_rate(), b.ledger.success_rate());
}
