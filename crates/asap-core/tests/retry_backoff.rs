//! Tier 5 — chaos replay: ASAP's retry/backoff machinery under injected
//! loss (see TESTING.md).
//!
//! Every run here is fully audited, so a clean report certifies the
//! double-entry reconciliations: the engine's robustness counters against
//! the auditor's mirror, the fault layer's drop/duplicate statistics
//! against the announced events, and per-class bytes against observed
//! sends. On top of that these tests pin the protocol-level identities —
//! confirms on the wire match `confirms_sent` even across retransmits, and
//! exhausted retry budgets land in the abandoned/lost counters instead of
//! leaking state.

use asap_core::{Asap, AsapConfig, RobustnessConfig};
use asap_metrics::{MsgClass, RetryStat};
use asap_overlay::{OverlayConfig, OverlayKind};
use asap_sim::{AuditConfig, FaultPlan, SimReport, Simulation};
use asap_topology::{PhysicalNetwork, TransitStubConfig};
use asap_workload::{Workload, WorkloadConfig};

const PEERS: usize = 200;
const QUERIES: usize = 300;

fn config(robustness: RobustnessConfig) -> AsapConfig {
    let mut c = AsapConfig::rw().scaled_to(PEERS);
    c.warmup_stagger_us = 4_000_000;
    c.refresh_interval_us = 8_000_000;
    c.with_robustness(robustness)
}

fn run(seed: u64, robustness: RobustnessConfig, loss_ppm: u32) -> SimReport<Asap> {
    let phys = PhysicalNetwork::generate(&TransitStubConfig::reduced(seed));
    let workload: Workload =
        asap_workload::generate(&WorkloadConfig::reduced(PEERS, QUERIES, seed));
    let overlay = OverlayConfig::new(OverlayKind::Random, PEERS, seed).build();
    let protocol = Asap::new(config(robustness), &workload.model);
    let sim = Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, protocol, seed)
        .audit(AuditConfig::default());
    let sim = if loss_ppm > 0 {
        sim.faults(FaultPlan {
            loss_ppm,
            ..FaultPlan::default()
        })
    } else {
        sim
    };
    sim.run()
}

fn assert_clean(report: &SimReport<Asap>, what: &str) {
    let audit = report.audit.as_ref().expect("audited run");
    assert!(
        audit.is_clean(),
        "{what}: violations {:?} (+{} suppressed)",
        audit.violations,
        audit.suppressed
    );
}

#[test]
fn confirms_on_the_wire_reconcile_with_stats_across_retries() {
    // The identity must hold in both regimes: without retries (every confirm
    // sent once) and under loss with retries (each retransmit counted).
    for (seed, robustness, loss) in [
        (71, RobustnessConfig::default(), 0),
        (71, RobustnessConfig::lossy(), 100_000),
    ] {
        let report = run(seed, robustness, loss);
        assert_clean(&report, "confirm reconciliation run");
        let wire = report.load.class_message_totals()[MsgClass::Confirm.index()];
        assert_eq!(
            wire, report.protocol.stats.confirms_sent,
            "every Confirm message on the wire is one confirms_sent (loss={loss})"
        );
    }
}

#[test]
fn retries_fire_under_loss_and_stay_reconciled() {
    let report = run(73, RobustnessConfig::lossy(), 100_000);
    // Clean audit ⇒ the engine's RetryCounters matched the auditor's
    // independent mirror of every Ctx::count call, exactly.
    assert_clean(&report, "lossy retry run");
    assert!(
        report.retry.get(RetryStat::Retries) > 0,
        "10% loss over a full trace must trigger retransmits"
    );
    assert!(
        report.faults.expect("plan attached").dropped > 0,
        "loss actually fired"
    );
    // Retries can only add traffic on top of the paper's machinery; the run
    // still resolves most queries (fallback + retransmits recover).
    assert!(
        report.ledger.success_rate() > 0.5,
        "success {} under 10% loss with retries",
        report.ledger.success_rate()
    );
}

#[test]
fn inert_robustness_counts_no_retries_or_abandons() {
    // Without retry budgets the protocol never retransmits and never gives
    // up on a tracked delivery — even under loss. (ConfirmationsLost may
    // legitimately fire: sources die or their replies are dropped.)
    let report = run(79, RobustnessConfig::default(), 100_000);
    assert_clean(&report, "inert-robustness lossy run");
    assert_eq!(report.retry.get(RetryStat::Retries), 0);
    assert_eq!(report.retry.get(RetryStat::DeliveriesAbandoned), 0);
}

#[test]
fn exhausted_budgets_land_in_abandoned_and_lost_counters() {
    // Heavy loss exhausts fetch/readvert budgets (abandoned) and eats
    // confirmation replies (lost). Both counters must move, and a clean
    // audit certifies they reconcile exactly with the mirror.
    let report = run(83, RobustnessConfig::lossy(), 350_000);
    assert_clean(&report, "heavy-loss run");
    assert!(
        report.retry.get(RetryStat::DeliveriesAbandoned) > 0,
        "35% loss must exhaust some retry budget"
    );
    assert!(
        report.retry.get(RetryStat::ConfirmationsLost) > 0,
        "35% loss must strand some confirmations"
    );
    assert!(
        report.retry.get(RetryStat::Retries) > 0,
        "budgets were actually spent before exhausting"
    );
}

#[test]
fn lossy_runs_replay_deterministically_with_retries() {
    let digest = |seed| {
        let report = run(seed, RobustnessConfig::lossy(), 100_000);
        assert_clean(&report, "replay run");
        (
            report.audit.expect("audited").digest,
            report.retry.counts(),
            report.faults.expect("stats"),
        )
    };
    assert_eq!(digest(89), digest(89), "retry machinery must replay");
}
