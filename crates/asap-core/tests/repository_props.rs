//! Property-based tests for the ad repository: arbitrary interleavings of
//! full / patch / refresh / lookup operations preserve its invariants.

use asap_bloom::hashing::KeyHash;
use asap_bloom::{BloomFilter, BloomParams};
use asap_core::repository::{AdRepository, ApplyOutcome};
use asap_core::AdSnapshot;
use asap_overlay::PeerId;
use asap_workload::InterestSet;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::rc::Rc;

const SOURCES: u32 = 8;
const CAPACITY: usize = 5;

#[derive(Debug, Clone)]
enum Op {
    /// Full ad from `source` at `version` containing keyword `kw`.
    Full { source: u32, version: u16, kw: u8 },
    /// Refresh from `source` at `version`.
    Refresh { source: u32, version: u16 },
    /// Lookup for keyword `kw`.
    Lookup { kw: u8 },
    Remove { source: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SOURCES, 0u16..6, 0u8..12).prop_map(|(source, version, kw)| Op::Full {
            source,
            version,
            kw
        }),
        (0..SOURCES, 0u16..6).prop_map(|(source, version)| Op::Refresh { source, version }),
        (0u8..12).prop_map(|kw| Op::Lookup { kw }),
        (0..SOURCES).prop_map(|source| Op::Remove { source }),
    ]
}

fn params() -> BloomParams {
    BloomParams::for_capacity(32, 4)
}

fn snap(source: u32, version: u16, kw: u8) -> AdSnapshot {
    AdSnapshot {
        source: PeerId(source),
        topics: InterestSet(0b1),
        version,
        filter: Rc::new(BloomFilter::from_keys(params(), [format!("kw{kw}").as_str()])),
    }
}

proptest! {
    /// Capacity is never exceeded; lookups never return stale entries; the
    /// cached version for a source is the max non-outdated version accepted.
    #[test]
    fn repository_invariants(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut repo = AdRepository::new(CAPACITY);
        // Reference: highest version accepted per source (while cached).
        let mut shadow: BTreeMap<u32, u16> = BTreeMap::new();
        let mut clock = 0u64;
        for op in ops {
            clock += 1;
            match op {
                Op::Full { source, version, kw } => {
                    let outcome = repo.insert_full(&snap(source, version, kw), clock);
                    match outcome {
                        ApplyOutcome::Applied => {
                            shadow.insert(source, version);
                        }
                        ApplyOutcome::Outdated => {
                            // Must already hold something at least as new.
                            let held = repo.get(PeerId(source)).expect("outdated implies cached");
                            prop_assert!(version_not_newer(version, held.version));
                        }
                        other => prop_assert!(false, "unexpected {other:?}"),
                    }
                }
                Op::Refresh { source, version } => {
                    let _ = repo.apply_refresh(PeerId(source), version, clock);
                }
                Op::Lookup { kw } => {
                    let key = format!("kw{kw}");
                    let h = [KeyHash::of(&key)];
                    for hit in repo.lookup(&h, clock, 0) {
                        let ad = repo.get(hit).expect("lookup returns cached sources");
                        prop_assert!(!ad.stale, "stale entries must not match");
                        let contains = ad.filter.contains(&key);
                        prop_assert!(contains, "lookup hit without keyword");
                    }
                }
                Op::Remove { source } => {
                    repo.remove(PeerId(source));
                    shadow.remove(&source);
                }
            }
            prop_assert!(repo.len() <= CAPACITY, "capacity breached: {}", repo.len());
            // Spot-check shadow consistency for still-cached sources.
            for (&source, &version) in &shadow {
                if let Some(ad) = repo.get(PeerId(source)) {
                    if !ad.stale {
                        prop_assert!(
                            !version_newer(version, ad.version),
                            "cached version regressed for {source}"
                        );
                    }
                }
            }
        }
    }
}

fn version_not_newer(candidate: u16, held: u16) -> bool {
    candidate.wrapping_sub(held) == 0 || candidate.wrapping_sub(held) > u16::MAX / 2
}

fn version_newer(candidate: u16, held: u16) -> bool {
    !version_not_newer(candidate, held)
}
