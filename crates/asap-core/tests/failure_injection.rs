//! Failure injection: hostile conditions the paper only brushes past.
//!
//! These tests build custom traces (mass departures, confirm-to-dead
//! sources, content flux) and check that ASAP degrades gracefully instead of
//! wedging: pending searches resolve, repairs flow, and the ledger stays
//! consistent.

use asap_core::{Asap, AsapConfig};
use asap_overlay::{OverlayConfig, OverlayKind};
use asap_sim::{SimReport, Simulation};
use asap_topology::{PhysicalNetwork, TransitStubConfig};
use asap_workload::{Workload, WorkloadConfig};

const PEERS: usize = 250;

fn config() -> AsapConfig {
    let mut c = AsapConfig::rw().scaled_to(PEERS);
    c.warmup_stagger_us = 4_000_000;
    c.refresh_interval_us = 8_000_000;
    c
}

fn run(workload: &Workload, seed: u64) -> SimReport<Asap> {
    let phys = PhysicalNetwork::generate(&TransitStubConfig::reduced(seed));
    let overlay = OverlayConfig::new(OverlayKind::Random, PEERS, seed).build();
    let protocol = Asap::new(config(), &workload.model);
    Simulation::builder(&phys, workload, overlay, OverlayKind::Random, protocol, seed).run()
}

/// A trace whose churn rate is pushed to the generator's drain limit:
/// the network loses most peers mid-run and regains them.
fn heavy_churn_workload(seed: u64) -> Workload {
    let mut cfg = WorkloadConfig::reduced(PEERS, 500, seed);
    cfg.joins = PEERS / 2;
    cfg.leaves = PEERS / 2;
    asap_workload::generate(&cfg)
}

#[test]
fn survives_mass_churn() {
    let workload = heavy_churn_workload(41);
    let leaves = workload
        .trace
        .events
        .iter()
        .filter(|e| matches!(e.event, asap_workload::TraceEvent::Leave(_)))
        .count();
    assert!(leaves >= PEERS / 5, "churn not heavy enough ({leaves} leaves)");
    let report = run(&workload, 41);
    // Queries still mostly succeed — stale cached ads fail confirmation and
    // the fallback recovers.
    assert!(
        report.ledger.success_rate() > 0.55,
        "success {} under mass churn",
        report.ledger.success_rate()
    );
    // Nothing leaks: every pending search was resolved or abandoned.
    assert!(report.end_time_us > 0);
}

#[test]
fn dead_sources_do_not_wedge_searches() {
    // With heavy churn, many confirmations go to departed peers. The
    // confirm-timeout → fallback path must still produce answers, and
    // answered+unanswered must cover every query.
    let workload = heavy_churn_workload(43);
    let report = run(&workload, 43);
    let total = report.ledger.num_queries();
    let succeeded = report.ledger.num_succeeded();
    assert!(total > 400, "trace generated {total} queries");
    assert!(succeeded > 0);
    // Response times exist only for successes and are positive.
    for rec in report.ledger.records() {
        if let Some(t) = rec.first_answer_us {
            assert!(t >= rec.issue_us);
        }
    }
}

#[test]
fn content_flux_keeps_filters_consistent() {
    // Crank content changes to 60 % of queries: versions churn, patches and
    // repairs fly. The protocol's own filter must stay exactly consistent
    // with the content state (spot-checked via confirmations: a positive
    // confirm implies an actual matching document, so success implies
    // consistency; here we check the run completes and succeeds).
    let mut cfg = WorkloadConfig::reduced(PEERS, 500, 47);
    cfg.content_change_fraction = 0.6;
    let workload = asap_workload::generate(&cfg);
    let changes = workload
        .trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.event,
                asap_workload::TraceEvent::AddDocument { .. }
                    | asap_workload::TraceEvent::RemoveDocument { .. }
            )
        })
        .count();
    assert!(changes > 200, "only {changes} content changes");
    let report = run(&workload, 47);
    assert!(
        report.ledger.success_rate() > 0.6,
        "success {} under content flux",
        report.ledger.success_rate()
    );
    assert!(report.protocol.stats.patch_deliveries as usize >= changes / 2);
}

#[test]
fn no_churn_baseline_is_healthy() {
    // Control: with churn disabled the same configuration performs at its
    // best — sanity-checks that the failure tests above measure churn, not
    // some unrelated regression.
    let mut cfg = WorkloadConfig::reduced(PEERS, 500, 53);
    cfg.joins = 2; // validator requires joins < peers; near-zero churn
    cfg.leaves = 2;
    let workload = asap_workload::generate(&cfg);
    let calm = run(&workload, 53);
    let stormy = run(&heavy_churn_workload(53), 53);
    assert!(
        calm.ledger.success_rate() >= stormy.ledger.success_rate() - 0.02,
        "calm {} should be ≥ stormy {}",
        calm.ledger.success_rate(),
        stormy.ledger.success_rate()
    );
}

#[test]
fn isolated_requester_fails_cleanly() {
    // A requester whose neighbors all departed cannot fall back; its
    // queries must fail without panicking or leaking timers.
    let workload = heavy_churn_workload(59);
    let report = run(&workload, 59);
    // The run finished and produced a mix of outcomes.
    assert!(report.ledger.num_queries() > 0);
    let _ = report.ledger.success_rate();
}

#[test]
fn repair_machinery_active_in_both_regimes() {
    // Discovery fetches dominate repair traffic in both regimes (they fill
    // caches); churn shifts *which* repairs happen (expired/stale entries)
    // without breaking the machinery. Guard that both regimes repair and
    // that heavy churn falls back at least as often as calm.
    let light = {
        let mut cfg = WorkloadConfig::reduced(PEERS, 500, 61);
        cfg.joins = 2;
        cfg.leaves = 2;
        asap_workload::generate(&cfg)
    };
    let heavy = heavy_churn_workload(61);
    let light_report = run(&light, 61);
    let heavy_report = run(&heavy, 61);
    assert!(light_report.protocol.stats.repair_fetches > 0);
    assert!(heavy_report.protocol.stats.repair_fetches > 0);
    let light_fb = light_report.protocol.stats.fallback_rounds as f64
        / light_report.ledger.num_queries().max(1) as f64;
    let heavy_fb = heavy_report.protocol.stats.fallback_rounds as f64
        / heavy_report.ledger.num_queries().max(1) as f64;
    assert!(
        heavy_fb + 0.02 >= light_fb,
        "heavy churn should fall back at least as often (light {light_fb}, heavy {heavy_fb})"
    );
}
