//! End-to-end tests: the full ASAP protocol running on the simulator.

use asap_core::{Asap, AsapConfig};
use asap_metrics::MsgClass;
use asap_overlay::{OverlayConfig, OverlayKind};
use asap_sim::{SimReport, Simulation};
use asap_topology::{PhysicalNetwork, TransitStubConfig};
use asap_workload::{Workload, WorkloadConfig};

const PEERS: usize = 250;
const QUERIES: usize = 400;

fn world(seed: u64) -> (PhysicalNetwork, Workload) {
    let phys = PhysicalNetwork::generate(&TransitStubConfig::reduced(seed));
    let workload = asap_workload::generate(&WorkloadConfig::reduced(PEERS, QUERIES, seed));
    (phys, workload)
}

fn run_asap(config: AsapConfig, seed: u64) -> SimReport<Asap> {
    let (phys, workload) = world(seed);
    let overlay = OverlayConfig::new(OverlayKind::Random, PEERS, seed).build();
    let mut config = config.scaled_to(PEERS);
    // The test trace lasts ~50 s; compress the initial ad wave so queries
    // don't run against cold caches (the paper's trace is 75× longer).
    config.warmup_stagger_us = 5_000_000;
    // Keep the paper's refresh-round count (~12.5 over its 3,750 s trace):
    // this 50 s trace gets a refresh round every 8 s.
    config.refresh_interval_us = 8_000_000;
    let protocol = Asap::new(config, &workload.model);
    Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, protocol, seed).run()
}

#[test]
fn asap_rw_achieves_good_success_rate() {
    let report = run_asap(AsapConfig::rw(), 1);
    let rate = report.ledger.success_rate();
    assert!(rate > 0.8, "ASAP(RW) success rate {rate}");
}

#[test]
fn asap_fld_has_highest_coverage() {
    let fld = run_asap(AsapConfig::fld(), 2);
    let rw = run_asap(AsapConfig::rw(), 2);
    // "ASAP(FLD) shows the best performance since it delivers ads more
    // broadly and extensively than the other two."
    assert!(
        fld.ledger.success_rate() >= rw.ledger.success_rate() - 0.02,
        "FLD {} vs RW {}",
        fld.ledger.success_rate(),
        rw.ledger.success_rate()
    );
}

#[test]
fn search_cost_is_orders_below_ad_free_query_traffic() {
    let report = run_asap(AsapConfig::rw(), 3);
    let totals = report.load.class_totals();
    // Per-search cost: confirmations + ads requests, averaged.
    let cost_bytes = report.load.search_cost_bytes();
    let per_search = cost_bytes as f64 / report.ledger.num_queries() as f64;
    // A flooding query at this scale costs ~PEERS × degree × ~50 B ≈ 60 KB.
    // ASAP should stay a couple of orders below that.
    assert!(
        per_search < 5_000.0,
        "per-search cost {per_search} bytes is too high"
    );
    assert_eq!(totals[MsgClass::Query.index()], 0, "ASAP never floods queries");
    assert!(totals[MsgClass::Confirm.index()] > 0);
}

#[test]
fn most_searches_resolve_from_the_local_cache() {
    let report = run_asap(AsapConfig::rw(), 4);
    let stats = &report.protocol.stats;
    let total = report.ledger.num_queries() as u64;
    assert!(
        stats.local_lookup_hits * 10 >= total * 5,
        "only {}/{} local lookup hits",
        stats.local_lookup_hits,
        total
    );
}

#[test]
fn ad_traffic_is_dominated_by_patch_and_refresh_after_warmup() {
    // Long trace so refresh periods actually elapse.
    let (phys, workload) = world(5);
    let overlay = OverlayConfig::new(OverlayKind::Random, PEERS, 5).build();
    let mut config = AsapConfig::rw().scaled_to(PEERS);
    config.refresh_interval_us = 30_000_000; // 30 s so several rounds fit
    let protocol = Asap::new(config, &workload.model);
    let report = Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, protocol, 5).run();
    let stats = &report.protocol.stats;
    assert!(stats.refresh_deliveries > 0, "refresh ads must flow");
    assert!(stats.patch_deliveries > 0, "patch ads must flow");
    // Deliveries after warm-up: refresh+patch dominate in count.
    assert!(
        stats.refresh_deliveries + stats.patch_deliveries > stats.full_deliveries,
        "full {} vs patch {} + refresh {}",
        stats.full_deliveries,
        stats.patch_deliveries,
        stats.refresh_deliveries
    );
}

#[test]
fn deterministic_replay() {
    let a = run_asap(AsapConfig::rw(), 6);
    let b = run_asap(AsapConfig::rw(), 6);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.load.total_bytes(), b.load.total_bytes());
    assert_eq!(a.ledger.success_rate(), b.ledger.success_rate());
    assert_eq!(a.ledger.avg_response_time_ms(), b.ledger.avg_response_time_ms());
}

#[test]
fn response_time_is_short() {
    let report = run_asap(AsapConfig::rw(), 7);
    let rt = report.ledger.avg_response_time_ms();
    // A one-hop confirm round trip on the reduced transit-stub is ≤ ~300 ms;
    // fallbacks push the average up but it must stay well under a second.
    assert!(rt > 0.0 && rt < 1_000.0, "avg response time {rt} ms");
}

#[test]
fn free_riders_never_advertise() {
    let report = run_asap(AsapConfig::rw(), 8);
    let stats = &report.protocol.stats;
    // Deliveries come only from sharers; count is bounded by events that can
    // trigger them (init + joins + changes + refresh rounds), all of which
    // exclude free riders. Indirect check: full deliveries ≤ sharers + joins.
    let (_, workload) = world(8);
    let sharers = (0..PEERS)
        .filter(|&p| !workload.model.initial_holdings[p].is_empty())
        .count() as u64;
    assert!(
        stats.full_deliveries <= sharers + 200,
        "full deliveries {} exceed sharer population {sharers}",
        stats.full_deliveries
    );
}

#[test]
fn churn_does_not_collapse_success() {
    // The trace already contains joins/leaves; verify the paper's "ASAP
    // works well under node churn" claim qualitatively.
    let report = run_asap(AsapConfig::rw(), 9);
    assert!(report.ledger.success_rate() > 0.7);
    // Repairs happen (stale caches get fixed) without melting the network.
    let ad_bytes: u64 = [MsgClass::FullAd, MsgClass::PatchAd, MsgClass::RefreshAd]
        .iter()
        .map(|c| report.load.class_totals()[c.index()])
        .sum();
    assert!(ad_bytes > 0);
}
