//! Checkpoint codec for the ASAP protocol ([`CheckpointProtocol`]).
//!
//! Static configuration ([`crate::AsapConfig`]) and the keyword hash table
//! (derived from the content model) are never serialized — the resume caller
//! reconstructs the protocol with the same configuration the original run
//! used. Everything dynamic rides the checkpoint: per-node counting filters,
//! versions, ad repositories, fetch pacers and re-advertisement watchdogs,
//! the pending-search table, the flood dedup window, claimed (spam) topics,
//! the delivery-id counter and the aggregate stats.
//!
//! Maps serialize in ascending key order and sets in ascending element
//! order (the only exceptions are `PendingSearch::in_flight` / `backlog`,
//! whose *insertion* order is behaviorally meaningful and serialized
//! verbatim), so encode → decode → re-encode is byte-identical.
//!
//! Bloom filters carry their [`BloomParams`] inline (`bits`, `hashes`, then
//! the words or counts), making every filter self-describing: message decode
//! is an associated function without access to the protocol config.
//!
//! `Rc` aliasing is *not* preserved: a filter shared by fifty caches
//! serializes fifty times and decodes into fifty allocations. Behavior only
//! depends on filter values, so digests are unaffected; only resumed-run
//! memory footprints differ.
//!
//! The hierarchical [`crate::SuperAsap`] variant is deliberately *not*
//! checkpointable: it is a demonstration deployment outside the pinned
//! golden matrix, and growing it a codec would double this module for no
//! replay coverage.

use crate::ad::{AdPayload, AdSnapshot, AsapMsg, Forwarding};
use crate::protocol::{Asap, NodeState, ReAdvert};
use crate::repository::{AdRepository, CachedAd};
use crate::search::{PendingSearch, Phase};
use asap_bloom::{BloomFilter, BloomParams, CountingBloom, FilterPatch};
use asap_overlay::PeerId;
use asap_sim::checkpoint::{CheckpointProtocol, CodecError, Decoder, Encoder};
use asap_sim::collections::{DetHashMap, DetHashSet};
use asap_sim::util::{Backoff, SeenTracker};
use asap_sim::NodeTable;
use asap_workload::{InterestSet, KeywordId};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Primitive pieces
// ---------------------------------------------------------------------------

fn encode_terms(terms: &Rc<[KeywordId]>, enc: &mut Encoder) {
    enc.put_len(terms.len());
    for t in terms.iter() {
        enc.put_u32(t.0);
    }
}

fn decode_terms(dec: &mut Decoder<'_>) -> Result<Rc<[KeywordId]>, CodecError> {
    let n = dec.get_count()?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(KeywordId(dec.get_u32()?));
    }
    Ok(v.into())
}

fn encode_backoff(b: &Backoff, enc: &mut Encoder) {
    let (delay_us, cap_us, remaining) = b.raw_parts();
    enc.put_u64(delay_us);
    enc.put_u64(cap_us);
    enc.put_u32(remaining);
}

fn decode_backoff(dec: &mut Decoder<'_>) -> Result<Backoff, CodecError> {
    let delay_us = dec.get_u64()?;
    let cap_us = dec.get_u64()?;
    let remaining = dec.get_u32()?;
    Ok(Backoff::from_raw_parts(delay_us, cap_us, remaining))
}

fn decode_params(dec: &mut Decoder<'_>) -> Result<BloomParams, CodecError> {
    let bits = dec.get_u32()?;
    let hashes = dec.get_u32()?;
    if bits == 0 || hashes == 0 {
        return Err(CodecError::Invalid("degenerate bloom params"));
    }
    Ok(BloomParams { bits, hashes })
}

fn encode_filter(filter: &BloomFilter, enc: &mut Encoder) {
    let params = filter.params();
    enc.put_u32(params.bits);
    enc.put_u32(params.hashes);
    let words = filter.words();
    enc.put_len(words.len());
    for &w in words {
        enc.put_u64(w);
    }
}

fn decode_filter(dec: &mut Decoder<'_>) -> Result<BloomFilter, CodecError> {
    let params = decode_params(dec)?;
    let n = dec.get_count()?;
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(dec.get_u64()?);
    }
    BloomFilter::from_words(params, words).ok_or(CodecError::Invalid("bloom filter words"))
}

fn encode_counting(filter: &CountingBloom, enc: &mut Encoder) {
    let params = filter.params();
    enc.put_u32(params.bits);
    enc.put_u32(params.hashes);
    let counts = filter.counts();
    enc.put_len(counts.len());
    for &c in counts {
        enc.put_u16(c);
    }
}

fn decode_counting(dec: &mut Decoder<'_>) -> Result<CountingBloom, CodecError> {
    let params = decode_params(dec)?;
    let n = dec.get_count()?;
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(dec.get_u16()?);
    }
    CountingBloom::from_counts(params, counts).ok_or(CodecError::Invalid("counting bloom counts"))
}

fn encode_snapshot(snap: &AdSnapshot, enc: &mut Encoder) {
    enc.put_u32(snap.source.0);
    enc.put_u16(snap.topics.0);
    enc.put_u16(snap.version);
    encode_filter(&snap.filter, enc);
}

fn decode_snapshot(dec: &mut Decoder<'_>) -> Result<AdSnapshot, CodecError> {
    Ok(AdSnapshot {
        source: PeerId(dec.get_u32()?),
        topics: InterestSet(dec.get_u16()?),
        version: dec.get_u16()?,
        filter: Rc::new(decode_filter(dec)?),
    })
}

fn encode_patch(patch: &FilterPatch, enc: &mut Encoder) {
    enc.put_len(patch.set.len());
    for &b in &patch.set {
        enc.put_u32(b);
    }
    enc.put_len(patch.cleared.len());
    for &b in &patch.cleared {
        enc.put_u32(b);
    }
}

fn decode_patch(dec: &mut Decoder<'_>) -> Result<FilterPatch, CodecError> {
    let mut patch = FilterPatch::default();
    let n = dec.get_count()?;
    for _ in 0..n {
        patch.set.push(dec.get_u32()?);
    }
    let n = dec.get_count()?;
    for _ in 0..n {
        patch.cleared.push(dec.get_u32()?);
    }
    Ok(patch)
}

fn encode_fwd(fwd: Forwarding, enc: &mut Encoder) {
    match fwd {
        Forwarding::Direct => enc.put_u8(0),
        Forwarding::Flood { ttl } => {
            enc.put_u8(1);
            enc.put_u8(ttl);
        }
        Forwarding::Walk { budget } => {
            enc.put_u8(2);
            enc.put_u32(budget);
        }
        Forwarding::Gsa { budget } => {
            enc.put_u8(3);
            enc.put_u32(budget);
        }
    }
}

fn decode_fwd(dec: &mut Decoder<'_>) -> Result<Forwarding, CodecError> {
    match dec.get_u8()? {
        0 => Ok(Forwarding::Direct),
        1 => Ok(Forwarding::Flood { ttl: dec.get_u8()? }),
        2 => Ok(Forwarding::Walk {
            budget: dec.get_u32()?,
        }),
        3 => Ok(Forwarding::Gsa {
            budget: dec.get_u32()?,
        }),
        _ => Err(CodecError::BadTag),
    }
}

fn encode_payload(payload: &AdPayload, enc: &mut Encoder) {
    match payload {
        AdPayload::Full(snap) => {
            enc.put_u8(0);
            encode_snapshot(snap, enc);
        }
        AdPayload::Patch {
            source,
            topics,
            version,
            patch,
            result,
        } => {
            enc.put_u8(1);
            enc.put_u32(source.0);
            enc.put_u16(topics.0);
            enc.put_u16(*version);
            encode_patch(patch, enc);
            encode_filter(result, enc);
        }
        AdPayload::Refresh {
            source,
            topics,
            version,
        } => {
            enc.put_u8(2);
            enc.put_u32(source.0);
            enc.put_u16(topics.0);
            enc.put_u16(*version);
        }
    }
}

fn decode_payload(dec: &mut Decoder<'_>) -> Result<AdPayload, CodecError> {
    match dec.get_u8()? {
        0 => Ok(AdPayload::Full(decode_snapshot(dec)?)),
        1 => Ok(AdPayload::Patch {
            source: PeerId(dec.get_u32()?),
            topics: InterestSet(dec.get_u16()?),
            version: dec.get_u16()?,
            patch: Rc::new(decode_patch(dec)?),
            result: Rc::new(decode_filter(dec)?),
        }),
        2 => Ok(AdPayload::Refresh {
            source: PeerId(dec.get_u32()?),
            topics: InterestSet(dec.get_u16()?),
            version: dec.get_u16()?,
        }),
        _ => Err(CodecError::BadTag),
    }
}

fn encode_asap_msg(msg: &AsapMsg, enc: &mut Encoder) {
    match msg {
        AsapMsg::Ad {
            payload,
            fwd,
            delivery,
        } => {
            enc.put_u8(0);
            encode_payload(payload, enc);
            encode_fwd(*fwd, enc);
            enc.put_u64(*delivery);
        }
        AsapMsg::FullAdFetch => enc.put_u8(1),
        AsapMsg::AdsRequest {
            requester,
            interests,
            hops,
            query,
            terms,
        } => {
            enc.put_u8(2);
            enc.put_u32(requester.0);
            enc.put_u16(interests.0);
            enc.put_u8(*hops);
            match query {
                Some(q) => {
                    enc.put_bool(true);
                    enc.put_u32(*q);
                }
                None => enc.put_bool(false),
            }
            match terms {
                Some(t) => {
                    enc.put_bool(true);
                    encode_terms(t, enc);
                }
                None => enc.put_bool(false),
            }
        }
        AsapMsg::AdsReply { ads, query } => {
            enc.put_u8(3);
            enc.put_len(ads.len());
            for snap in ads {
                encode_snapshot(snap, enc);
            }
            match query {
                Some(q) => {
                    enc.put_bool(true);
                    enc.put_u32(*q);
                }
                None => enc.put_bool(false),
            }
        }
        AsapMsg::Confirm {
            query,
            requester,
            terms,
        } => {
            enc.put_u8(4);
            enc.put_u32(*query);
            enc.put_u32(requester.0);
            encode_terms(terms, enc);
        }
        AsapMsg::ConfirmReply { query, results } => {
            enc.put_u8(5);
            enc.put_u32(*query);
            enc.put_u32(*results);
        }
    }
}

fn decode_asap_msg(dec: &mut Decoder<'_>) -> Result<AsapMsg, CodecError> {
    match dec.get_u8()? {
        0 => Ok(AsapMsg::Ad {
            payload: decode_payload(dec)?,
            fwd: decode_fwd(dec)?,
            delivery: dec.get_u64()?,
        }),
        1 => Ok(AsapMsg::FullAdFetch),
        2 => {
            let requester = PeerId(dec.get_u32()?);
            let interests = InterestSet(dec.get_u16()?);
            let hops = dec.get_u8()?;
            let query = if dec.get_bool()? {
                Some(dec.get_u32()?)
            } else {
                None
            };
            let terms = if dec.get_bool()? {
                Some(decode_terms(dec)?)
            } else {
                None
            };
            Ok(AsapMsg::AdsRequest {
                requester,
                interests,
                hops,
                query,
                terms,
            })
        }
        3 => {
            let n = dec.get_count()?;
            let mut ads = Vec::with_capacity(n);
            for _ in 0..n {
                ads.push(decode_snapshot(dec)?);
            }
            let query = if dec.get_bool()? {
                Some(dec.get_u32()?)
            } else {
                None
            };
            Ok(AsapMsg::AdsReply { ads, query })
        }
        4 => Ok(AsapMsg::Confirm {
            query: dec.get_u32()?,
            requester: PeerId(dec.get_u32()?),
            terms: decode_terms(dec)?,
        }),
        5 => Ok(AsapMsg::ConfirmReply {
            query: dec.get_u32()?,
            results: dec.get_u32()?,
        }),
        _ => Err(CodecError::BadTag),
    }
}

// ---------------------------------------------------------------------------
// Per-node state
// ---------------------------------------------------------------------------

fn encode_node(st: &NodeState, enc: &mut Encoder) {
    encode_counting(&st.filter, enc);
    enc.put_u16(st.version);
    // `snapshot` is not serialized: it is invariantly the filter's current
    // snapshot (audit_invariants checks exactly this) and is rebuilt on
    // decode via `CountingBloom::snapshot_rc`.
    enc.put_len(st.repo.len());
    for (source, ad) in st.repo.iter() {
        enc.put_u32(source.0);
        enc.put_u16(ad.topics.0);
        enc.put_u16(ad.version);
        encode_filter(&ad.filter, enc);
        enc.put_u64(ad.last_used_us);
        enc.put_u64(ad.last_refreshed_us);
        enc.put_bool(ad.stale);
    }
    let mut fetching: Vec<u32> = st.fetching.iter().map(|p| p.0).collect();
    fetching.sort_unstable();
    enc.put_len(fetching.len());
    for p in fetching {
        enc.put_u32(p);
    }
    let mut pacers: Vec<(&PeerId, &Backoff)> = st.fetch_backoff.iter().collect();
    pacers.sort_by_key(|(p, _)| p.0);
    enc.put_len(pacers.len());
    for (p, b) in pacers {
        enc.put_u32(p.0);
        encode_backoff(b, enc);
    }
    enc.put_u64(st.fetches_served);
    match &st.readvert {
        Some(ra) => {
            enc.put_bool(true);
            enc.put_u64(ra.baseline_fetches);
            encode_backoff(&ra.backoff, enc);
        }
        None => enc.put_bool(false),
    }
}

fn decode_node(
    dec: &mut Decoder<'_>,
    num_peers: usize,
    cache_capacity: usize,
) -> Result<NodeState, CodecError> {
    let filter = decode_counting(dec)?;
    let version = dec.get_u16()?;
    let snapshot = filter.snapshot_rc();
    let n_ads = dec.get_count()?;
    if n_ads > cache_capacity {
        return Err(CodecError::Invalid("ad cache over capacity"));
    }
    let mut entries = Vec::with_capacity(n_ads);
    for _ in 0..n_ads {
        let source = dec.get_u32()?;
        if source as usize >= num_peers {
            return Err(CodecError::Invalid("cached-ad source out of range"));
        }
        let topics = InterestSet(dec.get_u16()?);
        let version = dec.get_u16()?;
        let filter = Rc::new(decode_filter(dec)?);
        let last_used_us = dec.get_u64()?;
        let last_refreshed_us = dec.get_u64()?;
        let stale = dec.get_bool()?;
        entries.push((
            PeerId(source),
            CachedAd {
                topics,
                version,
                filter,
                last_used_us,
                last_refreshed_us,
                stale,
            },
        ));
    }
    let repo = AdRepository::from_entries(cache_capacity, entries)
        .ok_or(CodecError::Invalid("ad repository entries"))?;
    let n = dec.get_count()?;
    let mut fetching = DetHashSet::default();
    for _ in 0..n {
        let p = dec.get_u32()?;
        if p as usize >= num_peers {
            return Err(CodecError::Invalid("fetching peer out of range"));
        }
        fetching.insert(PeerId(p));
    }
    let n = dec.get_count()?;
    let mut fetch_backoff = DetHashMap::default();
    for _ in 0..n {
        let p = dec.get_u32()?;
        if p as usize >= num_peers {
            return Err(CodecError::Invalid("fetch pacer peer out of range"));
        }
        fetch_backoff.insert(PeerId(p), decode_backoff(dec)?);
    }
    let fetches_served = dec.get_u64()?;
    let readvert = if dec.get_bool()? {
        Some(ReAdvert {
            baseline_fetches: dec.get_u64()?,
            backoff: decode_backoff(dec)?,
        })
    } else {
        None
    };
    Ok(NodeState {
        filter,
        version,
        snapshot,
        repo,
        fetching,
        fetch_backoff,
        fetches_served,
        readvert,
    })
}

// ---------------------------------------------------------------------------
// The protocol impl
// ---------------------------------------------------------------------------

impl CheckpointProtocol for Asap {
    fn encode_msg(msg: &AsapMsg, enc: &mut Encoder) {
        encode_asap_msg(msg, enc);
    }

    fn decode_msg(dec: &mut Decoder<'_>) -> Result<AsapMsg, CodecError> {
        decode_asap_msg(dec)
    }

    fn encode_state(&self, enc: &mut Encoder) {
        enc.put_len(self.nodes.len());
        for st in &self.nodes {
            encode_node(st, enc);
        }
        let mut pending: Vec<(&u32, &PendingSearch)> = self.pending.iter().collect();
        pending.sort_by_key(|(id, _)| **id);
        enc.put_len(pending.len());
        for (id, p) in pending {
            enc.put_u32(*id);
            enc.put_u32(p.requester.0);
            encode_terms(&p.terms, enc);
            // `term_hashes` are a pure function of `terms` — recomputed.
            enc.put_bool(p.answered);
            enc.put_u8(u8::from(p.phase == Phase::Fallback));
            enc.put_len(p.in_flight.len());
            for s in &p.in_flight {
                enc.put_u32(s.0);
            }
            let mut confirmed: Vec<u32> = p.confirmed.iter().map(|s| s.0).collect();
            confirmed.sort_unstable();
            enc.put_len(confirmed.len());
            for s in confirmed {
                enc.put_u32(s);
            }
            enc.put_len(p.backlog.len());
            for s in &p.backlog {
                enc.put_u32(s.0);
            }
            encode_backoff(&p.backoff, enc);
        }
        let seen = &self.seen;
        enc.put_len(seen.window());
        let entries = seen.entries();
        enc.put_len(entries.len());
        for (delivery, visitors) in entries {
            enc.put_u64(delivery);
            enc.put_len(visitors.len());
            for v in visitors {
                enc.put_u32(v);
            }
        }
        // Dense slots in index order == the old map's sorted-by-PeerId order;
        // EMPTY slots are "no claim" (spam claims always union ≥1 class).
        let claimed: Vec<(u32, u16)> = self
            .claimed_topics
            .iter()
            .enumerate()
            .filter(|(_, topics)| !topics.is_empty())
            .map(|(p, topics)| (p as u32, topics.0))
            .collect();
        enc.put_len(claimed.len());
        for (p, topics) in claimed {
            enc.put_u32(p);
            enc.put_u16(topics);
        }
        enc.put_u64(self.next_delivery);
        enc.put_u64(self.stats.local_lookup_hits);
        enc.put_u64(self.stats.fallback_rounds);
        enc.put_u64(self.stats.confirms_sent);
        enc.put_u64(self.stats.confirms_positive);
        enc.put_u64(self.stats.confirms_negative);
        enc.put_u64(self.stats.repair_fetches);
        enc.put_u64(self.stats.full_deliveries);
        enc.put_u64(self.stats.patch_deliveries);
        enc.put_u64(self.stats.refresh_deliveries);
    }

    fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let num_peers = self.nodes.len();
        let n = dec.get_len()?;
        if n != num_peers {
            return Err(CodecError::Invalid("node count mismatch"));
        }
        let mut nodes = Vec::with_capacity(num_peers);
        for _ in 0..num_peers {
            nodes.push(decode_node(dec, num_peers, self.config.cache_capacity)?);
        }
        let n = dec.get_count()?;
        let mut pending = DetHashMap::default();
        for _ in 0..n {
            let id = dec.get_u32()?;
            let requester = dec.get_u32()?;
            if requester as usize >= num_peers {
                return Err(CodecError::Invalid("pending requester out of range"));
            }
            let terms = decode_terms(dec)?;
            if terms.iter().any(|t| t.index() >= self.kw_hashes.len()) {
                return Err(CodecError::Invalid("pending term out of range"));
            }
            let term_hashes = terms.iter().map(|&k| self.hash_of(k)).collect();
            let answered = dec.get_bool()?;
            let phase = match dec.get_u8()? {
                0 => Phase::Confirming,
                1 => Phase::Fallback,
                _ => return Err(CodecError::BadTag),
            };
            let m = dec.get_count()?;
            let mut in_flight = Vec::with_capacity(m);
            for _ in 0..m {
                in_flight.push(PeerId(dec.get_u32()?));
            }
            let m = dec.get_count()?;
            let mut confirmed = DetHashSet::default();
            for _ in 0..m {
                confirmed.insert(PeerId(dec.get_u32()?));
            }
            let m = dec.get_count()?;
            let mut backlog = Vec::with_capacity(m);
            for _ in 0..m {
                backlog.push(PeerId(dec.get_u32()?));
            }
            let backoff = decode_backoff(dec)?;
            pending.insert(
                id,
                PendingSearch {
                    requester: PeerId(requester),
                    terms,
                    term_hashes,
                    answered,
                    phase,
                    in_flight,
                    confirmed,
                    backlog,
                    backoff,
                },
            );
        }
        let window = dec.get_len()?;
        if window == 0 {
            return Err(CodecError::Invalid("zero seen window"));
        }
        let n = dec.get_count()?;
        if n > window {
            return Err(CodecError::Invalid("seen entries exceed window"));
        }
        let mut entries = Vec::new();
        for _ in 0..n {
            let delivery = dec.get_u64()?;
            let m = dec.get_count()?;
            let mut visitors = Vec::new();
            for _ in 0..m {
                visitors.push(dec.get_u32()?);
            }
            entries.push((delivery, visitors));
        }
        let seen = SeenTracker::from_entries(window, entries);
        let n = dec.get_count()?;
        let mut claimed_topics = NodeTable::from_vec(vec![InterestSet::EMPTY; num_peers]);
        for _ in 0..n {
            let p = dec.get_u32()?;
            if p as usize >= num_peers {
                return Err(CodecError::Invalid("claimed-topics peer out of range"));
            }
            claimed_topics[p as usize] = InterestSet(dec.get_u16()?);
        }
        let next_delivery = dec.get_u64()?;
        let stats = crate::protocol::AsapStats {
            local_lookup_hits: dec.get_u64()?,
            fallback_rounds: dec.get_u64()?,
            confirms_sent: dec.get_u64()?,
            confirms_positive: dec.get_u64()?,
            confirms_negative: dec.get_u64()?,
            repair_fetches: dec.get_u64()?,
            full_deliveries: dec.get_u64()?,
            patch_deliveries: dec.get_u64()?,
            refresh_deliveries: dec.get_u64()?,
        };
        self.nodes = NodeTable::from_vec(nodes);
        self.pending = pending;
        self.seen = seen;
        self.claimed_topics = claimed_topics;
        self.next_delivery = next_delivery;
        self.stats = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AsapConfig, DeliveryKind};
    use crate::retry::RobustnessConfig;
    use asap_overlay::{OverlayConfig, OverlayKind};
    use asap_sim::checkpoint::Checkpoint;
    use asap_sim::{AdversaryPlan, AuditConfig, FaultPlan, Simulation};
    use asap_topology::{PhysicalNetwork, TransitStubConfig};
    use asap_workload::{Workload, WorkloadConfig};

    fn world(peers: usize, queries: usize, seed: u64) -> (PhysicalNetwork, Workload, asap_overlay::Overlay) {
        let phys = PhysicalNetwork::generate(&TransitStubConfig::reduced(seed));
        let workload = asap_workload::generate(&WorkloadConfig::reduced(peers, queries, seed));
        let overlay = OverlayConfig::new(OverlayKind::Random, peers, seed).build();
        (phys, workload, overlay)
    }

    fn msg_roundtrip(msg: &AsapMsg) {
        let mut enc = Encoder::new();
        encode_asap_msg(msg, &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = decode_asap_msg(&mut dec).unwrap();
        dec.finish().unwrap();
        let mut enc2 = Encoder::new();
        encode_asap_msg(&back, &mut enc2);
        assert_eq!(bytes, enc2.into_bytes(), "re-encode differs for {msg:?}");
    }

    fn sample_snapshot() -> AdSnapshot {
        AdSnapshot {
            source: PeerId(7),
            topics: InterestSet(0b101),
            version: 3,
            filter: Rc::new(BloomFilter::from_keys(
                BloomParams::for_capacity(64, 4),
                ["rock", "jazz"],
            )),
        }
    }

    #[test]
    fn asap_msg_codec_roundtrips() {
        let terms: Rc<[KeywordId]> = vec![KeywordId(1), KeywordId(44)].into();
        let snap = sample_snapshot();
        let old = BloomFilter::from_keys(BloomParams::for_capacity(64, 4), ["rock"]);
        let patch = FilterPatch::diff(&old, &snap.filter);
        msg_roundtrip(&AsapMsg::Ad {
            payload: AdPayload::Full(snap.clone()),
            fwd: Forwarding::Flood { ttl: 6 },
            delivery: 42,
        });
        msg_roundtrip(&AsapMsg::Ad {
            payload: AdPayload::Patch {
                source: PeerId(7),
                topics: InterestSet(0b101),
                version: 4,
                patch: Rc::new(patch),
                result: Rc::clone(&snap.filter),
            },
            fwd: Forwarding::Walk { budget: 900 },
            delivery: 43,
        });
        msg_roundtrip(&AsapMsg::Ad {
            payload: AdPayload::Refresh {
                source: PeerId(9),
                topics: InterestSet(0b1),
                version: 0,
            },
            fwd: Forwarding::Gsa { budget: 12 },
            delivery: 44,
        });
        msg_roundtrip(&AsapMsg::FullAdFetch);
        msg_roundtrip(&AsapMsg::AdsRequest {
            requester: PeerId(3),
            interests: InterestSet(0b11),
            hops: 1,
            query: Some(17),
            terms: Some(Rc::clone(&terms)),
        });
        msg_roundtrip(&AsapMsg::AdsRequest {
            requester: PeerId(3),
            interests: InterestSet(0b11),
            hops: 2,
            query: None,
            terms: None,
        });
        msg_roundtrip(&AsapMsg::AdsReply {
            ads: vec![snap.clone(), sample_snapshot()],
            query: Some(17),
        });
        msg_roundtrip(&AsapMsg::AdsReply {
            ads: Vec::new(),
            query: None,
        });
        msg_roundtrip(&AsapMsg::Confirm {
            query: 17,
            requester: PeerId(3),
            terms,
        });
        msg_roundtrip(&AsapMsg::ConfirmReply {
            query: 17,
            results: 2,
        });
    }

    #[test]
    fn asap_msg_decode_rejects_bad_tags() {
        for bytes in [[200u8].as_slice(), &[0, 9], &[0]] {
            let mut dec = Decoder::new(bytes);
            assert!(decode_asap_msg(&mut dec).is_err(), "accepted {bytes:?}");
        }
    }

    #[test]
    fn filter_decode_rejects_degenerate_params() {
        let mut enc = Encoder::new();
        enc.put_u32(0); // bits = 0
        enc.put_u32(8);
        enc.put_len(0);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            decode_filter(&mut dec),
            Err(CodecError::Invalid(_))
        ));
    }

    /// Run `make()` twice over the same world: once uninterrupted, once
    /// split at `frac` of the trace through a byte-roundtripped checkpoint.
    /// Digests must match bit-for-bit.
    fn assert_split_run_identical<F>(
        make: F,
        seed: u64,
        faults: Option<FaultPlan>,
        adversary: Option<AdversaryPlan>,
    ) where
        F: Fn(&asap_workload::ContentModel, &[asap_sim::AdversaryRole]) -> Asap,
    {
        let (phys, workload, overlay) = world(120, 150, seed);
        let roles = adversary
            .as_ref()
            .map(|plan| asap_sim::assign_roles(plan, workload.model.num_peers(), seed))
            .unwrap_or_else(|| vec![asap_sim::AdversaryRole::Honest; workload.model.num_peers()]);
        let build = |protocol: Asap, ov: asap_overlay::Overlay| {
            let mut b = Simulation::builder(&phys, &workload, ov, OverlayKind::Random, protocol, seed)
                .audit(AuditConfig::default());
            if let Some(f) = faults.clone() {
                b = b.faults(f);
            }
            if let Some(a) = adversary.clone() {
                b = b.adversary(a);
            }
            b
        };
        let cold = build(make(&workload.model, &roles), overlay.clone()).run();
        let cold_audit = cold.audit.expect("audited run");
        assert!(cold_audit.is_clean(), "{:?}", cold_audit.violations);

        let t_mid = workload.trace.duration_us() / 2;
        let mut first = build(make(&workload.model, &roles), overlay.clone()).build();
        first.run_until(t_mid);
        let ckpt = first.checkpoint();
        drop(first);

        let ckpt = Checkpoint::from_bytes(ckpt.into_bytes()).expect("self-produced bytes");
        // Resume from a plain builder: the checkpoint carries the audit,
        // fault, and adversary layers itself.
        let warm = Simulation::builder(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            make(&workload.model, &roles),
            seed,
        )
        .from_checkpoint(&ckpt)
        .expect("resume")
        .run();
        let warm_audit = warm.audit.expect("audited resume");

        assert_eq!(
            cold_audit.digest, warm_audit.digest,
            "split run digest diverged"
        );
        assert_eq!(cold.messages_sent, warm.messages_sent);
        assert_eq!(cold.end_time_us, warm.end_time_us);
        assert_eq!(cold.ledger.num_succeeded(), warm.ledger.num_succeeded());
        assert_eq!(cold.profile, warm.profile);
    }

    fn scaled(delivery: DeliveryKind) -> AsapConfig {
        AsapConfig::paper_default(delivery).scaled_to(120)
    }

    #[test]
    fn asap_fld_split_run_is_bit_identical() {
        assert_split_run_identical(
            |model, _| Asap::new(scaled(DeliveryKind::Flooding { ttl: 6 }), model),
            61,
            None,
            None,
        );
    }

    #[test]
    fn asap_rw_split_run_is_bit_identical() {
        assert_split_run_identical(
            |model, _| Asap::new(scaled(DeliveryKind::RandomWalk { walkers: 5 }), model),
            62,
            None,
            None,
        );
    }

    #[test]
    fn asap_gsa_split_run_is_bit_identical() {
        assert_split_run_identical(
            |model, _| Asap::new(scaled(DeliveryKind::Gsa { branch: 4 }), model),
            63,
            None,
            None,
        );
    }

    #[test]
    fn asap_lossy_split_run_is_bit_identical() {
        assert_split_run_identical(
            |model, _| {
                Asap::new(
                    scaled(DeliveryKind::RandomWalk { walkers: 5 })
                        .with_robustness(RobustnessConfig::lossy()),
                    model,
                )
            },
            64,
            Some(FaultPlan {
                loss_ppm: 20_000,
                jitter_max_us: 50_000,
                ..FaultPlan::none()
            }),
            None,
        );
    }

    #[test]
    fn asap_spam_adversary_split_run_is_bit_identical() {
        let seed = 65;
        assert_split_run_identical(
            move |model, roles| {
                Asap::new_with_adversaries(
                    scaled(DeliveryKind::RandomWalk { walkers: 5 }),
                    model,
                    roles,
                    seed,
                )
            },
            seed,
            None,
            Some(AdversaryPlan {
                spam_ppm: 100_000,
                ..AdversaryPlan::none()
            }),
        );
    }

    #[test]
    fn asap_state_reencode_is_byte_identical() {
        let seed = 66;
        let (phys, workload, overlay) = world(100, 120, seed);
        let make = || Asap::new(scaled(DeliveryKind::Flooding { ttl: 6 }), &workload.model);
        let mut sim = Simulation::builder(
            &phys,
            &workload,
            overlay.clone(),
            OverlayKind::Random,
            make(),
            seed,
        )
        .build();
        sim.run_until(workload.trace.duration_us() / 2);
        let ckpt1 = sim.checkpoint();
        let resumed = Simulation::resume(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            make(),
            &ckpt1,
        )
        .expect("resume");
        let ckpt2 = resumed.checkpoint();
        assert_eq!(
            ckpt1.as_bytes(),
            ckpt2.as_bytes(),
            "checkpoint re-encode differs"
        );
    }

    use proptest::prelude::*;

    proptest! {
        /// Counting filters reached through arbitrary insert/remove
        /// interleavings (including removes of absent keys) decode to the
        /// exact same counts and re-encode byte-identically. Deletes are
        /// what distinguish a counting filter from a plain one — a state
        /// the whole-sim tests above only reach via content churn.
        #[test]
        fn counting_bloom_roundtrips_after_deletes(
            ops in proptest::collection::vec((0u32..48, 0u32..3), 0..160),
        ) {
            let mut filter = CountingBloom::new(BloomParams::for_capacity(64, 4));
            for (key, action) in ops {
                let key = format!("key-{key}");
                if action == 2 {
                    filter.remove(&key);
                } else {
                    filter.insert(&key);
                }
            }
            let mut enc = Encoder::new();
            encode_counting(&filter, &mut enc);
            let bytes = enc.into_bytes();

            let mut dec = Decoder::new(&bytes);
            let back = decode_counting(&mut dec).unwrap();
            dec.finish().unwrap();
            prop_assert_eq!(back.counts(), filter.counts());

            let mut enc2 = Encoder::new();
            encode_counting(&back, &mut enc2);
            prop_assert_eq!(bytes, enc2.into_bytes());
        }

        /// A corrupted count vector length is a typed error, not a panic:
        /// `from_counts` demands exactly `bits` slots.
        #[test]
        fn counting_bloom_decode_rejects_wrong_slot_count(extra in 1u32..32) {
            let params = BloomParams::for_capacity(64, 4);
            let mut enc = Encoder::new();
            enc.put_u32(params.bits);
            enc.put_u32(params.hashes);
            let n = params.bits + extra;
            enc.put_len(n as usize);
            for _ in 0..n {
                enc.put_u16(0);
            }
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            prop_assert!(matches!(
                decode_counting(&mut dec),
                Err(CodecError::Invalid(_))
            ));
        }
    }
}
