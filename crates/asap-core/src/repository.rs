//! The per-node ads repository ("$" in the paper's pseudo-code).
//!
//! One entry per source peer, holding that source's latest known filter,
//! topics, version and freshness. Capacity-bounded with LRU eviction (the
//! paper's nodes "selectively store interesting ads"; a bounded cache is the
//! practical reading).
//!
//! Layout: two parallel vectors sorted by source `PeerId` — a dense key
//! array (`sources`) binary-searched on the lookup/update hot path and a
//! payload array (`ads`) indexed by the same position. This replaces the
//! original `BTreeMap`: iteration order (ascending `PeerId`) and every
//! observable behavior are identical — the simulator's replay digests and
//! the checkpoint byte format depend on that order — but the key scan now
//! touches one contiguous cache line per ~16 entries instead of chasing
//! tree nodes. The invariant `sources.len() == ads.len()` with `sources`
//! strictly ascending holds between all public calls.

use crate::ad::AdSnapshot;
use asap_bloom::hashing::KeyHash;
use asap_bloom::{BloomFilter, ProbePlan};
use asap_overlay::PeerId;
use asap_workload::InterestSet;
use std::rc::Rc;

/// One cached ad.
#[derive(Debug, Clone)]
pub struct CachedAd {
    pub topics: InterestSet,
    pub version: u16,
    pub filter: Rc<BloomFilter>,
    /// Last time the entry was used by a lookup or updated (LRU key).
    pub last_used_us: u64,
    /// Last time the source proved liveness (any ad received).
    pub last_refreshed_us: u64,
    /// Version gap detected — unusable until repaired by a full ad.
    pub stale: bool,
}

/// Outcome of applying an incremental update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// Entry now reflects the advertised version.
    Applied,
    /// Update refers to a version we can't reach — entry marked stale; a
    /// full-ad repair is needed.
    VersionGap,
    /// We hold nothing from this source.
    Unknown,
    /// Update is older than (or equal to) what we already hold.
    Outdated,
}

/// Capacity-bounded ad cache over sorted parallel vectors (see module docs).
#[derive(Debug)]
pub struct AdRepository {
    /// Source peers, strictly ascending; position `i` owns `ads[i]`.
    sources: Vec<PeerId>,
    ads: Vec<CachedAd>,
    capacity: usize,
}

impl AdRepository {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            sources: Vec::new(),
            ads: Vec::new(),
            capacity,
        }
    }

    pub fn len(&self) -> usize {
        self.sources.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// All cached entries, keyed by source, in `PeerId` order.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, &CachedAd)> {
        self.sources.iter().copied().zip(self.ads.iter())
    }

    fn position(&self, source: PeerId) -> Result<usize, usize> {
        self.sources.binary_search(&source)
    }

    pub fn get(&self, source: PeerId) -> Option<&CachedAd> {
        self.position(source).ok().map(|i| &self.ads[i])
    }

    /// Rebuild a repository from checkpointed entries. Returns `None` when
    /// the entries exceed `capacity` (a valid repository never does).
    /// Entries are sorted by source; a duplicated source keeps the later
    /// entry (the `BTreeMap`-collect behavior this layout replaced).
    pub fn from_entries(capacity: usize, entries: Vec<(PeerId, CachedAd)>) -> Option<Self> {
        if capacity == 0 || entries.len() > capacity {
            return None;
        }
        let mut entries = entries;
        // Stable sort: duplicates stay in input order, so "keep last" below
        // matches repeated-insert semantics.
        entries.sort_by_key(|&(p, _)| p);
        let mut sources: Vec<PeerId> = Vec::with_capacity(entries.len());
        let mut ads: Vec<CachedAd> = Vec::with_capacity(entries.len());
        for (p, ad) in entries {
            if sources.last() == Some(&p) {
                if let Some(slot) = ads.last_mut() {
                    *slot = ad;
                }
            } else {
                sources.push(p);
                ads.push(ad);
            }
        }
        Some(Self {
            sources,
            ads,
            capacity,
        })
    }

    /// Store/overwrite the full ad of `source`. Evicts the least-recently
    /// used entry when full. Overwrites with an *older* version are ignored
    /// (out-of-order delivery).
    pub fn insert_full(&mut self, snap: &AdSnapshot, now_us: u64) -> ApplyOutcome {
        let fresh = CachedAd {
            topics: snap.topics,
            version: snap.version,
            filter: Rc::clone(&snap.filter),
            last_used_us: now_us,
            last_refreshed_us: now_us,
            stale: false,
        };
        match self.position(snap.source) {
            Ok(i) => {
                let existing = &mut self.ads[i];
                if !existing.stale && version_not_newer(snap.version, existing.version) {
                    existing.last_refreshed_us = now_us;
                    return ApplyOutcome::Outdated;
                }
                *existing = fresh;
                ApplyOutcome::Applied
            }
            Err(mut i) => {
                if self.sources.len() >= self.capacity {
                    let victim = self.evict_lru();
                    // Eviction shifts the insertion point when the victim
                    // sat left of it.
                    if victim < i {
                        i -= 1;
                    }
                }
                self.sources.insert(i, snap.source);
                self.ads.insert(i, fresh);
                ApplyOutcome::Applied
            }
        }
    }

    /// Apply a patch ad: only valid on top of `version - 1`. The shared
    /// `result` filter is exactly `old ⊕ patch` (asserted in tests).
    pub fn apply_patch(
        &mut self,
        source: PeerId,
        version: u16,
        topics: InterestSet,
        result: &Rc<BloomFilter>,
        now_us: u64,
    ) -> ApplyOutcome {
        let Ok(i) = self.position(source) else {
            return ApplyOutcome::Unknown;
        };
        let entry = &mut self.ads[i];
        if entry.stale {
            return ApplyOutcome::VersionGap;
        }
        if version_not_newer(version, entry.version) {
            entry.last_refreshed_us = now_us;
            return ApplyOutcome::Outdated;
        }
        if version != entry.version.wrapping_add(1) {
            entry.stale = true;
            return ApplyOutcome::VersionGap;
        }
        entry.version = version;
        entry.topics = topics;
        entry.filter = Rc::clone(result);
        entry.last_used_us = now_us;
        entry.last_refreshed_us = now_us;
        ApplyOutcome::Applied
    }

    /// Apply a refresh ad: bumps freshness when the version matches, flags a
    /// gap otherwise.
    pub fn apply_refresh(&mut self, source: PeerId, version: u16, now_us: u64) -> ApplyOutcome {
        let Ok(i) = self.position(source) else {
            return ApplyOutcome::Unknown;
        };
        let entry = &mut self.ads[i];
        if entry.stale {
            return ApplyOutcome::VersionGap;
        }
        if entry.version == version {
            entry.last_refreshed_us = now_us;
            ApplyOutcome::Applied
        } else if version_not_newer(version, entry.version) {
            ApplyOutcome::Outdated
        } else {
            entry.stale = true;
            ApplyOutcome::VersionGap
        }
    }

    pub fn remove(&mut self, source: PeerId) -> bool {
        match self.position(source) {
            Ok(i) => {
                self.sources.remove(i);
                self.ads.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// The ASAP local lookup: sources whose cached filter contains **all**
    /// query terms (pre-hashed). Stale or expired entries are skipped;
    /// matched entries' LRU stamps are bumped.
    ///
    /// The term hashes are compiled once into a word-parallel [`ProbePlan`]
    /// (probe positions depend only on hashes + parameters) and the plan is
    /// reused across every cached filter with matching parameters — in
    /// practice all of them, since one config sizes every filter in a run.
    /// A parameter mismatch falls back to the per-hash scan, which the plan
    /// is provably equivalent to, so hits are identical either way.
    pub fn lookup(
        &mut self,
        term_hashes: &[KeyHash],
        now_us: u64,
        expire_before_us: u64,
    ) -> Vec<PeerId> {
        let mut hits = Vec::new();
        let mut plan: Option<ProbePlan> = None;
        for (&source, ad) in self.sources.iter().zip(self.ads.iter_mut()) {
            if ad.stale || ad.last_refreshed_us < expire_before_us {
                continue;
            }
            let plan = plan.get_or_insert_with(|| ProbePlan::new(ad.filter.params(), term_hashes));
            let matched = if ad.filter.params() == plan.params() {
                ad.filter.contains_plan(plan)
            } else {
                term_hashes.iter().all(|h| ad.filter.contains_hash(h))
            };
            if matched {
                ad.last_used_us = now_us;
                hits.push(source);
            }
        }
        hits
    }

    /// Snapshots of cached ads whose filters contain every query term —
    /// what a neighbor ships back for a query-driven ads request. Skips
    /// stale/expired entries; capped at `max`.
    pub fn snapshots_matching(
        &mut self,
        term_hashes: &[KeyHash],
        now_us: u64,
        expire_before_us: u64,
        max: usize,
    ) -> Vec<AdSnapshot> {
        let sources = self.lookup(term_hashes, now_us, expire_before_us);
        sources
            .into_iter()
            .take(max)
            .filter_map(|source| {
                self.get(source).map(|ad| AdSnapshot {
                    source,
                    topics: ad.topics,
                    version: ad.version,
                    filter: Rc::clone(&ad.filter),
                })
            })
            .collect()
    }

    /// Cached ads with topic overlap, for an ads reply — freshest first,
    /// capped at `max`.
    pub fn ads_for_interests(&self, interests: InterestSet, max: usize) -> Vec<AdSnapshot> {
        let mut matches: Vec<(PeerId, &CachedAd)> = self
            .iter()
            .filter(|(_, ad)| !ad.stale && ad.topics.intersects(interests))
            .collect();
        // Stable sort: equal freshness keeps ascending-source order, as the
        // old map iteration did.
        matches.sort_by_key(|(_, ad)| std::cmp::Reverse(ad.last_refreshed_us));
        matches
            .into_iter()
            .take(max)
            .map(|(source, ad)| AdSnapshot {
                source,
                topics: ad.topics,
                version: ad.version,
                filter: Rc::clone(&ad.filter),
            })
            .collect()
    }

    /// Remove the least-recently-used entry, returning its position.
    fn evict_lru(&mut self) -> usize {
        let mut victim = 0usize;
        for (i, ad) in self.ads.iter().enumerate() {
            // Ties on last_used_us break toward the smaller source, which is
            // the smaller index in a sorted array — i.e. first wins.
            if ad.last_used_us < self.ads[victim].last_used_us {
                victim = i;
            }
        }
        if !self.sources.is_empty() {
            self.sources.remove(victim);
            self.ads.remove(victim);
        }
        victim
    }
}

/// `candidate` is not newer than `held`, under wrapping 16-bit versions
/// (half-range comparison).
fn version_not_newer(candidate: u16, held: u16) -> bool {
    candidate.wrapping_sub(held) == 0 || candidate.wrapping_sub(held) > u16::MAX / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_bloom::{BloomParams, FilterPatch};

    fn snap(source: u32, version: u16, keys: &[&str]) -> AdSnapshot {
        AdSnapshot {
            source: PeerId(source),
            topics: InterestSet(0b1),
            version,
            filter: Rc::new(BloomFilter::from_keys(
                BloomParams::for_capacity(100, 8),
                keys.iter().copied(),
            )),
        }
    }

    fn hashes(keys: &[&str]) -> Vec<KeyHash> {
        keys.iter().map(|k| KeyHash::of(k)).collect()
    }

    #[test]
    fn insert_and_lookup() {
        let mut repo = AdRepository::new(10);
        repo.insert_full(&snap(1, 0, &["rock", "metal"]), 100);
        repo.insert_full(&snap(2, 0, &["jazz"]), 100);
        let hits = repo.lookup(&hashes(&["rock"]), 200, 0);
        assert_eq!(hits, vec![PeerId(1)]);
        let both = repo.lookup(&hashes(&[]), 200, 0);
        assert_eq!(both.len(), 2, "empty term list matches everything");
    }

    #[test]
    fn lru_eviction_prefers_unused() {
        let mut repo = AdRepository::new(2);
        repo.insert_full(&snap(1, 0, &["a"]), 10);
        repo.insert_full(&snap(2, 0, &["b"]), 20);
        // Touch source 1 so source 2 becomes the LRU victim.
        let _ = repo.lookup(&hashes(&["a"]), 30, 0);
        repo.insert_full(&snap(3, 0, &["c"]), 40);
        assert!(repo.get(PeerId(1)).is_some());
        assert!(repo.get(PeerId(2)).is_none(), "LRU entry evicted");
        assert!(repo.get(PeerId(3)).is_some());
    }

    #[test]
    fn lru_tie_breaks_toward_smaller_source() {
        let mut repo = AdRepository::new(2);
        repo.insert_full(&snap(7, 0, &["a"]), 10);
        repo.insert_full(&snap(3, 0, &["b"]), 10);
        repo.insert_full(&snap(5, 0, &["c"]), 20);
        assert!(repo.get(PeerId(3)).is_none(), "equal stamps evict smaller id");
        assert!(repo.get(PeerId(7)).is_some());
        assert!(repo.get(PeerId(5)).is_some());
    }

    #[test]
    fn eviction_keeps_sorted_invariant_when_inserting_above_victim() {
        let mut repo = AdRepository::new(2);
        repo.insert_full(&snap(1, 0, &["a"]), 10); // LRU victim
        repo.insert_full(&snap(5, 0, &["b"]), 20);
        // New source sorts after the victim: insertion point must shift.
        repo.insert_full(&snap(3, 0, &["c"]), 30);
        let order: Vec<PeerId> = repo.iter().map(|(p, _)| p).collect();
        assert_eq!(order, vec![PeerId(3), PeerId(5)]);
        assert!(repo.get(PeerId(3)).is_some());
        assert!(repo.get(PeerId(5)).is_some());
    }

    #[test]
    fn iter_is_ascending_by_source() {
        let mut repo = AdRepository::new(10);
        for id in [9, 2, 7, 1, 4] {
            repo.insert_full(&snap(id, 0, &["k"]), 0);
        }
        let order: Vec<u32> = repo.iter().map(|(p, _)| p.0).collect();
        assert_eq!(order, vec![1, 2, 4, 7, 9]);
    }

    #[test]
    fn from_entries_sorts_and_keeps_last_duplicate() {
        let mk = |id: u32, version: u16| {
            (
                PeerId(id),
                CachedAd {
                    topics: InterestSet(0b1),
                    version,
                    filter: Rc::new(BloomFilter::empty(BloomParams::for_capacity(10, 4))),
                    last_used_us: 0,
                    last_refreshed_us: 0,
                    stale: false,
                },
            )
        };
        let repo = AdRepository::from_entries(10, vec![mk(5, 0), mk(2, 1), mk(5, 9)])
            .unwrap_or_else(|| unreachable!("fits capacity"));
        let order: Vec<(u32, u16)> = repo.iter().map(|(p, ad)| (p.0, ad.version)).collect();
        assert_eq!(order, vec![(2, 1), (5, 9)], "sorted; later duplicate wins");
        assert!(AdRepository::from_entries(2, vec![mk(1, 0), mk(2, 0), mk(3, 0)]).is_none());
    }

    #[test]
    fn patch_applies_in_sequence() {
        let params = BloomParams::for_capacity(100, 8);
        let v0 = BloomFilter::from_keys(params, ["a"]);
        let v1 = BloomFilter::from_keys(params, ["a", "b"]);
        let patch = FilterPatch::diff(&v0, &v1);
        let mut check = v0.clone();
        patch.apply(&mut check);
        assert_eq!(check, v1, "shared result must equal old ⊕ patch");

        let mut repo = AdRepository::new(4);
        repo.insert_full(
            &AdSnapshot {
                source: PeerId(1),
                topics: InterestSet(0b1),
                version: 0,
                filter: Rc::new(v0),
            },
            0,
        );
        let result = Rc::new(v1);
        assert_eq!(
            repo.apply_patch(PeerId(1), 1, InterestSet(0b1), &result, 10),
            ApplyOutcome::Applied
        );
        assert_eq!(repo.get(PeerId(1)).unwrap().version, 1);
        assert!(repo.lookup(&hashes(&["b"]), 20, 0).contains(&PeerId(1)));
    }

    #[test]
    fn patch_gap_marks_stale_until_full_repair() {
        let mut repo = AdRepository::new(4);
        repo.insert_full(&snap(1, 0, &["a"]), 0);
        let result = Rc::new(BloomFilter::from_keys(
            BloomParams::for_capacity(100, 8),
            ["a", "b", "c"],
        ));
        // Version jumps 0 → 2: gap.
        assert_eq!(
            repo.apply_patch(PeerId(1), 2, InterestSet(0b1), &result, 10),
            ApplyOutcome::VersionGap
        );
        assert!(repo.get(PeerId(1)).unwrap().stale);
        assert!(repo.lookup(&hashes(&["a"]), 20, 0).is_empty(), "stale skipped");
        // Full ad repairs.
        assert_eq!(
            repo.insert_full(&snap(1, 2, &["a", "b", "c"]), 30),
            ApplyOutcome::Applied
        );
        assert!(!repo.get(PeerId(1)).unwrap().stale);
    }

    #[test]
    fn patch_on_unknown_source() {
        let mut repo = AdRepository::new(4);
        let result = Rc::new(BloomFilter::from_keys(
            BloomParams::for_capacity(100, 8),
            ["x"],
        ));
        assert_eq!(
            repo.apply_patch(PeerId(9), 1, InterestSet(0b1), &result, 0),
            ApplyOutcome::Unknown
        );
    }

    #[test]
    fn outdated_updates_ignored() {
        let mut repo = AdRepository::new(4);
        repo.insert_full(&snap(1, 5, &["a"]), 0);
        assert_eq!(
            repo.insert_full(&snap(1, 3, &["old"]), 10),
            ApplyOutcome::Outdated
        );
        assert_eq!(repo.get(PeerId(1)).unwrap().version, 5);
        let result = Rc::new(BloomFilter::from_keys(
            BloomParams::for_capacity(100, 8),
            ["old"],
        ));
        assert_eq!(
            repo.apply_patch(PeerId(1), 4, InterestSet(0b1), &result, 20),
            ApplyOutcome::Outdated
        );
    }

    #[test]
    fn refresh_semantics() {
        let mut repo = AdRepository::new(4);
        repo.insert_full(&snap(1, 2, &["a"]), 0);
        assert_eq!(repo.apply_refresh(PeerId(1), 2, 100), ApplyOutcome::Applied);
        assert_eq!(repo.get(PeerId(1)).unwrap().last_refreshed_us, 100);
        assert_eq!(repo.apply_refresh(PeerId(1), 1, 200), ApplyOutcome::Outdated);
        // Newer version we never saw: gap.
        assert_eq!(
            repo.apply_refresh(PeerId(1), 4, 300),
            ApplyOutcome::VersionGap
        );
        assert!(repo.get(PeerId(1)).unwrap().stale);
        assert_eq!(repo.apply_refresh(PeerId(9), 0, 0), ApplyOutcome::Unknown);
    }

    #[test]
    fn expiry_hides_dead_sources() {
        let mut repo = AdRepository::new(4);
        repo.insert_full(&snap(1, 0, &["a"]), 1_000);
        assert_eq!(repo.lookup(&hashes(&["a"]), 2_000, 0).len(), 1);
        // Expire everything refreshed before t = 5,000.
        assert!(repo.lookup(&hashes(&["a"]), 6_000, 5_000).is_empty());
    }

    #[test]
    fn ads_for_interests_filters_and_caps() {
        let mut repo = AdRepository::new(10);
        for i in 0..6 {
            let mut s = snap(i, 0, &["k"]);
            s.topics = InterestSet(if i % 2 == 0 { 0b01 } else { 0b10 });
            repo.insert_full(&s, u64::from(i) * 10);
        }
        let evens = repo.ads_for_interests(InterestSet(0b01), 10);
        assert_eq!(evens.len(), 3);
        assert!(evens.iter().all(|a| a.topics.intersects(InterestSet(0b01))));
        let capped = repo.ads_for_interests(InterestSet(0b11), 2);
        assert_eq!(capped.len(), 2);
        // Freshest first.
        assert!(capped[0].source > capped[1].source);
    }

    #[test]
    fn wrapping_version_comparison() {
        assert!(version_not_newer(5, 5));
        assert!(version_not_newer(4, 5));
        assert!(!version_not_newer(6, 5));
        // Near the wrap point: 2 is newer than 65,534.
        assert!(!version_not_newer(2, u16::MAX - 1));
        assert!(version_not_newer(u16::MAX - 1, 2));
    }
}
