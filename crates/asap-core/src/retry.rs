//! Protocol-robustness knobs: retry budgets and backoff pacing for an
//! unreliable network (see `asap_sim::fault`).
//!
//! All knobs default to **zero/inert**: with the default config ASAP sends
//! no extra message and — crucially — arms no extra timer, so a fault-free
//! run's replay digest is bit-for-bit identical to the pre-robustness
//! protocol (timer dispatches are digested even when they no-op). The lossy
//! bench profiles enable retries via [`RobustnessConfig::lossy`].
//!
//! The actual backoff state machine is [`asap_sim::util::Backoff`], shared
//! with the baseline protocols in `asap-search`.

pub use asap_sim::util::Backoff;

/// Retry budgets and backoff pacing for ASAP's three robustness paths:
/// content-confirmation retry, repair-fetch retransmit, and ad
/// re-advertisement on unacknowledged delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustnessConfig {
    /// Extra confirmation rounds after the first confirm timeout expires
    /// (0 = fall back immediately, the paper's behavior).
    pub confirm_retries: u32,
    /// Retransmissions of an unanswered direct full-ad fetch.
    pub fetch_retries: u32,
    /// Re-announcements of an initial/join ad wave that attracted no
    /// full-ad fetch (the delivery went unacknowledged).
    pub readvert_retries: u32,
    /// First retransmit delay for fetches and re-advertisements, µs.
    pub backoff_base_us: u64,
    /// Ceiling for the doubled backoff delays, µs.
    pub backoff_cap_us: u64,
}

impl Default for RobustnessConfig {
    /// Inert: no retries, no extra timers, no behavioral change.
    fn default() -> Self {
        Self {
            confirm_retries: 0,
            fetch_retries: 0,
            readvert_retries: 0,
            backoff_base_us: 1_000_000,
            backoff_cap_us: 16_000_000,
        }
    }
}

impl RobustnessConfig {
    /// The preset used by the lossy bench profiles: a handful of retries
    /// paced well under the simulation's 30 s post-trace grace window.
    pub fn lossy() -> Self {
        Self {
            confirm_retries: 2,
            fetch_retries: 3,
            readvert_retries: 2,
            backoff_base_us: 1_000_000,
            backoff_cap_us: 8_000_000,
        }
    }

    /// True iff any retry path is active.
    pub fn enabled(&self) -> bool {
        self.confirm_retries > 0 || self.fetch_retries > 0 || self.readvert_retries > 0
    }

    /// Backoff for repair-fetch retransmits.
    pub fn fetch_backoff(&self) -> Backoff {
        Backoff::new(self.backoff_base_us, self.backoff_cap_us, self.fetch_retries)
    }

    /// Backoff for ad re-advertisements.
    pub fn readvert_backoff(&self) -> Backoff {
        Backoff::new(self.backoff_base_us, self.backoff_cap_us, self.readvert_retries)
    }

    /// Backoff for confirmation retries: the first retry waits twice the
    /// configured confirm timeout, then doubles up to the cap.
    pub fn confirm_backoff(&self, confirm_timeout_us: u64) -> Backoff {
        Backoff::new(
            confirm_timeout_us.saturating_mul(2),
            self.backoff_cap_us.max(confirm_timeout_us),
            self.confirm_retries,
        )
    }

    pub fn validate(&self) {
        assert!(self.backoff_base_us > 0, "backoff base must be positive");
        assert!(
            self.backoff_cap_us >= self.backoff_base_us,
            "backoff cap below base"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let r = RobustnessConfig::default();
        r.validate();
        assert!(!r.enabled());
        assert!(r.fetch_backoff().exhausted());
        assert!(r.readvert_backoff().exhausted());
        assert!(r.confirm_backoff(2_000_000).exhausted());
    }

    #[test]
    fn lossy_preset_enables_all_paths() {
        let r = RobustnessConfig::lossy();
        r.validate();
        assert!(r.enabled());
        let mut b = r.confirm_backoff(2_000_000);
        assert_eq!(b.next(), Some(4_000_000), "first retry at 2x the timeout");
        assert_eq!(b.next(), Some(8_000_000));
        assert_eq!(b.next(), None);
    }

    #[test]
    #[should_panic(expected = "cap below base")]
    fn inverted_backoff_rejected() {
        RobustnessConfig {
            backoff_base_us: 10,
            backoff_cap_us: 5,
            ..RobustnessConfig::default()
        }
        .validate();
    }
}
