//! The ASAP [`Protocol`] implementation: per-node state, ad lifecycle,
//! and event dispatch. The search-side handlers live in [`crate::search`].

use crate::ad::{AdPayload, AdSnapshot, AsapMsg, Forwarding};
use crate::config::{AsapConfig, DeliveryKind};
use crate::delivery::{ad_class, continue_delivery, start_delivery};
use crate::repository::{AdRepository, ApplyOutcome};
use crate::retry::Backoff;
use crate::search::{self, PendingSearch};
use asap_bloom::hashing::KeyHash;
use asap_bloom::{BloomFilter, CountingBloom, FilterPatch};
use asap_metrics::{MsgClass, RetryStat};
use asap_overlay::PeerId;
use asap_sim::collections::{DetHashMap, DetHashSet};
use asap_sim::util::SeenTracker;
use asap_sim::{NodeTable, Protocol, Transport};
use asap_sim::AdversaryRole;
use asap_workload::{ContentModel, DocId, InterestSet, KeywordId, QuerySpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// Timer tags. Query tags grow upward from `TAG_QUERY_BASE` (two per query
/// id, so they stay far below 2⁶¹); the robustness timers claim the high
/// bits instead, so the spaces can never collide.
pub(crate) const TAG_REFRESH: u64 = 0;
pub(crate) const TAG_INIT_AD: u64 = 1;
pub(crate) const TAG_QUERY_BASE: u64 = 2;
/// Re-advertisement check for an unacknowledged initial/join ad wave.
pub(crate) const TAG_READVERT: u64 = 1 << 61;
/// Repair-fetch retransmit; the low bits carry the fetch's source peer.
pub(crate) const TAG_FETCH_BIT: u64 = 1 << 62;

/// Stream salt for the ad-spam poison pass, XORed into the run seed. The
/// pass runs once at construction time — before the engine starts — so it
/// never perturbs the engine, fault, adversary, or workload RNG streams;
/// the salt only has to be distinct from theirs so a shared run seed can't
/// correlate the draws.
const SPAM_POISON_SALT: u64 = 0x5BAD_AD00_F17E_D0C5;

/// Documents whose keywords each ad-spam peer falsely claims to hold.
/// Drawn uniformly from the real catalog, so the poisoned Bloom bits sit
/// exactly where honest queries probe — lookups match, confirmations fail.
const SPAM_POISON_DOCS: usize = 25;

/// Pending re-advertisement state: the ad wave is considered acknowledged
/// once *any* peer fetches our full ad (delivery demonstrably arrived);
/// otherwise the announcement is repeated on a backoff schedule.
pub(crate) struct ReAdvert {
    /// `fetches_served` level when the (re)announcement went out.
    pub(crate) baseline_fetches: u64,
    pub(crate) backoff: Backoff,
}

/// Per-node ASAP state.
pub(crate) struct NodeState {
    /// The node's own content filter (counting, so removals work).
    pub filter: CountingBloom,
    /// Current ad version `v` (bumped on every content change).
    pub version: u16,
    /// Shared snapshot of `filter` at `version`.
    pub snapshot: Rc<BloomFilter>,
    /// Foreign-ads cache ("$" in the paper's pseudo-code).
    pub repo: AdRepository,
    /// Sources with an un-answered direct full-ad fetch in flight, so a
    /// burst of announcements triggers one fetch, not one per walker.
    pub fetching: DetHashSet<PeerId>,
    /// Retransmission pacers for in-flight fetches (populated only when
    /// `robustness.fetch_retries > 0`; without retries a fetch whose request
    /// or reply is dropped would leave its `fetching` entry stuck forever).
    pub fetch_backoff: DetHashMap<PeerId, Backoff>,
    /// Full-ad fetches this node has served — the acknowledgment signal for
    /// re-advertisement (someone heard the announcement and wanted the ad).
    pub fetches_served: u64,
    /// Pending re-advertisement of an unacknowledged announcement.
    pub readvert: Option<ReAdvert>,
}

/// Aggregate protocol statistics, readable after a run.
#[derive(Debug, Default, Clone)]
pub struct AsapStats {
    /// Queries answered from the local ads cache (first lookup had hits).
    pub local_lookup_hits: u64,
    /// Queries that needed the neighbor ads-request fallback.
    pub fallback_rounds: u64,
    /// Confirmations sent.
    pub confirms_sent: u64,
    /// Positive confirmations returned.
    pub confirms_positive: u64,
    /// Empty confirmations returned — the advertised content wasn't there.
    /// Honest runs see a handful (content churn between ad and confirm);
    /// ad-spam adversaries inflate this without bound.
    pub confirms_negative: u64,
    /// Full-ad repair fetches issued (version gaps / refresh misses).
    pub repair_fetches: u64,
    /// Ad deliveries started, by payload kind.
    pub full_deliveries: u64,
    pub patch_deliveries: u64,
    pub refresh_deliveries: u64,
}

/// The ASAP protocol under simulation.
pub struct Asap {
    pub config: AsapConfig,
    /// Per-node protocol state, densely indexed by peer id (arena layout —
    /// delivery/timer handlers index straight into the slot, no map probe).
    pub(crate) nodes: NodeTable<NodeState>,
    /// Precomputed keyword hashes, indexed by `KeywordId`.
    pub(crate) kw_hashes: Vec<KeyHash>,
    /// Active searches by query id (requester-side state).
    pub(crate) pending: DetHashMap<u32, PendingSearch>,
    /// Duplicate suppression for flooded deliveries.
    pub(crate) seen: SeenTracker<u64>,
    /// Topics ad-spam adversaries falsely claim, densely indexed by peer
    /// ([`InterestSet::EMPTY`] = honest — a real claim is never empty, it
    /// unions at least one document class). Unioned into announcements and
    /// served ads so a content-free spammer still advertises; ground-truth
    /// confirmation is what exposes the lie.
    pub(crate) claimed_topics: NodeTable<InterestSet>,
    pub(crate) next_delivery: u64,
    pub stats: AsapStats,
}

impl Asap {
    /// Build protocol state for every peer of `model` (filters reflect the
    /// initial holdings; joiners' content can't change while offline, so
    /// their filters stay valid until they come online).
    pub fn new(config: AsapConfig, model: &ContentModel) -> Self {
        config.validate();
        let kw_hashes: Vec<KeyHash> = (0..model.vocab.len())
            .map(|i| KeyHash::of(model.vocab.word(KeywordId(i as u32))))
            .collect();
        let nodes: Vec<NodeState> = (0..model.num_peers())
            .map(|p| {
                let mut filter = CountingBloom::new(config.bloom);
                for &doc in &model.initial_holdings[p] {
                    for &kw in &model.doc(doc).keywords {
                        filter.insert_hash(&kw_hashes[kw.index()]);
                    }
                }
                let snapshot = filter.snapshot_rc();
                NodeState {
                    filter,
                    version: 0,
                    snapshot,
                    repo: AdRepository::new(config.cache_capacity),
                    fetching: DetHashSet::default(),
                    fetch_backoff: DetHashMap::default(),
                    fetches_served: 0,
                    readvert: None,
                }
            })
            .collect();
        Self {
            seen: SeenTracker::new(config.seen_window),
            kw_hashes,
            claimed_topics: NodeTable::from_vec(vec![InterestSet::EMPTY; nodes.len()]),
            nodes: NodeTable::from_vec(nodes),
            pending: DetHashMap::default(),
            next_delivery: 0,
            stats: AsapStats::default(),
            config,
        }
    }

    /// [`Asap::new`] plus the adversary poison pass: every `AdSpammer` in
    /// `roles` salts its content filter with the keywords of
    /// [`SPAM_POISON_DOCS`] documents it does not hold and claims their
    /// classes as advertised topics. An all-honest `roles` slice draws no
    /// randomness and produces state identical to [`Asap::new`].
    ///
    /// Poisoning lives here — not in the simulator — because ad spam is a
    /// protocol-layer attack: the lie is in the Bloom filter the protocol
    /// publishes, and the protocol's own ground-truth confirmation step
    /// (`handle_confirm` checks real content) is what catches it.
    pub fn new_with_adversaries(
        config: AsapConfig,
        model: &ContentModel,
        roles: &[AdversaryRole],
        run_seed: u64,
    ) -> Self {
        let mut asap = Self::new(config, model);
        if !roles.contains(&AdversaryRole::AdSpammer) {
            return asap;
        }
        let mut rng = SmallRng::seed_from_u64(run_seed ^ SPAM_POISON_SALT);
        let num_docs = model.num_docs() as u32;
        // Peers in id order, one rng stream: the poison layout is a pure
        // function of (roles, run_seed, model).
        for (p, role) in roles.iter().enumerate() {
            if *role != AdversaryRole::AdSpammer {
                continue;
            }
            let mut claimed = InterestSet::EMPTY;
            for _ in 0..SPAM_POISON_DOCS {
                let doc = model.doc(DocId(rng.gen_range(0..num_docs)));
                claimed = claimed.union(InterestSet::singleton(doc.class));
                for &kw in &doc.keywords {
                    let h = asap.kw_hashes[kw.index()];
                    asap.nodes[p].filter.insert_hash(&h);
                }
            }
            // Republish so `audit_invariants`' snapshot == filter check
            // holds: the spammer's very first ad is already poisoned.
            let snap = asap.nodes[p].filter.snapshot_rc();
            asap.nodes[p].snapshot = snap;
            asap.claimed_topics[p] = claimed;
        }
        asap
    }

    /// Topics `node` advertises: its real content classes, unioned with any
    /// falsely claimed ones. Honest nodes union with `EMPTY` (a no-op), so
    /// this is one indexed load over [`Asap::new`]'s behavior.
    fn advertised_topics<C: Transport<Msg = AsapMsg>>(&self, ctx: &C, node: PeerId) -> InterestSet {
        let real = ctx.content().peer_topics(ctx.model(), node);
        real.union(self.claimed_topics[node])
    }

    pub(crate) fn hash_of(&self, kw: KeywordId) -> KeyHash {
        self.kw_hashes[kw.index()]
    }

    /// Inspect a node's ad cache: `(version, stale)` of the entry for
    /// `source`, if cached. Diagnostic / test API.
    pub fn cached_version(&self, node: PeerId, source: PeerId) -> Option<(u16, bool)> {
        self.nodes[node.index()]
            .repo
            .get(source)
            .map(|ad| (ad.version, ad.stale))
    }

    /// Number of ads currently cached at `node`. Diagnostic / test API.
    pub fn cache_len(&self, node: PeerId) -> usize {
        self.nodes[node.index()].repo.len()
    }

    /// The node's own current ad version. Diagnostic / test API.
    pub fn own_version(&self, node: PeerId) -> u16 {
        self.nodes[node.index()].version
    }

    fn next_delivery_id(&mut self) -> u64 {
        let id = self.next_delivery;
        self.next_delivery += 1;
        id
    }

    /// The node's current full-ad snapshot.
    pub(crate) fn snapshot_of(&self, node: PeerId, topics: InterestSet) -> AdSnapshot {
        let st = &self.nodes[node.index()];
        AdSnapshot {
            source: node,
            topics,
            version: st.version,
            filter: Rc::clone(&st.snapshot),
        }
    }

    /// Launch one ad delivery from `node`. `budget_factor` scales the
    /// paper's `topics × M₀` envelope (1.0 for initial/join announcements
    /// and patches, `refresh_budget_factor` for periodic beacons).
    fn deliver<C: Transport<Msg = AsapMsg>>(
        &mut self,
        ctx: &mut C,
        node: PeerId,
        payload: AdPayload,
        budget_factor: f64,
    ) {
        match payload {
            AdPayload::Full(_) => self.stats.full_deliveries += 1,
            AdPayload::Patch { .. } => self.stats.patch_deliveries += 1,
            AdPayload::Refresh { .. } => self.stats.refresh_deliveries += 1,
        }
        let id = self.next_delivery_id();
        start_delivery(
            ctx,
            self.config.delivery,
            self.config.budget_unit,
            budget_factor,
            node,
            payload,
            id,
        );
    }

    /// Announce the node's current ad `(source, topics, version)` through
    /// the overlay. The filter itself does NOT ride the announcement wave:
    /// interested receivers without a current copy fetch it directly
    /// (one hop, once per interested pair) — shipping kilobyte filters on
    /// every hop of a thousands-of-messages walk would dwarf every other
    /// load in the system (see DESIGN.md §6).
    fn deliver_announce<C: Transport<Msg = AsapMsg>>(
        &mut self,
        ctx: &mut C,
        node: PeerId,
        budget_factor: f64,
    ) -> bool {
        let topics = self.advertised_topics(ctx, node);
        if topics.is_empty() {
            return false; // free riders have "nothing to advertise"
        }
        let version = self.nodes[node.index()].version;
        self.deliver(
            ctx,
            node,
            AdPayload::Refresh {
                source: node,
                topics,
                version,
            },
            budget_factor,
        );
        true
    }

    /// Oldest acceptable refresh stamp for lookups at `now`.
    pub(crate) fn expire_before(&self, now_us: u64) -> u64 {
        now_us.saturating_sub(
            self.config.refresh_interval_us * u64::from(self.config.expiry_periods),
        )
    }

    /// Direct full-ad fetch from `source` to repair a gap or warm a miss.
    /// At most one fetch per (node, source) is in flight at a time.
    fn repair_fetch<C: Transport<Msg = AsapMsg>>(&mut self, ctx: &mut C, node: PeerId, source: PeerId) {
        if node == source || !self.nodes[node.index()].fetching.insert(source) {
            return;
        }
        self.stats.repair_fetches += 1;
        ctx.send(
            node,
            source,
            MsgClass::FullAd,
            asap_sim::HEADER_BYTES,
            AsapMsg::FullAdFetch,
        );
        let rb = self.config.robustness;
        if rb.fetch_retries > 0 {
            self.nodes[node.index()]
                .fetch_backoff
                .insert(source, rb.fetch_backoff());
            ctx.set_timer(node, rb.backoff_base_us, TAG_FETCH_BIT | u64::from(source.0));
        }
    }

    /// A repair-fetch retransmit timer fired: if the fetch is still
    /// unanswered, resend it (within the backoff budget) or give the source
    /// up — otherwise its `fetching` entry would leak forever under loss.
    fn handle_fetch_timer<C: Transport<Msg = AsapMsg>>(
        &mut self,
        ctx: &mut C,
        node: PeerId,
        source: PeerId,
    ) {
        let next = {
            let st = &mut self.nodes[node.index()];
            if !st.fetching.contains(&source) {
                // Answered in the meantime; retire the pacer.
                st.fetch_backoff.remove(&source);
                return;
            }
            match st.fetch_backoff.get_mut(&source) {
                Some(b) => b.next(),
                None => return,
            }
        };
        match next {
            Some(delay) => {
                self.stats.repair_fetches += 1;
                ctx.count(RetryStat::Retries);
                ctx.send(
                    node,
                    source,
                    MsgClass::FullAd,
                    asap_sim::HEADER_BYTES,
                    AsapMsg::FullAdFetch,
                );
                ctx.set_timer(node, delay, TAG_FETCH_BIT | u64::from(source.0));
            }
            None => {
                let st = &mut self.nodes[node.index()];
                st.fetching.remove(&source);
                st.fetch_backoff.remove(&source);
                ctx.count(RetryStat::DeliveriesAbandoned);
            }
        }
    }

    /// Arm the re-advertisement watchdog after an initial/join announcement
    /// (only when `robustness.readvert_retries > 0` — the inert default arms
    /// no timer, keeping fault-free digests unchanged).
    fn arm_readvert<C: Transport<Msg = AsapMsg>>(&mut self, ctx: &mut C, node: PeerId) {
        let rb = self.config.robustness;
        if rb.readvert_retries == 0 {
            return;
        }
        let st = &mut self.nodes[node.index()];
        st.readvert = Some(ReAdvert {
            baseline_fetches: st.fetches_served,
            backoff: rb.readvert_backoff(),
        });
        ctx.set_timer(node, rb.backoff_base_us, TAG_READVERT);
    }

    /// The re-advertisement watchdog fired: if nobody fetched our full ad
    /// since the last announcement, the wave may have been lost — repeat it
    /// (within the backoff budget) or record the delivery as abandoned.
    fn handle_readvert_timer<C: Transport<Msg = AsapMsg>>(&mut self, ctx: &mut C, node: PeerId) {
        let (acked, next) = {
            let st = &mut self.nodes[node.index()];
            let Some(ra) = st.readvert.as_mut() else {
                return;
            };
            let acked = st.fetches_served > ra.baseline_fetches;
            let next = if acked { None } else { ra.backoff.next() };
            (acked, next)
        };
        if acked {
            self.nodes[node.index()].readvert = None;
            return;
        }
        match next {
            Some(delay) => {
                ctx.count(RetryStat::Retries);
                self.deliver_announce(ctx, node, 1.0);
                let st = &mut self.nodes[node.index()];
                let served = st.fetches_served;
                if let Some(ra) = st.readvert.as_mut() {
                    ra.baseline_fetches = served;
                }
                ctx.set_timer(node, delay, TAG_READVERT);
            }
            None => {
                self.nodes[node.index()].readvert = None;
                ctx.count(RetryStat::DeliveriesAbandoned);
            }
        }
    }

    /// Ad received at `node`: cache if interesting, repair if inconsistent,
    /// keep the wave moving.
    fn handle_ad<C: Transport<Msg = AsapMsg>>(
        &mut self,
        ctx: &mut C,
        node: PeerId,
        from: PeerId,
        payload: AdPayload,
        fwd: Forwarding,
        delivery: u64,
    ) {
        // Duplicate suppression only applies to flood waves; walks and GSA
        // dispersal rely on their budgets.
        if matches!(fwd, Forwarding::Flood { .. }) && !self.seen.first_visit(delivery, node.0) {
            ctx.count(RetryStat::DuplicatesSuppressed);
            return;
        }

        let source = payload.source();
        let interested =
            source != node && payload.topics().intersects(ctx.model().interests[node.index()]);
        if interested {
            let now = ctx.now_us();
            let st = &mut self.nodes[node.index()];
            let outcome = match &payload {
                AdPayload::Full(snap) => {
                    st.fetching.remove(&source);
                    st.repo.insert_full(snap, now)
                }
                AdPayload::Patch {
                    version,
                    topics,
                    result,
                    ..
                } => st.repo.apply_patch(source, *version, *topics, result, now),
                AdPayload::Refresh { version, .. } => st.repo.apply_refresh(source, *version, now),
            };
            let has_room = self.nodes[node.index()].repo.len() < self.config.cache_capacity;
            match outcome {
                ApplyOutcome::Applied | ApplyOutcome::Outdated => {}
                ApplyOutcome::VersionGap => self.repair_fetch(ctx, node, source),
                ApplyOutcome::Unknown => {
                    // Interested but uncached: announcements double as
                    // discovery — fetch the full ad directly, but only while
                    // the cache has room. Fetching into a full cache would
                    // evict another useful entry that the next announcement
                    // round re-discovers, an endless paid loop; a full cache
                    // is the "selectively store" budget exhausted, and
                    // query-time fallbacks still pull in what's missing.
                    if has_room {
                        self.repair_fetch(ctx, node, source);
                    }
                }
            }
        }

        let branch = match self.config.delivery {
            DeliveryKind::Gsa { branch } => branch,
            _ => 4,
        };
        continue_delivery(ctx, node, from, payload, delivery, fwd, branch);
    }
}

impl Protocol for Asap {
    type Msg = AsapMsg;

    fn on_init<C: Transport<Msg = AsapMsg>>(&mut self, ctx: &mut C) {
        // Stagger the initial full-ad wave so the event queue (and the
        // network) isn't hit by every node at t = 0.
        let stagger = self.config.warmup_stagger_us.max(1);
        for p in 0..ctx.num_peers() as u32 {
            let peer = PeerId(p);
            if !ctx.alive(peer) {
                continue;
            }
            let delay = ctx.rng().gen_range(0..stagger);
            ctx.set_timer(peer, delay, TAG_INIT_AD);
        }
    }

    fn on_query<C: Transport<Msg = AsapMsg>>(&mut self, ctx: &mut C, query: &QuerySpec) {
        search::start_query(self, ctx, query);
    }

    fn on_message<C: Transport<Msg = AsapMsg>>(
        &mut self,
        ctx: &mut C,
        to: PeerId,
        from: PeerId,
        msg: AsapMsg,
    ) {
        match msg {
            AsapMsg::Ad {
                payload,
                fwd,
                delivery,
            } => self.handle_ad(ctx, to, from, payload, fwd, delivery),
            AsapMsg::FullAdFetch => {
                // Serve our full ad directly to the requester. The fetch also
                // acknowledges our announcement reached someone interested.
                self.nodes[to.index()].fetches_served += 1;
                let topics = self.advertised_topics(ctx, to);
                if topics.is_empty() {
                    return;
                }
                let snap = self.snapshot_of(to, topics);
                let payload = AdPayload::Full(snap);
                let bytes = payload.encoded_size();
                ctx.send(
                    to,
                    from,
                    ad_class(&payload),
                    bytes,
                    AsapMsg::Ad {
                        payload,
                        fwd: Forwarding::Direct,
                        delivery: u64::MAX,
                    },
                );
            }
            AsapMsg::AdsRequest {
                requester,
                interests,
                hops,
                query,
                terms,
            } => search::handle_ads_request(
                self, ctx, to, from, requester, interests, hops, query, terms,
            ),
            AsapMsg::AdsReply { ads, query } => {
                search::handle_ads_reply(self, ctx, to, ads, query)
            }
            AsapMsg::Confirm {
                query,
                requester,
                terms,
            } => search::handle_confirm(self, ctx, to, requester, query, &terms),
            AsapMsg::ConfirmReply { query, results } => {
                search::handle_confirm_reply(self, ctx, to, from, query, results)
            }
        }
    }

    fn on_timer<C: Transport<Msg = AsapMsg>>(&mut self, ctx: &mut C, node: PeerId, tag: u64) {
        if tag & TAG_FETCH_BIT != 0 {
            let source = PeerId((tag & !TAG_FETCH_BIT) as u32);
            self.handle_fetch_timer(ctx, node, source);
            return;
        }
        if tag == TAG_READVERT {
            self.handle_readvert_timer(ctx, node);
            return;
        }
        match tag {
            TAG_INIT_AD => {
                if self.deliver_announce(ctx, node, 1.0) {
                    self.arm_readvert(ctx, node);
                }
                // First refresh lands one period (plus jitter) later.
                let jitter = ctx.rng().gen_range(0..self.config.refresh_interval_us / 4 + 1);
                ctx.set_timer(node, self.config.refresh_interval_us + jitter, TAG_REFRESH);
            }
            TAG_REFRESH => {
                let factor = self.config.refresh_budget_factor;
                self.deliver_announce(ctx, node, factor);
                // Re-jitter every period (±25 %) so refresh beacons never
                // phase-lock across the population — synchronized waves
                // would turn the load series into a square wave.
                let base = self.config.refresh_interval_us;
                let next = ctx.rng().gen_range(base - base / 4..=base + base / 4);
                ctx.set_timer(node, next, TAG_REFRESH);
            }
            _ => search::handle_timeout(self, ctx, node, tag),
        }
    }

    fn on_join<C: Transport<Msg = AsapMsg>>(&mut self, ctx: &mut C, node: PeerId) {
        // Warm the cache: "this is the same ads requesting process as the
        // one when a brand new node joins."
        search::send_ads_request(self, ctx, node, None, None);
        // A rejoining node's content (and hence version) is unchanged, so a
        // cheap announcement suffices: peers still caching the ad revive it,
        // and interested peers that lost it fetch the filter directly.
        if self.deliver_announce(ctx, node, 1.0) {
            self.arm_readvert(ctx, node);
        }
        let jitter = ctx.rng().gen_range(0..self.config.refresh_interval_us / 4 + 1);
        ctx.set_timer(node, self.config.refresh_interval_us + jitter, TAG_REFRESH);
    }

    fn on_leave<C: Transport<Msg = AsapMsg>>(&mut self, _ctx: &mut C, node: PeerId) {
        // Abandon searches this node was running.
        self.pending.retain(|_, p| p.requester != node);
    }

    fn on_content_change<C: Transport<Msg = AsapMsg>>(
        &mut self,
        ctx: &mut C,
        peer: PeerId,
        doc: DocId,
        added: bool,
    ) {
        // Borrow the `&ContentModel` out of `ctx` so the keyword list needn't
        // be cloned while `self.nodes` is mutably borrowed.
        let model = ctx.model();
        let old_class = model.doc(doc).class;
        let st = &mut self.nodes[peer.index()];
        let old_snapshot = Rc::clone(&st.snapshot);
        for kw in &model.doc(doc).keywords {
            let h = self.kw_hashes[kw.index()];
            if added {
                st.filter.insert_hash(&h);
            } else {
                let removed = st.filter.remove_hash(&h);
                debug_assert!(removed, "removing keyword that was never inserted");
            }
        }
        st.version = st.version.wrapping_add(1);
        // Copy-on-write: this is O(1); the filter already diverged from
        // `old_snapshot` at the first bit flip above (or didn't change at
        // all, in which case the two handles still alias).
        let new_snapshot = st.filter.snapshot_rc();
        st.snapshot = Rc::clone(&new_snapshot);
        let version = st.version;

        // Patch topics: union of old and new, so cachers from a dropped
        // class still hear about the removal. Claimed (spam) topics ride
        // along so cachers keyed on the false classes stay in sync too.
        let new_topics = self.advertised_topics(ctx, peer);
        let topics = new_topics.union(InterestSet::singleton(old_class));

        let patch = Rc::new(FilterPatch::diff(&old_snapshot, &new_snapshot));
        if patch.is_empty() && new_snapshot == old_snapshot {
            return; // duplicate keywords: nothing observable changed
        }
        self.deliver(
            ctx,
            peer,
            AdPayload::Patch {
                source: peer,
                topics,
                version,
                patch,
                result: new_snapshot,
            },
            1.0,
        );
    }

    /// Structural invariants of the per-node ASAP state, swept once at the
    /// end of an audited run:
    ///
    /// * every ad cache respects its configured capacity;
    /// * no node caches its own ad (`handle_ad` filters `source == node`);
    /// * cached-entry timestamps never run ahead of the clock;
    /// * a node's own filter snapshot reflects its current version.
    fn audit_invariants<C: Transport<Msg = AsapMsg>>(&self, ctx: &C) -> Vec<String> {
        let mut violations = Vec::new();
        let now = ctx.now_us();
        for (i, st) in self.nodes.iter().enumerate() {
            let node = PeerId(i as u32);
            if st.repo.len() > st.repo.capacity() {
                violations.push(format!(
                    "node {i}: cache holds {} ads over capacity {}",
                    st.repo.len(),
                    st.repo.capacity()
                ));
            }
            if st.repo.capacity() != self.config.cache_capacity {
                violations.push(format!("node {i}: cache capacity drifted from config"));
            }
            for (source, ad) in st.repo.iter() {
                if source == node {
                    violations.push(format!("node {i} caches its own ad"));
                }
                if ad.last_used_us > now || ad.last_refreshed_us > now {
                    violations.push(format!(
                        "node {i}: ad from {source:?} stamped in the future"
                    ));
                }
            }
            if st.snapshot.as_ref() != st.filter.as_filter() {
                violations.push(format!("node {i}: published snapshot lags its filter"));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::WorkloadConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn model() -> ContentModel {
        let cfg = WorkloadConfig::reduced(120, 50, 3);
        let mut rng = SmallRng::seed_from_u64(3);
        asap_workload::content::generate_model(&cfg, &mut rng)
    }

    #[test]
    fn node_filters_reflect_initial_content() {
        let m = model();
        let asap = Asap::new(AsapConfig::rw().scaled_to(120), &m);
        for p in 0..m.num_peers() {
            let st = &asap.nodes[p];
            for &doc in &m.initial_holdings[p] {
                for &kw in &m.doc(doc).keywords {
                    assert!(
                        st.snapshot.contains_hash(&asap.kw_hashes[kw.index()]),
                        "peer {p}'s filter must cover its keywords"
                    );
                }
            }
            if m.initial_holdings[p].is_empty() {
                assert!(st.snapshot.is_empty(), "free riders have null filters");
            }
        }
    }

    #[test]
    fn keyword_hash_table_matches_direct_hashing() {
        let m = model();
        let asap = Asap::new(AsapConfig::rw().scaled_to(120), &m);
        for i in (0..m.vocab.len()).step_by(37) {
            let kw = KeywordId(i as u32);
            assert_eq!(asap.hash_of(kw), KeyHash::of(m.vocab.word(kw)));
        }
    }

    #[test]
    fn delivery_ids_are_unique() {
        let m = model();
        let mut asap = Asap::new(AsapConfig::rw().scaled_to(120), &m);
        let a = asap.next_delivery_id();
        let b = asap.next_delivery_id();
        assert_ne!(a, b);
    }

    /// Roles vector with `AdSpammer` at every index divisible by 10.
    fn spam_roles(peers: usize) -> Vec<AdversaryRole> {
        (0..peers)
            .map(|p| {
                if p % 10 == 0 {
                    AdversaryRole::AdSpammer
                } else {
                    AdversaryRole::Honest
                }
            })
            .collect()
    }

    #[test]
    fn all_honest_roles_match_plain_construction() {
        let m = model();
        let cfg = AsapConfig::rw().scaled_to(120);
        let plain = Asap::new(cfg.clone(), &m);
        let adv = Asap::new_with_adversaries(cfg, &m, &[AdversaryRole::Honest; 120], 7);
        assert!(adv.claimed_topics.iter().all(|c| c.is_empty()));
        for p in 0..m.num_peers() {
            assert_eq!(
                plain.nodes[p].snapshot, adv.nodes[p].snapshot,
                "peer {p}: honest roles must not perturb filters"
            );
        }
    }

    #[test]
    fn spam_poisoning_is_deterministic_and_scoped_to_spammers() {
        let m = model();
        let cfg = AsapConfig::rw().scaled_to(120);
        let roles = spam_roles(120);
        let plain = Asap::new(cfg.clone(), &m);
        let a = Asap::new_with_adversaries(cfg.clone(), &m, &roles, 7);
        let b = Asap::new_with_adversaries(cfg.clone(), &m, &roles, 7);
        let c = Asap::new_with_adversaries(cfg, &m, &roles, 8);
        let mut diverged = false;
        for (p, role) in roles.iter().enumerate() {
            assert_eq!(
                a.nodes[p].snapshot, b.nodes[p].snapshot,
                "peer {p}: same seed must poison identically"
            );
            match role {
                AdversaryRole::AdSpammer => {
                    assert!(!a.claimed_topics[p].is_empty());
                    assert_ne!(
                        plain.nodes[p].snapshot, a.nodes[p].snapshot,
                        "peer {p}: a spammer's filter must be poisoned"
                    );
                    diverged |= a.nodes[p].snapshot != c.nodes[p].snapshot;
                }
                _ => {
                    assert!(a.claimed_topics[p].is_empty());
                    assert_eq!(
                        plain.nodes[p].snapshot, a.nodes[p].snapshot,
                        "peer {p}: honest filters must be untouched"
                    );
                }
            }
        }
        assert!(diverged, "different seeds must draw different poison sets");
    }

    #[test]
    fn poisoned_snapshot_stays_consistent_with_filter() {
        // `audit_invariants` flags any node whose published snapshot lags
        // its filter; the poison pass must leave no such gap.
        let m = model();
        let asap =
            Asap::new_with_adversaries(AsapConfig::rw().scaled_to(120), &m, &spam_roles(120), 7);
        for p in 0..m.num_peers() {
            let st = &asap.nodes[p];
            assert_eq!(st.snapshot.as_ref(), st.filter.as_filter());
        }
    }

    #[test]
    fn spammers_claim_topics_beyond_their_content() {
        let m = model();
        let asap =
            Asap::new_with_adversaries(AsapConfig::rw().scaled_to(120), &m, &spam_roles(120), 7);
        let mut spammers = 0;
        for (p, &claimed) in asap.claimed_topics.iter().enumerate() {
            if claimed.is_empty() {
                continue; // honest slot
            }
            spammers += 1;
            // Claimed classes come from real documents, so honest queries in
            // those classes will probe — and confirmation will expose — them.
            assert!(claimed.len() <= m.num_classes, "peer {p} claims too much");
        }
        assert_eq!(spammers, 120 / 10, "one spammer per 10 peers must claim");
    }
}
