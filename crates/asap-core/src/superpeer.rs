//! Super-peer ASAP — the hierarchical deployment the paper sketches.
//!
//! Footnote 3 (§IV-A): "ASAP can work well on hierarchical systems in which
//! only super peers are responsible for ad representation, delivery, caching
//! and processing." This module implements that deployment:
//!
//! * the top fraction of peers **by overlay degree** act as *super peers*;
//!   every leaf registers its content snapshot with a super-peer neighbor
//!   (its *home*), promoting itself if it has none;
//! * ads live **only on super peers**: announcements travel by random walk
//!   over the super-peer subgraph as *batched digests* of `(source, topics,
//!   version)` entries — aggregation is what the hierarchy buys — and a
//!   super peer caches an entry when its *union interest* (its own plus its
//!   leaves') overlaps the topics, fetching the filter directly from the
//!   content's source;
//! * a leaf's search is one hop to its home super peer, a repository lookup
//!   there, and confirmations sent to the candidate sources, which reply
//!   **directly to the requester** — so the leaf-observed latency stays in
//!   the one-hop regime; a lookup miss triggers a term-filtered ads request
//!   to neighboring super peers.
//!
//! Relative to flat ASAP this variant is deliberately lean (no timers, no
//! iterative confirm rounds): it exists to demonstrate the claim and to let
//! the harness compare the two deployments, not to replace the flat
//! protocol.

use crate::ad::AdSnapshot;
use crate::config::AsapConfig;
use crate::repository::AdRepository;
use asap_bloom::hashing::KeyHash;
use asap_bloom::{BloomFilter, CountingBloom, WireFilter};
use asap_metrics::MsgClass;
use asap_overlay::PeerId;
use asap_sim::{
    ads_reply_size, ads_request_size, confirm_reply_size, confirm_size, query_size, Protocol,
    Transport, HEADER_BYTES, TOPIC_WIRE_BYTES, VERSION_WIRE_BYTES,
};
use asap_workload::{ContentModel, DocId, InterestSet, KeywordId, QuerySpec};
use rand::Rng;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Wire size of one digest entry: source id + topics + version.
const DIGEST_ENTRY_BYTES: usize = 4 + VERSION_WIRE_BYTES;

/// Super-peer deployment parameters.
#[derive(Debug, Clone)]
pub struct SuperPeerConfig {
    /// Fraction of peers (highest degree first) promoted to super peers.
    pub super_fraction: f64,
    /// Underlying ASAP knobs (budget unit, cache capacity, Bloom geometry,
    /// fan-outs). Timers are unused by this lean variant.
    pub asap: AsapConfig,
}

impl SuperPeerConfig {
    pub fn new(asap: AsapConfig) -> Self {
        Self {
            super_fraction: 0.2,
            asap,
        }
    }

    pub fn validate(&self) {
        assert!(
            self.super_fraction > 0.0 && self.super_fraction <= 1.0,
            "super fraction must be in (0, 1]"
        );
        self.asap.validate();
    }
}

/// A peer's role in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    Super,
    /// Leaf registered with `home`.
    Leaf { home: PeerId },
}

/// Wire messages of the super-peer deployment.
#[derive(Debug, Clone)]
pub enum SuperMsg {
    /// Leaf → home super: (re-)register my content snapshot.
    Register { snap: AdSnapshot },
    /// Digest walk over the super-peer subgraph.
    Digest {
        entries: Rc<[(PeerId, InterestSet, u16)]>,
        budget: u32,
    },
    /// Super → content source: send me your filter.
    Fetch,
    /// Source → super: the filter (piggybacks current topics/version).
    FetchReply { snap: AdSnapshot },
    /// Leaf → home super: run this search for me.
    QueryAsk {
        query: u32,
        requester: PeerId,
        terms: Rc<[KeywordId]>,
    },
    /// Super → candidate source: confirm against your actual content.
    Confirm {
        query: u32,
        requester: PeerId,
        terms: Rc<[KeywordId]>,
    },
    /// Source → requester (direct): verdict.
    ConfirmReply { query: u32, results: u32 },
    /// Super → neighbor supers: ads serving these terms?
    AdsRequest {
        query: u32,
        requester: PeerId,
        terms: Rc<[KeywordId]>,
    },
    /// Neighbor super → asking super: matching cached ads (terms echoed so
    /// the asker can confirm without per-query state).
    AdsReply {
        query: u32,
        requester: PeerId,
        terms: Rc<[KeywordId]>,
        ads: Vec<AdSnapshot>,
    },
}

/// Statistics specific to the hierarchical deployment.
#[derive(Debug, Default, Clone)]
pub struct SuperStats {
    pub supers: usize,
    pub leaves: usize,
    pub registrations: u64,
    pub digests_sent: u64,
    pub fetches: u64,
    pub leaf_queries_forwarded: u64,
    pub super_local_hits: u64,
    pub super_fallbacks: u64,
}

struct NodeState {
    filter: CountingBloom,
    version: u16,
    snapshot: Rc<BloomFilter>,
    /// Super peers only: the ads repository and registered dependents.
    repo: Option<AdRepository>,
    registered: BTreeMap<PeerId, (InterestSet, u16)>,
}

/// The hierarchical ASAP protocol.
pub struct SuperAsap {
    pub config: SuperPeerConfig,
    roles: Vec<Role>,
    nodes: Vec<NodeState>,
    kw_hashes: Vec<KeyHash>,
    /// Union of a super peer's own and registered leaves' interests.
    union_interests: Vec<InterestSet>,
    pub stats: SuperStats,
    initialized: bool,
}

impl SuperAsap {
    pub fn new(config: SuperPeerConfig, model: &ContentModel) -> Self {
        config.validate();
        let kw_hashes: Vec<KeyHash> = (0..model.vocab.len())
            .map(|i| KeyHash::of(model.vocab.word(KeywordId(i as u32))))
            .collect();
        let nodes = (0..model.num_peers())
            .map(|p| {
                let mut filter = CountingBloom::new(config.asap.bloom);
                for &doc in &model.initial_holdings[p] {
                    for &kw in &model.doc(doc).keywords {
                        filter.insert_hash(&kw_hashes[kw.index()]);
                    }
                }
                let snapshot = filter.snapshot_rc();
                NodeState {
                    filter,
                    version: 0,
                    snapshot,
                    repo: None,
                    registered: BTreeMap::new(),
                }
            })
            .collect();
        let n = model.num_peers();
        Self {
            roles: vec![Role::Super; n],
            union_interests: vec![InterestSet::EMPTY; n],
            kw_hashes,
            nodes,
            stats: SuperStats::default(),
            initialized: false,
            config,
        }
    }

    pub fn role(&self, p: PeerId) -> Role {
        self.roles[p.index()]
    }

    pub fn is_super(&self, p: PeerId) -> bool {
        matches!(self.roles[p.index()], Role::Super)
    }

    /// The super peer handling `node`'s traffic right now: its assigned home
    /// if that peer is still alive, otherwise the best live super neighbor,
    /// otherwise itself (self-promotion keeps partitions functional).
    fn live_home<C: Transport<Msg = SuperMsg>>(&self, ctx: &C, node: PeerId) -> PeerId {
        if self.is_super(node) {
            return node;
        }
        if let Role::Leaf { home } = self.roles[node.index()] {
            if ctx.alive(home) && ctx.neighbors(node).contains(&home) {
                return home;
            }
        }
        ctx.neighbors(node)
            .iter()
            .copied()
            .filter(|&s| self.is_super(s) && ctx.alive(s))
            .max_by_key(|&s| ctx.degree(s))
            .unwrap_or(node)
    }

    fn snapshot_of(&self, node: PeerId, topics: InterestSet) -> AdSnapshot {
        let st = &self.nodes[node.index()];
        AdSnapshot {
            source: node,
            topics,
            version: st.version,
            filter: Rc::clone(&st.snapshot),
        }
    }

    /// Assign roles from overlay degree and wire every leaf to a home.
    fn assign_roles<C: Transport<Msg = SuperMsg>>(&mut self, ctx: &mut C) {
        let n = ctx.num_peers();
        let mut by_degree: Vec<PeerId> = (0..n as u32).map(PeerId).collect();
        by_degree.sort_by_key(|&p| std::cmp::Reverse(ctx.degree(p)));
        let quota = ((n as f64 * self.config.super_fraction).ceil() as usize).max(1);
        let mut is_super = vec![false; n];
        for &p in by_degree.iter().take(quota) {
            is_super[p.index()] = true;
        }
        // A leaf without a super neighbor promotes itself.
        for p in 0..n {
            if is_super[p] {
                continue;
            }
            let peer = PeerId(p as u32);
            if !ctx.neighbors(peer).iter().any(|&s| is_super[s.index()]) {
                is_super[p] = true;
            }
        }
        for p in 0..n {
            let peer = PeerId(p as u32);
            if is_super[p] {
                self.roles[p] = Role::Super;
                // Super peers are the "powerful and willing" nodes of the
                // hierarchy: they carry a multiple of the flat cache budget
                // because they cache on behalf of all their leaves.
                self.nodes[p].repo =
                    Some(AdRepository::new(self.config.asap.cache_capacity * 4));
                self.union_interests[p] = ctx.model().interests[p];
                self.stats.supers += 1;
            } else {
                let home = ctx
                    .neighbors(peer)
                    .iter()
                    .copied()
                    .filter(|&s| is_super[s.index()])
                    .max_by_key(|&s| ctx.degree(s))
                    // lint: allow(unwrap, reason=the promotion loop above self-promotes any leaf without a super neighbor)
                    .expect("leaves have super neighbors by construction");
                self.roles[p] = Role::Leaf { home };
                self.stats.leaves += 1;
            }
        }
    }

    /// Leaf (or super, to itself) registers its snapshot with its home.
    fn register_with_home<C: Transport<Msg = SuperMsg>>(&mut self, ctx: &mut C, node: PeerId) {
        let topics = ctx.content().peer_topics(ctx.model(), node);
        if topics.is_empty() {
            return; // free riders: nothing to advertise
        }
        let home = self.live_home(ctx, node);
        let snap = self.snapshot_of(node, topics);
        self.stats.registrations += 1;
        if home == node {
            self.accept_registration(ctx, node, snap);
        } else {
            let bytes = HEADER_BYTES
                + WireFilter::size_of(&snap.filter)
                + snap.topics.len() * TOPIC_WIRE_BYTES
                + VERSION_WIRE_BYTES;
            ctx.send(node, home, MsgClass::FullAd, bytes, SuperMsg::Register { snap });
        }
    }

    /// A super peer takes responsibility for a source and gossips a digest.
    fn accept_registration<C: Transport<Msg = SuperMsg>>(&mut self, ctx: &mut C, me: PeerId, snap: AdSnapshot) {
        let entry = (snap.source, snap.topics, snap.version);
        self.union_interests[me.index()] =
            self.union_interests[me.index()].union(ctx.model().interests[snap.source.index()]);
        self.nodes[me.index()]
            .registered
            .insert(snap.source, (snap.topics, snap.version));
        if let Some(repo) = self.nodes[me.index()].repo.as_mut() {
            repo.insert_full(&snap, ctx.now_us());
        }
        // Gossip a single-entry digest for the new/updated source.
        self.send_digest(ctx, me, Rc::from(vec![entry].into_boxed_slice()));
    }

    /// Launch a digest walk over the super-peer subgraph.
    fn send_digest<C: Transport<Msg = SuperMsg>>(
        &mut self,
        ctx: &mut C,
        from: PeerId,
        entries: Rc<[(PeerId, InterestSet, u16)]>,
    ) {
        // Same envelope as flat ASAP: M₀ per topic advertised.
        let topics: u32 = entries.iter().map(|e| e.1.len().max(1) as u32).sum();
        let budget = self.config.asap.budget_unit * topics;
        self.stats.digests_sent += 1;
        self.forward_digest(ctx, from, None, entries, budget);
    }

    /// One hop of a digest walk: random live super neighbor.
    fn forward_digest<C: Transport<Msg = SuperMsg>>(
        &mut self,
        ctx: &mut C,
        node: PeerId,
        came_from: Option<PeerId>,
        entries: Rc<[(PeerId, InterestSet, u16)]>,
        budget: u32,
    ) {
        if budget == 0 {
            return;
        }
        let candidates: Vec<PeerId> = ctx
            .neighbors(node)
            .iter()
            .copied()
            .filter(|&s| self.is_super(s) && Some(s) != came_from)
            .collect();
        if candidates.is_empty() {
            return;
        }
        let next = candidates[ctx.rng().gen_range(0..candidates.len())];
        let bytes = HEADER_BYTES + entries.len() * (DIGEST_ENTRY_BYTES + TOPIC_WIRE_BYTES);
        ctx.send(
            node,
            next,
            MsgClass::RefreshAd,
            bytes,
            SuperMsg::Digest {
                entries,
                budget: budget - 1,
            },
        );
    }

    /// Digest received at a super peer: fetch anything interesting we lack.
    fn handle_digest<C: Transport<Msg = SuperMsg>>(
        &mut self,
        ctx: &mut C,
        me: PeerId,
        from: PeerId,
        entries: Rc<[(PeerId, InterestSet, u16)]>,
        budget: u32,
    ) {
        if self.is_super(me) {
            let now = ctx.now_us();
            let union = self.union_interests[me.index()];
            let mut fetches = Vec::new();
            if let Some(repo) = self.nodes[me.index()].repo.as_mut() {
                for &(source, topics, version) in entries.iter() {
                    if source == me || !topics.intersects(union) {
                        continue;
                    }
                    let needs = match repo.get(source) {
                        None => true,
                        Some(ad) => ad.stale || ad.version != version,
                    };
                    if needs {
                        fetches.push(source);
                    } else {
                        repo.apply_refresh(source, version, now);
                    }
                }
            }
            for source in fetches {
                if ctx.alive(source) {
                    self.stats.fetches += 1;
                    ctx.send(me, source, MsgClass::FullAd, HEADER_BYTES, SuperMsg::Fetch);
                }
            }
            self.forward_digest(ctx, me, Some(from), entries, budget);
        }
    }

    /// Repository lookup + confirmations at a super peer on behalf of a
    /// requester; on a miss, ask neighboring super peers.
    fn run_search<C: Transport<Msg = SuperMsg>>(
        &mut self,
        ctx: &mut C,
        me: PeerId,
        query: u32,
        requester: PeerId,
        terms: &Rc<[KeywordId]>,
    ) {
        let hashes: Vec<KeyHash> = terms.iter().map(|&k| self.kw_hashes[k.index()]).collect();
        let now = ctx.now_us();
        // Without timers there is no second confirm round, so supers confirm
        // a triple-width batch up front — they are the capable nodes, and a
        // confirmation is ~50 B.
        let fanout = self.config.asap.max_confirm_fanout * 3;
        let candidates = match self.nodes[me.index()].repo.as_mut() {
            Some(repo) => repo.lookup(&hashes, now, 0),
            None => Vec::new(),
        };
        let mut sent = 0;
        for source in candidates {
            if sent >= fanout {
                break;
            }
            if source == requester {
                continue;
            }
            if source == me {
                // Our own content matched: verdict without a network hop
                // (the reply to the requester still travels).
                let results = ctx.content().matching_docs(ctx.model(), me, terms).count() as u32;
                if results > 0 && requester != me {
                    ctx.send(
                        me,
                        requester,
                        MsgClass::ConfirmReply,
                        confirm_reply_size(results as usize),
                        SuperMsg::ConfirmReply { query, results },
                    );
                    sent += 1;
                }
                continue;
            }
            ctx.send(
                me,
                source,
                MsgClass::Confirm,
                confirm_size(terms.len()),
                SuperMsg::Confirm {
                    query,
                    requester,
                    terms: Rc::clone(terms),
                },
            );
            sent += 1;
        }
        if sent > 0 {
            self.stats.super_local_hits += 1;
        }
        // Thin or empty candidate sets also consult neighboring super peers
        // (one term-filtered round): without timers this variant cannot
        // react to all-negative confirmations, so it hedges up front when
        // the local evidence is weak.
        if sent >= fanout / 2 && sent > 0 {
            return;
        }
        self.stats.super_fallbacks += 1;
        let mut supers: Vec<PeerId> = ctx
            .neighbors(me)
            .iter()
            .copied()
            .filter(|&s| self.is_super(s))
            .collect();
        // Hubs can have dozens of super neighbors; a handful of randomly
        // chosen ones bounds the fallback fan-out.
        const FALLBACK_FANOUT: usize = 6;
        for i in 0..FALLBACK_FANOUT.min(supers.len()) {
            let j = ctx.rng().gen_range(i..supers.len());
            supers.swap(i, j);
        }
        supers.truncate(FALLBACK_FANOUT);
        let bytes = ads_request_size(terms.len());
        for s in supers {
            ctx.send(
                me,
                s,
                MsgClass::AdsRequest,
                bytes,
                SuperMsg::AdsRequest {
                    query,
                    requester,
                    terms: Rc::clone(terms),
                },
            );
        }
    }
}

impl Protocol for SuperAsap {
    type Msg = SuperMsg;

    fn on_init<C: Transport<Msg = SuperMsg>>(&mut self, ctx: &mut C) {
        self.assign_roles(ctx);
        self.initialized = true;
        // Stagger registrations like flat ASAP's warm-up wave.
        let stagger = self.config.asap.warmup_stagger_us.max(1);
        for p in 0..ctx.num_peers() as u32 {
            let peer = PeerId(p);
            if ctx.alive(peer) {
                let delay = ctx.rng().gen_range(0..stagger);
                ctx.set_timer(peer, delay, 0);
            }
        }
    }

    fn on_timer<C: Transport<Msg = SuperMsg>>(&mut self, ctx: &mut C, node: PeerId, tag: u64) {
        match tag {
            0 => {
                self.register_with_home(ctx, node);
                // Supers gossip their whole registered set periodically —
                // the hierarchy's analogue of flat ASAP's refresh rounds.
                if self.is_super(node) {
                    let base = self.config.asap.refresh_interval_us;
                    let jitter = ctx.rng().gen_range(0..base / 4 + 1);
                    ctx.set_timer(node, base + jitter, 1);
                }
            }
            _ => {
                let entries: Vec<(PeerId, InterestSet, u16)> = self.nodes[node.index()]
                    .registered
                    .iter()
                    .map(|(&src, &(topics, version))| (src, topics, version))
                    .collect();
                if !entries.is_empty() {
                    self.send_digest(ctx, node, Rc::from(entries.into_boxed_slice()));
                }
                let base = self.config.asap.refresh_interval_us;
                let next = ctx.rng().gen_range(base - base / 4..=base + base / 4);
                ctx.set_timer(node, next, 1);
            }
        }
    }

    fn on_query<C: Transport<Msg = SuperMsg>>(&mut self, ctx: &mut C, q: &QuerySpec) {
        let terms: Rc<[KeywordId]> = q.terms.clone().into();
        let home = self.live_home(ctx, q.requester);
        if home == q.requester {
            self.run_search(ctx, home, q.id, q.requester, &terms);
        } else {
            self.stats.leaf_queries_forwarded += 1;
            ctx.send(
                q.requester,
                home,
                MsgClass::Query,
                query_size(terms.len()),
                SuperMsg::QueryAsk {
                    query: q.id,
                    requester: q.requester,
                    terms,
                },
            );
        }
    }

    fn on_message<C: Transport<Msg = SuperMsg>>(&mut self, ctx: &mut C, to: PeerId, from: PeerId, msg: SuperMsg) {
        match msg {
            SuperMsg::Register { snap } => self.accept_registration(ctx, to, snap),
            SuperMsg::Digest { entries, budget } => {
                self.handle_digest(ctx, to, from, entries, budget)
            }
            SuperMsg::Fetch => {
                let topics = ctx.content().peer_topics(ctx.model(), to);
                if topics.is_empty() {
                    return;
                }
                let snap = self.snapshot_of(to, topics);
                let bytes = HEADER_BYTES
                    + WireFilter::size_of(&snap.filter)
                    + snap.topics.len() * TOPIC_WIRE_BYTES
                    + VERSION_WIRE_BYTES;
                ctx.send(to, from, MsgClass::FullAd, bytes, SuperMsg::FetchReply { snap });
            }
            SuperMsg::FetchReply { snap } => {
                let now = ctx.now_us();
                if let Some(repo) = self.nodes[to.index()].repo.as_mut() {
                    repo.insert_full(&snap, now);
                }
            }
            SuperMsg::QueryAsk {
                query,
                requester,
                terms,
            } => self.run_search(ctx, to, query, requester, &terms),
            SuperMsg::Confirm {
                query,
                requester,
                terms,
            } => {
                let results = ctx.content().matching_docs(ctx.model(), to, &terms).count() as u32;
                ctx.send(
                    to,
                    requester,
                    MsgClass::ConfirmReply,
                    confirm_reply_size(results as usize),
                    SuperMsg::ConfirmReply { query, results },
                );
            }
            SuperMsg::ConfirmReply { query, results } => {
                if results > 0 {
                    ctx.report_answer(query);
                }
            }
            SuperMsg::AdsRequest {
                query,
                requester,
                terms,
            } => {
                let hashes: Vec<KeyHash> =
                    terms.iter().map(|&k| self.kw_hashes[k.index()]).collect();
                let now = ctx.now_us();
                // Term-filtered: a few candidates suffice (each ad carries
                // a full filter).
                let max = 4;
                let ads = match self.nodes[to.index()].repo.as_mut() {
                    Some(repo) => repo.snapshots_matching(&hashes, now, 0, max),
                    None => Vec::new(),
                };
                if !ads.is_empty() {
                    let payload: usize = ads.iter().map(AdSnapshot::encoded_size).sum();
                    ctx.send(
                        to,
                        from,
                        MsgClass::AdsReply,
                        ads_reply_size(payload),
                        SuperMsg::AdsReply {
                            query,
                            requester,
                            terms,
                            ads,
                        },
                    );
                }
            }
            SuperMsg::AdsReply {
                query,
                requester,
                terms,
                ads,
            } => {
                // Merge into our repository, then confirm on behalf of the
                // requester — the reply was term-filtered, so every ad is a
                // candidate.
                let now = ctx.now_us();
                let fanout = self.config.asap.max_confirm_fanout;
                if let Some(repo) = self.nodes[to.index()].repo.as_mut() {
                    for snap in &ads {
                        repo.insert_full(snap, now);
                    }
                }
                for snap in ads.iter().take(fanout) {
                    if snap.source == requester || snap.source == to {
                        continue;
                    }
                    ctx.send(
                        to,
                        snap.source,
                        MsgClass::Confirm,
                        confirm_size(terms.len()),
                        SuperMsg::Confirm {
                            query,
                            requester,
                            terms: Rc::clone(&terms),
                        },
                    );
                }
            }
        }
    }

    fn on_join<C: Transport<Msg = SuperMsg>>(&mut self, ctx: &mut C, node: PeerId) {
        if self.initialized {
            self.register_with_home(ctx, node);
        }
    }

    fn on_content_change<C: Transport<Msg = SuperMsg>>(
        &mut self,
        ctx: &mut C,
        peer: PeerId,
        doc: DocId,
        added: bool,
    ) {
        let model = ctx.model();
        let st = &mut self.nodes[peer.index()];
        for kw in &model.doc(doc).keywords {
            let h = self.kw_hashes[kw.index()];
            if added {
                st.filter.insert_hash(&h);
            } else {
                st.filter.remove_hash(&h);
            }
        }
        st.version = st.version.wrapping_add(1);
        st.snapshot = st.filter.snapshot_rc();
        self.register_with_home(ctx, peer);
    }
}
