//! Ad dissemination: the three forwarding schemes.
//!
//! A delivery's cost envelope follows the paper: flooding is TTL-bounded;
//! RW/GSA deliveries spend at most `topics × M₀` messages, M₀ = 3,000
//! ("the total budget for one ad delivery can be determined by the number of
//! topics in the ad and a budget unit M₀ = 3000").

use crate::ad::{AdPayload, AsapMsg, Forwarding};
use crate::config::DeliveryKind;
use asap_metrics::MsgClass;
use asap_overlay::PeerId;
use asap_sim::Transport;
use rand::Rng;

/// Load-accounting class of an ad payload.
pub(crate) fn ad_class(payload: &AdPayload) -> MsgClass {
    match payload {
        AdPayload::Full(_) => MsgClass::FullAd,
        AdPayload::Patch { .. } => MsgClass::PatchAd,
        AdPayload::Refresh { .. } => MsgClass::RefreshAd,
    }
}

/// Kick off a fresh delivery of `payload` from `source`. `delivery` is the
/// unique id used for duplicate suppression of flooded ads.
pub(crate) fn start_delivery<C: Transport<Msg = AsapMsg>>(
    ctx: &mut C,
    kind: DeliveryKind,
    budget_unit: u32,
    budget_factor: f64,
    source: PeerId,
    payload: AdPayload,
    delivery: u64,
) {
    let topics = payload.topics().len().max(1) as u32;
    let budget = ((topics * budget_unit) as f64 * budget_factor).round() as u32;
    let budget = budget.max(1);
    let class = ad_class(&payload);
    ctx.trace(|| asap_sim::trace::Event::AdPublished { node: source, class });
    match kind {
        DeliveryKind::Flooding { ttl } => {
            // Flooding's envelope is its TTL; the budget factor shaves hops
            // off periodic beacons (factor < 1 drops the TTL by one).
            let ttl = if budget_factor < 1.0 { ttl.saturating_sub(1).max(1) } else { ttl };
            fan_to_all(ctx, source, None, payload, delivery, Forwarding::Flood { ttl });
        }
        DeliveryKind::RandomWalk { walkers } => {
            let per_walker = (budget / walkers).max(1);
            for _ in 0..walkers {
                walk_step(ctx, source, None, payload.clone(), delivery, per_walker);
            }
        }
        DeliveryKind::Gsa { branch } => {
            gsa_disperse(ctx, source, None, payload, delivery, budget, branch);
        }
    }
}

/// Continue a delivery after `node` processed the ad.
pub(crate) fn continue_delivery<C: Transport<Msg = AsapMsg>>(
    ctx: &mut C,
    node: PeerId,
    came_from: PeerId,
    payload: AdPayload,
    delivery: u64,
    fwd: Forwarding,
    branch: u32,
) {
    match fwd {
        Forwarding::Direct => {}
        Forwarding::Flood { ttl } => {
            if ttl > 1 {
                fan_to_all(
                    ctx,
                    node,
                    Some(came_from),
                    payload,
                    delivery,
                    Forwarding::Flood { ttl: ttl - 1 },
                );
            }
        }
        Forwarding::Walk { budget } => {
            if budget > 0 {
                walk_step(ctx, node, Some(came_from), payload, delivery, budget);
            }
        }
        Forwarding::Gsa { budget } => {
            gsa_disperse(ctx, node, Some(came_from), payload, delivery, budget, branch);
        }
    }
}

fn send_ad<C: Transport<Msg = AsapMsg>>(
    ctx: &mut C,
    from: PeerId,
    to: PeerId,
    payload: AdPayload,
    delivery: u64,
    fwd: Forwarding,
) {
    let class = ad_class(&payload);
    let bytes = payload.encoded_size();
    ctx.send(
        from,
        to,
        class,
        bytes,
        AsapMsg::Ad {
            payload,
            fwd,
            delivery,
        },
    );
}

fn fan_to_all<C: Transport<Msg = AsapMsg>>(
    ctx: &mut C,
    node: PeerId,
    exclude: Option<PeerId>,
    payload: AdPayload,
    delivery: u64,
    fwd: Forwarding,
) {
    // Index loop re-borrowing the neighbor slice each iteration: sends only
    // enqueue events, the overlay cannot change mid-event, so no target list
    // needs materializing.
    let mut i = 0;
    loop {
        let nbrs = ctx.neighbors(node);
        if i >= nbrs.len() {
            break;
        }
        let t = nbrs[i];
        i += 1;
        if Some(t) != exclude {
            send_ad(ctx, node, t, payload.clone(), delivery, fwd);
        }
    }
}

/// One walker hop: uniform random neighbor avoiding immediate backtrack.
/// The hop itself costs one unit of budget.
fn walk_step<C: Transport<Msg = AsapMsg>>(
    ctx: &mut C,
    node: PeerId,
    came_from: Option<PeerId>,
    payload: AdPayload,
    delivery: u64,
    budget: u32,
) {
    let degree = ctx.neighbors(node).len();
    if degree == 0 {
        return;
    }
    let next = if degree == 1 {
        ctx.neighbors(node)[0]
    } else {
        loop {
            let i = ctx.rng().gen_range(0..degree);
            let cand = ctx.neighbors(node)[i];
            if Some(cand) != came_from {
                break cand;
            }
        }
    };
    send_ad(
        ctx,
        node,
        next,
        payload,
        delivery,
        Forwarding::Walk { budget: budget - 1 },
    );
}

/// GSA-style dispersal: fan to up to `branch` random neighbors while the
/// budget is plentiful, degenerate to a walk once it is not.
fn gsa_disperse<C: Transport<Msg = AsapMsg>>(
    ctx: &mut C,
    node: PeerId,
    exclude: Option<PeerId>,
    payload: AdPayload,
    delivery: u64,
    budget: u32,
    branch: u32,
) {
    if budget == 0 {
        return;
    }
    // Candidate staging uses the engine's scratch buffer — zero allocation
    // once its capacity has grown to the overlay's max degree; the guard
    // hands the buffer back when it drops, early return included.
    let mut nbrs = ctx.scratch();
    nbrs.extend(
        ctx.neighbors(node)
            .iter()
            .copied()
            .filter(|&n| Some(n) != exclude),
    );
    if nbrs.is_empty() {
        nbrs.extend_from_slice(ctx.neighbors(node));
        if nbrs.is_empty() {
            return;
        }
    }
    let fan = if budget < 2 * branch {
        1
    } else {
        (branch as usize).min(nbrs.len())
    };
    // Deterministic partial shuffle.
    for i in 0..fan {
        let j = ctx.rng().gen_range(i..nbrs.len());
        nbrs.swap(i, j);
    }
    nbrs.truncate(fan);
    let fan = nbrs.len() as u32;
    let remaining = budget - fan;
    let share = remaining / fan;
    let mut extra = remaining % fan;
    for &n in nbrs.iter() {
        let b = share + u32::from(extra > 0);
        extra = extra.saturating_sub(1);
        send_ad(ctx, node, n, payload.clone(), delivery, Forwarding::Gsa { budget: b });
    }
}
