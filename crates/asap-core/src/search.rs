//! The ASAP search path (paper Table I / §III-C).
//!
//! 1. **Local lookup**: scan the ads cache for filters containing every
//!    query term; send a content *confirmation* to each matching source
//!    (bounded fan-out). One positive reply completes the search in one hop.
//! 2. **Fallback**: if the lookup found nothing — or every confirmation came
//!    back negative / timed out (source offline, Bloom false positive,
//!    cross-document term split) — request ads from neighbors within `h`
//!    hops, merge the replies, and confirm any new matches.
//!
//! The same ads-request mechanism warms the cache of a (re)joining node.

use crate::ad::{AdSnapshot, AsapMsg};
use crate::protocol::{Asap, TAG_QUERY_BASE};
use crate::retry::Backoff;
use asap_bloom::hashing::KeyHash;
use asap_metrics::{MsgClass, RetryStat};
use asap_overlay::PeerId;
use asap_sim::collections::DetHashSet;
use asap_sim::{ads_reply_size, ads_request_size, confirm_reply_size, confirm_size, Transport};
use asap_workload::{InterestSet, KeywordId, QuerySpec};
use std::rc::Rc;

/// Search phase of a pending query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Waiting for confirmations from the initial local lookup.
    Confirming,
    /// Ads-request round issued; waiting for replies/confirmations.
    Fallback,
}

/// Requester-side state of an active search.
pub(crate) struct PendingSearch {
    pub requester: PeerId,
    pub terms: Rc<[KeywordId]>,
    pub term_hashes: Vec<KeyHash>,
    pub answered: bool,
    pub phase: Phase,
    /// Sources with an unacknowledged confirmation in flight (one entry per
    /// source; a duplicated reply finds its source absent and is suppressed
    /// instead of corrupting the round accounting).
    pub in_flight: Vec<PeerId>,
    /// Sources already confirmed this search (no duplicates).
    pub confirmed: DetHashSet<PeerId>,
    /// Matching candidates not yet confirmed (next batches; the paper
    /// confirms every matching ad, we pace them in fan-out-sized rounds).
    pub backlog: Vec<PeerId>,
    /// Confirm-retransmission budget (inert unless
    /// `config.robustness.confirm_retries > 0`).
    pub backoff: Backoff,
}

fn timeout_tag(query: u32, phase: Phase) -> u64 {
    TAG_QUERY_BASE + u64::from(query) * 2 + u64::from(phase == Phase::Fallback)
}

/// Entry point: a query was issued at its requester.
pub(crate) fn start_query<C: Transport<Msg = AsapMsg>>(asap: &mut Asap, ctx: &mut C, q: &QuerySpec) {
    let terms: Rc<[KeywordId]> = q.terms.clone().into();
    let term_hashes: Vec<KeyHash> = q.terms.iter().map(|&k| asap.hash_of(k)).collect();

    let expire = asap.expire_before(ctx.now_us());
    let candidates = asap.nodes[q.requester.index()]
        .repo
        .lookup(&term_hashes, ctx.now_us(), expire);

    let mut pending = PendingSearch {
        requester: q.requester,
        terms,
        term_hashes,
        answered: false,
        phase: Phase::Confirming,
        in_flight: Vec::new(),
        confirmed: DetHashSet::default(),
        backlog: Vec::new(),
        backoff: asap
            .config
            .robustness
            .confirm_backoff(asap.config.confirm_timeout_us),
    };

    if candidates.is_empty() {
        asap.pending.insert(q.id, pending);
        begin_fallback(asap, ctx, q.id);
        return;
    }

    asap.stats.local_lookup_hits += 1;
    let id = q.id;
    let node = q.requester;
    let hits = candidates.len() as u32;
    ctx.trace(|| asap_sim::trace::Event::QueryLocalHits { id, node, hits });
    send_confirms(asap, ctx, &mut pending, q.id, &candidates);
    asap.pending.insert(q.id, pending);
    ctx.set_timer(
        q.requester,
        asap.config.confirm_timeout_us,
        timeout_tag(q.id, Phase::Confirming),
    );
}

/// Confirm up to `max_confirm_fanout` fresh candidates; the rest queue on
/// the backlog for the next round. Returns how many confirmations went out.
fn send_confirms<C: Transport<Msg = AsapMsg>>(
    asap: &mut Asap,
    ctx: &mut C,
    pending: &mut PendingSearch,
    query: u32,
    candidates: &[PeerId],
) -> usize {
    let mut sent = 0;
    for &source in candidates {
        if sent >= asap.config.max_confirm_fanout {
            if source != pending.requester && !pending.confirmed.contains(&source) {
                pending.backlog.push(source);
            }
            continue;
        }
        if source == pending.requester || !pending.confirmed.insert(source) {
            continue;
        }
        asap.stats.confirms_sent += 1;
        ctx.send(
            pending.requester,
            source,
            MsgClass::Confirm,
            confirm_size(pending.terms.len()),
            AsapMsg::Confirm {
                query,
                requester: pending.requester,
                terms: Rc::clone(&pending.terms),
            },
        );
        pending.in_flight.push(source);
        sent += 1;
    }
    if sent > 0 {
        let node = pending.requester;
        let targets = sent as u32;
        ctx.trace(|| asap_sim::trace::Event::ConfirmSent {
            id: query,
            node,
            targets,
        });
    }
    sent
}

/// Issue the neighbor ads-request round for `node`. Returns requests sent.
pub(crate) fn send_ads_request<C: Transport<Msg = AsapMsg>>(
    asap: &mut Asap,
    ctx: &mut C,
    node: PeerId,
    query: Option<u32>,
    terms: Option<Rc<[KeywordId]>>,
) -> usize {
    let interests = ctx.model().interests[node.index()];
    let hops = asap.config.ads_request_hops;
    let targets: Vec<PeerId> = ctx.neighbors(node).to_vec();
    let bytes = ads_request_size(interests.len())
        + terms.as_ref().map_or(0, |t| t.len() * asap_sim::KEYWORD_WIRE_BYTES);
    for &t in &targets {
        ctx.send(
            node,
            t,
            MsgClass::AdsRequest,
            bytes,
            AsapMsg::AdsRequest {
                requester: node,
                interests,
                hops,
                query,
                terms: terms.clone(),
            },
        );
    }
    targets.len()
}

/// Move a pending search into the fallback round.
fn begin_fallback<C: Transport<Msg = AsapMsg>>(asap: &mut Asap, ctx: &mut C, query: u32) {
    let Some(p) = asap.pending.get_mut(&query) else {
        return;
    };
    let requester = p.requester;
    let terms = Rc::clone(&p.terms);
    p.phase = Phase::Fallback;
    asap.stats.fallback_rounds += 1;
    ctx.trace(|| asap_sim::trace::Event::QueryFallback {
        id: query,
        node: requester,
    });
    let sent = send_ads_request(asap, ctx, requester, Some(query), Some(terms));
    if sent == 0 {
        // Isolated node: nothing more to try.
        close_search(asap, ctx, query);
        return;
    }
    ctx.set_timer(
        requester,
        asap.config.confirm_timeout_us,
        timeout_tag(query, Phase::Fallback),
    );
}

/// A neighbor asked for interesting ads.
#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_ads_request<C: Transport<Msg = AsapMsg>>(
    asap: &mut Asap,
    ctx: &mut C,
    node: PeerId,
    from: PeerId,
    requester: PeerId,
    interests: InterestSet,
    hops: u8,
    query: Option<u32>,
    terms: Option<Rc<[KeywordId]>>,
) {
    if node != requester {
        let now = ctx.now_us();
        let expire = asap.expire_before(now);
        let hashes: Option<Vec<KeyHash>> = terms
            .as_ref()
            .map(|t| t.iter().map(|&k| asap.hash_of(k)).collect());
        // A query-driven reply only needs to name a confirm-round's worth of
        // candidates (each ≈ a full filter!); join warm-ups ship the larger
        // interest-filtered batch. `max_ads_per_reply = 0` mutes replies
        // entirely (the no-fallback ablation).
        let query_cap = asap.config.max_confirm_fanout.min(asap.config.max_ads_per_reply);
        let warmup_cap = asap.config.max_ads_per_reply;
        let repo = &mut asap.nodes[node.index()].repo;
        let ads = match &hashes {
            Some(hashes) => repo.snapshots_matching(hashes, now, expire, query_cap),
            None => repo.ads_for_interests(interests, warmup_cap),
        };
        let ads: Vec<AdSnapshot> = ads.into_iter().filter(|a| a.source != requester).collect();
        if !ads.is_empty() {
            let payload: usize = ads.iter().map(AdSnapshot::encoded_size).sum();
            ctx.send(
                node,
                requester,
                MsgClass::AdsReply,
                ads_reply_size(payload),
                AsapMsg::AdsReply { ads, query },
            );
        }
    }
    // Propagate within the h-hop scope.
    if hops > 1 {
        let targets: Vec<PeerId> = ctx
            .neighbors(node)
            .iter()
            .copied()
            .filter(|&n| n != from && n != requester)
            .collect();
        let bytes = ads_request_size(interests.len());
        for t in targets {
            ctx.send(
                node,
                t,
                MsgClass::AdsRequest,
                bytes,
                AsapMsg::AdsRequest {
                    requester,
                    interests,
                    hops: hops - 1,
                    query,
                    terms: terms.clone(),
                },
            );
        }
    }
}

/// Requester received a batch of cached ads.
pub(crate) fn handle_ads_reply<C: Transport<Msg = AsapMsg>>(
    asap: &mut Asap,
    ctx: &mut C,
    node: PeerId,
    ads: Vec<AdSnapshot>,
    query: Option<u32>,
) {
    let now = ctx.now_us();
    {
        let st = &mut asap.nodes[node.index()];
        for snap in &ads {
            if snap.source != node {
                st.repo.insert_full(snap, now);
            }
        }
    }
    // "After this, the search is repeated by looking up the replied ads for
    // more possible hits."
    let Some(qid) = query else {
        return;
    };
    // Take the search out of the table while we work on it; every path
    // below that keeps it alive puts it back.
    let Some(mut p) = asap.pending.remove(&qid) else {
        return;
    };
    if p.answered || p.requester != node {
        asap.pending.insert(qid, p);
        return;
    }
    let expire = asap.expire_before(now);
    let candidates = asap.nodes[node.index()].repo.lookup(&p.term_hashes, now, expire);
    send_confirms(asap, ctx, &mut p, qid, &candidates);
    asap.pending.insert(qid, p);
}

/// An ad's source checks its **actual** content ("node p needs to send the
/// request to node q for content confirmation").
pub(crate) fn handle_confirm<C: Transport<Msg = AsapMsg>>(
    asap: &mut Asap,
    ctx: &mut C,
    node: PeerId,
    requester: PeerId,
    query: u32,
    terms: &Rc<[KeywordId]>,
) {
    let _ = asap;
    let results = ctx.content().matching_docs(ctx.model(), node, terms).count() as u32;
    ctx.send(
        node,
        requester,
        MsgClass::ConfirmReply,
        confirm_reply_size(results as usize),
        AsapMsg::ConfirmReply { query, results },
    );
}

/// Requester received a confirmation verdict.
pub(crate) fn handle_confirm_reply<C: Transport<Msg = AsapMsg>>(
    asap: &mut Asap,
    ctx: &mut C,
    node: PeerId,
    from: PeerId,
    query: u32,
    results: u32,
) {
    ctx.trace(|| asap_sim::trace::Event::ConfirmResult {
        id: query,
        node,
        positive: results > 0,
    });
    if results > 0 {
        asap.stats.confirms_positive += 1;
        ctx.report_answer(query);
    } else {
        // Confirmation failure: the advertised content isn't actually there
        // (content churn, a Bloom false positive — or a poisoned spam ad).
        asap.stats.confirms_negative += 1;
    }
    let Some(mut p) = asap.pending.remove(&query) else {
        return; // late reply after the search closed — still counted above
    };
    if p.requester != node {
        asap.pending.insert(query, p);
        return;
    }
    if results > 0 {
        p.answered = true;
    }
    match p.in_flight.iter().position(|&s| s == from) {
        Some(i) => {
            p.in_flight.remove(i);
        }
        None => {
            // A fault-layer duplicate or a retransmit's second answer: this
            // source is already acknowledged, don't unbalance the round.
            ctx.count(RetryStat::DuplicatesSuppressed);
        }
    }
    let round_exhausted = p.in_flight.is_empty() && !p.answered;
    if !round_exhausted || p.backlog.is_empty() {
        // Every local candidate was a false positive or lost its content:
        // fall back without waiting for the timer.
        let fall_back = round_exhausted && p.phase == Phase::Confirming;
        asap.pending.insert(query, p);
        if fall_back {
            begin_fallback(asap, ctx, query);
        }
        return;
    }
    // Confirm the next batch of local candidates before falling back.
    let batch = std::mem::take(&mut p.backlog);
    let sent = send_confirms(asap, ctx, &mut p, query, &batch);
    let done = sent == 0;
    let phase = p.phase;
    asap.pending.insert(query, p);
    if done && phase == Phase::Confirming {
        begin_fallback(asap, ctx, query);
    }
}

/// A query timer fired at the requester.
pub(crate) fn handle_timeout<C: Transport<Msg = AsapMsg>>(asap: &mut Asap, ctx: &mut C, node: PeerId, tag: u64) {
    debug_assert!(tag >= TAG_QUERY_BASE);
    let rel = tag - TAG_QUERY_BASE;
    let query = (rel / 2) as u32;
    let fallback_phase = rel % 2 == 1;
    let Some(p) = asap.pending.get(&query) else {
        return;
    };
    if p.requester != node {
        return;
    }
    if fallback_phase || p.answered {
        // The round ran its course; the search is over either way (answers,
        // if any, are already in the ledger).
        close_search(asap, ctx, query);
    } else if p.phase == Phase::Confirming {
        // Confirmations went unanswered. With a retry budget, retransmit the
        // confirm to every unacknowledged source before giving up on them
        // (the inert default yields no budget and falls back immediately,
        // preserving the paper's behavior and the fault-free digests).
        let Some(mut p) = asap.pending.remove(&query) else {
            return;
        };
        if !p.in_flight.is_empty() {
            if let Some(delay) = p.backoff.next() {
                for &source in &p.in_flight {
                    asap.stats.confirms_sent += 1;
                    ctx.count(RetryStat::Retries);
                    ctx.send(
                        p.requester,
                        source,
                        MsgClass::Confirm,
                        confirm_size(p.terms.len()),
                        AsapMsg::Confirm {
                            query,
                            requester: p.requester,
                            terms: Rc::clone(&p.terms),
                        },
                    );
                }
                ctx.set_timer(p.requester, delay, timeout_tag(query, Phase::Confirming));
                asap.pending.insert(query, p);
                return;
            }
        }
        asap.pending.insert(query, p);
        begin_fallback(asap, ctx, query);
    }
}

/// Close a search: drop its state and account every confirmation still in
/// flight as lost (its reply never arrived while the search was open —
/// a dead source fault-free, possibly a dropped message under faults).
fn close_search<C: Transport<Msg = AsapMsg>>(asap: &mut Asap, ctx: &mut C, query: u32) {
    if let Some(p) = asap.pending.remove(&query) {
        for _ in &p.in_flight {
            ctx.count(RetryStat::ConfirmationsLost);
        }
    }
}
