//! ASAP protocol parameters.

use crate::retry::RobustnessConfig;
use asap_bloom::BloomParams;

/// How ads are forwarded through the overlay (paper §IV-A: "By adopting
/// different ad forwarding algorithms … we develop and examine three ASAP
/// schemes: ASAP(FLD), ASAP(RW) and ASAP(GSA)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryKind {
    /// Flood ads with a hop limit ("Ad flooding in ASAP(FLD) also sets TTL
    /// equal to 6").
    Flooding { ttl: u8 },
    /// Random-walk delivery ("5 walkers are used in ASAP(RW)"); the total
    /// budget is split evenly among the walkers.
    RandomWalk { walkers: u32 },
    /// GSA-style budgeted dispersal.
    Gsa { branch: u32 },
}

impl DeliveryKind {
    pub fn label(self) -> &'static str {
        match self {
            Self::Flooding { .. } => "FLD",
            Self::RandomWalk { .. } => "RW",
            Self::Gsa { .. } => "GSA",
        }
    }
}

/// Full parameter set for an ASAP deployment.
#[derive(Debug, Clone)]
pub struct AsapConfig {
    /// Ad forwarding scheme.
    pub delivery: DeliveryKind,
    /// Budget unit `M₀` for RW/GSA deliveries: one delivery may spend
    /// `topics × M₀` messages (paper: 3,000). Ignored by flooding.
    pub budget_unit: u32,
    /// Bloom-filter geometry shared by every node.
    pub bloom: BloomParams,
    /// Ad-cache capacity (entries) per node.
    pub cache_capacity: usize,
    /// Period of refresh-ad deliveries, µs.
    pub refresh_interval_us: u64,
    /// Cached ads older than this many refresh periods (without any update)
    /// are treated as dead and skipped by lookups.
    pub expiry_periods: u32,
    /// Hop distance `h` of the ads-request fallback (paper: "we limit the
    /// ads request scope by setting the distance h to a small value, e.g.,
    /// 1 by default").
    pub ads_request_hops: u8,
    /// Most cached ads shipped in one ads reply.
    pub max_ads_per_reply: usize,
    /// Most confirmations sent per lookup round.
    pub max_confirm_fanout: usize,
    /// How long the requester waits for confirmations before falling back
    /// to the ads-request round, µs.
    pub confirm_timeout_us: u64,
    /// Window over which initial ad deliveries are staggered at start-up, µs.
    pub warmup_stagger_us: u64,
    /// Fraction of the delivery budget spent by *periodic* refresh
    /// announcements (the initial/join waves use the full budget). Periodic
    /// beacons only need to keep entries fresh and let stragglers discover
    /// sources over several rounds, so a fraction suffices and keeps the
    /// steady-state ad load low.
    pub refresh_budget_factor: f64,
    /// Duplicate-suppression window for flooded ads (deliveries).
    pub seen_window: usize,
    /// Retry/backoff budgets for lossy networks. The default is inert —
    /// no retries, no extra timers — so the paper's behavior (and the
    /// fault-free golden digests) is unchanged unless explicitly enabled.
    pub robustness: RobustnessConfig,
}

impl AsapConfig {
    /// The paper's configuration for a given delivery scheme at full scale.
    pub fn paper_default(delivery: DeliveryKind) -> Self {
        Self {
            delivery,
            budget_unit: 3_000,
            bloom: BloomParams::paper_default(),
            cache_capacity: 4_096,
            refresh_interval_us: 300_000_000, // 5 min
            expiry_periods: 8,
            ads_request_hops: 1,
            max_ads_per_reply: 64,
            max_confirm_fanout: 8,
            confirm_timeout_us: 2_000_000,
            warmup_stagger_us: 60_000_000,
            refresh_budget_factor: 1.0,
            seen_window: 1_024,
            robustness: RobustnessConfig::default(),
        }
    }

    /// Enable the given retry/backoff budgets (builder-style).
    pub fn with_robustness(mut self, robustness: RobustnessConfig) -> Self {
        self.robustness = robustness;
        self
    }

    /// The paper's three variants with their published knobs.
    pub fn fld() -> Self {
        Self::paper_default(DeliveryKind::Flooding { ttl: 6 })
    }

    pub fn rw() -> Self {
        Self::paper_default(DeliveryKind::RandomWalk { walkers: 5 })
    }

    pub fn gsa() -> Self {
        Self::paper_default(DeliveryKind::Gsa { branch: 4 })
    }

    /// Scale population-proportional knobs for a reduced experiment of
    /// `peers` peers (the paper's values assume 10,000): the delivery budget
    /// unit and cache capacity shrink proportionally, time constants stay.
    /// The proportional value is rounded (not truncated) before the floor,
    /// matching the scale table in EXPERIMENTS.md.
    pub fn scaled_to(mut self, peers: usize) -> Self {
        let ratio = peers as f64 / 10_000.0;
        if ratio < 1.0 {
            self.budget_unit = ((self.budget_unit as f64 * ratio).round() as u32).max(16);
            self.cache_capacity = ((self.cache_capacity as f64 * ratio).round() as usize).max(64);
        }
        self
    }

    pub fn validate(&self) {
        assert!(self.budget_unit >= 1, "budget unit must be positive");
        assert!(self.cache_capacity >= 1, "cache capacity must be positive");
        assert!(self.refresh_interval_us > 0, "refresh interval must be positive");
        assert!(self.expiry_periods >= 1, "expiry periods must be positive");
        assert!(self.max_confirm_fanout >= 1, "confirm fanout must be positive");
        assert!(
            self.refresh_budget_factor > 0.0 && self.refresh_budget_factor <= 1.0,
            "refresh budget factor must be in (0, 1]"
        );
        self.robustness.validate();
        match self.delivery {
            DeliveryKind::Flooding { ttl } => assert!(ttl >= 1, "flooding TTL must be positive"),
            DeliveryKind::RandomWalk { walkers } => {
                assert!(walkers >= 1, "need at least one walker")
            }
            DeliveryKind::Gsa { branch } => assert!(branch >= 1, "branch must be positive"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_variants_validate() {
        AsapConfig::fld().validate();
        AsapConfig::rw().validate();
        AsapConfig::gsa().validate();
    }

    #[test]
    fn labels() {
        assert_eq!(AsapConfig::fld().delivery.label(), "FLD");
        assert_eq!(AsapConfig::rw().delivery.label(), "RW");
        assert_eq!(AsapConfig::gsa().delivery.label(), "GSA");
    }

    #[test]
    fn scaling_shrinks_budget_proportionally() {
        let c = AsapConfig::rw().scaled_to(1_000);
        assert_eq!(c.budget_unit, 300);
        assert!(c.cache_capacity >= 64);
        // Scaling up never inflates beyond the paper's values.
        let up = AsapConfig::rw().scaled_to(50_000);
        assert_eq!(up.budget_unit, 3_000);
    }

    #[test]
    fn scaling_clamps_tiny_networks() {
        let c = AsapConfig::rw().scaled_to(10);
        c.validate();
        assert!(c.budget_unit >= 16);
        assert!(c.cache_capacity >= 64);
    }

    #[test]
    #[should_panic(expected = "TTL")]
    fn zero_ttl_rejected() {
        let mut c = AsapConfig::fld();
        c.delivery = DeliveryKind::Flooding { ttl: 0 };
        c.validate();
    }
}
