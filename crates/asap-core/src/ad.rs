//! Ad representation and the ASAP wire messages.
//!
//! An ad is the tuple `(I, C, T, v)` — source identity, content information,
//! topics, version (paper §III-B). Three content-information shapes exist:
//! *full* (the whole Bloom filter), *patch* (changed bit positions since the
//! previous version) and *refresh* (empty).
//!
//! Filters are reference-counted: a given `(source, version)` filter is
//! bit-identical at every cacher, so sharing one allocation is a pure
//! simulator memory optimization — wire sizes are still charged per message
//! from the real encodings.

use asap_bloom::{BloomFilter, FilterPatch, WireFilter};
use asap_overlay::PeerId;
use asap_sim::{HEADER_BYTES, TOPIC_WIRE_BYTES, VERSION_WIRE_BYTES};
use asap_workload::{InterestSet, KeywordId};
use std::rc::Rc;

/// A cached-ad snapshot: everything a remote peer keeps about a source.
#[derive(Debug, Clone)]
pub struct AdSnapshot {
    pub source: PeerId,
    pub topics: InterestSet,
    pub version: u16,
    pub filter: Rc<BloomFilter>,
}

impl AdSnapshot {
    /// Wire size of this snapshot inside a full ad or ads reply.
    pub fn encoded_size(&self) -> usize {
        WireFilter::size_of(&self.filter)
            + self.topics.len() * TOPIC_WIRE_BYTES
            + VERSION_WIRE_BYTES
            + 4 // source identity
    }
}

/// Content information of an ad in flight.
#[derive(Debug, Clone)]
pub enum AdPayload {
    /// Complete content filter.
    Full(AdSnapshot),
    /// Incremental changes from `version - 1` to `version`.
    Patch {
        source: PeerId,
        topics: InterestSet,
        version: u16,
        patch: Rc<FilterPatch>,
        /// The resulting filter at `version` (shared allocation; see module
        /// docs — cachers that apply the patch land exactly here).
        result: Rc<BloomFilter>,
    },
    /// Liveness beacon: no content information.
    Refresh {
        source: PeerId,
        topics: InterestSet,
        version: u16,
    },
}

impl AdPayload {
    pub fn source(&self) -> PeerId {
        match self {
            Self::Full(s) => s.source,
            Self::Patch { source, .. } | Self::Refresh { source, .. } => *source,
        }
    }

    pub fn topics(&self) -> InterestSet {
        match self {
            Self::Full(s) => s.topics,
            Self::Patch { topics, .. } | Self::Refresh { topics, .. } => *topics,
        }
    }

    pub fn version(&self) -> u16 {
        match self {
            Self::Full(s) => s.version,
            Self::Patch { version, .. } | Self::Refresh { version, .. } => *version,
        }
    }

    /// Bytes of one transmission of this ad.
    pub fn encoded_size(&self) -> usize {
        HEADER_BYTES
            + match self {
                Self::Full(s) => s.encoded_size(),
                Self::Patch { topics, patch, .. } => {
                    patch.encoded_size() + topics.len() * TOPIC_WIRE_BYTES + VERSION_WIRE_BYTES + 4
                }
                Self::Refresh { topics, .. } => {
                    topics.len() * TOPIC_WIRE_BYTES + VERSION_WIRE_BYTES + 4
                }
            }
    }
}

/// How an ad message continues through the overlay after this hop.
#[derive(Debug, Clone, Copy)]
pub enum Forwarding {
    /// Point-to-point (confirmations, repairs, ads replies).
    Direct,
    /// Flood with remaining TTL.
    Flood { ttl: u8 },
    /// Random walker with remaining message budget.
    Walk { budget: u32 },
    /// GSA dispersal with remaining message budget.
    Gsa { budget: u32 },
}

/// ASAP wire message.
#[derive(Debug, Clone)]
pub enum AsapMsg {
    /// An ad being disseminated. `delivery` uniquely identifies one
    /// dissemination wave (duplicate suppression for flooded ads).
    Ad {
        payload: AdPayload,
        fwd: Forwarding,
        delivery: u64,
    },
    /// Direct request for a full ad (version-gap repair / refresh miss).
    FullAdFetch,
    /// Ads request to neighbors within `hops` (paper Table I:
    /// `requestAdFromNeighbors(i, h, I(p))`). `query` is the search this
    /// round serves, or `None` for a join-time cache warm-up.
    AdsRequest {
        requester: PeerId,
        interests: InterestSet,
        hops: u8,
        query: Option<u32>,
        /// For a query-driven round, the live search terms: neighbors then
        /// reply only with cached ads that can actually serve the query,
        /// which keeps the reply orders of magnitude smaller than shipping
        /// every interest-overlapping ad. Join-time warm-ups pass `None`
        /// and get the interest-filtered batch.
        terms: Option<Rc<[KeywordId]>>,
    },
    /// Cached ads whose topics overlap the requester's interests.
    AdsReply {
        ads: Vec<AdSnapshot>,
        query: Option<u32>,
    },
    /// Content confirmation sent to a matching ad's source.
    Confirm {
        query: u32,
        requester: PeerId,
        terms: Rc<[KeywordId]>,
    },
    /// Source's verdict after checking its actual content.
    ConfirmReply { query: u32, results: u32 },
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_bloom::BloomParams;

    fn snapshot(keys: &[&str]) -> AdSnapshot {
        let params = BloomParams::paper_default();
        AdSnapshot {
            source: PeerId(7),
            topics: InterestSet(0b101),
            version: 3,
            filter: Rc::new(BloomFilter::from_keys(params, keys.iter().copied())),
        }
    }

    #[test]
    fn refresh_is_tiny_full_is_big() {
        let full = AdPayload::Full(snapshot(&["a", "b", "c", "d", "e"]));
        let refresh = AdPayload::Refresh {
            source: PeerId(7),
            topics: InterestSet(0b101),
            version: 3,
        };
        assert!(refresh.encoded_size() < 40);
        assert!(full.encoded_size() > refresh.encoded_size());
    }

    #[test]
    fn patch_size_tracks_changed_bits() {
        let params = BloomParams::paper_default();
        let old = BloomFilter::from_keys(params, ["a", "b"]);
        let new = BloomFilter::from_keys(params, ["a", "b", "c"]);
        let patch = FilterPatch::diff(&old, &new);
        let p = AdPayload::Patch {
            source: PeerId(1),
            topics: InterestSet(0b1),
            version: 2,
            patch: Rc::new(patch.clone()),
            result: Rc::new(new),
        };
        assert!(p.encoded_size() >= HEADER_BYTES + patch.encoded_size());
        // One keyword changes at most `k` bits ⇒ small patch.
        assert!(p.encoded_size() < HEADER_BYTES + 4 + 2 * 8 + 16);
    }

    #[test]
    fn payload_accessors() {
        let s = snapshot(&["x"]);
        let p = AdPayload::Full(s.clone());
        assert_eq!(p.source(), PeerId(7));
        assert_eq!(p.version(), 3);
        assert_eq!(p.topics(), InterestSet(0b101));
    }

    #[test]
    fn full_ad_of_paper_sized_peer_is_about_kilobytes() {
        // ~1,000 distinct keywords ⇒ the full filter dominates at ~1.4 KB.
        let keys: Vec<String> = (0..1_000).map(|i| format!("kw{i}")).collect();
        let params = BloomParams::paper_default();
        let snap = AdSnapshot {
            source: PeerId(1),
            topics: InterestSet(0b11),
            version: 1,
            filter: Rc::new(BloomFilter::from_keys(
                params,
                keys.iter().map(String::as_str),
            )),
        };
        let size = AdPayload::Full(snap).encoded_size();
        assert!(size > 1_000 && size < 1_600, "{size}");
    }
}
