//! **ASAP** — the Advertisement-based Search Algorithm for unstructured P2P
//! systems (the paper's contribution, §III).
//!
//! Instead of pulling content locations with query floods, every node
//! *pushes* a synopsis of its shared content — an **ad** `(I, C, T, v)`:
//! identity, a Bloom-filter content summary, topic set and version — to
//! potentially interested peers, which selectively cache ads whose topics
//! overlap their interests. A search then runs **locally**: the requester
//! scans its ad cache for filters containing every query term and sends a
//! one-hop *content confirmation* to each matching ad's source. If the local
//! lookup comes up dry (or confirmations fail), the node requests ads from
//! neighbors within `h` hops (default 1) and retries — the same process a
//! freshly joined node uses to warm its cache.
//!
//! Three ad-forwarding schemes mirror the paper's variants:
//! ASAP(FLD) floods ads with TTL 6; ASAP(RW) uses 5 walkers and ASAP(GSA)
//! budgeted dispersal, both with a total per-delivery budget of
//! `topics × M₀` (`M₀ = 3,000`).
//!
//! Full ads carry the whole filter; **patch ads** carry changed bit
//! positions (issued on content change, consistent via the version number);
//! **refresh ads** carry no content and keep cached entries alive. A cacher
//! that detects a version gap repairs it with a direct full-ad fetch from
//! the source.

pub mod ad;
pub mod checkpoint;
pub mod config;
pub mod delivery;
pub mod protocol;
pub mod repository;
pub mod retry;
pub mod search;
pub mod superpeer;

pub use ad::{AdPayload, AdSnapshot, AsapMsg, Forwarding};
pub use config::{AsapConfig, DeliveryKind};
pub use protocol::Asap;
pub use retry::{Backoff, RobustnessConfig};
pub use repository::AdRepository;
pub use superpeer::{SuperAsap, SuperPeerConfig};
