//! Backend-independent lifecycle digests: the sim≡net equivalence check.
//!
//! A [`LifecycleDigest`] folds the message/query/ad **lifecycle** subset of
//! the trace stream — sends, deliveries, query progress, ad publications,
//! churn, content changes — into one order-independent 64-bit value. Two
//! properties make it the right equality witness between the deterministic
//! sim engine and `asap-net`'s loopback runtime:
//!
//! * **Timestamp-free.** Per-event hashes cover the event's fields, never
//!   `now_us`: the net backend's wall-clock→virtual mapping may stamp the
//!   same event a little differently without breaking equality. (The
//!   deterministic loopback harness reproduces virtual time exactly too,
//!   but the digest does not depend on that.)
//! * **Commutative.** Per-event FNV-1a hashes combine by `wrapping_add`,
//!   so the digest is a multiset fingerprint: events that are *scheduled*
//!   identically but *observed* in a different interleaving (same virtual
//!   instant, different dispatch order) still agree.
//!
//! Scheduling-internal events — timer arms/fires/cancels, fault and
//! adversary verdicts, robustness counters — are deliberately excluded:
//! they describe *how* a backend runs, not *what* the protocol did.

use crate::event::Event;
use crate::sink::TraceSink;
use std::any::Any;

/// Which runtime produced a trace stream. Tags digests (and any derived
/// artifacts) so a sim digest is never silently compared against the wrong
/// backend's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The deterministic discrete-event engine (`asap-sim`).
    Sim,
    /// The wire-crossing runtime (`asap-net` loopback or daemon).
    Net,
}

impl Backend {
    /// Stable lower-case label (report and golden-file key).
    pub fn label(&self) -> &'static str {
        match self {
            Self::Sim => "sim",
            Self::Net => "net",
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a over one event's canonical field encoding.
struct EventHasher(u64);

impl EventHasher {
    fn new(kind: u64) -> Self {
        let mut h = Self(FNV_OFFSET);
        h.word(kind);
        h
    }

    fn word(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Per-event lifecycle hash; `None` for scheduling-internal events the
/// digest ignores. The leading kind word keeps same-field events of
/// different kinds distinct; field order is fixed and part of the format.
fn lifecycle_hash(ev: &Event) -> Option<u64> {
    let mut h;
    match *ev {
        Event::Send {
            from,
            to,
            class,
            bytes,
            delay_us,
        } => {
            h = EventHasher::new(1);
            h.word(from.0 as u64);
            h.word(to.0 as u64);
            h.word(class as u64);
            h.word(bytes as u64);
            h.word(delay_us);
        }
        Event::Deliver {
            to,
            from,
            delivered,
            dup,
        } => {
            h = EventHasher::new(2);
            h.word(to.0 as u64);
            h.word(from.0 as u64);
            h.word(delivered as u64);
            h.word(dup as u64);
        }
        Event::QueryIssued { id, requester } => {
            h = EventHasher::new(3);
            h.word(id as u64);
            h.word(requester.0 as u64);
        }
        Event::QueryAnswered { id } => {
            h = EventHasher::new(4);
            h.word(id as u64);
        }
        Event::ContentChanged {
            peer,
            doc,
            added,
            applied,
        } => {
            h = EventHasher::new(5);
            h.word(peer.0 as u64);
            h.word(doc as u64);
            h.word(added as u64);
            h.word(applied as u64);
        }
        Event::Join { peer } => {
            h = EventHasher::new(6);
            h.word(peer.0 as u64);
        }
        Event::Leave { peer } => {
            h = EventHasher::new(7);
            h.word(peer.0 as u64);
        }
        Event::AdPublished { node, class } => {
            h = EventHasher::new(8);
            h.word(node.0 as u64);
            h.word(class as u64);
        }
        Event::QueryLocalHits { id, node, hits } => {
            h = EventHasher::new(9);
            h.word(id as u64);
            h.word(node.0 as u64);
            h.word(hits as u64);
        }
        Event::QueryFallback { id, node } => {
            h = EventHasher::new(10);
            h.word(id as u64);
            h.word(node.0 as u64);
        }
        Event::ConfirmSent { id, node, targets } => {
            h = EventHasher::new(11);
            h.word(id as u64);
            h.word(node.0 as u64);
            h.word(targets as u64);
        }
        Event::ConfirmResult { id, node, positive } => {
            h = EventHasher::new(12);
            h.word(id as u64);
            h.word(node.0 as u64);
            h.word(positive as u64);
        }
        Event::FloodFanout {
            id,
            node,
            ttl,
            fanout,
        } => {
            h = EventHasher::new(13);
            h.word(id as u64);
            h.word(node.0 as u64);
            h.word(ttl as u64);
            h.word(fanout as u64);
        }
        Event::WalkStep { id, node, ttl } => {
            h = EventHasher::new(14);
            h.word(id as u64);
            h.word(node.0 as u64);
            h.word(ttl as u64);
        }
        Event::GsaDisperse {
            id,
            node,
            fanout,
            budget,
        } => {
            h = EventHasher::new(15);
            h.word(id as u64);
            h.word(node.0 as u64);
            h.word(fanout as u64);
            h.word(budget as u64);
        }
        Event::TimerSet { .. }
        | Event::TimerFired { .. }
        | Event::TimerCancelled { .. }
        | Event::FaultDrop { .. }
        | Event::FaultDuplicate { .. }
        | Event::AdversaryAbsorb { .. }
        | Event::Counter { .. } => return None,
    }
    Some(h.finish())
}

/// Order-independent fingerprint of a run's lifecycle events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleDigest {
    backend: Backend,
    acc: u64,
    count: u64,
}

impl LifecycleDigest {
    pub fn new(backend: Backend) -> Self {
        Self {
            backend,
            acc: 0,
            count: 0,
        }
    }

    /// Fold one event in (no-op for non-lifecycle events).
    pub fn absorb(&mut self, ev: &Event) {
        if let Some(h) = lifecycle_hash(ev) {
            self.acc = self.acc.wrapping_add(h);
            self.count += 1;
        }
    }

    /// The digest value: a multiset fingerprint of every absorbed
    /// lifecycle event. Comparable across backends.
    pub fn value(&self) -> u64 {
        // Folding in the count distinguishes e.g. {x, x} from {2x}.
        let mut h = EventHasher::new(self.count);
        h.word(self.acc);
        h.finish()
    }

    /// How many lifecycle events were absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// `<backend>:<hex-digest>/<count>` — the golden-file line format.
    pub fn report(&self) -> String {
        format!("{}:{:016x}/{}", self.backend.label(), self.value(), self.count)
    }
}

/// A [`TraceSink`] that feeds a [`LifecycleDigest`] — attach it to either
/// backend and compare [`LifecycleDigest::value`]s afterwards.
#[derive(Debug)]
pub struct DigestSink {
    digest: LifecycleDigest,
}

impl DigestSink {
    pub fn new(backend: Backend) -> Self {
        Self {
            digest: LifecycleDigest::new(backend),
        }
    }

    pub fn digest(&self) -> LifecycleDigest {
        self.digest
    }
}

impl TraceSink for DigestSink {
    fn record(&mut self, _now_us: u64, ev: &Event) {
        self.digest.absorb(ev);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_metrics::MsgClass;
    use asap_overlay::PeerId;

    fn send(from: u32, to: u32) -> Event {
        Event::Send {
            from: PeerId(from),
            to: PeerId(to),
            class: MsgClass::Query,
            bytes: 60,
            delay_us: 4_000,
        }
    }

    #[test]
    fn order_does_not_matter() {
        let mut a = LifecycleDigest::new(Backend::Sim);
        let mut b = LifecycleDigest::new(Backend::Net);
        a.absorb(&send(1, 2));
        a.absorb(&send(3, 4));
        b.absorb(&send(3, 4));
        b.absorb(&send(1, 2));
        assert_eq!(a.value(), b.value());
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn fields_matter() {
        let mut a = LifecycleDigest::new(Backend::Sim);
        let mut b = LifecycleDigest::new(Backend::Sim);
        a.absorb(&send(1, 2));
        b.absorb(&send(2, 1));
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn scheduling_internal_events_are_ignored() {
        let mut d = LifecycleDigest::new(Backend::Sim);
        let before = d.value();
        d.absorb(&Event::TimerSet {
            node: PeerId(0),
            delay_us: 5,
            tag: 1,
        });
        d.absorb(&Event::TimerFired {
            node: PeerId(0),
            tag: 1,
            fired: true,
        });
        d.absorb(&Event::FaultDrop {
            from: PeerId(0),
            to: PeerId(1),
            partition: false,
        });
        assert_eq!(d.value(), before);
        assert_eq!(d.count(), 0);
    }

    #[test]
    fn multiset_multiplicity_matters() {
        let mut a = LifecycleDigest::new(Backend::Sim);
        let mut b = LifecycleDigest::new(Backend::Sim);
        a.absorb(&send(1, 2));
        a.absorb(&send(1, 2));
        b.absorb(&send(1, 2));
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn digest_sink_accumulates() {
        let mut sink: Box<dyn TraceSink> = Box::new(DigestSink::new(Backend::Net));
        sink.record(7, &send(1, 2));
        let sink = sink
            .into_any()
            .downcast::<DigestSink>()
            .expect("concrete sink comes back out");
        assert_eq!(sink.digest().count(), 1);
        assert_eq!(sink.digest().backend(), Backend::Net);
        assert!(sink.digest().report().starts_with("net:"));
    }
}
