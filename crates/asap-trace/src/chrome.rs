//! Chrome-trace (`chrome://tracing` / Perfetto) export.
//!
//! Pure conversion from retained [`Record`]s to the Trace Event Format JSON
//! array: every anchored event becomes an instant event on its node's lane,
//! and each query lifecycle (`query-issued` → first `query-answered`)
//! becomes a complete (`"ph":"X"`) span on the requester's lane. Output is
//! integers and fixed labels only, so it is byte-identical across replays.

use crate::event::{Event, Record};
use std::collections::BTreeMap;

/// Convert retained records into one Chrome Trace Event Format document.
pub fn to_chrome_trace(records: &[Record]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    // Query id -> (issue time, requester lane); first answer closes the span.
    let mut open_queries: BTreeMap<u32, (u64, u32)> = BTreeMap::new();

    for rec in records {
        match rec.event {
            Event::QueryIssued { id, requester } => {
                open_queries.entry(id).or_insert((rec.now_us, requester.0));
            }
            Event::QueryAnswered { id } => {
                if let Some((issued, lane)) = open_queries.remove(&id) {
                    push_entry(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"query-{id}\",\"cat\":\"query\",\"ph\":\"X\",\
                             \"ts\":{issued},\"dur\":{dur},\"pid\":0,\"tid\":{lane}}}",
                            dur = rec.now_us.saturating_sub(issued),
                        ),
                    );
                }
            }
            _ => {}
        }
        if let Some(node) = rec.event.node() {
            push_entry(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"{name}\",\"cat\":\"engine\",\"ph\":\"i\",\
                     \"ts\":{ts},\"pid\":0,\"tid\":{lane},\"s\":\"t\"}}",
                    name = rec.event.name(),
                    ts = rec.now_us,
                    lane = node.0,
                ),
            );
        }
    }

    // Queries still open at the end of the window render as instants so they
    // remain visible in the timeline.
    for (id, (issued, lane)) in open_queries {
        push_entry(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"query-{id}-open\",\"cat\":\"query\",\"ph\":\"i\",\
                 \"ts\":{issued},\"pid\":0,\"tid\":{lane},\"s\":\"t\"}}",
            ),
        );
    }

    out.push(']');
    out.push('\n');
    out
}

fn push_entry(out: &mut String, first: &mut bool, entry: &str) {
    if *first {
        *first = false;
    } else {
        out.push(',');
        out.push('\n');
    }
    out.push_str(entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_overlay::PeerId;

    #[test]
    fn queries_become_complete_spans() {
        let records = [
            Record {
                now_us: 1_000,
                event: Event::QueryIssued {
                    id: 5,
                    requester: PeerId(9),
                },
            },
            Record {
                now_us: 4_000,
                event: Event::QueryAnswered { id: 5 },
            },
        ];
        let doc = to_chrome_trace(&records);
        assert!(doc.starts_with('['));
        assert!(doc.trim_end().ends_with(']'));
        assert!(doc.contains("\"name\":\"query-5\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ts\":1000"));
        assert!(doc.contains("\"dur\":3000"));
        assert!(doc.contains("\"tid\":9"));
    }

    #[test]
    fn anchored_events_become_instants_on_their_node_lane() {
        let records = [Record {
            now_us: 7,
            event: Event::TimerSet {
                node: PeerId(3),
                delay_us: 100,
                tag: 1,
            },
        }];
        let doc = to_chrome_trace(&records);
        assert!(doc.contains("\"name\":\"timer-set\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"tid\":3"));
    }

    #[test]
    fn unanswered_queries_stay_visible_as_open_instants() {
        let records = [Record {
            now_us: 2,
            event: Event::QueryIssued {
                id: 8,
                requester: PeerId(1),
            },
        }];
        let doc = to_chrome_trace(&records);
        assert!(doc.contains("\"name\":\"query-8-open\""));
    }

    #[test]
    fn empty_input_is_an_empty_array() {
        assert_eq!(to_chrome_trace(&[]), "[]\n");
    }
}
