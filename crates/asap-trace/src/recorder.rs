//! Ring-buffered trace recorder.

use crate::event::{Event, Record};
use crate::sink::TraceSink;
use crate::stats::TraceStats;
use std::any::Any;
use std::collections::VecDeque;

/// Configuration for a [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum number of raw [`Record`]s retained. When the ring is full the
    /// oldest record is evicted (and counted in [`Recorder::dropped`]);
    /// [`TraceStats`] aggregation still sees every event.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { capacity: 1 << 16 }
    }
}

/// The standard [`TraceSink`]: a bounded ring of raw records plus always-on
/// statistics. Plain owned data, so finished runs can ship it across threads
/// (the bench sweep collects one per cell under rayon).
#[derive(Debug, Clone)]
pub struct Recorder {
    config: TraceConfig,
    ring: VecDeque<Record>,
    total: u64,
    dropped: u64,
    stats: TraceStats,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new(TraceConfig::default())
    }
}

impl Recorder {
    pub fn new(config: TraceConfig) -> Self {
        Self {
            config,
            ring: VecDeque::with_capacity(config.capacity.min(1 << 16)),
            total: 0,
            dropped: 0,
            stats: TraceStats::new(),
        }
    }

    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Records still held in the ring, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.ring.iter()
    }

    /// Records still held, as a contiguous slice (clones into a Vec).
    pub fn records_vec(&self) -> Vec<Record> {
        self.ring.iter().copied().collect()
    }

    /// Total events observed, including evicted ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events evicted from the ring to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Render the retained records as JSONL: one fixed-key-order object per
    /// line plus a final `"ev":"stats"` trailer summarising the whole run
    /// (including evicted events). Byte-identical across replays of the same
    /// seed.
    pub fn write_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.ring {
            out.push_str(&rec.to_jsonl());
            out.push('\n');
        }
        out.push_str(&self.stats.summary_jsonl());
        out.push('\n');
        out
    }

    /// Like [`Recorder::write_jsonl`] but keeping only records whose event
    /// belongs to query `id` (plus the stats trailer). Used by the bench
    /// `--trace-query` drill-down.
    pub fn write_jsonl_for_query(&self, id: u32) -> String {
        let mut out = String::new();
        for rec in &self.ring {
            if rec.event.query_id() == Some(id) {
                out.push_str(&rec.to_jsonl());
                out.push('\n');
            }
        }
        out.push_str(&self.stats.summary_jsonl());
        out.push('\n');
        out
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, now_us: u64, ev: &Event) {
        self.total += 1;
        self.stats.observe(now_us, ev);
        if self.config.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.config.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(Record {
            now_us,
            event: *ev,
        });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_overlay::PeerId;

    fn join(p: u32) -> Event {
        Event::Join { peer: PeerId(p) }
    }

    #[test]
    fn ring_evicts_oldest_but_stats_see_everything() {
        let mut r = Recorder::new(TraceConfig { capacity: 2 });
        r.record(1, &join(1));
        r.record(2, &join(2));
        r.record(3, &join(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.total(), 3);
        assert_eq!(r.dropped(), 1);
        let kept: Vec<u64> = r.records().map(|rec| rec.now_us).collect();
        assert_eq!(kept, vec![2, 3]);
        assert_eq!(r.stats().counts().get("join"), Some(&3));
    }

    #[test]
    fn zero_capacity_keeps_stats_only() {
        let mut r = Recorder::new(TraceConfig { capacity: 0 });
        r.record(1, &join(1));
        assert!(r.is_empty());
        assert_eq!(r.total(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.stats().total_events(), 1);
    }

    #[test]
    fn jsonl_has_one_line_per_record_plus_stats_trailer() {
        let mut r = Recorder::default();
        r.record(5, &join(7));
        let out = r.write_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"t\":5,\"ev\":\"join\",\"peer\":7}");
        assert!(lines[1].contains("\"ev\":\"stats\""));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn query_filter_keeps_only_matching_records() {
        let mut r = Recorder::default();
        r.record(
            1,
            &Event::QueryIssued {
                id: 9,
                requester: PeerId(0),
            },
        );
        r.record(2, &join(1));
        r.record(3, &Event::QueryAnswered { id: 9 });
        r.record(4, &Event::QueryAnswered { id: 10 });
        let out = r.write_jsonl_for_query(9);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"ev\":\"query-issued\""));
        assert!(lines[1].contains("\"ev\":\"query-answered\""));
        assert!(lines[2].contains("\"ev\":\"stats\""));
    }

    #[test]
    fn recorder_round_trips_through_the_sink_trait_object() {
        let mut sink: Box<dyn TraceSink> = Box::new(Recorder::default());
        sink.record(1, &join(1));
        let back = sink.into_any().downcast::<Recorder>().ok();
        assert_eq!(back.map(|r| r.total()), Some(1));
    }
}
