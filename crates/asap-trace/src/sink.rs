//! The sink trait the engine emits into.

use crate::event::Event;
use std::any::Any;

/// Receives every traced event from a running simulation.
///
/// Implementations must be **passive**: a sink sees the world, never touches
/// it. The engine calls [`TraceSink::record`] with the virtual clock and a
/// borrowed event; whatever the sink does (ring-buffer, aggregate, count)
/// must not consume engine randomness or affect scheduling, so that a traced
/// run replays bit-identically to an untraced one.
///
/// The `Any` plumbing lets callers that attached a concrete sink (usually
/// [`crate::Recorder`]) get it back out of a finished run's report. `Send`
/// is required so finished reports (sink included) can be collected across
/// worker threads by the parallel bench sweep.
pub trait TraceSink: Any + Send {
    /// Observe one event at virtual time `now_us`.
    fn record(&mut self, now_us: u64, ev: &Event);

    /// Borrow as `Any` for downcasting.
    fn as_any(&self) -> &dyn Any;

    /// Consume into `Any` for downcasting by value.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct CountingSink {
        seen: u64,
    }

    impl TraceSink for CountingSink {
        fn record(&mut self, _now_us: u64, _ev: &Event) {
            self.seen += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    #[test]
    fn custom_sinks_downcast_back_out() {
        let mut sink: Box<dyn TraceSink> = Box::<CountingSink>::default();
        sink.record(
            5,
            &Event::Join {
                peer: asap_overlay::PeerId(0),
            },
        );
        let concrete = sink.into_any().downcast::<CountingSink>().ok();
        assert_eq!(concrete.map(|c| c.seen), Some(1));
    }
}
