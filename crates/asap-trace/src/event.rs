//! The typed trace-event taxonomy and its JSONL serialization.
//!
//! Events are flat `Copy` structs of integers and small label enums; the
//! JSONL writer emits keys in a fixed order so two replays of the same seed
//! produce byte-identical output (pinned by the trace determinism test).

use asap_metrics::{MsgClass, RetryStat};
use asap_overlay::PeerId;

/// One observable simulation event. Engine events mirror the audit hooks;
/// protocol taps come from the search/advertisement implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A message left `from`: bytes charged, delivery scheduled `delay_us`
    /// from now (network latency plus any fault-injected jitter). Dropped
    /// sends appear as [`Event::FaultDrop`] instead.
    Send {
        from: PeerId,
        to: PeerId,
        class: MsgClass,
        bytes: u32,
        delay_us: u64,
    },
    /// A delivery reached dispatch; `delivered` is the liveness gate's
    /// verdict, `dup` marks a fault-injected duplicate copy.
    Deliver {
        to: PeerId,
        from: PeerId,
        delivered: bool,
        dup: bool,
    },
    /// The fault layer dropped a send (random loss, or a partition cut).
    FaultDrop {
        from: PeerId,
        to: PeerId,
        partition: bool,
    },
    /// The fault layer scheduled a duplicate copy of a send.
    FaultDuplicate { from: PeerId, to: PeerId },
    /// The adversary layer absorbed a send at a free-riding target (bytes
    /// charged, nothing queued for delivery).
    AdversaryAbsorb {
        from: PeerId,
        to: PeerId,
        class: MsgClass,
    },
    /// A protocol timer was armed.
    TimerSet { node: PeerId, delay_us: u64, tag: u64 },
    /// A timer reached dispatch; `fired` is the liveness gate's verdict.
    TimerFired { node: PeerId, tag: u64, fired: bool },
    /// A timer was cancelled (`cancelled` false: the handle was already
    /// cancelled before).
    TimerCancelled { cancelled: bool },
    /// A trace query entered the ledger and is about to reach the protocol.
    QueryIssued { id: u32, requester: PeerId },
    /// A confirmed answer for query `id` was reported.
    QueryAnswered { id: u32 },
    /// A content-change trace event was applied (or skipped as a no-op).
    ContentChanged {
        peer: PeerId,
        doc: u32,
        added: bool,
        applied: bool,
    },
    /// `peer` joined and was re-attached to the overlay.
    Join { peer: PeerId },
    /// `peer` departed and was detached.
    Leave { peer: PeerId },
    /// A robustness counter ticked (see `asap_metrics::RetryStat`).
    Counter { stat: RetryStat },
    /// ASAP published an advertisement of the given class (full, patch, or
    /// refresh) from `node`.
    AdPublished { node: PeerId, class: MsgClass },
    /// ASAP answered query `id` from `node`'s local ad cache with `hits`
    /// candidate sources.
    QueryLocalHits { id: u32, node: PeerId, hits: u32 },
    /// ASAP found no usable cached ads for query `id` and fell back to the
    /// underlying blind-search dispersal.
    QueryFallback { id: u32, node: PeerId },
    /// ASAP sent `targets` content confirmations for query `id`.
    ConfirmSent { id: u32, node: PeerId, targets: u32 },
    /// A confirmation reply for query `id` came back (`positive`: the source
    /// still holds matching content).
    ConfirmResult { id: u32, node: PeerId, positive: bool },
    /// A flooding fan-out for query `id`: `fanout` copies at `ttl` hops left.
    FloodFanout {
        id: u32,
        node: PeerId,
        ttl: u32,
        fanout: u32,
    },
    /// One random-walk step for query `id` with `ttl` hops left.
    WalkStep { id: u32, node: PeerId, ttl: u32 },
    /// A GSA dispersal for query `id`: `fanout` probes sharing `budget`.
    GsaDisperse {
        id: u32,
        node: PeerId,
        fanout: u32,
        budget: u32,
    },
}

impl Event {
    /// Stable lower-kebab-case event name (the JSONL `ev` field).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Send { .. } => "send",
            Self::Deliver { .. } => "deliver",
            Self::FaultDrop { .. } => "fault-drop",
            Self::FaultDuplicate { .. } => "fault-dup",
            Self::AdversaryAbsorb { .. } => "adversary-absorb",
            Self::TimerSet { .. } => "timer-set",
            Self::TimerFired { .. } => "timer-fired",
            Self::TimerCancelled { .. } => "timer-cancel",
            Self::QueryIssued { .. } => "query-issued",
            Self::QueryAnswered { .. } => "query-answered",
            Self::ContentChanged { .. } => "content-changed",
            Self::Join { .. } => "join",
            Self::Leave { .. } => "leave",
            Self::Counter { .. } => "counter",
            Self::AdPublished { .. } => "ad-published",
            Self::QueryLocalHits { .. } => "query-local-hits",
            Self::QueryFallback { .. } => "query-fallback",
            Self::ConfirmSent { .. } => "confirm-sent",
            Self::ConfirmResult { .. } => "confirm-result",
            Self::FloodFanout { .. } => "flood-fanout",
            Self::WalkStep { .. } => "walk-step",
            Self::GsaDisperse { .. } => "gsa-disperse",
        }
    }

    /// The query id this event belongs to, when it has one (`--trace-query`
    /// drill-down filters on this).
    pub fn query_id(&self) -> Option<u32> {
        match *self {
            Self::QueryIssued { id, .. }
            | Self::QueryAnswered { id }
            | Self::QueryLocalHits { id, .. }
            | Self::QueryFallback { id, .. }
            | Self::ConfirmSent { id, .. }
            | Self::ConfirmResult { id, .. }
            | Self::FloodFanout { id, .. }
            | Self::WalkStep { id, .. }
            | Self::GsaDisperse { id, .. } => Some(id),
            _ => None,
        }
    }

    /// The node the event is anchored at (the Chrome-trace thread lane).
    pub fn node(&self) -> Option<PeerId> {
        match *self {
            Self::Send { from, .. }
            | Self::FaultDrop { from, .. }
            | Self::FaultDuplicate { from, .. }
            | Self::AdversaryAbsorb { from, .. } => Some(from),
            Self::Deliver { to, .. } => Some(to),
            Self::TimerSet { node, .. }
            | Self::TimerFired { node, .. }
            | Self::AdPublished { node, .. }
            | Self::QueryLocalHits { node, .. }
            | Self::QueryFallback { node, .. }
            | Self::ConfirmSent { node, .. }
            | Self::ConfirmResult { node, .. }
            | Self::FloodFanout { node, .. }
            | Self::WalkStep { node, .. }
            | Self::GsaDisperse { node, .. } => Some(node),
            Self::QueryIssued { requester, .. } => Some(requester),
            Self::ContentChanged { peer, .. } | Self::Join { peer } | Self::Leave { peer } => {
                Some(peer)
            }
            Self::TimerCancelled { .. } | Self::QueryAnswered { .. } | Self::Counter { .. } => None,
        }
    }
}

/// A timestamped event as retained by the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Virtual time, µs. Never wall time (lint rule R2).
    pub now_us: u64,
    pub event: Event,
}

/// Append `key:int` to a JSONL object under construction.
fn push_u64(out: &mut String, key: &str, v: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

fn push_bool(out: &mut String, key: &str, v: bool) {
    push_u64(out, key, v as u64);
}

fn push_label(out: &mut String, key: &str, label: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    out.push_str(label);
    out.push('"');
}

impl Record {
    /// One JSONL line (no trailing newline): `{"t":<µs>,"ev":"<name>",...}`
    /// with event fields in declaration order. Integers and fixed label
    /// strings only — replaying a seed reproduces the bytes exactly.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"t\":");
        out.push_str(&self.now_us.to_string());
        push_label(&mut out, "ev", self.event.name());
        match self.event {
            Event::Send {
                from,
                to,
                class,
                bytes,
                delay_us,
            } => {
                push_u64(&mut out, "from", from.0 as u64);
                push_u64(&mut out, "to", to.0 as u64);
                push_label(&mut out, "class", class.label());
                push_u64(&mut out, "bytes", bytes as u64);
                push_u64(&mut out, "delay_us", delay_us);
            }
            Event::Deliver {
                to,
                from,
                delivered,
                dup,
            } => {
                push_u64(&mut out, "to", to.0 as u64);
                push_u64(&mut out, "from", from.0 as u64);
                push_bool(&mut out, "delivered", delivered);
                push_bool(&mut out, "dup", dup);
            }
            Event::FaultDrop { from, to, partition } => {
                push_u64(&mut out, "from", from.0 as u64);
                push_u64(&mut out, "to", to.0 as u64);
                push_bool(&mut out, "partition", partition);
            }
            Event::FaultDuplicate { from, to } => {
                push_u64(&mut out, "from", from.0 as u64);
                push_u64(&mut out, "to", to.0 as u64);
            }
            Event::AdversaryAbsorb { from, to, class } => {
                push_u64(&mut out, "from", from.0 as u64);
                push_u64(&mut out, "to", to.0 as u64);
                push_label(&mut out, "class", class.label());
            }
            Event::TimerSet { node, delay_us, tag } => {
                push_u64(&mut out, "node", node.0 as u64);
                push_u64(&mut out, "delay_us", delay_us);
                push_u64(&mut out, "tag", tag);
            }
            Event::TimerFired { node, tag, fired } => {
                push_u64(&mut out, "node", node.0 as u64);
                push_u64(&mut out, "tag", tag);
                push_bool(&mut out, "fired", fired);
            }
            Event::TimerCancelled { cancelled } => {
                push_bool(&mut out, "cancelled", cancelled);
            }
            Event::QueryIssued { id, requester } => {
                push_u64(&mut out, "id", id as u64);
                push_u64(&mut out, "requester", requester.0 as u64);
            }
            Event::QueryAnswered { id } => {
                push_u64(&mut out, "id", id as u64);
            }
            Event::ContentChanged {
                peer,
                doc,
                added,
                applied,
            } => {
                push_u64(&mut out, "peer", peer.0 as u64);
                push_u64(&mut out, "doc", doc as u64);
                push_bool(&mut out, "added", added);
                push_bool(&mut out, "applied", applied);
            }
            Event::Join { peer } | Event::Leave { peer } => {
                push_u64(&mut out, "peer", peer.0 as u64);
            }
            Event::Counter { stat } => {
                push_label(&mut out, "stat", stat.label());
            }
            Event::AdPublished { node, class } => {
                push_u64(&mut out, "node", node.0 as u64);
                push_label(&mut out, "class", class.label());
            }
            Event::QueryLocalHits { id, node, hits } => {
                push_u64(&mut out, "id", id as u64);
                push_u64(&mut out, "node", node.0 as u64);
                push_u64(&mut out, "hits", hits as u64);
            }
            Event::QueryFallback { id, node } => {
                push_u64(&mut out, "id", id as u64);
                push_u64(&mut out, "node", node.0 as u64);
            }
            Event::ConfirmSent { id, node, targets } => {
                push_u64(&mut out, "id", id as u64);
                push_u64(&mut out, "node", node.0 as u64);
                push_u64(&mut out, "targets", targets as u64);
            }
            Event::ConfirmResult { id, node, positive } => {
                push_u64(&mut out, "id", id as u64);
                push_u64(&mut out, "node", node.0 as u64);
                push_bool(&mut out, "positive", positive);
            }
            Event::FloodFanout {
                id,
                node,
                ttl,
                fanout,
            } => {
                push_u64(&mut out, "id", id as u64);
                push_u64(&mut out, "node", node.0 as u64);
                push_u64(&mut out, "ttl", ttl as u64);
                push_u64(&mut out, "fanout", fanout as u64);
            }
            Event::WalkStep { id, node, ttl } => {
                push_u64(&mut out, "id", id as u64);
                push_u64(&mut out, "node", node.0 as u64);
                push_u64(&mut out, "ttl", ttl as u64);
            }
            Event::GsaDisperse {
                id,
                node,
                fanout,
                budget,
            } => {
                push_u64(&mut out, "id", id as u64);
                push_u64(&mut out, "node", node.0 as u64);
                push_u64(&mut out, "fanout", fanout as u64);
                push_u64(&mut out, "budget", budget as u64);
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_has_fixed_key_order_and_integer_fields() {
        let r = Record {
            now_us: 12_345,
            event: Event::Send {
                from: PeerId(1),
                to: PeerId(2),
                class: MsgClass::Query,
                bytes: 60,
                delay_us: 4_000,
            },
        };
        assert_eq!(
            r.to_jsonl(),
            "{\"t\":12345,\"ev\":\"send\",\"from\":1,\"to\":2,\"class\":\"query\",\"bytes\":60,\"delay_us\":4000}"
        );
    }

    #[test]
    fn bools_serialize_as_zero_one() {
        let r = Record {
            now_us: 0,
            event: Event::Deliver {
                to: PeerId(3),
                from: PeerId(4),
                delivered: true,
                dup: false,
            },
        };
        assert_eq!(
            r.to_jsonl(),
            "{\"t\":0,\"ev\":\"deliver\",\"to\":3,\"from\":4,\"delivered\":1,\"dup\":0}"
        );
    }

    #[test]
    fn every_event_kind_serializes_with_its_name() {
        let samples = [
            Event::Send {
                from: PeerId(0),
                to: PeerId(1),
                class: MsgClass::Confirm,
                bytes: 8,
                delay_us: 1,
            },
            Event::Deliver {
                to: PeerId(0),
                from: PeerId(1),
                delivered: true,
                dup: false,
            },
            Event::FaultDrop {
                from: PeerId(0),
                to: PeerId(1),
                partition: true,
            },
            Event::FaultDuplicate {
                from: PeerId(0),
                to: PeerId(1),
            },
            Event::AdversaryAbsorb {
                from: PeerId(0),
                to: PeerId(1),
                class: MsgClass::Query,
            },
            Event::TimerSet {
                node: PeerId(0),
                delay_us: 5,
                tag: 9,
            },
            Event::TimerFired {
                node: PeerId(0),
                tag: 9,
                fired: true,
            },
            Event::TimerCancelled { cancelled: true },
            Event::QueryIssued {
                id: 7,
                requester: PeerId(0),
            },
            Event::QueryAnswered { id: 7 },
            Event::ContentChanged {
                peer: PeerId(0),
                doc: 3,
                added: true,
                applied: true,
            },
            Event::Join { peer: PeerId(0) },
            Event::Leave { peer: PeerId(0) },
            Event::Counter {
                stat: RetryStat::Retries,
            },
            Event::AdPublished {
                node: PeerId(0),
                class: MsgClass::FullAd,
            },
            Event::QueryLocalHits {
                id: 7,
                node: PeerId(0),
                hits: 2,
            },
            Event::QueryFallback {
                id: 7,
                node: PeerId(0),
            },
            Event::ConfirmSent {
                id: 7,
                node: PeerId(0),
                targets: 3,
            },
            Event::ConfirmResult {
                id: 7,
                node: PeerId(0),
                positive: true,
            },
            Event::FloodFanout {
                id: 7,
                node: PeerId(0),
                ttl: 6,
                fanout: 5,
            },
            Event::WalkStep {
                id: 7,
                node: PeerId(0),
                ttl: 3,
            },
            Event::GsaDisperse {
                id: 7,
                node: PeerId(0),
                fanout: 4,
                budget: 100,
            },
        ];
        for ev in samples {
            let line = Record { now_us: 1, event: ev }.to_jsonl();
            assert!(line.starts_with("{\"t\":1,\"ev\":\""), "{line}");
            assert!(line.contains(ev.name()), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn query_ids_are_extracted_for_drilldown() {
        assert_eq!(
            Event::WalkStep {
                id: 42,
                node: PeerId(0),
                ttl: 1
            }
            .query_id(),
            Some(42)
        );
        assert_eq!(Event::Join { peer: PeerId(0) }.query_id(), None);
    }
}
