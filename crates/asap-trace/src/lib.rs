//! Deterministic observability for the ASAP simulator.
//!
//! A [`TraceSink`] attached to a simulation receives every engine and
//! protocol event as a typed [`Event`], stamped with the **virtual** clock
//! only — no wall time, no OS entropy, no allocation on the disabled path —
//! so attaching a sink never perturbs a run: golden replay digests are
//! bit-identical with tracing off and on.
//!
//! The bundled [`Recorder`] keeps a bounded ring of [`Record`]s plus
//! always-on [`TraceStats`] aggregation (per-class latency/bytes histograms,
//! query-lifecycle spans, hop distributions). Export paths:
//!
//! * [`Recorder::write_jsonl`] — one fixed-key-order JSON object per line,
//!   integers and fixed label strings only, byte-identical across replays of
//!   the same seed;
//! * [`chrome::to_chrome_trace`] — a `chrome://tracing` / Perfetto JSON
//!   document with per-node instant events and per-query spans.
//!
//! Determinism policy (lint rules R1–R6 apply to this crate): events carry
//! integers and `Copy` enums only; aggregation uses integer-only
//! [`asap_metrics::LogHistogram`]s; file I/O stays in `asap-bench`.

pub mod chrome;
pub mod digest;
pub mod event;
pub mod recorder;
pub mod sink;
pub mod stats;

pub use chrome::to_chrome_trace;
pub use digest::{Backend, DigestSink, LifecycleDigest};
pub use event::{Event, Record};
pub use recorder::{Recorder, TraceConfig};
pub use sink::TraceSink;
pub use stats::TraceStats;
