//! Always-on aggregation over the trace stream.
//!
//! Unlike the bounded ring of raw records, statistics see **every** event:
//! per-class latency and bytes histograms (from delivered sends), query
//! lifecycle spans (issue → first answer), hop/fan-out distributions from
//! the protocol taps, and a per-event-kind counter. Everything is integer
//! arithmetic over [`asap_metrics::LogHistogram`], per lint rule R3.

use crate::event::Event;
use asap_metrics::{LogHistogram, MsgClass, SpanTracker};
use std::collections::BTreeMap;

/// Aggregated view of one run's trace stream.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Scheduled delivery delay (network latency + fault jitter), µs, for
    /// delivered sends, per message class.
    latency_us: Vec<LogHistogram>,
    /// Payload bytes of delivered sends, per message class.
    bytes: Vec<LogHistogram>,
    /// TTL / remaining-hop samples from the flood/walk/GSA taps.
    hops: LogHistogram,
    /// Fan-out widths from the flood/GSA dispersal taps.
    fanout: LogHistogram,
    /// Query lifecycle: opened at `query-issued`, closed at the first
    /// `query-answered`.
    spans: SpanTracker,
    /// Events seen, by stable event name.
    counts: BTreeMap<&'static str, u64>,
}

impl Default for TraceStats {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceStats {
    pub fn new() -> Self {
        Self {
            latency_us: vec![LogHistogram::new(); MsgClass::COUNT],
            bytes: vec![LogHistogram::new(); MsgClass::COUNT],
            hops: LogHistogram::new(),
            fanout: LogHistogram::new(),
            spans: SpanTracker::new(),
            counts: BTreeMap::new(),
        }
    }

    /// Fold one event in. Called by the recorder for every event, including
    /// those the ring buffer later evicts.
    pub fn observe(&mut self, now_us: u64, ev: &Event) {
        *self.counts.entry(ev.name()).or_insert(0) += 1;
        match *ev {
            Event::Send {
                class,
                bytes,
                delay_us,
                ..
            } => {
                self.latency_us[class.index()].record(delay_us);
                self.bytes[class.index()].record(bytes as u64);
            }
            Event::QueryIssued { id, .. } => self.spans.open(id, now_us),
            Event::QueryAnswered { id } if self.spans.close(id, now_us).is_none() => {
                self.spans.note_unmatched_close();
            }
            Event::QueryAnswered { .. } => {}
            Event::FloodFanout { ttl, fanout, .. } => {
                self.hops.record(ttl as u64);
                self.fanout.record(fanout as u64);
            }
            Event::WalkStep { ttl, .. } => self.hops.record(ttl as u64),
            Event::GsaDisperse { fanout, .. } => self.fanout.record(fanout as u64),
            _ => {}
        }
    }

    pub fn latency_us(&self, class: MsgClass) -> &LogHistogram {
        &self.latency_us[class.index()]
    }

    pub fn bytes(&self, class: MsgClass) -> &LogHistogram {
        &self.bytes[class.index()]
    }

    pub fn hops(&self) -> &LogHistogram {
        &self.hops
    }

    pub fn fanout(&self) -> &LogHistogram {
        &self.fanout
    }

    pub fn spans(&self) -> &SpanTracker {
        &self.spans
    }

    /// Events observed so far, by event name (deterministic order).
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    pub fn total_events(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Integer-only one-object JSON summary (used by the bench exporters as
    /// a trailer line in JSONL output).
    pub fn summary_jsonl(&self) -> String {
        let mut out = String::from("{\"t\":0,\"ev\":\"stats\"");
        for class in MsgClass::ALL {
            let lat = self.latency_us(class);
            if lat.count() == 0 {
                continue;
            }
            out.push_str(&format!(
                ",\"{}\":{{\"sends\":{},\"lat_mean_us\":{},\"lat_p99_us\":{},\"bytes_mean\":{}}}",
                class.label(),
                lat.count(),
                lat.mean(),
                lat.percentile(99, 100),
                self.bytes(class).mean(),
            ));
        }
        let spans = self.spans();
        out.push_str(&format!(
            ",\"spans\":{{\"closed\":{},\"open\":{},\"dur_mean_us\":{},\"dur_p99_us\":{}}}",
            spans.closed_count(),
            spans.open_count(),
            spans.durations().mean(),
            spans.durations().percentile(99, 100),
        ));
        out.push_str(&format!(",\"events\":{}}}", self.total_events()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_overlay::PeerId;

    #[test]
    fn sends_feed_per_class_histograms() {
        let mut s = TraceStats::new();
        s.observe(
            0,
            &Event::Send {
                from: PeerId(0),
                to: PeerId(1),
                class: MsgClass::Query,
                bytes: 60,
                delay_us: 4_000,
            },
        );
        assert_eq!(s.latency_us(MsgClass::Query).count(), 1);
        assert_eq!(s.bytes(MsgClass::Query).max(), 60);
        assert_eq!(s.latency_us(MsgClass::Confirm).count(), 0);
        assert_eq!(s.counts().get("send"), Some(&1));
    }

    #[test]
    fn query_spans_close_on_first_answer() {
        let mut s = TraceStats::new();
        s.observe(
            1_000,
            &Event::QueryIssued {
                id: 3,
                requester: PeerId(0),
            },
        );
        s.observe(9_000, &Event::QueryAnswered { id: 3 });
        s.observe(12_000, &Event::QueryAnswered { id: 3 });
        assert_eq!(s.spans().closed_count(), 1);
        assert_eq!(s.spans().unmatched_closes(), 1);
        assert_eq!(s.spans().durations().max(), 8_000);
    }

    #[test]
    fn summary_jsonl_is_a_single_object() {
        let mut s = TraceStats::new();
        s.observe(
            0,
            &Event::Send {
                from: PeerId(0),
                to: PeerId(1),
                class: MsgClass::Query,
                bytes: 60,
                delay_us: 4_000,
            },
        );
        let line = s.summary_jsonl();
        assert!(line.starts_with("{\"t\":0,\"ev\":\"stats\""));
        assert!(line.ends_with('}'));
        assert!(line.contains("\"query\""));
        assert!(!line.contains('\n'));
    }
}
