//! Checkpoint codecs for the baseline protocols ([`CheckpointProtocol`]).
//!
//! Static configuration (TTL, walker counts, budgets, retransmit policy) is
//! never serialized — the resume caller reconstructs each protocol with the
//! same configuration the original run used. Only dynamic cross-event state
//! rides the checkpoint: the flooding dedup window and the per-query
//! retransmission tables (serialized in ascending query-id order so that
//! encode → decode → re-encode is byte-identical).

use crate::common::{BaselineMsg, RetransmitState, SeenTracker};
use crate::flooding::Flooding;
use crate::gsa::Gsa;
use crate::random_walk::RandomWalk;
use asap_overlay::PeerId;
use asap_sim::checkpoint::{CheckpointProtocol, CodecError, Decoder, Encoder};
use asap_sim::collections::DetHashMap;
use asap_sim::util::Backoff;
use asap_workload::KeywordId;
use std::rc::Rc;

fn encode_terms(terms: &Rc<[KeywordId]>, enc: &mut Encoder) {
    enc.put_len(terms.len());
    for t in terms.iter() {
        enc.put_u32(t.0);
    }
}

fn decode_terms(dec: &mut Decoder<'_>) -> Result<Rc<[KeywordId]>, CodecError> {
    let n = dec.get_count()?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(KeywordId(dec.get_u32()?));
    }
    Ok(v.into())
}

fn encode_baseline_msg(msg: &BaselineMsg, enc: &mut Encoder) {
    match msg {
        BaselineMsg::Flood {
            query,
            requester,
            terms,
            ttl,
        } => {
            enc.put_u8(0);
            enc.put_u32(*query);
            enc.put_u32(requester.0);
            encode_terms(terms, enc);
            enc.put_u8(*ttl);
        }
        BaselineMsg::Walk {
            query,
            requester,
            terms,
            ttl,
        } => {
            enc.put_u8(1);
            enc.put_u32(*query);
            enc.put_u32(requester.0);
            encode_terms(terms, enc);
            enc.put_u16(*ttl);
        }
        BaselineMsg::Gsa {
            query,
            requester,
            terms,
            budget,
        } => {
            enc.put_u8(2);
            enc.put_u32(*query);
            enc.put_u32(requester.0);
            encode_terms(terms, enc);
            enc.put_u32(*budget);
        }
        BaselineMsg::Hit { query, results } => {
            enc.put_u8(3);
            enc.put_u32(*query);
            enc.put_u32(*results);
        }
    }
}

fn decode_baseline_msg(dec: &mut Decoder<'_>) -> Result<BaselineMsg, CodecError> {
    match dec.get_u8()? {
        0 => Ok(BaselineMsg::Flood {
            query: dec.get_u32()?,
            requester: PeerId(dec.get_u32()?),
            terms: decode_terms(dec)?,
            ttl: dec.get_u8()?,
        }),
        1 => Ok(BaselineMsg::Walk {
            query: dec.get_u32()?,
            requester: PeerId(dec.get_u32()?),
            terms: decode_terms(dec)?,
            ttl: dec.get_u16()?,
        }),
        2 => Ok(BaselineMsg::Gsa {
            query: dec.get_u32()?,
            requester: PeerId(dec.get_u32()?),
            terms: decode_terms(dec)?,
            budget: dec.get_u32()?,
        }),
        3 => Ok(BaselineMsg::Hit {
            query: dec.get_u32()?,
            results: dec.get_u32()?,
        }),
        _ => Err(CodecError::BadTag),
    }
}

/// Retransmission table in ascending query-id order (canonical).
fn encode_retrans(retrans: &DetHashMap<u32, RetransmitState>, enc: &mut Encoder) {
    let mut items: Vec<(&u32, &RetransmitState)> = retrans.iter().collect();
    items.sort_by_key(|(id, _)| **id);
    enc.put_len(items.len());
    for (id, s) in items {
        enc.put_u32(*id);
        enc.put_u32(s.requester.0);
        encode_terms(&s.terms, enc);
        let (delay_us, cap_us, remaining) = s.backoff.raw_parts();
        enc.put_u64(delay_us);
        enc.put_u64(cap_us);
        enc.put_u32(remaining);
    }
}

fn decode_retrans(dec: &mut Decoder<'_>) -> Result<DetHashMap<u32, RetransmitState>, CodecError> {
    let n = dec.get_count()?;
    let mut map = DetHashMap::default();
    for _ in 0..n {
        let id = dec.get_u32()?;
        let requester = PeerId(dec.get_u32()?);
        let terms = decode_terms(dec)?;
        let delay_us = dec.get_u64()?;
        let cap_us = dec.get_u64()?;
        let remaining = dec.get_u32()?;
        map.insert(
            id,
            RetransmitState {
                requester,
                terms,
                backoff: Backoff::from_raw_parts(delay_us, cap_us, remaining),
            },
        );
    }
    Ok(map)
}

impl CheckpointProtocol for Flooding {
    fn encode_msg(msg: &BaselineMsg, enc: &mut Encoder) {
        encode_baseline_msg(msg, enc);
    }

    fn decode_msg(dec: &mut Decoder<'_>) -> Result<BaselineMsg, CodecError> {
        decode_baseline_msg(dec)
    }

    fn encode_state(&self, enc: &mut Encoder) {
        let inner = self.seen.inner();
        enc.put_len(inner.window());
        let entries = inner.entries();
        enc.put_len(entries.len());
        for (query, visitors) in entries {
            enc.put_u32(query);
            enc.put_len(visitors.len());
            for v in visitors {
                enc.put_u32(v);
            }
        }
        encode_retrans(&self.retrans, enc);
    }

    fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let window = dec.get_len()?;
        if window == 0 {
            return Err(CodecError::Invalid("zero seen window"));
        }
        let n = dec.get_count()?;
        if n > window {
            return Err(CodecError::Invalid("seen entries exceed window"));
        }
        let mut entries = Vec::new();
        for _ in 0..n {
            let query = dec.get_u32()?;
            let m = dec.get_count()?;
            let mut visitors = Vec::new();
            for _ in 0..m {
                visitors.push(dec.get_u32()?);
            }
            entries.push((query, visitors));
        }
        self.seen = SeenTracker::from_inner(asap_sim::util::SeenTracker::from_entries(
            window, entries,
        ));
        self.retrans = decode_retrans(dec)?;
        Ok(())
    }
}

impl CheckpointProtocol for RandomWalk {
    fn encode_msg(msg: &BaselineMsg, enc: &mut Encoder) {
        encode_baseline_msg(msg, enc);
    }

    fn decode_msg(dec: &mut Decoder<'_>) -> Result<BaselineMsg, CodecError> {
        decode_baseline_msg(dec)
    }

    fn encode_state(&self, enc: &mut Encoder) {
        encode_retrans(&self.retrans, enc);
    }

    fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        self.retrans = decode_retrans(dec)?;
        Ok(())
    }
}

impl CheckpointProtocol for Gsa {
    fn encode_msg(msg: &BaselineMsg, enc: &mut Encoder) {
        encode_baseline_msg(msg, enc);
    }

    fn decode_msg(dec: &mut Decoder<'_>) -> Result<BaselineMsg, CodecError> {
        decode_baseline_msg(dec)
    }

    // GSA carries its whole search state inside the probes themselves.
    fn encode_state(&self, _enc: &mut Encoder) {}

    fn decode_state(&mut self, _dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::FloodingConfig;
    use crate::gsa::GsaConfig;
    use crate::random_walk::RandomWalkConfig;
    use crate::testutil::world;
    use crate::Retransmit;
    use asap_overlay::OverlayKind;
    use asap_sim::checkpoint::Checkpoint;
    use asap_sim::{AuditConfig, Simulation};

    fn msg_roundtrip(msg: &BaselineMsg) {
        let mut enc = Encoder::new();
        encode_baseline_msg(msg, &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = decode_baseline_msg(&mut dec).unwrap();
        dec.finish().unwrap();
        let mut enc2 = Encoder::new();
        encode_baseline_msg(&back, &mut enc2);
        assert_eq!(bytes, enc2.into_bytes(), "re-encode differs for {msg:?}");
    }

    #[test]
    fn baseline_msg_codec_roundtrips() {
        let terms: Rc<[KeywordId]> = vec![KeywordId(3), KeywordId(99)].into();
        msg_roundtrip(&BaselineMsg::Flood {
            query: 7,
            requester: PeerId(2),
            terms: Rc::clone(&terms),
            ttl: 6,
        });
        msg_roundtrip(&BaselineMsg::Walk {
            query: 8,
            requester: PeerId(0),
            terms: Rc::clone(&terms),
            ttl: 1024,
        });
        msg_roundtrip(&BaselineMsg::Gsa {
            query: 9,
            requester: PeerId(5),
            terms,
            budget: 8000,
        });
        msg_roundtrip(&BaselineMsg::Hit {
            query: 7,
            results: 3,
        });
    }

    #[test]
    fn baseline_msg_decode_rejects_bad_tag() {
        let bytes = [9u8];
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            decode_baseline_msg(&mut dec),
            Err(CodecError::BadTag)
        ));
    }

    /// Run `make()` twice over the same world: once uninterrupted, once
    /// split at `t_mid` through a serialized checkpoint (bytes roundtripped
    /// through `Checkpoint::from_bytes`). Digests must match bit-for-bit.
    fn assert_split_run_identical<P, F>(make: F, seed: u64)
    where
        P: CheckpointProtocol,
        F: Fn() -> P,
    {
        let (phys, workload, overlay) = world(120, 150, seed);
        let cold = Simulation::builder(
            &phys,
            &workload,
            overlay.clone(),
            OverlayKind::Random,
            make(),
            seed,
        )
        .audit(AuditConfig::default())
        .run();
        let cold_audit = cold.audit.expect("audited run");
        assert!(cold_audit.is_clean(), "{:?}", cold_audit.violations);

        let t_mid = workload.trace.duration_us() / 2;
        let mut first = Simulation::builder(
            &phys,
            &workload,
            overlay.clone(),
            OverlayKind::Random,
            make(),
            seed,
        )
        .audit(AuditConfig::default())
        .build();
        first.run_until(t_mid);
        let ckpt = first.checkpoint();
        drop(first);

        // Roundtrip through raw bytes, as a file-based resume would.
        let ckpt = Checkpoint::from_bytes(ckpt.into_bytes()).expect("self-produced bytes");
        let resumed = Simulation::resume(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            make(),
            &ckpt,
        )
        .expect("resume");
        let warm = resumed.run();
        let warm_audit = warm.audit.expect("audited resume");

        assert_eq!(
            cold_audit.digest, warm_audit.digest,
            "split run digest diverged"
        );
        assert_eq!(cold.messages_sent, warm.messages_sent);
        assert_eq!(cold.end_time_us, warm.end_time_us);
        assert_eq!(cold.ledger.num_queries(), warm.ledger.num_queries());
        assert_eq!(cold.ledger.num_succeeded(), warm.ledger.num_succeeded());
        assert_eq!(cold.profile, warm.profile);
    }

    #[test]
    fn flooding_split_run_is_bit_identical() {
        assert_split_run_identical(|| Flooding::new(FloodingConfig::default()), 51);
    }

    #[test]
    fn flooding_with_retransmit_split_run_is_bit_identical() {
        assert_split_run_identical(
            || {
                Flooding::new(FloodingConfig {
                    retransmit: Some(Retransmit::lossy()),
                    ..Default::default()
                })
            },
            52,
        );
    }

    #[test]
    fn random_walk_split_run_is_bit_identical() {
        assert_split_run_identical(|| RandomWalk::new(RandomWalkConfig::default()), 53);
    }

    #[test]
    fn gsa_split_run_is_bit_identical() {
        assert_split_run_identical(|| Gsa::new(GsaConfig::default()), 54);
    }

    #[test]
    fn checkpoint_before_first_event_resumes_cleanly() {
        let seed = 55;
        let (phys, workload, overlay) = world(80, 60, seed);
        let cold = Simulation::builder(
            &phys,
            &workload,
            overlay.clone(),
            OverlayKind::Random,
            Flooding::new(FloodingConfig::default()),
            seed,
        )
        .audit(AuditConfig::default())
        .run();

        // Checkpoint a freshly built simulation: on_init has not run yet,
        // so the resumed run must still perform initialization.
        let fresh = Simulation::builder(
            &phys,
            &workload,
            overlay.clone(),
            OverlayKind::Random,
            Flooding::new(FloodingConfig::default()),
            seed,
        )
        .audit(AuditConfig::default())
        .build();
        let ckpt = fresh.checkpoint();
        drop(fresh);
        let warm = Simulation::resume(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            Flooding::new(FloodingConfig::default()),
            &ckpt,
        )
        .expect("resume")
        .run();
        assert_eq!(
            cold.audit.unwrap().digest,
            warm.audit.unwrap().digest,
            "pre-run checkpoint diverged"
        );
    }

    #[test]
    fn resume_rejects_mismatched_world() {
        let seed = 56;
        let (phys, workload, overlay) = world(80, 60, seed);
        let mut sim = Simulation::builder(
            &phys,
            &workload,
            overlay.clone(),
            OverlayKind::Random,
            Flooding::new(FloodingConfig::default()),
            seed,
        )
        .build();
        sim.run_until(workload.trace.duration_us() / 4);
        let ckpt = sim.checkpoint();
        drop(sim);
        // Different seed on the builder → refused.
        let err = Simulation::builder(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            Flooding::new(FloodingConfig::default()),
            seed + 1,
        )
        .from_checkpoint(&ckpt)
        .err()
        .expect("mismatched seed must be rejected");
        assert!(matches!(err, CodecError::Invalid(_)));
    }

    #[test]
    fn state_reencode_is_byte_identical() {
        // Drive a flooding run halfway, then encode → decode → re-encode
        // the protocol state and compare bytes.
        let seed = 57;
        let (phys, workload, overlay) = world(100, 120, seed);
        let mut sim = Simulation::builder(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            Flooding::new(FloodingConfig {
                retransmit: Some(Retransmit::lossy()),
                ..Default::default()
            }),
            seed,
        )
        .build();
        sim.run_until(workload.trace.duration_us() / 2);
        let ckpt1 = sim.checkpoint();
        // A full re-decode + re-encode of the whole checkpoint: resume then
        // immediately checkpoint again without stepping.
        let (phys2, workload2, overlay2) = world(100, 120, seed);
        let resumed = Simulation::resume(
            &phys2,
            &workload2,
            overlay2,
            OverlayKind::Random,
            Flooding::new(FloodingConfig {
                retransmit: Some(Retransmit::lossy()),
                ..Default::default()
            }),
            &ckpt1,
        )
        .expect("resume");
        let ckpt2 = resumed.checkpoint();
        assert_eq!(
            ckpt1.as_bytes(),
            ckpt2.as_bytes(),
            "checkpoint re-encode differs"
        );
    }
}
