//! Random walk ("5 walkers are used each running with TTL=1024").
//!
//! Walkers step to a uniformly random neighbor (avoiding an immediate
//! backtrack when possible), checking content at every visited node. Cost is
//! tightly bounded — walkers × TTL messages — which is why the paper finds
//! its load lowest but its success rate poor under 1.28-copy replication.

use crate::common::{absorb_hit, reply_if_match, BaselineMsg, Retransmit, RetransmitState};
use asap_metrics::{MsgClass, RetryStat};
use asap_overlay::PeerId;
use asap_sim::collections::DetHashMap;
use asap_sim::{query_size, Protocol, Transport};
use asap_workload::{KeywordId, QuerySpec};
use rand::Rng;
use std::rc::Rc;

/// Random-walk parameters.
#[derive(Debug, Clone, Copy)]
pub struct RandomWalkConfig {
    /// Parallel walkers per query (paper: 5).
    pub walkers: usize,
    /// Steps per walker (paper: 1024).
    pub ttl: u16,
    /// Optional relaunch of the walker set for unanswered queries
    /// (`None`, the default, arms no timers — the paper's behavior).
    pub retransmit: Option<Retransmit>,
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        Self {
            walkers: 5,
            ttl: 1024,
            retransmit: None,
        }
    }
}

/// The random-walk baseline protocol.
#[derive(Debug)]
pub struct RandomWalk {
    pub(crate) config: RandomWalkConfig,
    /// Queries awaiting possible walker relaunch, by query id (which doubles
    /// as the timer tag — the baselines use no other timers).
    pub(crate) retrans: DetHashMap<u32, RetransmitState>,
}

impl RandomWalk {
    pub fn new(config: RandomWalkConfig) -> Self {
        assert!(config.walkers >= 1, "need at least one walker");
        assert!(config.ttl >= 1, "walkers need a positive TTL");
        if let Some(rt) = &config.retransmit {
            rt.validate();
        }
        Self {
            config,
            retrans: DetHashMap::default(),
        }
    }

    /// Forward a walker one step: uniform neighbor, avoiding the node we
    /// just came from unless it is the only option.
    fn step<C: Transport<Msg = BaselineMsg>>(
        ctx: &mut C,
        node: PeerId,
        came_from: Option<PeerId>,
        query: u32,
        requester: PeerId,
        terms: &Rc<[KeywordId]>,
        ttl: u16,
    ) {
        let degree = ctx.neighbors(node).len();
        if degree == 0 {
            return; // walker dies at an isolated node
        }
        let next = if degree == 1 {
            ctx.neighbors(node)[0]
        } else {
            loop {
                let i = ctx.rng().gen_range(0..degree);
                let cand = ctx.neighbors(node)[i];
                if Some(cand) != came_from {
                    break cand;
                }
            }
        };
        ctx.trace(|| asap_sim::trace::Event::WalkStep {
            id: query,
            node,
            ttl: u32::from(ttl),
        });
        ctx.send(
            node,
            next,
            MsgClass::Query,
            query_size(terms.len()),
            BaselineMsg::Walk {
                query,
                requester,
                terms: Rc::clone(terms),
                ttl,
            },
        );
    }
}

impl Protocol for RandomWalk {
    type Msg = BaselineMsg;

    fn on_query<C: Transport<Msg = BaselineMsg>>(&mut self, ctx: &mut C, q: &QuerySpec) {
        let terms: Rc<[KeywordId]> = q.terms.clone().into();
        for _ in 0..self.config.walkers {
            Self::step(ctx, q.requester, None, q.id, q.requester, &terms, self.config.ttl);
        }
        if let Some(rt) = self.config.retransmit {
            self.retrans.insert(
                q.id,
                RetransmitState {
                    requester: q.requester,
                    terms,
                    backoff: rt.backoff(),
                },
            );
            ctx.set_timer(q.requester, rt.timeout_us, u64::from(q.id));
        }
    }

    fn on_message<C: Transport<Msg = BaselineMsg>>(
        &mut self,
        ctx: &mut C,
        to: PeerId,
        from: PeerId,
        msg: BaselineMsg,
    ) {
        match msg {
            BaselineMsg::Walk {
                query,
                requester,
                terms,
                ttl,
            } => {
                reply_if_match(ctx, to, requester, query, &terms);
                if ttl > 1 {
                    Self::step(ctx, to, Some(from), query, requester, &terms, ttl - 1);
                }
            }
            BaselineMsg::Hit { query, .. } => absorb_hit(ctx, query),
            other => unreachable!("random walk got {other:?}"),
        }
    }

    fn on_timer<C: Transport<Msg = BaselineMsg>>(&mut self, ctx: &mut C, node: PeerId, tag: u64) {
        let query = tag as u32;
        let Some(state) = self.retrans.get_mut(&query) else {
            return;
        };
        if state.requester != node {
            return;
        }
        if ctx.is_answered(query) {
            self.retrans.remove(&query);
            return;
        }
        let next = state.backoff.next();
        let terms = Rc::clone(&state.terms);
        match next {
            Some(delay) => {
                // Relaunch the full walker set with fresh TTLs: walkers are
                // memoryless, so a new cohort explores independently.
                ctx.count(RetryStat::Retries);
                for _ in 0..self.config.walkers {
                    Self::step(ctx, node, None, query, node, &terms, self.config.ttl);
                }
                ctx.set_timer(node, delay, tag);
            }
            None => {
                self.retrans.remove(&query);
                ctx.count(RetryStat::DeliveriesAbandoned);
            }
        }
    }

    fn on_leave<C: Transport<Msg = BaselineMsg>>(&mut self, _ctx: &mut C, node: PeerId) {
        // Abandon retransmission of searches the leaving node was running.
        self.retrans.retain(|_, s| s.requester != node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::world;
    use asap_overlay::OverlayKind;
    use asap_sim::Simulation;

    fn run(walkers: usize, ttl: u16, seed: u64) -> asap_sim::SimReport<RandomWalk> {
        let (phys, workload, overlay) = world(150, 100, seed);
        Simulation::builder(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            RandomWalk::new(RandomWalkConfig { walkers, ttl, retransmit: None }),
            seed,
        )
        .run()
    }

    #[test]
    fn cost_is_bounded_by_walkers_times_ttl() {
        let report = run(5, 64, 41);
        let queries = report.ledger.num_queries() as u64;
        // Query messages ≤ walkers × ttl per query (hits come on top).
        let totals = report.load.class_totals();
        let query_bytes = totals[asap_metrics::MsgClass::Query.index()];
        let max_msgs = queries * 5 * 64;
        // Each query message is ≥ HEADER_BYTES.
        assert!(
            query_bytes <= max_msgs * 60,
            "query bytes {query_bytes} exceed budget"
        );
    }

    #[test]
    fn longer_walks_find_more() {
        let short = run(5, 8, 42);
        let long = run(5, 512, 42);
        assert!(
            long.ledger.success_rate() > short.ledger.success_rate(),
            "long {} vs short {}",
            long.ledger.success_rate(),
            short.ledger.success_rate()
        );
    }

    #[test]
    fn more_walkers_find_more() {
        let one = run(1, 64, 43);
        let five = run(5, 64, 43);
        assert!(
            five.ledger.success_rate() >= one.ledger.success_rate(),
            "five {} vs one {}",
            five.ledger.success_rate(),
            one.ledger.success_rate()
        );
    }

    #[test]
    #[should_panic(expected = "walker")]
    fn zero_walkers_rejected() {
        RandomWalk::new(RandomWalkConfig {
            walkers: 0,
            ttl: 10,
            retransmit: None,
        });
    }
}
