//! Query-based baseline search algorithms (paper §IV-A):
//!
//! * [`flooding`] — Gnutella-style flooding, TTL = 6;
//! * [`random_walk`] — 5 walkers, TTL = 1024;
//! * [`gsa`] — the "generalized search algorithm": budget-bounded hybrid
//!   search (total message budget 8,000 per query), reconstructed from
//!   Gkantsidis et al.'s hybrid normalized-flooding/random-walk family
//!   (DESIGN.md §5).
//!
//! All three share the same mechanics: a query message carries the search
//! terms; every visited node checks its local content and, on a match,
//! returns a *query hit* directly to the requester. The paper's baseline
//! search cost counts query messages only.

pub mod checkpoint;
pub mod common;
pub mod flooding;
pub mod gsa;
pub mod random_walk;

pub use common::{BaselineMsg, Retransmit};
pub use flooding::{Flooding, FloodingConfig};
pub use gsa::{Gsa, GsaConfig};
pub use random_walk::{RandomWalk, RandomWalkConfig};

#[cfg(test)]
pub(crate) mod testutil {
    use asap_overlay::{Overlay, OverlayConfig, OverlayKind};
    use asap_topology::{PhysicalNetwork, TransitStubConfig};
    use asap_workload::{Workload, WorkloadConfig};

    /// A small deterministic world shared by baseline tests.
    pub fn world(peers: usize, queries: usize, seed: u64) -> (PhysicalNetwork, Workload, Overlay) {
        let phys = PhysicalNetwork::generate(&TransitStubConfig::reduced(seed));
        let workload = asap_workload::generate(&WorkloadConfig::reduced(peers, queries, seed));
        let overlay = OverlayConfig::new(OverlayKind::Random, peers, seed).build();
        (phys, workload, overlay)
    }
}
