//! Shared mechanics of the query-based baselines.

use asap_metrics::MsgClass;
use asap_overlay::PeerId;
use asap_sim::util::Backoff;
use asap_sim::{query_hit_size, Transport};
use asap_workload::KeywordId;
use std::rc::Rc;

/// Wire message of all three baselines. Terms are reference-counted: a flood
/// fans one term list out to tens of thousands of messages.
#[derive(Debug, Clone)]
pub enum BaselineMsg {
    /// Flooding probe.
    Flood {
        query: u32,
        requester: PeerId,
        terms: Rc<[KeywordId]>,
        ttl: u8,
    },
    /// Random-walk walker.
    Walk {
        query: u32,
        requester: PeerId,
        terms: Rc<[KeywordId]>,
        ttl: u16,
    },
    /// GSA probe carrying its remaining message budget.
    Gsa {
        query: u32,
        requester: PeerId,
        terms: Rc<[KeywordId]>,
        budget: u32,
    },
    /// Query hit flowing straight back to the requester.
    Hit { query: u32, results: u32 },
}

/// If `node` shares a matching document, send a hit to the requester.
/// Returns `true` on a match.
pub fn reply_if_match<C: Transport<Msg = BaselineMsg>>(
    ctx: &mut C,
    node: PeerId,
    requester: PeerId,
    query: u32,
    terms: &[KeywordId],
) -> bool {
    if node == requester || !ctx.content().peer_matches(ctx.model(), node, terms) {
        return false;
    }
    let results = ctx
        .content()
        .matching_docs(ctx.model(), node, terms)
        .count()
        .max(1) as u32;
    ctx.send(
        node,
        requester,
        MsgClass::QueryHit,
        query_hit_size(results as usize),
        BaselineMsg::Hit { query, results },
    );
    true
}

/// The requester-side hit handler: record the answer.
pub fn absorb_hit<C: Transport<Msg = BaselineMsg>>(ctx: &mut C, query: u32) {
    ctx.report_answer(query);
}

/// TTL-respecting retransmission policy for the walk/flood baselines: if a
/// query is still unanswered when the timer fires, the requester re-launches
/// the probe wave (with the configured TTL, never more) on a capped
/// exponential backoff. `None` on the protocol config (the default) arms no
/// timer at all, so fault-free replay digests are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retransmit {
    /// Delay before the first retransmission, µs.
    pub timeout_us: u64,
    /// Retransmissions per query (total probes ≤ 1 + retries).
    pub retries: u32,
    /// Ceiling for the doubled backoff delays, µs.
    pub backoff_cap_us: u64,
}

impl Retransmit {
    /// The preset used by the lossy bench profiles.
    pub fn lossy() -> Self {
        Self {
            timeout_us: 4_000_000,
            retries: 2,
            backoff_cap_us: 16_000_000,
        }
    }

    pub fn backoff(&self) -> Backoff {
        Backoff::new(self.timeout_us, self.backoff_cap_us, self.retries)
    }

    pub fn validate(&self) {
        assert!(self.timeout_us > 0, "retransmit timeout must be positive");
        assert!(
            self.backoff_cap_us >= self.timeout_us,
            "retransmit backoff cap below timeout"
        );
    }
}

/// Requester-side state of a query awaiting possible retransmission.
#[derive(Debug)]
pub struct RetransmitState {
    pub requester: PeerId,
    pub terms: Rc<[KeywordId]>,
    pub backoff: Backoff,
}

/// Per-query duplicate suppression with a bounded window of recent queries,
/// so memory stays flat over a 30,000-query trace. The window (default 256
/// queries ≈ 32 s at λ = 8/s) comfortably outlives a TTL-6 flood.
#[derive(Debug)]
pub struct SeenTracker {
    inner: asap_sim::util::SeenTracker<u32>,
}

impl SeenTracker {
    pub fn new(window: usize) -> Self {
        Self {
            inner: asap_sim::util::SeenTracker::new(window),
        }
    }

    /// Returns `true` the first time `(query, node)` is seen; later calls
    /// return `false`. Queries older than the window are forgotten.
    pub fn first_visit(&mut self, query: u32, node: PeerId) -> bool {
        self.inner.first_visit(query, node.0)
    }

    pub fn tracked_queries(&self) -> usize {
        self.inner.tracked_keys()
    }

    /// The wrapped tracker (checkpoint serialization).
    pub(crate) fn inner(&self) -> &asap_sim::util::SeenTracker<u32> {
        &self.inner
    }

    /// Wrap a restored tracker (checkpoint deserialization).
    pub(crate) fn from_inner(inner: asap_sim::util::SeenTracker<u32>) -> Self {
        Self { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_visit_dedups() {
        let mut t = SeenTracker::new(8);
        assert!(t.first_visit(1, PeerId(5)));
        assert!(!t.first_visit(1, PeerId(5)));
        assert!(t.first_visit(1, PeerId(6)));
        assert!(t.first_visit(2, PeerId(5)));
    }

    #[test]
    fn window_evicts_old_queries() {
        let mut t = SeenTracker::new(4);
        for q in 0..10 {
            assert!(t.first_visit(q, PeerId(0)));
        }
        assert!(t.tracked_queries() <= 4);
        // Query 0 was evicted, so it looks fresh again.
        assert!(t.first_visit(0, PeerId(0)));
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        SeenTracker::new(0);
    }
}
