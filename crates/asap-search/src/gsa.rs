//! GSA — the budget-bounded "generalized search algorithm".
//!
//! **Substitution note (DESIGN.md §5).** The paper cites Gkantsidis et al.'s
//! hybrid search schemes [12] and assigns "a budget of 8,000, which limits
//! the total number of messages during a search process". We implement the
//! family's canonical shape: a probe carries a message budget; while the
//! budget is plentiful the node forwards to up to `branch` random neighbors,
//! dividing the remainder among them (normalized flooding); once a branch's
//! budget drops below the branching factor it degenerates into a random
//! walk. Total query messages per search never exceed the budget.

use crate::common::{absorb_hit, reply_if_match, BaselineMsg};
use asap_metrics::MsgClass;
use asap_overlay::PeerId;
use asap_sim::{query_size, Protocol, Transport};
use asap_workload::{KeywordId, QuerySpec};
use rand::seq::SliceRandom;
use std::rc::Rc;

/// GSA parameters.
#[derive(Debug, Clone, Copy)]
pub struct GsaConfig {
    /// Total message budget per query (paper: 8,000).
    pub budget: u32,
    /// Fan-out while the budget is plentiful.
    pub branch: usize,
}

impl Default for GsaConfig {
    fn default() -> Self {
        Self {
            budget: 8_000,
            branch: 4,
        }
    }
}

/// The GSA baseline protocol.
#[derive(Debug)]
pub struct Gsa {
    config: GsaConfig,
}

impl Gsa {
    pub fn new(config: GsaConfig) -> Self {
        assert!(config.budget >= 1, "GSA needs a positive budget");
        assert!(config.branch >= 1, "GSA needs a positive branching factor");
        Self { config }
    }

    /// Spend `budget` messages from `node`: pick up to `branch` random
    /// neighbors (one, once the budget is walk-sized), sending each probe
    /// with an equal share of what remains after paying for the sends.
    #[allow(clippy::too_many_arguments)]
    fn disperse<C: Transport<Msg = BaselineMsg>>(
        &self,
        ctx: &mut C,
        node: PeerId,
        exclude: Option<PeerId>,
        query: u32,
        requester: PeerId,
        terms: &Rc<[KeywordId]>,
        budget: u32,
    ) {
        if budget == 0 {
            return;
        }
        // Candidate staging uses the engine's scratch buffer — zero
        // allocation once its capacity has grown to the overlay's max degree.
        let mut nbrs = ctx.scratch();
        nbrs.extend(
            ctx.neighbors(node)
                .iter()
                .copied()
                .filter(|&n| Some(n) != exclude),
        );
        if nbrs.is_empty() {
            // Dead end: allow the backtrack rather than dying.
            nbrs.extend_from_slice(ctx.neighbors(node));
            if nbrs.is_empty() {
                return;
            }
        }
        // Walk mode when the budget can't feed a real fan-out.
        let fan = if budget < 2 * self.config.branch as u32 {
            1
        } else {
            self.config.branch.min(nbrs.len())
        };
        nbrs.shuffle(ctx.rng());
        nbrs.truncate(fan);
        let fan = nbrs.len() as u32;
        ctx.trace(|| asap_sim::trace::Event::GsaDisperse {
            id: query,
            node,
            fanout: fan,
            budget,
        });
        let remaining = budget - fan; // each send costs one message
        let share = remaining / fan;
        let mut extra = remaining % fan;
        let bytes = query_size(terms.len());
        for &n in nbrs.iter() {
            let b = share + u32::from(extra > 0);
            extra = extra.saturating_sub(1);
            ctx.send(
                node,
                n,
                MsgClass::Query,
                bytes,
                BaselineMsg::Gsa {
                    query,
                    requester,
                    terms: Rc::clone(terms),
                    budget: b,
                },
            );
        }
    }
}

impl Protocol for Gsa {
    type Msg = BaselineMsg;

    fn on_query<C: Transport<Msg = BaselineMsg>>(&mut self, ctx: &mut C, q: &QuerySpec) {
        let terms: Rc<[KeywordId]> = q.terms.clone().into();
        // The initial dispersal pays for itself out of the query budget.
        self.disperse(ctx, q.requester, None, q.id, q.requester, &terms, self.config.budget);
    }

    fn on_message<C: Transport<Msg = BaselineMsg>>(
        &mut self,
        ctx: &mut C,
        to: PeerId,
        from: PeerId,
        msg: BaselineMsg,
    ) {
        match msg {
            BaselineMsg::Gsa {
                query,
                requester,
                terms,
                budget,
            } => {
                reply_if_match(ctx, to, requester, query, &terms);
                self.disperse(ctx, to, Some(from), query, requester, &terms, budget);
            }
            BaselineMsg::Hit { query, .. } => absorb_hit(ctx, query),
            other => unreachable!("GSA got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::world;
    use asap_overlay::OverlayKind;
    use asap_sim::Simulation;

    fn run(budget: u32, seed: u64) -> asap_sim::SimReport<Gsa> {
        let (phys, workload, overlay) = world(150, 100, seed);
        Simulation::builder(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            Gsa::new(GsaConfig { budget, branch: 4 }),
            seed,
        )
        .run()
    }

    #[test]
    fn query_messages_respect_budget() {
        let budget = 500;
        let report = run(budget, 51);
        let queries = report.ledger.num_queries() as u64;
        let query_bytes = report.load.class_totals()[MsgClass::Query.index()];
        // Every query message costs at least the header.
        let max_bytes = queries * budget as u64 * 60;
        assert!(
            query_bytes <= max_bytes,
            "query bytes {query_bytes} exceed budget bound {max_bytes}"
        );
    }

    #[test]
    fn bigger_budget_finds_more() {
        let small = run(40, 52);
        let large = run(4_000, 52);
        assert!(
            large.ledger.success_rate() > small.ledger.success_rate(),
            "large {} vs small {}",
            large.ledger.success_rate(),
            small.ledger.success_rate()
        );
    }

    #[test]
    fn beats_equal_budget_single_walker_latency() {
        // The fan-out explores in parallel, so time-to-first-hit is far
        // shorter than a single sequential walker with the same budget.
        let gsa = run(1_000, 53);
        let (phys, workload, overlay) = world(150, 100, 53);
        let walk = Simulation::builder(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            crate::random_walk::RandomWalk::new(crate::random_walk::RandomWalkConfig {
                walkers: 1,
                ttl: 1_000,
                retransmit: None,
            }),
            53,
        )
        .run();
        if gsa.ledger.num_succeeded() > 10 && walk.ledger.num_succeeded() > 10 {
            assert!(
                gsa.ledger.avg_response_time_ms() < walk.ledger.avg_response_time_ms(),
                "gsa {} ms vs walk {} ms",
                gsa.ledger.avg_response_time_ms(),
                walk.ledger.avg_response_time_ms()
            );
        }
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn zero_budget_rejected() {
        Gsa::new(GsaConfig {
            budget: 0,
            branch: 4,
        });
    }
}
