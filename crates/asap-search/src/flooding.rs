//! Gnutella-style flooding ("The TTL for flooding is set to 6").
//!
//! The requester sends the query to every neighbor; each node forwards a
//! first-seen query to all neighbors but the sender until the TTL expires.
//! Matching nodes return a hit directly to the requester.

use crate::common::{absorb_hit, reply_if_match, BaselineMsg, Retransmit, RetransmitState, SeenTracker};
use asap_metrics::{MsgClass, RetryStat};
use asap_overlay::PeerId;
use asap_sim::collections::DetHashMap;
use asap_sim::{query_size, Protocol, Transport};
use asap_workload::{KeywordId, QuerySpec};
use std::rc::Rc;

/// Flooding parameters.
#[derive(Debug, Clone, Copy)]
pub struct FloodingConfig {
    /// Hop limit (paper: 6).
    pub ttl: u8,
    /// Duplicate-suppression window in queries.
    pub seen_window: usize,
    /// Optional TTL-respecting retransmission of unanswered queries
    /// (`None`, the default, arms no timers — the paper's behavior).
    pub retransmit: Option<Retransmit>,
}

impl Default for FloodingConfig {
    fn default() -> Self {
        Self {
            ttl: 6,
            seen_window: 256,
            retransmit: None,
        }
    }
}

/// The flooding baseline protocol.
#[derive(Debug)]
pub struct Flooding {
    pub(crate) config: FloodingConfig,
    pub(crate) seen: SeenTracker,
    /// Queries awaiting possible retransmission, by query id (which doubles
    /// as the timer tag — the baselines use no other timers).
    pub(crate) retrans: DetHashMap<u32, RetransmitState>,
}

impl Flooding {
    pub fn new(config: FloodingConfig) -> Self {
        assert!(config.ttl >= 1, "flooding needs a positive TTL");
        if let Some(rt) = &config.retransmit {
            rt.validate();
        }
        Self {
            seen: SeenTracker::new(config.seen_window),
            retrans: DetHashMap::default(),
            config,
        }
    }

    fn fan_out<C: Transport<Msg = BaselineMsg>>(
        ctx: &mut C,
        node: PeerId,
        exclude: Option<PeerId>,
        query: u32,
        requester: PeerId,
        terms: &Rc<[KeywordId]>,
        ttl: u8,
    ) {
        let bytes = query_size(terms.len());
        // Index loop re-borrowing the neighbor slice each iteration: sends
        // only enqueue events and the overlay cannot change mid-event, so no
        // target list needs materializing.
        let mut i = 0;
        let mut fanout: u32 = 0;
        loop {
            let nbrs = ctx.neighbors(node);
            if i >= nbrs.len() {
                break;
            }
            let t = nbrs[i];
            i += 1;
            if Some(t) == exclude {
                continue;
            }
            fanout += 1;
            ctx.send(
                node,
                t,
                MsgClass::Query,
                bytes,
                BaselineMsg::Flood {
                    query,
                    requester,
                    terms: Rc::clone(terms),
                    ttl,
                },
            );
        }
        ctx.trace(|| asap_sim::trace::Event::FloodFanout {
            id: query,
            node,
            ttl: u32::from(ttl),
            fanout,
        });
    }
}

impl Protocol for Flooding {
    type Msg = BaselineMsg;

    fn on_query<C: Transport<Msg = BaselineMsg>>(&mut self, ctx: &mut C, q: &QuerySpec) {
        let terms: Rc<[KeywordId]> = q.terms.clone().into();
        // The requester is marked visited so reflected floods die instantly.
        self.seen.first_visit(q.id, q.requester);
        Self::fan_out(ctx, q.requester, None, q.id, q.requester, &terms, self.config.ttl);
        if let Some(rt) = self.config.retransmit {
            self.retrans.insert(
                q.id,
                RetransmitState {
                    requester: q.requester,
                    terms,
                    backoff: rt.backoff(),
                },
            );
            ctx.set_timer(q.requester, rt.timeout_us, u64::from(q.id));
        }
    }

    fn on_message<C: Transport<Msg = BaselineMsg>>(
        &mut self,
        ctx: &mut C,
        to: PeerId,
        from: PeerId,
        msg: BaselineMsg,
    ) {
        match msg {
            BaselineMsg::Flood {
                query,
                requester,
                terms,
                ttl,
            } => {
                if !self.seen.first_visit(query, to) {
                    ctx.count(RetryStat::DuplicatesSuppressed);
                    return; // duplicate
                }
                reply_if_match(ctx, to, requester, query, &terms);
                if ttl > 1 {
                    Self::fan_out(ctx, to, Some(from), query, requester, &terms, ttl - 1);
                }
            }
            BaselineMsg::Hit { query, .. } => absorb_hit(ctx, query),
            other => unreachable!("flooding got {other:?}"),
        }
    }

    fn on_timer<C: Transport<Msg = BaselineMsg>>(&mut self, ctx: &mut C, node: PeerId, tag: u64) {
        let query = tag as u32;
        let Some(state) = self.retrans.get_mut(&query) else {
            return;
        };
        if state.requester != node {
            return;
        }
        if ctx.is_answered(query) {
            self.retrans.remove(&query);
            return;
        }
        let next = state.backoff.next();
        let terms = Rc::clone(&state.terms);
        match next {
            Some(delay) => {
                // The seen tracker still remembers everyone the first wave
                // reached, so the re-flood only probes the subtrees the lost
                // copies never covered.
                ctx.count(RetryStat::Retries);
                Self::fan_out(ctx, node, None, query, node, &terms, self.config.ttl);
                ctx.set_timer(node, delay, tag);
            }
            None => {
                self.retrans.remove(&query);
                ctx.count(RetryStat::DeliveriesAbandoned);
            }
        }
    }

    fn on_leave<C: Transport<Msg = BaselineMsg>>(&mut self, _ctx: &mut C, node: PeerId) {
        // Abandon retransmission of searches the leaving node was running.
        self.retrans.retain(|_, s| s.requester != node);
    }

    /// Flooding's only cross-event state is the duplicate-suppression
    /// tracker, whose live-key count must respect its configured window.
    fn audit_invariants<C: Transport<Msg = BaselineMsg>>(&self, _ctx: &C) -> Vec<String> {
        let mut violations = Vec::new();
        if self.seen.tracked_queries() > self.config.seen_window {
            violations.push(format!(
                "seen tracker holds {} queries, window is {}",
                self.seen.tracked_queries(),
                self.config.seen_window
            ));
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::world;
    use asap_overlay::OverlayKind;
    use asap_sim::Simulation;

    #[test]
    fn flooding_finds_most_targets() {
        let (phys, workload, overlay) = world(150, 200, 31);
        let report = Simulation::builder(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            Flooding::new(FloodingConfig::default()),
            31,
        )
        .run();
        // Flooding with TTL 6 over a 150-node degree-5 overlay reaches
        // essentially everyone: the paper reports a high success rate.
        assert!(
            report.ledger.success_rate() > 0.9,
            "success {}",
            report.ledger.success_rate()
        );
    }

    #[test]
    fn flooding_message_count_scales_with_network() {
        let (phys, workload, overlay) = world(150, 50, 32);
        let report = Simulation::builder(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            Flooding::new(FloodingConfig::default()),
            32,
        )
        .run();
        let queries = report.ledger.num_queries() as u64;
        // Every flood touches on the order of the whole overlay.
        assert!(
            report.messages_sent > queries * 100,
            "{} messages for {queries} queries",
            report.messages_sent
        );
    }

    #[test]
    fn ttl_one_reaches_only_neighbors() {
        let (phys, workload, overlay) = world(150, 100, 33);
        let cfg = FloodingConfig {
            ttl: 1,
            ..Default::default()
        };
        let report = Simulation::builder(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            Flooding::new(cfg),
            33,
        )
        .run();
        // Success collapses: only direct neighbors are probed.
        assert!(
            report.ledger.success_rate() < 0.5,
            "success {}",
            report.ledger.success_rate()
        );
    }

    #[test]
    #[should_panic(expected = "positive TTL")]
    fn zero_ttl_rejected() {
        Flooding::new(FloodingConfig {
            ttl: 0,
            ..Default::default()
        });
    }
}
