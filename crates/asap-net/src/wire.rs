//! Length-prefixed wire framing over the checkpoint message codecs.
//!
//! Every protocol that can ride a checkpoint
//! ([`CheckpointProtocol`]) already owns a canonical, panic-free binary
//! codec for its in-flight messages. The wire layer reuses it verbatim: a
//! frame is an envelope (addressing, class, billed size) around exactly one
//! `P::Msg` payload, so sim and net backends serialize identically and no
//! per-protocol wire code exists at all.
//!
//! Frame layout (little-endian, fixed field order):
//!
//! ```text
//! [len: u32]                         length of everything after this field
//! [from: u32] [to: u32]              peer ids
//! [class: u8]                        MsgClass tag (= MsgClass::index())
//! [billed: u32]                      bytes billed by the protocol model
//! [payload: len - 21 bytes]          P::Msg via CheckpointProtocol codec
//! [checksum: u64]                    FNV-1a 64 over from..payload
//! ```
//!
//! The `billed` field carries the *modeled* message size (the paper's
//! analytic sizes, what [`asap_sim::Transport::send`] charges), which is
//! deliberately independent of the encoded byte count — receivers account
//! the same bytes the sender charged without re-deriving them.
//!
//! Decoding is panic-free by construction (lint rule R4 applies to this
//! crate): truncation, bit flips, bad length prefixes, unknown class tags,
//! and malformed payloads all map to a typed [`WireError`].

use asap_metrics::MsgClass;
use asap_overlay::PeerId;
use asap_sim::{CheckpointProtocol, CodecError, Decoder, Encoder, Fnv64};

/// Hard upper bound on `len` (bytes after the length prefix). Far above any
/// real ASAP message (full ads are ~KB-scale); caps what a corrupted length
/// field can make a reader buffer.
pub const MAX_FRAME: usize = 1 << 20;

/// Envelope bytes covered by `len` besides the payload:
/// from(4) + to(4) + class(1) + billed(4) + checksum(8).
pub const ENVELOPE: usize = 21;

/// Typed framing failure. Decoding never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends mid-frame (only from [`decode_frame_exact`]; the
    /// streaming [`decode_frame`] reports an incomplete prefix as `None`).
    Truncated,
    /// Length prefix exceeds [`MAX_FRAME`].
    OversizedFrame(u32),
    /// Length prefix smaller than the fixed envelope — no room for even an
    /// empty payload.
    UndersizedFrame(u32),
    /// The trailing FNV-1a checksum does not match the frame body.
    BadChecksum,
    /// Class byte outside the [`MsgClass`] tag range.
    BadClassTag(u8),
    /// The payload failed the protocol's message codec.
    Payload(CodecError),
    /// Payload bytes left over after the message decoded cleanly.
    TrailingPayload,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame truncated"),
            Self::OversizedFrame(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            Self::UndersizedFrame(n) => write!(f, "frame length {n} below envelope {ENVELOPE}"),
            Self::BadChecksum => write!(f, "frame checksum mismatch"),
            Self::BadClassTag(t) => write!(f, "unknown message class tag {t}"),
            Self::Payload(e) => write!(f, "payload decode failed: {e}"),
            Self::TrailingPayload => write!(f, "payload bytes left after message"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        Self::Payload(e)
    }
}

/// One protocol message with its envelope, as it crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<M> {
    pub from: PeerId,
    pub to: PeerId,
    pub class: MsgClass,
    /// Modeled message size charged by the sender (see module docs).
    pub billed: u32,
    pub msg: M,
}

/// `MsgClass` → wire tag. The tag *is* [`MsgClass::index`], pinned here so
/// reordering the enum cannot silently change the wire format.
pub fn class_to_tag(class: MsgClass) -> u8 {
    class.index() as u8
}

/// Wire tag → `MsgClass`.
pub fn class_from_tag(tag: u8) -> Result<MsgClass, WireError> {
    MsgClass::ALL
        .get(tag as usize)
        .copied()
        .ok_or(WireError::BadClassTag(tag))
}

/// Append one encoded frame to `out`. Infallible: every `Frame` has exactly
/// one wire image.
pub fn encode_frame_into<P: CheckpointProtocol>(frame: &Frame<P::Msg>, out: &mut Vec<u8>) {
    let mut body = Encoder::new();
    body.put_u32(frame.from.0);
    body.put_u32(frame.to.0);
    body.put_u8(class_to_tag(frame.class));
    body.put_u32(frame.billed);
    P::encode_msg(&frame.msg, &mut body);
    let body = body.into_bytes();
    let mut sum = Fnv64::new();
    sum.write_bytes(&body);
    let len = (body.len() + 8) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&sum.finish().to_le_bytes());
}

/// Encode one frame into a fresh buffer.
pub fn encode_frame<P: CheckpointProtocol>(frame: &Frame<P::Msg>) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame_into::<P>(frame, &mut out);
    out
}

/// A successfully parsed frame and the bytes it consumed, or `None` for a
/// valid-so-far but incomplete prefix.
pub type Decoded<M> = Option<(Frame<M>, usize)>;

/// Streaming decode: parse one frame from the front of `buf`.
///
/// * `Ok(Some((frame, consumed)))` — a complete, valid frame; the caller
///   drops `consumed` bytes and goes again.
/// * `Ok(None)` — the buffer holds a valid but incomplete prefix; read more
///   bytes. (A stream that *ends* here is [`WireError::Truncated`] at the
///   caller's discretion — see [`decode_frame_exact`].)
/// * `Err(_)` — the prefix can never become a valid frame.
pub fn decode_frame<P: CheckpointProtocol>(buf: &[u8]) -> Result<Decoded<P::Msg>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&buf[..4]);
    let len = u32::from_le_bytes(len_bytes);
    if (len as usize) > MAX_FRAME {
        return Err(WireError::OversizedFrame(len));
    }
    if (len as usize) < ENVELOPE {
        return Err(WireError::UndersizedFrame(len));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let body = &buf[4..total - 8];
    let mut sum_bytes = [0u8; 8];
    sum_bytes.copy_from_slice(&buf[total - 8..total]);
    let mut sum = Fnv64::new();
    sum.write_bytes(body);
    if sum.finish() != u64::from_le_bytes(sum_bytes) {
        return Err(WireError::BadChecksum);
    }
    let mut dec = Decoder::new(body);
    let from = PeerId(dec.get_u32()?);
    let to = PeerId(dec.get_u32()?);
    let class = class_from_tag(dec.get_u8()?)?;
    let billed = dec.get_u32()?;
    let msg = P::decode_msg(&mut dec)?;
    dec.finish().map_err(|_| WireError::TrailingPayload)?;
    Ok(Some((
        Frame {
            from,
            to,
            class,
            billed,
            msg,
        },
        total,
    )))
}

/// Decode a buffer that must hold exactly one whole frame (the loopback
/// dispatch path). Incomplete input is [`WireError::Truncated`]; leftover
/// bytes after the frame are [`WireError::TrailingPayload`].
pub fn decode_frame_exact<P: CheckpointProtocol>(buf: &[u8]) -> Result<Frame<P::Msg>, WireError> {
    match decode_frame::<P>(buf)? {
        Some((frame, consumed)) if consumed == buf.len() => Ok(frame),
        Some(_) => Err(WireError::TrailingPayload),
        None => Err(WireError::Truncated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_search::Flooding;
    use asap_workload::KeywordId;

    fn frame() -> Frame<asap_search::BaselineMsg> {
        Frame {
            from: PeerId(3),
            to: PeerId(9),
            class: MsgClass::Query,
            billed: 60,
            msg: asap_search::BaselineMsg::Flood {
                query: 7,
                requester: PeerId(3),
                terms: vec![KeywordId(1), KeywordId(4)].into(),
                ttl: 5,
            },
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let f = frame();
        let bytes = encode_frame::<Flooding>(&f);
        let back = decode_frame_exact::<Flooding>(&bytes).expect("clean decode");
        assert_eq!(back.from, f.from);
        assert_eq!(back.to, f.to);
        assert_eq!(back.class, f.class);
        assert_eq!(back.billed, f.billed);
        // The message codec is canonical, so decode → re-encode being
        // byte-identical proves the payload survived unchanged.
        assert_eq!(encode_frame::<Flooding>(&back), bytes);
    }

    #[test]
    fn streaming_decode_reports_incomplete_prefixes() {
        let bytes = encode_frame::<Flooding>(&frame());
        for cut in 0..bytes.len() {
            let r = decode_frame::<Flooding>(&bytes[..cut]).expect("prefix is not an error");
            assert!(r.is_none(), "cut at {cut} produced a frame");
        }
        let (f, consumed) = decode_frame::<Flooding>(&bytes).expect("ok").expect("complete");
        assert_eq!(consumed, bytes.len());
        assert_eq!(encode_frame::<Flooding>(&f), bytes);
    }

    #[test]
    fn class_tags_cover_every_class() {
        for class in MsgClass::ALL {
            assert_eq!(class_from_tag(class_to_tag(class)).unwrap(), class);
        }
        assert_eq!(
            class_from_tag(MsgClass::COUNT as u8),
            Err(WireError::BadClassTag(MsgClass::COUNT as u8))
        );
    }

    #[test]
    fn bad_length_prefixes_are_typed_errors() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
        oversized.extend_from_slice(&[0u8; 64]);
        assert_eq!(
            decode_frame::<Flooding>(&oversized).unwrap_err(),
            WireError::OversizedFrame((MAX_FRAME as u32) + 1)
        );
        let mut undersized = Vec::new();
        undersized.extend_from_slice(&8u32.to_le_bytes());
        undersized.extend_from_slice(&[0u8; 64]);
        assert_eq!(
            decode_frame::<Flooding>(&undersized).unwrap_err(),
            WireError::UndersizedFrame(8)
        );
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let bytes = encode_frame::<Flooding>(&frame());
        // Flip one bit in the body (past the length prefix, before the
        // checksum) — the checksum must catch it before field decoding.
        for pos in 4..bytes.len() - 8 {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert_eq!(
                decode_frame::<Flooding>(&bad).unwrap_err(),
                WireError::BadChecksum,
                "flip at {pos} slipped through"
            );
        }
    }
}
