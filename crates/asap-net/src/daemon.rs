//! The `asapd` daemon runtime: one process hosting a whole loopback node
//! population, paced by the wall clock and driven over a control socket.
//!
//! Where [`crate::loopback`] replays a pinned workload trace for digest
//! equivalence, the daemon's "trace" arrives live: text commands on a Unix
//! domain socket (`join`, `leave`, `advertise`, `search`, `query`, `stats`,
//! `peers`, `quit`) mutate the same [`NetCtx`] world the loopback uses,
//! through the same [`Transport`]-generic protocol hooks. Messages still
//! cross the wire codec; delivery is still latency-scheduled on the virtual
//! timeline — but virtual time is paced against the OS clock through a
//! [`VirtualClock`], and protocol sends are staged in per-peer outbound
//! queues drained after each callback.
//!
//! Two deliberate nondeterminism boundaries (and why the daemon makes no
//! digest claim — see DESIGN.md §7):
//!
//! * **Wall-clock pacing.** Command arrival times, and therefore query
//!   issue and send timestamps, come from [`VirtualClock::now_us`].
//! * **Outbound drain order.** Same-instant deliveries are sequenced by
//!   destination peer id at drain time, not by the protocol's send order.
//!
//! The control protocol is line-oriented: one command in, one `ok ...` or
//! `err ...` line out, so `nc -U`/scripts can drive a node population
//! interactively.

use crate::clock::VirtualClock;
use crate::loopback::NetCtx;
use asap_overlay::{OverlayConfig, OverlayKind, PeerId};
use asap_sim::event::EngineEvent;
use asap_sim::{CheckpointProtocol, Transport};
use asap_topology::{PhysicalNetwork, TransitStubConfig};
use asap_trace::Event as TraceEvt;
use asap_workload::{DocId, QuerySpec, WorkloadConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// How the daemon builds and paces its world.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Node population size (≥ 4; the reduced workload generator's floor).
    pub peers: usize,
    /// World seed: topology, overlay, content model, placement.
    pub seed: u64,
    /// Virtual-per-wall clock speed factor (see [`VirtualClock`]).
    pub speed: u32,
    /// Control-socket path; an existing file there is replaced.
    pub socket: PathBuf,
}

/// Idle wait cap: how long the event loop blocks for a command when no
/// queued event comes due sooner.
const IDLE_WAIT: Duration = Duration::from_millis(50);

/// Run a daemon until a `quit` command (or the listener dies). Owns the
/// calling thread; the control listener runs on background threads. The
/// protocol is built from the generated content model (ASAP's ad tables
/// are model-sized), so callers pass a constructor, not an instance.
pub fn run_daemon<P, F>(cfg: &DaemonConfig, make_protocol: F) -> std::io::Result<()>
where
    P: CheckpointProtocol,
    F: FnOnce(&asap_workload::ContentModel) -> P,
{
    let phys = PhysicalNetwork::generate(&TransitStubConfig::reduced(cfg.seed));
    // One scripted query satisfies the generator's floor; the trace is
    // never preloaded — the operator *is* the trace.
    let workload = asap_workload::generate(&WorkloadConfig::reduced(cfg.peers, 1, cfg.seed));
    let overlay = OverlayConfig::new(OverlayKind::Random, cfg.peers, cfg.seed).build();
    let protocol = make_protocol(&workload.model);
    let mut ctx =
        NetCtx::<P>::assemble(&phys, &workload, overlay, OverlayKind::Random, cfg.seed, false);
    ctx.stage_outbound();

    let _ = std::fs::remove_file(&cfg.socket);
    let listener = UnixListener::bind(&cfg.socket)?;
    let (cmd_tx, cmd_rx) = mpsc::channel::<(String, mpsc::Sender<String>)>();
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let tx = cmd_tx.clone();
            thread::spawn(move || serve_connection(stream, &tx));
        }
    });

    let clock = VirtualClock::new(cfg.speed);
    let mut daemon = Daemon {
        ctx,
        protocol,
        next_query_id: 0,
    };
    daemon.protocol.on_init(&mut daemon.ctx);
    daemon.ctx.drain_outbound();

    loop {
        daemon.dispatch_due(&clock);
        let wait = match daemon.ctx.queue.peek_time() {
            Some(t) => clock.wall_until(t).min(IDLE_WAIT),
            None => IDLE_WAIT,
        };
        match cmd_rx.recv_timeout(wait) {
            Ok((line, reply)) => {
                daemon.ctx.now_us = daemon.ctx.now_us.max(clock.now_us());
                let (response, quit) = daemon.handle_command(&line);
                let _ = reply.send(response);
                daemon.ctx.drain_outbound();
                if quit {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    let _ = std::fs::remove_file(&cfg.socket);
    Ok(())
}

/// One control connection: line in, line out, until EOF.
fn serve_connection(stream: UnixStream, tx: &mpsc::Sender<(String, mpsc::Sender<String>)>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let (reply_tx, reply_rx) = mpsc::channel();
        if tx.send((line, reply_tx)).is_err() {
            break;
        }
        let Ok(response) = reply_rx.recv() else { break };
        if writeln!(write_half, "{response}").is_err() {
            break;
        }
    }
}

struct Daemon<'a, P: CheckpointProtocol> {
    ctx: NetCtx<'a, P>,
    protocol: P,
    next_query_id: u32,
}

impl<'a, P: CheckpointProtocol> Daemon<'a, P> {
    /// Dispatch every event whose virtual due time has passed, draining
    /// staged sends after each callback.
    fn dispatch_due(&mut self, clock: &VirtualClock) {
        loop {
            let now_v = clock.now_us();
            let Some(t) = self.ctx.queue.peek_time() else {
                return;
            };
            if t > now_v {
                return;
            }
            let Some(sched) = self.ctx.queue.pop() else {
                return;
            };
            // Late events (due before a command bumped the clock) keep the
            // timeline monotonic rather than exact — wall pacing, not
            // virtual replay.
            self.ctx.now_us = self.ctx.now_us.max(sched.time_us);
            match sched.event {
                EngineEvent::Deliver { to, from, msg, dup } => {
                    let delivered = self.ctx.alive[to.index()];
                    self.ctx
                        .trace(|| TraceEvt::Deliver { to, from, delivered, dup });
                    if delivered {
                        match crate::wire::decode_frame_exact::<P>(&msg) {
                            Ok(frame) => {
                                self.protocol.on_message(&mut self.ctx, to, from, frame.msg)
                            }
                            Err(_) => self.ctx.wire_errors += 1,
                        }
                    }
                }
                EngineEvent::Timer { node, tag } => {
                    let fired = self.ctx.alive[node.index()];
                    self.ctx.trace(|| TraceEvt::TimerFired { node, tag, fired });
                    if fired {
                        self.protocol.on_timer(&mut self.ctx, node, tag);
                    }
                }
                // The daemon never preloads a trace; nothing schedules this.
                EngineEvent::Trace(_) => {}
            }
            self.ctx.drain_outbound();
        }
    }

    /// Execute one control command; returns `(response_line, quit)`.
    fn handle_command(&mut self, line: &str) -> (String, bool) {
        let mut words = line.split_whitespace();
        let verb = words.next().unwrap_or("");
        let args: Vec<&str> = words.collect();
        let response = match verb {
            "stats" => Ok(format!(
                "ok now_us={} alive={} sent={} answered={}/{}",
                self.ctx.now_us,
                self.ctx.alive_count,
                self.ctx.messages_sent,
                self.ctx.ledger.num_succeeded(),
                self.ctx.ledger.num_queries(),
            )),
            "peers" => Ok(self.peers_line()),
            "join" => self.parse_peer(&args, 0).map(|p| {
                if self.ctx.apply_join(p) {
                    self.protocol.on_join(&mut self.ctx, p);
                    format!("ok join peer={}", p.0)
                } else {
                    format!("err peer {} already alive", p.0)
                }
            }),
            "leave" => self.parse_peer(&args, 0).map(|p| {
                if self.ctx.apply_leave(p) {
                    self.protocol.on_leave(&mut self.ctx, p);
                    format!("ok leave peer={}", p.0)
                } else {
                    format!("err peer {} already offline", p.0)
                }
            }),
            "advertise" => self.cmd_advertise(&args),
            "search" => self.cmd_search(&args),
            "query" => match args.first().and_then(|s| s.parse::<u32>().ok()) {
                Some(id) => Ok(if self.ctx.ledger.is_answered(id) {
                    format!("ok answered id={id}")
                } else {
                    format!("ok pending id={id}")
                }),
                None => Err("usage: query <id>".to_string()),
            },
            "quit" => return ("ok bye".to_string(), true),
            "" => Err("empty command".to_string()),
            other => Err(format!("unknown command {other}")),
        };
        match response {
            Ok(line) => (line, false),
            Err(e) => (format!("err {e}"), false),
        }
    }

    fn peers_line(&self) -> String {
        let mut alive = String::new();
        let mut offline = String::new();
        for i in 0..self.ctx.alive.len() {
            let slot = if self.ctx.alive[i] {
                &mut alive
            } else {
                &mut offline
            };
            if !slot.is_empty() {
                slot.push(',');
            }
            slot.push_str(&i.to_string());
        }
        format!("ok alive={alive} offline={offline}")
    }

    fn parse_peer(&self, args: &[&str], idx: usize) -> Result<PeerId, String> {
        let raw = args
            .get(idx)
            .ok_or_else(|| "missing peer id".to_string())?;
        let id: u32 = raw.parse().map_err(|_| format!("bad peer id {raw}"))?;
        if (id as usize) < self.ctx.alive.len() {
            Ok(PeerId(id))
        } else {
            Err(format!("peer {id} out of range"))
        }
    }

    /// `advertise <peer> [<doc>]` — share a document (default: the first
    /// one the peer does not hold yet) and run the protocol's
    /// content-change hook, exactly like a trace `AddDocument`.
    fn cmd_advertise(&mut self, args: &[&str]) -> Result<String, String> {
        let peer = self.parse_peer(args, 0)?;
        if !self.ctx.alive[peer.index()] {
            return Err(format!("peer {} is offline", peer.0));
        }
        let doc = match args.get(1) {
            Some(raw) => self.parse_doc(raw)?,
            None => (0..self.ctx.model.num_docs() as u32)
                .map(DocId)
                .find(|&d| !self.ctx.content.peer_has_doc(peer, d))
                .ok_or_else(|| "peer already holds every document".to_string())?,
        };
        if self.ctx.apply_content(peer, doc, true) {
            self.protocol.on_content_change(&mut self.ctx, peer, doc, true);
            Ok(format!("ok advertise peer={} doc={}", peer.0, doc.0))
        } else {
            Err(format!("peer {} already holds doc {}", peer.0, doc.0))
        }
    }

    /// `search <peer> [<doc>]` — issue a query for a target document
    /// (default: the lowest-id document some *other* live peer holds),
    /// with the document's own keywords as the conjunctive terms.
    fn cmd_search(&mut self, args: &[&str]) -> Result<String, String> {
        let requester = self.parse_peer(args, 0)?;
        if !self.ctx.alive[requester.index()] {
            return Err(format!("peer {} is offline", requester.0));
        }
        let target = match args.get(1) {
            Some(raw) => self.parse_doc(raw)?,
            None => (0..self.ctx.model.num_docs() as u32)
                .map(DocId)
                .find(|&d| {
                    self.ctx
                        .content
                        .holders(d)
                        .iter()
                        .any(|&h| h != requester && self.ctx.alive[h.index()])
                })
                .ok_or_else(|| "no live remote holder of any document".to_string())?,
        };
        let id = self.next_query_id;
        self.next_query_id += 1;
        let spec = QuerySpec {
            id,
            requester,
            terms: self.ctx.model.doc(target).keywords.clone(),
            target,
        };
        self.ctx.register_query(&spec);
        self.protocol.on_query(&mut self.ctx, &spec);
        Ok(format!("ok search id={id} target={}", target.0))
    }

    fn parse_doc(&self, raw: &str) -> Result<DocId, String> {
        let id: u32 = raw.parse().map_err(|_| format!("bad doc id {raw}"))?;
        if (id as usize) < self.ctx.model.num_docs() {
            Ok(DocId(id))
        } else {
            Err(format!("doc {id} out of range"))
        }
    }
}
