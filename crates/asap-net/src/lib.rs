//! Wire-crossing runtimes for the ASAP protocol stack.
//!
//! The protocol crates (`asap-search`, `asap-core`) are written against the
//! [`asap_sim::Transport`] capability trait, never against the sim engine
//! itself. This crate supplies the *other* side of that seam:
//!
//! * [`wire`] — length-prefixed, checksummed framing over the protocols'
//!   canonical checkpoint codecs; no per-protocol wire code.
//! * [`loopback`] — a deterministic many-node in-process runtime whose
//!   event queue carries encoded frames. It mirrors the sim engine's
//!   scheduling exactly, so replaying a pinned workload through both
//!   backends and comparing backend-tagged lifecycle digests
//!   ([`asap_trace::LifecycleDigest`]) proves the API redesign preserved
//!   protocol behavior *through serialization*.
//! * [`clock`] — the monotonic wall→virtual clock mapping.
//! * [`daemon`] — the `asapd` runtime: the same world paced by the wall
//!   clock, driven over a Unix-socket control protocol, with per-peer
//!   outbound queues. Deliberately nondeterministic at two documented
//!   boundaries (pacing, drain order); it makes no digest claim.
//!
//! Determinism policy: lint rules R1–R5 apply to this crate. The wall
//! clock reads in [`clock`] are the single sanctioned ambient-time
//! boundary, pragma'd at each site.

pub mod clock;
pub mod daemon;
pub mod loopback;
pub mod wire;

pub use clock::VirtualClock;
pub use daemon::{run_daemon, DaemonConfig};
pub use loopback::{Loopback, NetReport};
pub use wire::{Frame, WireError, MAX_FRAME};
