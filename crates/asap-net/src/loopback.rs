//! The deterministic many-node loopback runtime: every protocol message
//! crosses the wire codec.
//!
//! [`Loopback`] mirrors the sim engine's assembly and dispatch rules
//! exactly — same placement draws, same `(time, seq)` event order, same
//! join/leave/content bookkeeping, same RNG stream discipline — but its
//! event queue carries **encoded frames** ([`crate::wire`]) instead of
//! in-memory message values: `send` serializes the payload through the
//! protocol's canonical codec, and dispatch deserializes it before
//! `on_message`. A protocol therefore runs the identical decision sequence
//! on both backends, with the wire format load-bearing in between; the
//! backend-tagged lifecycle digests ([`asap_trace::LifecycleDigest`])
//! being equal is the checked sim≡net witness.
//!
//! What is deliberately *not* mirrored: the audit, fault, and adversary
//! layers (sim-engine-only instrumentation; equivalence runs are honest
//! and fault-free) and the engine profile. Locally produced frames decode
//! cleanly by construction; if one ever does not, the loopback drops the
//! message and counts it in [`NetReport::wire_errors`] rather than
//! panicking (lint rule R4), so a codec regression surfaces as a digest
//! mismatch plus a nonzero error count, never an abort.

use crate::wire::{self, Frame};
use asap_metrics::{LoadRecorder, MsgClass, QueryLedger, RetryCounters, RetryStat};
use asap_overlay::{Overlay, OverlayKind, PeerId};
use asap_sim::event::{EngineEvent, EventQueue};
use asap_sim::{CheckpointProtocol, EventHandle, ScratchGuard, ScratchSlot, Transport};
use asap_topology::{PhysNodeId, PhysicalNetwork};
use asap_trace::{Event as TraceEvt, TraceSink};
use asap_workload::{ContentModel, ContentState, DocId, QuerySpec, TraceEvent, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::marker::PhantomData;

/// A staged outbound frame: `(due_us, to, from, encoded frame)`. Only the
/// daemon stages sends (see [`NetCtx::stage_outbound`]); the loopback
/// enqueues immediately to preserve the sim's `(time, seq)` order.
type Staged = (u64, PeerId, PeerId, Vec<u8>);

/// The world as seen by a protocol running on the net backend. Mirrors the
/// sim engine's `Ctx` field-for-field minus the sim-only instrumentation
/// layers; the [`Transport`] impl is the single protocol-facing surface.
pub struct NetCtx<'a, P: CheckpointProtocol> {
    pub(crate) now_us: u64,
    pub(crate) queue: EventQueue<Vec<u8>>,
    pub(crate) overlay: Overlay,
    pub(crate) overlay_kind: OverlayKind,
    pub(crate) alive: Vec<bool>,
    pub(crate) alive_count: usize,
    pub(crate) alive_list: Vec<PeerId>,
    pub(crate) scratch: ScratchSlot,
    pub(crate) content: ContentState,
    pub(crate) model: &'a ContentModel,
    pub(crate) phys: &'a PhysicalNetwork,
    pub(crate) assignment: Vec<PhysNodeId>,
    pub(crate) rng: SmallRng,
    pub(crate) load: LoadRecorder,
    pub(crate) ledger: QueryLedger,
    pub(crate) retry: RetryCounters,
    pub(crate) messages_sent: u64,
    pub(crate) horizon_us: u64,
    pub(crate) trace_end_us: u64,
    pub(crate) trace: Option<Box<dyn TraceSink>>,
    pub(crate) wire_errors: u64,
    /// Per-destination outbound queues; `Some` puts sends into staged mode
    /// (daemon), `None` enqueues directly (loopback).
    pub(crate) outbound: Option<Vec<VecDeque<Staged>>>,
    pub(crate) _protocol: PhantomData<fn() -> P>,
}

impl<'a, P: CheckpointProtocol> NetCtx<'a, P> {
    /// Mirror of the sim engine's assembly: identical placement draws from
    /// the identically salted engine stream, identical initial liveness and
    /// detachment, identical trace preload (skipped for the daemon, whose
    /// trace arrives over the control socket instead).
    pub(crate) fn assemble(
        phys: &'a PhysicalNetwork,
        workload: &'a Workload,
        mut overlay: Overlay,
        overlay_kind: OverlayKind,
        seed: u64,
        preload_trace: bool,
    ) -> Self {
        let n = workload.model.num_peers();
        // lint: allow(release-assert, reason=construction-time validation, mirrors Simulation::assemble, before any event dispatch)
        assert_eq!(overlay.num_peers(), n, "overlay/workload size mismatch");
        // lint: allow(release-assert, reason=construction-time validation, mirrors Simulation::assemble, before any event dispatch)
        assert!(
            phys.num_nodes() >= n,
            "need at least as many physical nodes as peers"
        );
        // lint: allow(rng-stream-discipline, reason=engine-stream salt, deliberately identical to Simulation::assemble so placement and join draws mirror the sim bit-for-bit)
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x51AE_0F5A_1769);

        let mut ids: Vec<u32> = (0..phys.num_nodes() as u32).collect();
        for i in 0..n {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        let assignment: Vec<PhysNodeId> = ids[..n].iter().map(|&i| PhysNodeId(i)).collect();

        let alive = workload.initially_alive.clone();
        for (i, &a) in alive.iter().enumerate() {
            if !a {
                overlay.detach(PeerId(i as u32));
            }
        }
        let alive_count = alive.iter().filter(|&&a| a).count();
        let alive_list: Vec<PeerId> = alive
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| PeerId(i as u32))
            .collect();

        let mut queue = EventQueue::new();
        if preload_trace {
            for te in &workload.trace.events {
                queue.push(te.time_us, EngineEvent::Trace(te.event.clone()));
            }
        }

        let mut load = LoadRecorder::new();
        load.set_alive(0, alive_count);
        let trace_end_us = workload.trace.duration_us();

        Self {
            now_us: 0,
            queue,
            overlay,
            overlay_kind,
            alive,
            alive_count,
            alive_list,
            scratch: ScratchSlot::default(),
            content: ContentState::from_model(&workload.model),
            model: &workload.model,
            phys,
            assignment,
            rng,
            load,
            ledger: QueryLedger::new(),
            retry: RetryCounters::new(),
            messages_sent: 0,
            horizon_us: trace_end_us + 30_000_000,
            trace_end_us,
            trace: None,
            wire_errors: 0,
            outbound: None,
            _protocol: PhantomData,
        }
    }

    #[inline]
    fn emit<F: FnOnce() -> TraceEvt>(&mut self, f: F) {
        if let Some(sink) = self.trace.as_deref_mut() {
            sink.record(self.now_us, &f());
        }
    }

    #[inline]
    fn latency_us(&self, a: PeerId, b: PeerId) -> u64 {
        self.phys
            .latency_us(self.assignment[a.index()], self.assignment[b.index()])
    }

    /// Switch sends into staged per-peer outbound queues (daemon mode).
    pub(crate) fn stage_outbound(&mut self) {
        let n = self.alive.len();
        self.outbound = Some((0..n).map(|_| VecDeque::new()).collect());
    }

    /// Drain every staged outbound frame into the event queue, destination
    /// peers in ascending id order, each peer's frames FIFO. This drain
    /// order — not the sim's send order — sequences same-instant
    /// deliveries, which is the daemon's documented scheduling divergence.
    pub(crate) fn drain_outbound(&mut self) {
        let Some(mut queues) = self.outbound.take() else {
            return;
        };
        for q in queues.iter_mut() {
            while let Some((due, to, from, bytes)) = q.pop_front() {
                self.queue.push(
                    due,
                    EngineEvent::Deliver {
                        to,
                        from,
                        msg: bytes,
                        dup: false,
                    },
                );
            }
        }
        self.outbound = Some(queues);
    }

    /// Mirror of the sim's join handling (same child-RNG derivation, same
    /// attach rule). Returns `false` if `p` was already alive.
    pub(crate) fn apply_join(&mut self, p: PeerId) -> bool {
        if self.alive[p.index()] {
            return false;
        }
        self.alive[p.index()] = true;
        self.alive_count += 1;
        if let Err(pos) = self.alive_list.binary_search(&p) {
            self.alive_list.insert(pos, p);
        }
        self.load.set_alive(self.now_us, self.alive_count);
        let degree = self.overlay_kind.avg_degree().round() as usize;
        // lint: allow(rng-stream-discipline, reason=derived child stream, mirrors the sim engine's join handling exactly)
        let mut rng = SmallRng::seed_from_u64(self.rng.gen());
        match self.overlay_kind {
            OverlayKind::Random => self
                .overlay
                .attach_uniform(p, &self.alive_list, degree, &mut rng),
            OverlayKind::PowerLaw | OverlayKind::Crawled => {
                self.overlay
                    .attach_preferential(p, &self.alive_list, degree, &mut rng)
            }
        }
        self.emit(|| TraceEvt::Join { peer: p });
        true
    }

    /// Mirror of the sim's leave handling. Returns `false` if `p` was
    /// already offline.
    pub(crate) fn apply_leave(&mut self, p: PeerId) -> bool {
        if !self.alive[p.index()] {
            return false;
        }
        self.alive[p.index()] = false;
        self.alive_count -= 1;
        if let Ok(pos) = self.alive_list.binary_search(&p) {
            self.alive_list.remove(pos);
        }
        self.load.set_alive(self.now_us, self.alive_count);
        self.overlay.detach(p);
        self.emit(|| TraceEvt::Leave { peer: p });
        true
    }

    /// Mirror of the sim's content-change handling; `true` if applied.
    pub(crate) fn apply_content(&mut self, peer: PeerId, doc: DocId, added: bool) -> bool {
        let applied = if added {
            self.content.add(self.model, peer, doc)
        } else {
            self.content.remove(self.model, peer, doc)
        };
        self.emit(|| TraceEvt::ContentChanged {
            peer,
            doc: doc.0,
            added,
            applied,
        });
        applied
    }

    /// Mirror of the sim's query registration (ledger + trace; the caller
    /// then invokes `on_query`).
    pub(crate) fn register_query(&mut self, q: &QuerySpec) {
        self.emit(|| TraceEvt::QueryIssued {
            id: q.id,
            requester: q.requester,
        });
        self.ledger.register(q.id, self.now_us);
    }
}

impl<'a, P: CheckpointProtocol> Transport for NetCtx<'a, P> {
    type Msg = P::Msg;

    #[inline]
    fn now_us(&self) -> u64 {
        self.now_us
    }

    #[inline]
    fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    fn send(&mut self, from: PeerId, to: PeerId, class: MsgClass, bytes: usize, msg: P::Msg) {
        debug_assert_ne!(from, to, "no self-messages");
        self.load.record(self.now_us, class, bytes);
        self.messages_sent += 1;
        let base = self.now_us + self.latency_us(from, to);
        let delay_us = base - self.now_us;
        self.emit(|| TraceEvt::Send {
            from,
            to,
            class,
            bytes: bytes as u32,
            delay_us,
        });
        let frame = Frame {
            from,
            to,
            class,
            billed: bytes as u32,
            msg,
        };
        let encoded = wire::encode_frame::<P>(&frame);
        match self.outbound.as_mut() {
            Some(queues) => queues[to.index()].push_back((base, to, from, encoded)),
            None => {
                self.queue.push(
                    base,
                    EngineEvent::Deliver {
                        to,
                        from,
                        msg: encoded,
                        dup: false,
                    },
                );
            }
        }
    }

    fn set_timer(&mut self, node: PeerId, delay_us: u64, tag: u64) -> EventHandle {
        self.emit(|| TraceEvt::TimerSet {
            node,
            delay_us,
            tag,
        });
        self.queue
            .push(self.now_us + delay_us, EngineEvent::Timer { node, tag })
    }

    fn cancel_timer(&mut self, handle: EventHandle) -> bool {
        let cancelled = self.queue.cancel(handle);
        self.emit(|| TraceEvt::TimerCancelled { cancelled });
        cancelled
    }

    #[inline]
    fn scratch(&mut self) -> ScratchGuard {
        self.scratch.lease()
    }

    #[inline]
    fn content(&self) -> &ContentState {
        &self.content
    }

    #[inline]
    fn model(&self) -> &ContentModel {
        self.model
    }

    #[inline]
    fn neighbors(&self, p: PeerId) -> &[PeerId] {
        self.overlay.neighbors(p)
    }

    #[inline]
    fn degree(&self, p: PeerId) -> usize {
        self.overlay.degree(p)
    }

    #[inline]
    fn alive(&self, p: PeerId) -> bool {
        self.alive[p.index()]
    }

    #[inline]
    fn alive_count(&self) -> usize {
        self.alive_count
    }

    #[inline]
    fn alive_peers(&self) -> &[PeerId] {
        debug_assert_eq!(self.alive_list.len(), self.alive_count);
        &self.alive_list
    }

    #[inline]
    fn num_peers(&self) -> usize {
        self.alive.len()
    }

    #[inline]
    fn is_answered(&self, query: u32) -> bool {
        self.ledger.is_answered(query)
    }

    fn report_answer(&mut self, query_id: u32) {
        self.ledger.answer(query_id, self.now_us);
        self.emit(|| TraceEvt::QueryAnswered { id: query_id });
    }

    fn count(&mut self, stat: RetryStat) {
        self.retry.record(stat);
        self.emit(|| TraceEvt::Counter { stat });
    }

    #[inline]
    fn trace(&mut self, f: impl FnOnce() -> TraceEvt) {
        self.emit(f);
    }

    #[inline]
    fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }
}

/// Result of a finished loopback run.
pub struct NetReport<P> {
    pub load: LoadRecorder,
    pub ledger: QueryLedger,
    pub protocol: P,
    pub messages_sent: u64,
    pub end_time_us: u64,
    pub alive: Vec<bool>,
    pub retry: RetryCounters,
    /// The trace sink handed to [`Loopback::trace`], after observing the
    /// whole run; `None` when tracing was off.
    pub trace: Option<Box<dyn TraceSink>>,
    /// Frames that failed to decode at dispatch (always 0 on a healthy
    /// build — a nonzero count means the wire codec regressed).
    pub wire_errors: u64,
}

/// A configured loopback run: the whole node population in one process,
/// every message crossing the wire codec, replaying the same workload
/// trace the sim engine would.
pub struct Loopback<'a, P: CheckpointProtocol> {
    ctx: NetCtx<'a, P>,
    protocol: P,
    started: bool,
    halted: bool,
}

impl<'a, P: CheckpointProtocol> Loopback<'a, P> {
    /// Assemble a loopback run. Arguments and semantics mirror
    /// `Simulation::builder` (same seed → same placement, same preloaded
    /// trace, same horizon).
    pub fn new(
        phys: &'a PhysicalNetwork,
        workload: &'a Workload,
        overlay: Overlay,
        overlay_kind: OverlayKind,
        protocol: P,
        seed: u64,
    ) -> Self {
        Self {
            ctx: NetCtx::assemble(phys, workload, overlay, overlay_kind, seed, true),
            protocol,
            started: false,
            halted: false,
        }
    }

    /// Attach a trace sink (typically an
    /// [`asap_trace::DigestSink`] tagged
    /// [`asap_trace::Backend::Net`]).
    pub fn trace(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.ctx.trace = Some(sink);
        self
    }

    /// Override the horizon grace period (default 30 s past trace end),
    /// mirroring `SimBuilder::horizon_grace`.
    pub fn horizon_grace(mut self, grace_us: u64) -> Self {
        self.ctx.horizon_us = self.ctx.trace_end_us + grace_us;
        self
    }

    /// Run to the horizon (or queue exhaustion) and report.
    pub fn run(mut self) -> NetReport<P> {
        if !self.started {
            self.started = true;
            self.protocol.on_init(&mut self.ctx);
        }
        while self.step() {}
        NetReport {
            end_time_us: self.ctx.now_us,
            messages_sent: self.ctx.messages_sent,
            load: self.ctx.load,
            ledger: self.ctx.ledger,
            alive: self.ctx.alive,
            retry: self.ctx.retry,
            protocol: self.protocol,
            trace: self.ctx.trace,
            wire_errors: self.ctx.wire_errors,
        }
    }

    /// Dispatch the next event; `false` when the run halts. Mirrors the
    /// sim engine's dispatch (horizon rule, liveness gates, trace points)
    /// with frame decoding inserted between delivery and `on_message`.
    fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        let Some(sched) = self.ctx.queue.pop() else {
            self.halted = true;
            return false;
        };
        debug_assert!(sched.time_us >= self.ctx.now_us, "time goes forward");
        if sched.time_us > self.ctx.horizon_us {
            self.halted = true;
            return false;
        }
        self.ctx.now_us = sched.time_us;
        match sched.event {
            EngineEvent::Deliver { to, from, msg, dup } => {
                let delivered = self.ctx.alive[to.index()];
                self.ctx.emit(|| TraceEvt::Deliver {
                    to,
                    from,
                    delivered,
                    dup,
                });
                if delivered {
                    match wire::decode_frame_exact::<P>(&msg) {
                        Ok(frame) => {
                            debug_assert_eq!(frame.from, from, "envelope/frame address skew");
                            debug_assert_eq!(frame.to, to, "envelope/frame address skew");
                            self.protocol.on_message(&mut self.ctx, to, from, frame.msg);
                        }
                        Err(_) => self.ctx.wire_errors += 1,
                    }
                }
            }
            EngineEvent::Timer { node, tag } => {
                let fired = self.ctx.alive[node.index()];
                self.ctx.emit(|| TraceEvt::TimerFired { node, tag, fired });
                if fired {
                    self.protocol.on_timer(&mut self.ctx, node, tag);
                }
            }
            EngineEvent::Trace(ev) => self.apply_trace(ev),
        }
        true
    }

    fn apply_trace(&mut self, ev: TraceEvent) {
        let ctx = &mut self.ctx;
        match ev {
            TraceEvent::Query(q) => {
                debug_assert!(ctx.alive[q.requester.index()], "trace guarantees liveness");
                ctx.register_query(&q);
                self.protocol.on_query(ctx, &q);
            }
            TraceEvent::AddDocument { peer, doc } => {
                if ctx.apply_content(peer, doc, true) {
                    self.protocol.on_content_change(ctx, peer, doc, true);
                }
            }
            TraceEvent::RemoveDocument { peer, doc } => {
                if ctx.apply_content(peer, doc, false) {
                    self.protocol.on_content_change(ctx, peer, doc, false);
                }
            }
            TraceEvent::Join(p) => {
                let joined = ctx.apply_join(p);
                debug_assert!(joined, "trace joins only offline peers");
                if joined {
                    self.protocol.on_join(ctx, p);
                }
            }
            TraceEvent::Leave(p) => {
                let left = ctx.apply_leave(p);
                debug_assert!(left, "trace leaves only live peers");
                if left {
                    self.protocol.on_leave(ctx, p);
                }
            }
        }
    }
}
