//! `asapd` — a minimal ASAP search daemon over the loopback runtime.
//!
//! Hosts a whole node population in one process (see
//! [`asap_net::daemon`]), paced against the wall clock, and exposes a
//! line-oriented control protocol on a Unix domain socket:
//!
//! ```text
//! asapd --nodes 16 --socket /tmp/asapd.sock --algo flooding --speed 50
//! printf 'stats\n' | nc -U /tmp/asapd.sock
//! ```
//!
//! Commands: `peers`, `join <p>`, `leave <p>`, `advertise <p> [doc]`,
//! `search <p> [doc]`, `query <id>`, `stats`, `quit`.
//!
//! `--demo` runs the end-to-end smoke sequence CI pins: spawn the daemon,
//! connect as a client, join an offline node, advertise a document on it,
//! search for that document from another node, and poll until the query
//! resolves — all in a few wall seconds at the default `--speed`.

#![allow(clippy::print_stdout)]

use asap_core::{Asap, AsapConfig};
use asap_net::daemon::{run_daemon, DaemonConfig};
use asap_search::{Flooding, FloodingConfig, Gsa, GsaConfig, RandomWalk, RandomWalkConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::thread;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Algo {
    Flooding,
    RandomWalk,
    Gsa,
    AsapRw,
}

impl Algo {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "flooding" | "fld" => Some(Self::Flooding),
            "random-walk" | "rw" => Some(Self::RandomWalk),
            "gsa" => Some(Self::Gsa),
            "asap" | "asap-rw" => Some(Self::AsapRw),
            _ => None,
        }
    }
}

struct Opts {
    cfg: DaemonConfig,
    algo: Algo,
    demo: bool,
}

const USAGE: &str = "usage: asapd [--nodes N] [--seed S] [--speed X] [--socket PATH] \
                     [--algo flooding|random-walk|gsa|asap-rw] [--demo]";

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        cfg: DaemonConfig {
            peers: 8,
            seed: 1,
            speed: 50,
            socket: PathBuf::from("/tmp/asapd.sock"),
        },
        algo: Algo::Flooding,
        demo: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--nodes" => {
                opts.cfg.peers = value("--nodes")?
                    .parse()
                    .map_err(|_| "--nodes: not a number".to_string())?;
                if opts.cfg.peers < 4 {
                    return Err("--nodes must be at least 4".into());
                }
            }
            "--seed" => {
                opts.cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed: not a number".to_string())?;
            }
            "--speed" => {
                opts.cfg.speed = value("--speed")?
                    .parse()
                    .map_err(|_| "--speed: not a number".to_string())?;
            }
            "--socket" => opts.cfg.socket = PathBuf::from(value("--socket")?),
            "--algo" => {
                let raw = value("--algo")?;
                opts.algo = Algo::parse(&raw).ok_or_else(|| format!("unknown algo {raw}"))?;
            }
            "--demo" => opts.demo = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn serve(cfg: &DaemonConfig, algo: Algo) -> std::io::Result<()> {
    match algo {
        Algo::Flooding => run_daemon(cfg, |_| Flooding::new(FloodingConfig::default())),
        Algo::RandomWalk => run_daemon(cfg, |_| RandomWalk::new(RandomWalkConfig::default())),
        Algo::Gsa => run_daemon(cfg, |_| Gsa::new(GsaConfig::default())),
        Algo::AsapRw => run_daemon(cfg, |model| Asap::new(AsapConfig::rw(), model)),
    }
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.demo {
        return demo(opts);
    }
    println!(
        "asapd: {} nodes, algo {:?}, speed {}x, socket {}",
        opts.cfg.peers,
        opts.algo,
        opts.cfg.speed,
        opts.cfg.socket.display()
    );
    match serve(&opts.cfg, opts.algo) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("asapd: {e}");
            ExitCode::FAILURE
        }
    }
}

// --- demo client ----------------------------------------------------------

/// A line-oriented control client.
struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn connect(path: &PathBuf, timeout: Duration) -> std::io::Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            match UnixStream::connect(path) {
                Ok(stream) => {
                    let writer = stream.try_clone()?;
                    return Ok(Self {
                        reader: BufReader::new(stream),
                        writer,
                    });
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn roundtrip(&mut self, command: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{command}")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(line.trim_end().to_string())
    }
}

/// Pull `key=value` out of an `ok ...` response line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace()
        .find_map(|w| w.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
}

fn demo(opts: Opts) -> ExitCode {
    let cfg = opts.cfg.clone();
    let algo = opts.algo;
    let daemon = thread::spawn(move || serve(&cfg, algo));
    match run_demo(&opts) {
        Ok(()) => {
            // The quit command stops the daemon loop; join surfaces errors.
            match daemon.join() {
                Ok(Ok(())) => ExitCode::SUCCESS,
                Ok(Err(e)) => {
                    eprintln!("demo: daemon failed: {e}");
                    ExitCode::FAILURE
                }
                Err(_) => {
                    eprintln!("demo: daemon panicked");
                    ExitCode::FAILURE
                }
            }
        }
        Err(msg) => {
            eprintln!("demo: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run_demo(opts: &Opts) -> Result<(), String> {
    let fail = |what: &str, e: std::io::Error| format!("{what}: {e}");
    let mut client = Client::connect(&opts.cfg.socket, Duration::from_secs(5))
        .map_err(|e| fail("connect", e))?;

    // Where is everyone? Join the first offline node (the reduced workload
    // always generates a couple of late joiners).
    let peers = client.roundtrip("peers").map_err(|e| fail("peers", e))?;
    let alive: Vec<u32> = field(&peers, "alive")
        .unwrap_or("")
        .split(',')
        .filter_map(|s| s.parse().ok())
        .collect();
    let offline: Vec<u32> = field(&peers, "offline")
        .unwrap_or("")
        .split(',')
        .filter_map(|s| s.parse().ok())
        .collect();
    if alive.is_empty() {
        return Err(format!("no live peers in: {peers}"));
    }
    // Exercise churn: join the first offline node, or cycle the last live
    // one through leave → join when the trace left nobody offline.
    let (publisher, join_cmds): (u32, Vec<String>) = match offline.first() {
        Some(&p) => (p, vec![format!("join {p}")]),
        None => {
            let p = *alive.last().expect("nonempty");
            (p, vec![format!("leave {p}"), format!("join {p}")])
        }
    };
    for cmd in &join_cmds {
        let r = client.roundtrip(cmd).map_err(|e| fail(cmd, e))?;
        if !r.starts_with("ok") {
            return Err(format!("{cmd} failed: {r}"));
        }
    }
    println!("demo: node {publisher} (re)joined the overlay");

    // Publish a fresh document on the (possibly just-joined) node...
    let ad = client
        .roundtrip(&format!("advertise {publisher}"))
        .map_err(|e| fail("advertise", e))?;
    let doc = field(&ad, "doc").ok_or_else(|| format!("advertise failed: {ad}"))?;
    println!("demo: node {publisher} now shares doc {doc}");

    // ...and search for it from a different node.
    let requester = alive
        .iter()
        .find(|&&p| p != publisher)
        .ok_or_else(|| "need two live peers".to_string())?;
    // Search, then poll; an unanswered query is re-issued (ASAP needs its
    // warmup ad wave to propagate before a search can route, and a failed
    // query stays failed — retrying is the realistic client behavior).
    let deadline = Instant::now() + Duration::from_secs(8);
    let mut answered_id = None;
    'attempts: while Instant::now() < deadline {
        let sr = client
            .roundtrip(&format!("search {requester} {doc}"))
            .map_err(|e| fail("search", e))?;
        let id = field(&sr, "id")
            .ok_or_else(|| format!("search failed: {sr}"))?
            .to_string();
        println!("demo: node {requester} searching for doc {doc} (query {id})");
        let attempt_ends = (Instant::now() + Duration::from_millis(1_500)).min(deadline);
        while Instant::now() < attempt_ends {
            let q = client
                .roundtrip(&format!("query {id}"))
                .map_err(|e| fail("query", e))?;
            if q.starts_with("ok answered") {
                answered_id = Some(id);
                break 'attempts;
            }
            thread::sleep(Duration::from_millis(30));
        }
    }
    let Some(id) = answered_id else {
        return Err("no search attempt resolved before the deadline".to_string());
    };
    let stats = client.roundtrip("stats").map_err(|e| fail("stats", e))?;
    println!("demo: query {id} answered; {stats}");
    let _ = client.roundtrip("quit");
    Ok(())
}
