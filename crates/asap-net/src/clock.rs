//! Monotonic wall-clock → virtual-time mapping for the daemon runtime.
//!
//! The deterministic backends (sim engine, loopback harness) advance a
//! purely virtual clock event-by-event. The daemon instead *paces* the same
//! virtual timeline against the OS monotonic clock: virtual microsecond `v`
//! becomes due once `v / speed` wall microseconds have elapsed since start.
//! `speed > 1` compresses the timeline (a 150 ms virtual latency passes in
//! 150/speed ms of wall time), which is how the loopback demo resolves
//! multi-second protocol timelines in well under ten wall seconds.
//!
//! The scaling arithmetic is a pure function ([`virtual_us`] /
//! [`wall_wait_us`]) so its edge cases are unit-testable without touching
//! ambient time; only [`VirtualClock`] itself reads the OS clock, and that
//! read is the daemon's *documented* determinism boundary — nothing derived
//! from it feeds a digest.

// lint: allow(ambient-entropy, reason=the daemon runtime is the documented wall-clock boundary; nothing derived from this read feeds a digest)
use std::time::{Duration, Instant};

/// Scale `elapsed_us` wall microseconds into virtual microseconds at an
/// integer `speed` factor (saturating; `speed` 0 is clamped to 1).
pub fn virtual_us(elapsed_us: u64, speed: u32) -> u64 {
    elapsed_us.saturating_mul(u64::from(speed.max(1)))
}

/// Wall microseconds still to wait until virtual instant `deadline_us`,
/// given the current virtual time `now_us`. Returns 0 when already due.
pub fn wall_wait_us(now_us: u64, deadline_us: u64, speed: u32) -> u64 {
    let speed = u64::from(speed.max(1));
    let gap = deadline_us.saturating_sub(now_us);
    // Round up: sleeping one partial wall-µs short would busy-spin.
    gap.div_ceil(speed)
}

/// A monotonic virtual clock anchored at construction time.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    // lint: allow(ambient-entropy, reason=the daemon runtime is the documented wall-clock boundary; nothing derived from this read feeds a digest)
    start: Instant,
    speed: u32,
}

impl VirtualClock {
    /// Anchor the clock now. `speed` is the virtual-per-wall time factor
    /// (0 is treated as 1).
    pub fn new(speed: u32) -> Self {
        Self {
            // lint: allow(ambient-entropy, reason=the daemon runtime is the documented wall-clock boundary; nothing derived from this read feeds a digest)
            start: Instant::now(),
            speed: speed.max(1),
        }
    }

    /// Current virtual time in microseconds since the anchor. Monotonic
    /// (`Instant` is), saturating at `u64::MAX`.
    pub fn now_us(&self) -> u64 {
        // lint: allow(ambient-entropy, reason=the daemon runtime is the documented wall-clock boundary; nothing derived from this read feeds a digest)
        let elapsed = self.start.elapsed();
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        virtual_us(us, self.speed)
    }

    /// How long to sleep (wall time) until virtual `deadline_us` comes due.
    pub fn wall_until(&self, deadline_us: u64) -> Duration {
        Duration::from_micros(wall_wait_us(self.now_us(), deadline_us, self.speed))
    }

    /// The configured virtual-per-wall speed factor.
    pub fn speed(&self) -> u32 {
        self.speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_linear_and_saturating() {
        assert_eq!(virtual_us(100, 1), 100);
        assert_eq!(virtual_us(100, 20), 2_000);
        assert_eq!(virtual_us(u64::MAX, 2), u64::MAX);
        assert_eq!(virtual_us(100, 0), 100, "speed 0 clamps to 1");
    }

    #[test]
    fn wall_wait_rounds_up_and_floors_at_zero() {
        assert_eq!(wall_wait_us(0, 1_000, 1), 1_000);
        assert_eq!(wall_wait_us(0, 1_001, 20), 51, "rounds up, never spins");
        assert_eq!(wall_wait_us(5_000, 1_000, 4), 0, "past deadlines are due");
        assert_eq!(wall_wait_us(7, 7, 3), 0);
    }

    #[test]
    fn clock_advances_monotonically() {
        let clock = VirtualClock::new(50);
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
        assert_eq!(clock.speed(), 50);
        assert_eq!(VirtualClock::new(0).speed(), 1);
    }
}
