//! Sim≡net: the loopback runtime replays a workload to the same lifecycle
//! digest as the sim engine, for every protocol family.
//!
//! This is the tentpole invariant of the transport-trait redesign: the
//! same monomorphized protocol state machine runs on both backends, with
//! the wire codec load-bearing only on the net side. Equal backend-tagged
//! [`LifecycleDigest`]s over a full replay prove (a) the `Transport`
//! extraction preserved engine semantics and (b) encode→decode on every
//! single delivered message is behaviorally invisible.
//!
//! The tiny-scale pinned matrix lives in `asap-bench` (`simnet` bin,
//! `golden/simnet_tiny.txt`); this tier keeps a fast in-tree witness.

use asap_core::{Asap, AsapConfig};
use asap_net::Loopback;
use asap_overlay::{OverlayConfig, OverlayKind};
use asap_search::{Flooding, FloodingConfig, Gsa, GsaConfig, RandomWalk, RandomWalkConfig};
use asap_sim::{CheckpointProtocol, Simulation};
use asap_topology::{PhysicalNetwork, TransitStubConfig};
use asap_trace::{Backend, DigestSink, LifecycleDigest, TraceSink};
use asap_workload::{Workload, WorkloadConfig};

const PEERS: usize = 120;
const QUERIES: usize = 150;
const SEED: u64 = 11;

fn world() -> (PhysicalNetwork, Workload) {
    let phys = PhysicalNetwork::generate(&TransitStubConfig::reduced(SEED));
    let workload = asap_workload::generate(&WorkloadConfig::reduced(PEERS, QUERIES, SEED));
    (phys, workload)
}

fn overlay() -> asap_overlay::Overlay {
    OverlayConfig::new(OverlayKind::Random, PEERS, SEED).build()
}

fn digest_of(sink: Box<dyn TraceSink>) -> LifecycleDigest {
    sink.into_any()
        .downcast::<DigestSink>()
        .expect("digest sink comes back out")
        .digest()
}

/// Run one protocol on both backends; assert digest and metric equality.
fn assert_equivalent<P: CheckpointProtocol>(label: &str, sim_proto: P, net_proto: P) {
    let (phys, workload) = world();

    let sim = Simulation::builder(
        &phys,
        &workload,
        overlay(),
        OverlayKind::Random,
        sim_proto,
        SEED,
    )
    .trace(Box::new(DigestSink::new(Backend::Sim)))
    .run();
    let net = Loopback::new(
        &phys,
        &workload,
        overlay(),
        OverlayKind::Random,
        net_proto,
        SEED,
    )
    .trace(Box::new(DigestSink::new(Backend::Net)))
    .run();

    assert_eq!(net.wire_errors, 0, "{label}: frames failed to decode");
    let ds = digest_of(sim.trace.expect("sim sink"));
    let dn = digest_of(net.trace.expect("net sink"));
    assert_eq!(ds.backend(), Backend::Sim);
    assert_eq!(dn.backend(), Backend::Net);
    assert_eq!(
        ds.count(),
        dn.count(),
        "{label}: lifecycle event counts diverge"
    );
    assert_eq!(
        ds.value(),
        dn.value(),
        "{label}: sim and net lifecycle digests diverge"
    );
    // The digest already covers sends/deliveries/answers; cross-check the
    // headline metrics directly for a readable failure mode.
    assert_eq!(sim.messages_sent, net.messages_sent, "{label}");
    assert_eq!(sim.end_time_us, net.end_time_us, "{label}");
    assert_eq!(
        sim.ledger.num_succeeded(),
        net.ledger.num_succeeded(),
        "{label}"
    );
    assert_eq!(sim.load.total_bytes(), net.load.total_bytes(), "{label}");
    assert_eq!(sim.alive, net.alive, "{label}");
}

#[test]
fn flooding_replays_identically_on_both_backends() {
    assert_equivalent(
        "flooding",
        Flooding::new(FloodingConfig::default()),
        Flooding::new(FloodingConfig::default()),
    );
}

#[test]
fn random_walk_replays_identically_on_both_backends() {
    assert_equivalent(
        "random-walk",
        RandomWalk::new(RandomWalkConfig::default()),
        RandomWalk::new(RandomWalkConfig::default()),
    );
}

#[test]
fn gsa_replays_identically_on_both_backends() {
    assert_equivalent(
        "gsa",
        Gsa::new(GsaConfig::default()),
        Gsa::new(GsaConfig::default()),
    );
}

#[test]
fn asap_rw_replays_identically_on_both_backends() {
    let (_, workload) = world();
    let make = || Asap::new(AsapConfig::rw(), &workload.model);
    assert_equivalent("asap-rw", make(), make());
}
