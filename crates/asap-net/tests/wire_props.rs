//! Property tests for the wire framing codec, mirroring the checkpoint-codec
//! tier (`asap-sim/tests/checkpoint_roundtrip.rs`): every frame that encodes
//! must decode back to a byte-identical re-encode, and every corrupted or
//! truncated buffer must map to a typed [`WireError`] — never a panic (the
//! decode path sits under lint rule R4 panic-reachability).
//!
//! Messages are built deterministically from proptest-generated integers
//! rather than via `Arbitrary` impls: the vendored shim has no shrinking, so
//! small seed tuples keep failing cases readable. The same construction
//! covers all four `BaselineMsg` variants and seven `AsapMsg` shapes
//! (full/refresh ads, fetches, warm-up and query-driven ads requests,
//! replies with Bloom-backed snapshots, confirm round trips).

use std::rc::Rc;

use asap_bloom::{BloomFilter, BloomParams};
use asap_core::{AdPayload, AdSnapshot, Asap, AsapMsg, Forwarding};
use asap_metrics::MsgClass;
use asap_net::wire::{
    decode_frame, decode_frame_exact, encode_frame, Frame, WireError, ENVELOPE, MAX_FRAME,
};
use asap_overlay::PeerId;
use asap_search::{BaselineMsg, Flooding};
use asap_sim::{CheckpointProtocol, Fnv64};
use asap_workload::{InterestSet, KeywordId};
use proptest::prelude::*;

/// Deterministic keyword list: distinct ids derived from a seed.
fn keywords(seed: u32, n: usize) -> Rc<[KeywordId]> {
    (0..n as u32)
        .map(|i| KeywordId(seed.wrapping_mul(2_654_435_761).wrapping_add(i * 7919) % 50_000))
        .collect::<Vec<_>>()
        .into()
}

/// Bloom-backed snapshot from a seed, as ASAP ads replies carry them.
fn snapshot(seed: u32) -> AdSnapshot {
    let keys: Vec<String> = (0..(seed % 5) + 1).map(|i| format!("k{seed}-{i}")).collect();
    AdSnapshot {
        source: PeerId(seed % 10_000),
        topics: InterestSet((seed % 0xFFFF) as u16),
        version: (seed % 900) as u16,
        filter: Rc::new(BloomFilter::from_keys(
            BloomParams::paper_default(),
            keys.iter().map(String::as_str),
        )),
    }
}

/// One of the four baseline wire messages, selected by `kind`.
fn baseline_msg(kind: u8, query: u32, peer: u32, ttl: u16, nterms: usize) -> BaselineMsg {
    let requester = PeerId(peer % 100_000);
    let terms = keywords(query, nterms);
    match kind % 4 {
        0 => BaselineMsg::Flood {
            query,
            requester,
            terms,
            ttl: (ttl % 32) as u8,
        },
        1 => BaselineMsg::Walk {
            query,
            requester,
            terms,
            ttl,
        },
        2 => BaselineMsg::Gsa {
            query,
            requester,
            terms,
            budget: u32::from(ttl) * 7 + 1,
        },
        _ => BaselineMsg::Hit {
            query,
            results: u32::from(ttl),
        },
    }
}

/// One of seven ASAP wire message shapes, selected by `kind`.
fn asap_msg(kind: u8, query: u32, peer: u32, ttl: u16, nterms: usize) -> AsapMsg {
    let requester = PeerId(peer % 10_000);
    match kind % 7 {
        0 => AsapMsg::Ad {
            payload: AdPayload::Full(snapshot(query)),
            fwd: Forwarding::Flood { ttl: (ttl % 32) as u8 },
            delivery: u64::from(query) << 16 | u64::from(ttl),
        },
        1 => AsapMsg::Ad {
            payload: AdPayload::Refresh {
                source: requester,
                topics: InterestSet((query % 0xFFFF) as u16),
                version: ttl % 900,
            },
            fwd: Forwarding::Walk {
                budget: u32::from(ttl) + 1,
            },
            delivery: u64::from(query),
        },
        2 => AsapMsg::FullAdFetch,
        3 => AsapMsg::AdsRequest {
            requester,
            interests: InterestSet((query % 0xFFFF) as u16),
            hops: (ttl % 8) as u8,
            query: Some(query),
            terms: Some(keywords(query, nterms)),
        },
        // Join-time warm-up shape: no live query attached.
        4 => AsapMsg::AdsRequest {
            requester,
            interests: InterestSet((query % 0xFFFF) as u16),
            hops: (ttl % 8) as u8,
            query: None,
            terms: None,
        },
        5 => AsapMsg::AdsReply {
            ads: (0..nterms % 4).map(|i| snapshot(query.wrapping_add(i as u32))).collect(),
            query: if ttl.is_multiple_of(2) { Some(query) } else { None },
        },
        6 => AsapMsg::Confirm {
            query,
            requester,
            terms: keywords(query, nterms.max(1)),
        },
        _ => AsapMsg::ConfirmReply {
            query,
            results: u32::from(ttl),
        },
    }
}

fn frame<M>(msg: M, peer: u32, class_idx: usize, billed: u32) -> Frame<M> {
    Frame {
        from: PeerId(peer % 100_000),
        to: PeerId(peer / 7 % 100_000),
        class: MsgClass::ALL[class_idx % MsgClass::ALL.len()],
        billed,
        msg,
    }
}

/// Decode → re-encode must be byte-identical: the message codecs are
/// canonical, so byte identity proves every field survived.
fn assert_roundtrip<P: CheckpointProtocol>(bytes: &[u8]) {
    let back = decode_frame_exact::<P>(bytes).expect("clean frame decodes");
    assert_eq!(encode_frame::<P>(&back), bytes, "re-encode is not byte-identical");
    // The streaming decoder must agree with the exact one and consume all.
    let (stream, consumed) = decode_frame::<P>(bytes)
        .expect("streaming decode of a clean frame")
        .expect("frame is complete");
    assert_eq!(consumed, bytes.len());
    assert_eq!(encode_frame::<P>(&stream), bytes);
}

/// Every proper prefix is either "keep reading" (streaming) or a typed
/// `Truncated` (exact) — never a panic, never a bogus frame.
fn assert_prefixes_truncate<P: CheckpointProtocol>(bytes: &[u8], cut: usize)
where
    P::Msg: std::fmt::Debug,
{
    let prefix = &bytes[..cut];
    match decode_frame::<P>(prefix) {
        Ok(None) => {}
        Ok(Some((_, consumed))) => panic!("prefix of {cut} bytes decoded, consuming {consumed}"),
        Err(e) => panic!("prefix of {cut} bytes is a hard error: {e}"),
    }
    assert_eq!(
        decode_frame_exact::<P>(prefix).expect_err("prefix cannot be a whole frame"),
        WireError::Truncated
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn baseline_frames_roundtrip_byte_identically(
        ids in (0u8..4, 0u32..1_000_000, 0u32..1_000_000),
        shape in (0u16..2_000, 0usize..8, 0usize..16, 0u32..1_000_000),
    ) {
        let (kind, query, peer) = ids;
        let (ttl, nterms, class_idx, billed) = shape;
        let f = frame(baseline_msg(kind, query, peer, ttl, nterms), peer, class_idx, billed);
        assert_roundtrip::<Flooding>(&encode_frame::<Flooding>(&f));
    }

    #[test]
    fn asap_frames_roundtrip_byte_identically(
        ids in (0u8..8, 0u32..1_000_000, 0u32..1_000_000),
        shape in (0u16..2_000, 0usize..8, 0usize..16, 0u32..1_000_000),
    ) {
        let (kind, query, peer) = ids;
        let (ttl, nterms, class_idx, billed) = shape;
        let f = frame(asap_msg(kind, query, peer, ttl, nterms), peer, class_idx, billed);
        assert_roundtrip::<Asap>(&encode_frame::<Asap>(&f));
    }

    #[test]
    fn truncation_is_incomplete_or_typed_never_panics(
        ids in (0u8..8, 0u32..1_000_000, 0u32..1_000_000, 0u16..2_000),
        cut_ppm in 0u32..1_000_000,
    ) {
        let (kind, query, peer, ttl) = ids;
        let f = frame(asap_msg(kind, query, peer, ttl, 3), peer, kind as usize, query);
        let bytes = encode_frame::<Asap>(&f);
        // ppm-scaled cut point so every length of prefix gets exercised
        // across cases regardless of how large the frame came out.
        let cut = (cut_ppm as usize * bytes.len() / 1_000_000).min(bytes.len() - 1);
        assert_prefixes_truncate::<Asap>(&bytes, cut);
    }

    #[test]
    fn bit_flips_yield_typed_errors_never_panics(
        ids in (0u8..8, 0u32..1_000_000, 0u32..1_000_000, 0u16..2_000),
        flip in (0u32..1_000_000, 0u8..8),
    ) {
        let (kind, query, peer, ttl) = ids;
        let (pos_ppm, bit) = flip;
        let f = frame(asap_msg(kind, query, peer, ttl, 3), peer, kind as usize, query);
        let bytes = encode_frame::<Asap>(&f);
        let mut bad = bytes.clone();
        let pos = (pos_ppm as usize * bad.len() / 1_000_000).min(bad.len() - 1);
        bad[pos] ^= 1 << bit;
        // A flip in the body fails the checksum; a flip in the length prefix
        // or trailing checksum surfaces as whatever typed error the shifted
        // interpretation hits (Truncated / Oversized / TrailingPayload /
        // BadChecksum). Exhaustive per-variant assertions live in the wire
        // unit tests; the property here is "typed error, never Ok, never
        // panic" for a whole-buffer decode.
        prop_assert!(
            decode_frame_exact::<Asap>(&bad).is_err(),
            "single-bit flip at byte {pos} bit {bit} decoded cleanly"
        );
    }

    #[test]
    fn bad_length_prefixes_are_typed_errors(
        ids in (0u8..4, 0u32..1_000_000, 0u32..1_000_000),
        lens in (0u32..1_000_000, 0u32..(ENVELOPE as u32)),
    ) {
        let (kind, query, peer) = ids;
        let (over, under) = lens;
        let f = frame(baseline_msg(kind, query, peer, 9, 2), peer, kind as usize, query);
        let mut bytes = encode_frame::<Flooding>(&f);
        let oversized = MAX_FRAME as u32 + 1 + over;
        bytes[..4].copy_from_slice(&oversized.to_le_bytes());
        prop_assert_eq!(
            decode_frame::<Flooding>(&bytes).unwrap_err(),
            WireError::OversizedFrame(oversized)
        );
        bytes[..4].copy_from_slice(&under.to_le_bytes());
        prop_assert_eq!(
            decode_frame::<Flooding>(&bytes).unwrap_err(),
            WireError::UndersizedFrame(under)
        );
    }

    #[test]
    fn unknown_class_tags_are_typed_errors(
        ids in (0u8..4, 0u32..1_000_000, 0u32..1_000_000),
        tag in 0u8..200,
    ) {
        let (kind, query, peer) = ids;
        let bad_tag = (MsgClass::ALL.len() as u8).saturating_add(tag % 100);
        let f = frame(baseline_msg(kind, query, peer, 9, 2), peer, kind as usize, query);
        let mut bytes = encode_frame::<Flooding>(&f);
        // Patch the class byte (after len+from+to) and re-stamp the checksum
        // so the corruption reaches the tag check instead of BadChecksum.
        bytes[12] = bad_tag;
        let body_end = bytes.len() - 8;
        let mut sum = Fnv64::new();
        sum.write_bytes(&bytes[4..body_end]);
        let end = bytes.len();
        bytes[body_end..end].copy_from_slice(&sum.finish().to_le_bytes());
        prop_assert_eq!(
            decode_frame_exact::<Flooding>(&bytes).unwrap_err(),
            WireError::BadClassTag(bad_tag)
        );
    }

    #[test]
    fn trailing_bytes_after_a_frame_are_typed(
        ids in (0u8..8, 0u32..1_000_000, 0u32..1_000_000),
        extra in 1usize..32,
    ) {
        let (kind, query, peer) = ids;
        let f = frame(asap_msg(kind, query, peer, 9, 2), peer, kind as usize, query);
        let mut bytes = encode_frame::<Asap>(&f);
        let clean_len = bytes.len();
        bytes.extend(std::iter::repeat_n(0xAB, extra));
        // Streaming decode stops exactly at the frame boundary — the extra
        // bytes belong to the next frame. The exact decoder (one datagram =
        // one frame) must reject them.
        let (_, consumed) = decode_frame::<Asap>(&bytes).unwrap().expect("frame is complete");
        prop_assert_eq!(consumed, clean_len);
        prop_assert_eq!(
            decode_frame_exact::<Asap>(&bytes).unwrap_err(),
            WireError::TrailingPayload
        );
    }
}
