//! Checkpoint/resume: serialize the full engine state at a virtual
//! timestamp and continue bit-identically.
//!
//! The codec is a hand-rolled, versioned, fixed-field-order binary format
//! (little-endian, no external serialization dependency — see DESIGN.md §8
//! for the field-order specification). Everything behavior-relevant is
//! captured: the event queue with uncollected tombstones, overlay adjacency
//! verbatim (neighbor order is `swap_remove` history), content holdings and
//! holders, every RNG stream's raw state, the auditor's running digest word
//! and mirrors, fault/adversary layer state, metrics, and the protocol's
//! own per-node state via [`CheckpointProtocol`]. A run split as
//! `run_until(t)` → `checkpoint()` → resume → `run()` produces the same
//! audit digest as the uninterrupted run, bit for bit.
//!
//! Deliberately *not* serialized:
//!
//! * the trace sink — passive observation, never part of engine state;
//! * the horizon and trace end — recomputed from the builder at resume, so
//!   a warm-started sweep can vary horizon grace across cells;
//! * derived state (keyword multisets, alive lists, adversary role maps,
//!   physical placement) — recomputed deterministically from the restored
//!   primary state and the validated-equal run seed.
//!
//! Decoding is fully validated and panic-free: corrupted, truncated, or
//! wrong-version bytes yield a typed [`CodecError`], never a panic, and a
//! trailing FNV-1a checksum over the body rejects bit flips up front.

use crate::adversary::{AdversaryPlan, AdversaryState, AdversaryStats, EclipseTarget};
use crate::audit::{Fnv64, SimAuditor};
use crate::engine::{EngineProfile, Protocol, SimBuilder, Simulation};
use crate::event::{EngineEvent, EventQueue, Scheduled};
use crate::fault::{FaultPlan, FaultState, FaultStats, PartitionWindow};
use asap_metrics::{LoadRecorder, MsgClass, QueryLedger, RetryCounters};
use asap_overlay::{Overlay, OverlayKind, PeerId};
use asap_topology::PhysicalNetwork;
use asap_workload::{ContentState, DocId, KeywordId, QuerySpec, TraceEvent, Workload};
use rand::rngs::SmallRng;
use std::fmt;

/// File magic: the first eight bytes of every checkpoint.
pub const MAGIC: [u8; 8] = *b"ASAPCKPT";
/// Current format version. Decoders reject anything else.
pub const VERSION: u16 = 1;
/// Trailing checksum width (FNV-1a 64 over the body).
const TRAILER: usize = 8;
/// Upper bound on the ledger's raw slot vector accepted at decode time.
/// Query ids are dense per run; this caps the preallocation a corrupted
/// (but checksum-colliding) length field could demand.
const MAX_LEDGER_SLOTS: usize = 1 << 24;

/// Typed decode failure. Every malformed input maps to one of these —
/// decoding never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the field being read.
    UnexpectedEof,
    /// The first eight bytes are not [`MAGIC`].
    BadMagic,
    /// Recognized magic, unknown version word.
    UnsupportedVersion(u16),
    /// An enum discriminant byte outside the defined range.
    BadTag,
    /// Bytes left over after the final field.
    TrailingBytes,
    /// The trailing FNV-1a checksum does not match the body.
    BadChecksum,
    /// A structurally valid field with an out-of-range or inconsistent
    /// value (id past the peer/doc space, zero RNG state, invalid plan...).
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof => write!(f, "unexpected end of checkpoint data"),
            Self::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            Self::BadTag => write!(f, "unknown enum tag in checkpoint data"),
            Self::TrailingBytes => write!(f, "trailing bytes after checkpoint data"),
            Self::BadChecksum => write!(f, "checkpoint checksum mismatch"),
            Self::Invalid(what) => write!(f, "invalid checkpoint field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian byte sink for the checkpoint codec.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Lengths and counts are always widened to `u64` on the wire.
    #[inline]
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Raw bytes, no length prefix (magic, fixed-width blobs).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over checkpoint bytes.
#[derive(Debug)]
pub struct Decoder<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl<'b> Decoder<'b> {
    pub fn new(buf: &'b [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Raw byte slice of exactly `n` bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'b [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.get_bytes(1)?[0])
    }

    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        let s = self.get_bytes(2)?;
        let mut b = [0u8; 2];
        b.copy_from_slice(s);
        Ok(u16::from_le_bytes(b))
    }

    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let s = self.get_bytes(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let s = self.get_bytes(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool byte out of range")),
        }
    }

    /// A scalar length value: must fit in `usize`, no further guarantees.
    /// Use [`Decoder::get_count`] for item counts that gate allocation.
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid("length exceeds usize"))
    }

    /// An item count: like [`Decoder::get_len`] but additionally bounded by
    /// the bytes still unread, so a corrupted count can never drive an
    /// oversized allocation (every item occupies at least one byte).
    pub fn get_count(&mut self) -> Result<usize, CodecError> {
        let n = self.get_len()?;
        if n > self.remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let n = self.get_count()?;
        let bytes = self.get_bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("string not UTF-8"))
    }

    /// Assert the input is fully consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

/// A protocol whose messages and per-node state can ride a checkpoint.
///
/// Implementations must encode *canonically* (deterministic iteration
/// order) so that encode → decode → re-encode is byte-identical, and must
/// decode without panicking — malformed payloads return [`CodecError`].
pub trait CheckpointProtocol: Protocol {
    /// Serialize one in-flight message payload.
    fn encode_msg(msg: &Self::Msg, enc: &mut Encoder);

    /// Decode one in-flight message payload.
    fn decode_msg(dec: &mut Decoder<'_>) -> Result<Self::Msg, CodecError>;

    /// Serialize the protocol's own dynamic state (per-node tables,
    /// pending searches, dedup windows, stats...). Static configuration is
    /// *not* serialized — the resume caller reconstructs the protocol with
    /// the same configuration it used for the original run.
    fn encode_state(&self, enc: &mut Encoder);

    /// Restore dynamic state over a freshly configured protocol instance.
    fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError>;
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

fn kind_to_tag(kind: OverlayKind) -> u8 {
    match kind {
        OverlayKind::Random => 0,
        OverlayKind::PowerLaw => 1,
        OverlayKind::Crawled => 2,
    }
}

fn kind_from_tag(tag: u8) -> Result<OverlayKind, CodecError> {
    match tag {
        0 => Ok(OverlayKind::Random),
        1 => Ok(OverlayKind::PowerLaw),
        2 => Ok(OverlayKind::Crawled),
        _ => Err(CodecError::BadTag),
    }
}

fn get_peer(dec: &mut Decoder<'_>, num_peers: usize) -> Result<PeerId, CodecError> {
    let id = dec.get_u32()?;
    if (id as usize) < num_peers {
        Ok(PeerId(id))
    } else {
        Err(CodecError::Invalid("peer id out of range"))
    }
}

fn get_doc(dec: &mut Decoder<'_>, num_docs: usize) -> Result<DocId, CodecError> {
    let id = dec.get_u32()?;
    if (id as usize) < num_docs {
        Ok(DocId(id))
    } else {
        Err(CodecError::Invalid("doc id out of range"))
    }
}

fn get_rng_state(dec: &mut Decoder<'_>) -> Result<[u64; 4], CodecError> {
    let mut s = [0u64; 4];
    for w in s.iter_mut() {
        *w = dec.get_u64()?;
    }
    if s == [0u64; 4] {
        return Err(CodecError::Invalid("all-zero rng state"));
    }
    Ok(s)
}

// --- workload event codec -------------------------------------------------

fn encode_query_spec(q: &QuerySpec, enc: &mut Encoder) {
    enc.put_u32(q.id);
    enc.put_u32(q.requester.0);
    enc.put_len(q.terms.len());
    for t in &q.terms {
        enc.put_u32(t.0);
    }
    enc.put_u32(q.target.0);
}

fn decode_query_spec(
    dec: &mut Decoder<'_>,
    num_peers: usize,
    num_docs: usize,
) -> Result<QuerySpec, CodecError> {
    let id = dec.get_u32()?;
    let requester = get_peer(dec, num_peers)?;
    let n_terms = dec.get_count()?;
    let mut terms = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        terms.push(KeywordId(dec.get_u32()?));
    }
    let target = get_doc(dec, num_docs)?;
    Ok(QuerySpec {
        id,
        requester,
        terms,
        target,
    })
}

fn encode_trace_event(ev: &TraceEvent, enc: &mut Encoder) {
    match ev {
        TraceEvent::Query(q) => {
            enc.put_u8(0);
            encode_query_spec(q, enc);
        }
        TraceEvent::AddDocument { peer, doc } => {
            enc.put_u8(1);
            enc.put_u32(peer.0);
            enc.put_u32(doc.0);
        }
        TraceEvent::RemoveDocument { peer, doc } => {
            enc.put_u8(2);
            enc.put_u32(peer.0);
            enc.put_u32(doc.0);
        }
        TraceEvent::Join(p) => {
            enc.put_u8(3);
            enc.put_u32(p.0);
        }
        TraceEvent::Leave(p) => {
            enc.put_u8(4);
            enc.put_u32(p.0);
        }
    }
}

fn decode_trace_event(
    dec: &mut Decoder<'_>,
    num_peers: usize,
    num_docs: usize,
) -> Result<TraceEvent, CodecError> {
    match dec.get_u8()? {
        0 => Ok(TraceEvent::Query(decode_query_spec(dec, num_peers, num_docs)?)),
        1 => Ok(TraceEvent::AddDocument {
            peer: get_peer(dec, num_peers)?,
            doc: get_doc(dec, num_docs)?,
        }),
        2 => Ok(TraceEvent::RemoveDocument {
            peer: get_peer(dec, num_peers)?,
            doc: get_doc(dec, num_docs)?,
        }),
        3 => Ok(TraceEvent::Join(get_peer(dec, num_peers)?)),
        4 => Ok(TraceEvent::Leave(get_peer(dec, num_peers)?)),
        _ => Err(CodecError::BadTag),
    }
}

fn encode_engine_event<P: CheckpointProtocol>(ev: &EngineEvent<P::Msg>, enc: &mut Encoder) {
    match ev {
        EngineEvent::Deliver { to, from, msg, dup } => {
            enc.put_u8(0);
            enc.put_u32(to.0);
            enc.put_u32(from.0);
            enc.put_bool(*dup);
            P::encode_msg(msg, enc);
        }
        EngineEvent::Timer { node, tag } => {
            enc.put_u8(1);
            enc.put_u32(node.0);
            enc.put_u64(*tag);
        }
        EngineEvent::Trace(te) => {
            enc.put_u8(2);
            encode_trace_event(te, enc);
        }
    }
}

fn decode_engine_event<P: CheckpointProtocol>(
    dec: &mut Decoder<'_>,
    num_peers: usize,
    num_docs: usize,
) -> Result<EngineEvent<P::Msg>, CodecError> {
    match dec.get_u8()? {
        0 => {
            let to = get_peer(dec, num_peers)?;
            let from = get_peer(dec, num_peers)?;
            let dup = dec.get_bool()?;
            let msg = P::decode_msg(dec)?;
            Ok(EngineEvent::Deliver { to, from, msg, dup })
        }
        1 => Ok(EngineEvent::Timer {
            node: get_peer(dec, num_peers)?,
            tag: dec.get_u64()?,
        }),
        2 => Ok(EngineEvent::Trace(decode_trace_event(dec, num_peers, num_docs)?)),
        _ => Err(CodecError::BadTag),
    }
}

// --- the checkpoint object ------------------------------------------------

/// A serialized simulation state: opaque bytes plus the header fields a
/// resume caller needs to reconstruct the matching world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    bytes: Vec<u8>,
    run_seed: u64,
    num_peers: usize,
    overlay_kind: OverlayKind,
    now_us: u64,
}

impl Checkpoint {
    /// Validate magic, version, and the trailing checksum, and parse the
    /// header. Section payloads are validated later, during
    /// [`SimBuilder::from_checkpoint`], where the world they must be
    /// consistent with is known.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, CodecError> {
        if bytes.len() < MAGIC.len() + 2 + TRAILER {
            return Err(CodecError::UnexpectedEof);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let (body, tail) = bytes.split_at(bytes.len() - TRAILER);
        let mut t = [0u8; TRAILER];
        t.copy_from_slice(tail);
        if checksum(body) != u64::from_le_bytes(t) {
            return Err(CodecError::BadChecksum);
        }
        let mut dec = Decoder::new(body);
        let header = Header::decode(&mut dec)?;
        Ok(Self {
            bytes,
            run_seed: header.run_seed,
            num_peers: header.num_peers,
            overlay_kind: header.overlay_kind,
            now_us: header.now_us,
        })
    }

    /// The serialized form (magic through checksum), e.g. for writing to a
    /// file. `from_bytes` accepts exactly this.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// The seed of the run this checkpoint was taken from. Resume requires
    /// an identically seeded world.
    pub fn run_seed(&self) -> u64 {
        self.run_seed
    }

    pub fn num_peers(&self) -> usize {
        self.num_peers
    }

    pub fn overlay_kind(&self) -> OverlayKind {
        self.overlay_kind
    }

    /// Virtual time of the last event dispatched before the checkpoint.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }
}

struct Header {
    run_seed: u64,
    num_peers: usize,
    overlay_kind: OverlayKind,
    now_us: u64,
    started: bool,
    halted: bool,
}

impl Header {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        if dec.get_bytes(MAGIC.len())? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = dec.get_u16()?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        Ok(Self {
            run_seed: dec.get_u64()?,
            num_peers: dec.get_len()?,
            overlay_kind: kind_from_tag(dec.get_u8()?)?,
            now_us: dec.get_u64()?,
            started: dec.get_bool()?,
            halted: dec.get_bool()?,
        })
    }
}

// --- serialization --------------------------------------------------------

impl<'a, P: CheckpointProtocol> Simulation<'a, P> {
    /// Serialize the complete engine state at the current virtual time.
    /// Callable at any point between events — before the first event, at a
    /// [`Simulation::run_until`] split, or after the run halted.
    pub fn checkpoint(&self) -> Checkpoint {
        let ctx = &self.ctx;
        let mut enc = Encoder::new();

        // Header.
        enc.put_bytes(&MAGIC);
        enc.put_u16(VERSION);
        enc.put_u64(ctx.run_seed);
        enc.put_len(ctx.alive.len());
        enc.put_u8(kind_to_tag(ctx.overlay_kind));
        enc.put_u64(ctx.now_us);
        enc.put_bool(self.started);
        enc.put_bool(self.halted);

        // [1] Event queue: allocation counter, surviving entries in
        // canonical (time, seq) order, uncollected tombstones.
        enc.put_u64(ctx.queue.next_seq());
        let entries = ctx.queue.entries_sorted();
        enc.put_len(entries.len());
        for s in entries {
            enc.put_u64(s.time_us);
            enc.put_u64(s.seq);
            encode_engine_event::<P>(&s.event, &mut enc);
        }
        let cancelled = ctx.queue.cancelled_sorted();
        enc.put_len(cancelled.len());
        for seq in cancelled {
            enc.put_u64(seq);
        }

        // [2] Overlay adjacency, verbatim (neighbor order is history).
        let adj = ctx.overlay.adjacency();
        enc.put_len(adj.len());
        for nbrs in adj {
            enc.put_len(nbrs.len());
            for n in nbrs {
                enc.put_u32(n.0);
            }
        }

        // [3] Liveness bitmap (count pinned to num_peers by the header).
        for &a in &ctx.alive {
            enc.put_bool(a);
        }

        // [4] Content: holdings sorted per peer, holders verbatim.
        let (holdings, holders) = ctx.content.parts();
        enc.put_len(holdings.len());
        for docs in holdings {
            enc.put_len(docs.len());
            for d in docs {
                enc.put_u32(d.0);
            }
        }
        enc.put_len(holders.len());
        for peers in holders {
            enc.put_len(peers.len());
            for p in peers {
                enc.put_u32(p.0);
            }
        }

        // [5] Engine RNG stream.
        for w in ctx.rng.state() {
            enc.put_u64(w);
        }

        // [6] Load recorder.
        enc.put_len(ctx.load.buckets().len());
        for bucket in ctx.load.buckets() {
            for &b in bucket {
                enc.put_u64(b);
            }
        }
        for &m in &ctx.load.class_message_totals() {
            enc.put_u64(m);
        }
        enc.put_len(ctx.load.alive_steps().len());
        for &(t, c) in ctx.load.alive_steps() {
            enc.put_u64(t);
            enc.put_len(c);
        }
        enc.put_len(ctx.load.notes().len());
        for note in ctx.load.notes() {
            enc.put_str(note);
        }

        // [7] Query ledger: raw slot length, then registered records by
        // ascending id.
        enc.put_len(ctx.ledger.raw_len());
        enc.put_len(ctx.ledger.records_with_ids().count());
        for (id, rec) in ctx.ledger.records_with_ids() {
            enc.put_u32(id);
            enc.put_u64(rec.issue_us);
            match rec.first_answer_us {
                Some(t) => {
                    enc.put_bool(true);
                    enc.put_u64(t);
                }
                None => enc.put_bool(false),
            }
            enc.put_u32(rec.answers);
        }

        // [8] Robustness counters.
        for &c in &ctx.retry.counts() {
            enc.put_u64(c);
        }

        // [9] Send counter.
        enc.put_u64(ctx.messages_sent);

        // [10] Engine profile.
        let p = ctx.profile;
        enc.put_u64(p.sends);
        enc.put_u64(p.delivers);
        enc.put_u64(p.timers_fired);
        enc.put_u64(p.timers_set);
        enc.put_u64(p.trace_events);
        enc.put_u64(p.trace_records);
        enc.put_len(p.queue_hwm);
        enc.put_u64(p.past_horizon);

        // [11] Auditor (optional layer).
        match ctx.audit.as_deref() {
            Some(a) => {
                enc.put_bool(true);
                a.encode_checkpoint(&mut enc);
            }
            None => enc.put_bool(false),
        }

        // [12] Fault layer (optional): plan, RNG stream, stats.
        match ctx.faults.as_deref() {
            Some(f) => {
                enc.put_bool(true);
                let plan = f.plan();
                enc.put_u32(plan.loss_ppm);
                enc.put_u64(plan.jitter_max_us);
                enc.put_u32(plan.duplicate_ppm);
                enc.put_len(plan.partitions.len());
                for w in &plan.partitions {
                    enc.put_u64(w.start_us);
                    enc.put_u64(w.end_us);
                    enc.put_u32(w.cut_index);
                }
                for w in f.rng_state() {
                    enc.put_u64(w);
                }
                let s = f.stats();
                enc.put_u64(s.dropped);
                enc.put_u64(s.partitioned);
                enc.put_u64(s.duplicated);
                enc.put_u64(s.jittered);
                enc.put_u64(s.decisions);
            }
            None => enc.put_bool(false),
        }

        // [13] Adversary layer (optional): plan and stats; the role map is
        // re-derived from (plan, num_peers, run_seed) at decode.
        match ctx.adversary.as_deref() {
            Some(a) => {
                enc.put_bool(true);
                let plan = a.plan();
                enc.put_u32(plan.spam_ppm);
                enc.put_u32(plan.free_rider_ppm);
                enc.put_len(plan.eclipse.len());
                for t in &plan.eclipse {
                    enc.put_u32(t.victim.0);
                    enc.put_u32(t.captured_links);
                }
                let s = a.stats();
                enc.put_u64(s.absorbed);
                enc.put_u64(s.spam_peers);
                enc.put_u64(s.free_riders);
                enc.put_u64(s.eclipsed_edges);
            }
            None => enc.put_bool(false),
        }

        // [14] Protocol dynamic state.
        self.protocol.encode_state(&mut enc);

        // Trailer.
        let mut bytes = enc.into_bytes();
        let sum = checksum(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        Checkpoint {
            bytes,
            run_seed: ctx.run_seed,
            num_peers: ctx.alive.len(),
            overlay_kind: ctx.overlay_kind,
            now_us: ctx.now_us,
        }
    }

    /// One-call resume: rebuild the world from the same inputs the original
    /// run used (the checkpoint pins the seed) and restore the state.
    pub fn resume(
        phys: &'a PhysicalNetwork,
        workload: &'a Workload,
        overlay: Overlay,
        overlay_kind: OverlayKind,
        protocol: P,
        ckpt: &Checkpoint,
    ) -> Result<Self, CodecError> {
        Simulation::builder(phys, workload, overlay, overlay_kind, protocol, ckpt.run_seed())
            .from_checkpoint(ckpt)
    }
}

impl<'a, P: Protocol> SimBuilder<'a, P> {
    /// Finish the builder by restoring a checkpoint instead of starting
    /// fresh. The builder must describe the same world the checkpoint was
    /// taken from — same seed, peer count, and overlay kind (validated
    /// here; the workload and topology follow deterministically from the
    /// seed). Optional layers (audit, faults, adversary) are taken
    /// exclusively from the checkpoint: layers attached on the builder are
    /// discarded, absent layers stay absent. The builder's trace sink and
    /// horizon-grace override are kept — both are outside checkpointed
    /// state.
    pub fn from_checkpoint(self, ckpt: &Checkpoint) -> Result<Simulation<'a, P>, CodecError>
    where
        P: CheckpointProtocol,
    {
        let mut sim = self.build();
        let num_peers = sim.ctx.alive.len();
        let num_docs = sim.ctx.model.num_docs();
        if ckpt.run_seed != sim.ctx.run_seed {
            return Err(CodecError::Invalid("checkpoint seed differs from builder"));
        }
        if ckpt.num_peers != num_peers {
            return Err(CodecError::Invalid("checkpoint peer count differs from builder"));
        }
        if ckpt.overlay_kind != sim.ctx.overlay_kind {
            return Err(CodecError::Invalid("checkpoint overlay kind differs from builder"));
        }

        let body = &ckpt.bytes[..ckpt.bytes.len() - TRAILER];
        let mut dec = Decoder::new(body);
        let header = Header::decode(&mut dec)?;

        // [1] Event queue.
        let next_seq = dec.get_u64()?;
        let n_entries = dec.get_count()?;
        let mut entries = Vec::new();
        for _ in 0..n_entries {
            let time_us = dec.get_u64()?;
            let seq = dec.get_u64()?;
            let event = decode_engine_event::<P>(&mut dec, num_peers, num_docs)?;
            entries.push(Scheduled {
                time_us,
                seq,
                event,
            });
        }
        let n_cancelled = dec.get_count()?;
        let mut cancelled = Vec::new();
        for _ in 0..n_cancelled {
            cancelled.push(dec.get_u64()?);
        }

        // [2] Overlay.
        let n_adj = dec.get_count()?;
        if n_adj != num_peers {
            return Err(CodecError::Invalid("overlay size mismatch"));
        }
        let mut adj = Vec::new();
        for _ in 0..n_adj {
            let n = dec.get_count()?;
            let mut nbrs = Vec::new();
            for _ in 0..n {
                nbrs.push(get_peer(&mut dec, num_peers)?);
            }
            adj.push(nbrs);
        }

        // [3] Liveness.
        let mut alive = Vec::new();
        for _ in 0..num_peers {
            alive.push(dec.get_bool()?);
        }

        // [4] Content.
        let n_holdings = dec.get_count()?;
        if n_holdings != num_peers {
            return Err(CodecError::Invalid("holdings size mismatch"));
        }
        let mut holdings = Vec::new();
        for _ in 0..n_holdings {
            let n = dec.get_count()?;
            let mut docs = Vec::new();
            for _ in 0..n {
                docs.push(get_doc(&mut dec, num_docs)?);
            }
            holdings.push(docs);
        }
        let n_holders = dec.get_count()?;
        if n_holders != num_docs {
            return Err(CodecError::Invalid("holders size mismatch"));
        }
        let mut holders = Vec::new();
        for _ in 0..n_holders {
            let n = dec.get_count()?;
            let mut peers = Vec::new();
            for _ in 0..n {
                peers.push(get_peer(&mut dec, num_peers)?);
            }
            holders.push(peers);
        }

        // [5] Engine RNG.
        let rng_state = get_rng_state(&mut dec)?;

        // [6] Load recorder.
        let n_buckets = dec.get_count()?;
        let mut buckets = Vec::new();
        for _ in 0..n_buckets {
            let mut bucket = [0u64; MsgClass::COUNT];
            for b in bucket.iter_mut() {
                *b = dec.get_u64()?;
            }
            buckets.push(bucket);
        }
        let mut msg_totals = [0u64; MsgClass::COUNT];
        for m in msg_totals.iter_mut() {
            *m = dec.get_u64()?;
        }
        let n_steps = dec.get_count()?;
        let mut alive_steps = Vec::new();
        for _ in 0..n_steps {
            let t = dec.get_u64()?;
            let c = dec.get_len()?;
            alive_steps.push((t, c));
        }
        let n_notes = dec.get_count()?;
        let mut notes = Vec::new();
        for _ in 0..n_notes {
            notes.push(dec.get_str()?);
        }

        // [7] Query ledger.
        let raw_len = dec.get_len()?;
        if raw_len > MAX_LEDGER_SLOTS {
            return Err(CodecError::Invalid("ledger slot count implausibly large"));
        }
        let n_registered = dec.get_count()?;
        let mut ledger_entries = Vec::new();
        for _ in 0..n_registered {
            let id = dec.get_u32()?;
            if id as usize >= raw_len {
                return Err(CodecError::Invalid("query id past ledger length"));
            }
            let issue_us = dec.get_u64()?;
            let first_answer_us = if dec.get_bool()? {
                Some(dec.get_u64()?)
            } else {
                None
            };
            let answers = dec.get_u32()?;
            ledger_entries.push((id, issue_us, first_answer_us, answers));
        }

        // [8] Robustness counters.
        let mut retry = [0u64; 4];
        for c in retry.iter_mut() {
            *c = dec.get_u64()?;
        }

        // [9] Send counter.
        let messages_sent = dec.get_u64()?;

        // [10] Engine profile.
        let profile = EngineProfile {
            sends: dec.get_u64()?,
            delivers: dec.get_u64()?,
            timers_fired: dec.get_u64()?,
            timers_set: dec.get_u64()?,
            trace_events: dec.get_u64()?,
            trace_records: dec.get_u64()?,
            queue_hwm: dec.get_len()?,
            past_horizon: dec.get_u64()?,
        };

        // [11] Auditor.
        let audit = if dec.get_bool()? {
            let auditor = SimAuditor::decode_checkpoint(&mut dec)?;
            if auditor.mirror_len() != num_peers {
                return Err(CodecError::Invalid("auditor liveness mirror size mismatch"));
            }
            Some(auditor)
        } else {
            None
        };

        // [12] Fault layer.
        let faults = if dec.get_bool()? {
            let loss_ppm = dec.get_u32()?;
            let jitter_max_us = dec.get_u64()?;
            let duplicate_ppm = dec.get_u32()?;
            let n_windows = dec.get_count()?;
            let mut partitions = Vec::new();
            for _ in 0..n_windows {
                partitions.push(PartitionWindow {
                    start_us: dec.get_u64()?,
                    end_us: dec.get_u64()?,
                    cut_index: dec.get_u32()?,
                });
            }
            let plan = FaultPlan {
                loss_ppm,
                jitter_max_us,
                duplicate_ppm,
                partitions,
            };
            if plan.validate().is_err() {
                return Err(CodecError::Invalid("fault plan fails validation"));
            }
            let fault_rng = get_rng_state(&mut dec)?;
            let stats = FaultStats {
                dropped: dec.get_u64()?,
                partitioned: dec.get_u64()?,
                duplicated: dec.get_u64()?,
                jittered: dec.get_u64()?,
                decisions: dec.get_u64()?,
            };
            Some(FaultState::from_parts(plan, fault_rng, stats))
        } else {
            None
        };

        // [13] Adversary layer.
        let adversary = if dec.get_bool()? {
            let spam_ppm = dec.get_u32()?;
            let free_rider_ppm = dec.get_u32()?;
            let n_targets = dec.get_count()?;
            let mut eclipse = Vec::new();
            for _ in 0..n_targets {
                eclipse.push(EclipseTarget {
                    victim: get_peer(&mut dec, num_peers)?,
                    captured_links: dec.get_u32()?,
                });
            }
            let plan = AdversaryPlan {
                spam_ppm,
                free_rider_ppm,
                eclipse,
            };
            if plan.validate().is_err() {
                return Err(CodecError::Invalid("adversary plan fails validation"));
            }
            let stats = AdversaryStats {
                absorbed: dec.get_u64()?,
                spam_peers: dec.get_u64()?,
                free_riders: dec.get_u64()?,
                eclipsed_edges: dec.get_u64()?,
            };
            Some(AdversaryState::from_parts(
                plan,
                num_peers,
                sim.ctx.run_seed,
                stats,
            ))
        } else {
            None
        };

        // [14] Protocol dynamic state.
        sim.protocol.decode_state(&mut dec)?;
        dec.finish()?;

        // Everything decoded cleanly — install the restored state. The
        // builder-assembled queue, overlay, content, metrics, and optional
        // layers are replaced wholesale; derived liveness views are
        // recomputed from the restored bitmap.
        let ctx = &mut sim.ctx;
        // The backend is the resuming builder's choice (an execution
        // strategy, not checkpointed state): a run checkpointed on the heap
        // backend resumes bit-identically on the sharded one and vice versa.
        ctx.queue = EventQueue::from_parts_in(
            ctx.queue.backend_kind(),
            next_seq,
            entries,
            cancelled,
        );
        ctx.overlay = Overlay::from_adjacency(adj);
        ctx.alive_count = alive.iter().filter(|&&a| a).count();
        ctx.alive_list = alive
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| PeerId(i as u32))
            .collect();
        ctx.alive = alive;
        ctx.content = ContentState::from_parts(ctx.model, holdings, holders);
        ctx.rng = SmallRng::from_state(rng_state);
        ctx.load = LoadRecorder::from_parts(buckets, msg_totals, alive_steps, notes);
        ctx.ledger = QueryLedger::from_parts(raw_len, ledger_entries);
        ctx.retry = RetryCounters::from_counts(retry);
        ctx.messages_sent = messages_sent;
        ctx.profile = profile;
        ctx.now_us = header.now_us;
        ctx.audit = audit.map(Box::new);
        ctx.faults = faults.map(Box::new);
        ctx.adversary = adversary.map(Box::new);
        sim.started = header.started;
        sim.halted = header.halted;
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_u8(0xAB);
        enc.put_u16(0xBEEF);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(0x0123_4567_89AB_CDEF);
        enc.put_bool(true);
        enc.put_bool(false);
        enc.put_len(42);
        enc.put_str("hello ünïcode");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 0xAB);
        assert_eq!(dec.get_u16().unwrap(), 0xBEEF);
        assert_eq!(dec.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(dec.get_bool().unwrap());
        assert!(!dec.get_bool().unwrap());
        assert_eq!(dec.get_len().unwrap(), 42);
        assert_eq!(dec.get_str().unwrap(), "hello ünïcode");
        dec.finish().unwrap();
    }

    #[test]
    fn decoder_rejects_truncation() {
        let mut enc = Encoder::new();
        enc.put_u64(7);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..5]);
        assert_eq!(dec.get_u64(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn decoder_rejects_bad_bool() {
        let bytes = [2u8];
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.get_bool(), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn decoder_flags_trailing_bytes() {
        let bytes = [0u8; 3];
        let mut dec = Decoder::new(&bytes);
        dec.get_u8().unwrap();
        assert_eq!(dec.finish(), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn count_guard_rejects_oversized_counts() {
        // A count of u64::MAX with only a few bytes behind it must be
        // rejected before any allocation happens.
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX);
        enc.put_u8(0);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.get_count().is_err());
    }

    fn sealed(body: Encoder) -> Vec<u8> {
        let mut bytes = body.into_bytes();
        let sum = checksum(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        bytes
    }

    fn minimal_header() -> Encoder {
        let mut enc = Encoder::new();
        enc.put_bytes(&MAGIC);
        enc.put_u16(VERSION);
        enc.put_u64(11); // run_seed
        enc.put_len(3); // num_peers
        enc.put_u8(0); // Random
        enc.put_u64(5_000_000); // now_us
        enc.put_bool(true); // started
        enc.put_bool(false); // halted
        enc
    }

    #[test]
    fn from_bytes_accepts_valid_header() {
        let ckpt = Checkpoint::from_bytes(sealed(minimal_header())).unwrap();
        assert_eq!(ckpt.run_seed(), 11);
        assert_eq!(ckpt.num_peers(), 3);
        assert_eq!(ckpt.overlay_kind(), OverlayKind::Random);
        assert_eq!(ckpt.now_us(), 5_000_000);
    }

    #[test]
    fn from_bytes_rejects_bad_magic() {
        let mut bytes = sealed(minimal_header());
        bytes[0] ^= 0xFF;
        assert_eq!(Checkpoint::from_bytes(bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn from_bytes_rejects_unknown_version() {
        let mut enc = Encoder::new();
        enc.put_bytes(&MAGIC);
        enc.put_u16(99);
        assert_eq!(
            Checkpoint::from_bytes(sealed(enc)),
            Err(CodecError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn from_bytes_rejects_flipped_body_bit() {
        let mut bytes = sealed(minimal_header());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert_eq!(Checkpoint::from_bytes(bytes), Err(CodecError::BadChecksum));
    }

    #[test]
    fn from_bytes_rejects_truncated_input() {
        let bytes = sealed(minimal_header());
        for cut in [0, 5, bytes.len() - 1] {
            let err = Checkpoint::from_bytes(bytes[..cut].to_vec()).unwrap_err();
            assert!(
                matches!(err, CodecError::UnexpectedEof | CodecError::BadChecksum),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn from_bytes_rejects_bad_overlay_tag() {
        let mut enc = Encoder::new();
        enc.put_bytes(&MAGIC);
        enc.put_u16(VERSION);
        enc.put_u64(11);
        enc.put_len(3);
        enc.put_u8(7); // no such overlay kind
        enc.put_u64(0);
        enc.put_bool(false);
        enc.put_bool(false);
        assert_eq!(Checkpoint::from_bytes(sealed(enc)), Err(CodecError::BadTag));
    }

    #[test]
    fn rng_state_rejects_all_zero() {
        let mut enc = Encoder::new();
        for _ in 0..4 {
            enc.put_u64(0);
        }
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(get_rng_state(&mut dec), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn trace_event_codec_roundtrips() {
        let events = [
            TraceEvent::Query(QuerySpec {
                id: 9,
                requester: PeerId(2),
                terms: vec![KeywordId(5), KeywordId(17)],
                target: DocId(3),
            }),
            TraceEvent::AddDocument {
                peer: PeerId(1),
                doc: DocId(0),
            },
            TraceEvent::RemoveDocument {
                peer: PeerId(0),
                doc: DocId(4),
            },
            TraceEvent::Join(PeerId(2)),
            TraceEvent::Leave(PeerId(1)),
        ];
        for ev in &events {
            let mut enc = Encoder::new();
            encode_trace_event(ev, &mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            let back = decode_trace_event(&mut dec, 3, 5).unwrap();
            dec.finish().unwrap();
            let mut enc2 = Encoder::new();
            encode_trace_event(&back, &mut enc2);
            assert_eq!(bytes, enc2.into_bytes(), "re-encode differs for {ev:?}");
        }
    }

    #[test]
    fn trace_event_decode_validates_ids() {
        let mut enc = Encoder::new();
        encode_trace_event(&TraceEvent::Join(PeerId(9)), &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            decode_trace_event(&mut dec, 3, 5),
            Err(CodecError::Invalid(_))
        ));
    }
}
