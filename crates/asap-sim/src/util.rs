//! Small protocol-side utilities.

use crate::collections::{DetHashMap, DetHashSet};
use std::collections::VecDeque;
use std::hash::Hash;

/// Per-key visited-set with a bounded window of recent keys, for duplicate
/// suppression in flood-style dissemination. Memory stays flat over an
/// arbitrarily long trace: once more than `window` keys are live, the oldest
/// key's state is forgotten (by then its flood has long died out).
#[derive(Debug)]
pub struct SeenTracker<K: Hash + Eq + Copy> {
    seen: DetHashMap<K, DetHashSet<u32>>,
    order: VecDeque<K>,
    window: usize,
}

impl<K: Hash + Eq + Copy> SeenTracker<K> {
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            seen: DetHashMap::default(),
            order: VecDeque::new(),
            window,
        }
    }

    /// Returns `true` the first time `(key, visitor)` is observed; `false`
    /// afterwards (until `key` ages out of the window).
    pub fn first_visit(&mut self, key: K, visitor: u32) -> bool {
        if let Some(entry) = self.seen.get_mut(&key) {
            return entry.insert(visitor);
        }
        // New key: evict *before* inserting, so the tracker never holds more
        // than `window` keys (not even transiently) and the key registered by
        // this very call can never be the one evicted.
        while self.seen.len() >= self.window {
            if let Some(evicted) = self.order.pop_front() {
                self.seen.remove(&evicted);
            } else {
                break;
            }
        }
        self.order.push_back(key);
        let mut visitors = DetHashSet::default();
        visitors.insert(visitor);
        self.seen.insert(key, visitors);
        true
    }

    pub fn tracked_keys(&self) -> usize {
        self.seen.len()
    }

    /// The configured window size (checkpointing).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Canonical checkpoint view: `(key, visitors)` pairs in eviction-queue
    /// order (oldest first), visitors sorted ascending. The eviction queue
    /// and the map hold exactly the same keys, so this captures the whole
    /// state.
    pub fn entries(&self) -> Vec<(K, Vec<u32>)> {
        self.order
            .iter()
            .map(|k| {
                let mut visitors: Vec<u32> = self
                    .seen
                    .get(k)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                visitors.sort_unstable();
                (*k, visitors)
            })
            .collect()
    }

    /// Rebuild a tracker from [`SeenTracker::entries`] output. Entries must
    /// be in eviction-queue order and within the window.
    pub fn from_entries(window: usize, entries: Vec<(K, Vec<u32>)>) -> Self {
        let mut t = Self::new(window);
        for (key, visitors) in entries {
            t.order.push_back(key);
            t.seen.insert(key, visitors.into_iter().collect());
        }
        t
    }
}

/// Capped exponential backoff with a bounded retry budget: the universal
/// retransmission pacer for protocol robustness under loss. Pure integer
/// arithmetic (this module is inside lint rule R3's no-float scope).
///
/// Each successful [`Backoff::next`] yields the delay to wait before the
/// next attempt and doubles it for the one after, saturating at `cap_us`;
/// once the budget is spent it yields `None` forever (give up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    delay_us: u64,
    cap_us: u64,
    remaining: u32,
}

impl Backoff {
    /// A backoff starting at `base_us`, doubling up to `cap_us`, allowing
    /// `retries` attempts in total. `retries = 0` is the inert backoff:
    /// `next` immediately yields `None`.
    pub fn new(base_us: u64, cap_us: u64, retries: u32) -> Self {
        Self {
            delay_us: base_us.min(cap_us).max(1),
            cap_us: cap_us.max(1),
            remaining: retries,
        }
    }

    /// Retries still available.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// True iff `next` would yield `None`.
    pub fn exhausted(&self) -> bool {
        self.remaining == 0
    }

    /// Raw `(delay_us, cap_us, remaining)` fields, for checkpointing a
    /// backoff mid-stream. Pair with [`Backoff::from_raw_parts`].
    pub fn raw_parts(&self) -> (u64, u64, u32) {
        (self.delay_us, self.cap_us, self.remaining)
    }

    /// Rebuild a backoff from [`Backoff::raw_parts`] output. No clamping is
    /// applied — the fields are restored verbatim so a checkpointed backoff
    /// continues its schedule exactly.
    pub fn from_raw_parts(delay_us: u64, cap_us: u64, remaining: u32) -> Self {
        Self {
            delay_us,
            cap_us,
            remaining,
        }
    }
}

/// The delay before each retry, one item per attempt in the budget.
impl Iterator for Backoff {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let d = self.delay_us;
        self.delay_us = self.delay_us.saturating_mul(2).min(self.cap_us);
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_per_key() {
        let mut t: SeenTracker<u64> = SeenTracker::new(8);
        assert!(t.first_visit(1, 5));
        assert!(!t.first_visit(1, 5));
        assert!(t.first_visit(1, 6));
        assert!(t.first_visit(2, 5));
    }

    #[test]
    fn window_bounds_memory() {
        let mut t: SeenTracker<u64> = SeenTracker::new(4);
        for k in 0..100u64 {
            assert!(t.first_visit(k, 0));
        }
        assert!(t.tracked_keys() <= 4);
        assert!(t.first_visit(0, 0), "evicted key looks fresh again");
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _: SeenTracker<u32> = SeenTracker::new(0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut b = Backoff::new(100, 350, 5);
        assert_eq!(b.next(), Some(100));
        assert_eq!(b.next(), Some(200));
        assert_eq!(b.next(), Some(350), "doubling saturates at the cap");
        assert_eq!(b.next(), Some(350));
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.next(), Some(350));
        assert!(b.exhausted());
        assert_eq!(b.next(), None);
        assert_eq!(b.next(), None, "exhaustion is permanent");
    }

    #[test]
    fn zero_retries_is_inert() {
        let mut b = Backoff::new(1_000, 10_000, 0);
        assert!(b.exhausted());
        assert_eq!(b.next(), None);
    }

    #[test]
    fn backoff_base_above_cap_is_clamped() {
        let mut b = Backoff::new(5_000, 1_000, 2);
        assert_eq!(b.next(), Some(1_000));
        assert_eq!(b.next(), Some(1_000));
        assert_eq!(b.next(), None);
    }

    #[test]
    fn never_exceeds_window_and_window_one_revisit_sticks() {
        let mut t: SeenTracker<u64> = SeenTracker::new(1);
        assert!(t.first_visit(1, 0));
        assert_eq!(t.tracked_keys(), 1);
        // A second key evicts the first — never the key being inserted.
        assert!(t.first_visit(2, 0));
        assert_eq!(t.tracked_keys(), 1, "eviction happens before insert");
        // Re-visits of the surviving key are still deduplicated: the insert
        // path must not evict the entry it just created.
        assert!(!t.first_visit(2, 0), "revisit of the live key is not fresh");
        assert!(t.first_visit(2, 1), "new visitor on the live key is fresh");
        // The evicted key looks fresh again.
        assert!(t.first_visit(1, 0));
    }
}
