//! Small protocol-side utilities.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;

/// Per-key visited-set with a bounded window of recent keys, for duplicate
/// suppression in flood-style dissemination. Memory stays flat over an
/// arbitrarily long trace: once more than `window` keys are live, the oldest
/// key's state is forgotten (by then its flood has long died out).
#[derive(Debug)]
pub struct SeenTracker<K: Hash + Eq + Copy> {
    seen: HashMap<K, HashSet<u32>>,
    order: VecDeque<K>,
    window: usize,
}

impl<K: Hash + Eq + Copy> SeenTracker<K> {
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            seen: HashMap::new(),
            order: VecDeque::new(),
            window,
        }
    }

    /// Returns `true` the first time `(key, visitor)` is observed; `false`
    /// afterwards (until `key` ages out of the window).
    pub fn first_visit(&mut self, key: K, visitor: u32) -> bool {
        let entry = self.seen.entry(key).or_insert_with(|| {
            self.order.push_back(key);
            HashSet::new()
        });
        let fresh = entry.insert(visitor);
        while self.order.len() > self.window {
            let evicted = self.order.pop_front().expect("non-empty");
            self.seen.remove(&evicted);
        }
        fresh
    }

    pub fn tracked_keys(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_per_key() {
        let mut t: SeenTracker<u64> = SeenTracker::new(8);
        assert!(t.first_visit(1, 5));
        assert!(!t.first_visit(1, 5));
        assert!(t.first_visit(1, 6));
        assert!(t.first_visit(2, 5));
    }

    #[test]
    fn window_bounds_memory() {
        let mut t: SeenTracker<u64> = SeenTracker::new(4);
        for k in 0..100u64 {
            assert!(t.first_visit(k, 0));
        }
        assert!(t.tracked_keys() <= 4);
        assert!(t.first_visit(0, 0), "evicted key looks fresh again");
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _: SeenTracker<u32> = SeenTracker::new(0);
    }
}
