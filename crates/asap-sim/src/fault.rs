//! Deterministic fault injection: per-link loss, latency jitter,
//! duplication, and timed partition windows.
//!
//! A [`FaultPlan`] attached via [`Simulation::with_faults`](crate::Simulation::with_faults)
//! intercepts every [`Ctx::send`](crate::Ctx::send) *after* the bytes are
//! charged (the sender consumed the bandwidth whether or not the network
//! delivers) and decides the message's fate:
//!
//! 1. **partition** — if a [`PartitionWindow`] is active and the edge
//!    crosses the cut, the message is dropped (no RNG draw);
//! 2. **loss** — dropped with probability `loss_ppm` / 1 000 000;
//! 3. **jitter** — delivery is delayed by a uniform extra latency in
//!    `[0, jitter_max_us]`;
//! 4. **duplication** — with probability `duplicate_ppm` / 1 000 000 a
//!    second copy is scheduled with its own jitter draw.
//!
//! Determinism rules (DESIGN.md):
//!
//! * All fault randomness comes from a **dedicated RNG stream**, seeded from
//!   the run seed xor a fault-layer salt. Enabling faults therefore never
//!   perturbs protocol or workload RNG consumption — an *inert* plan
//!   (`loss_ppm = 0`, `jitter_max_us = 0`, `duplicate_ppm = 0`, no
//!   partitions) reproduces a fault-free run's golden digest bit-for-bit.
//! * A rate of zero draws **nothing** from the stream, so decision
//!   sequences are a pure function of (plan, seed, send sequence).
//! * Probabilities are integer parts-per-million and jitter is integer µs:
//!   this module sits inside lint rule R3's no-float scope.
//!
//! The auditor reconciles [`FaultStats`] exactly against its own mirrors of
//! the announced drop/duplicate events, and flags any duplicate delivery
//! that was never announced (see `SimAuditor::on_deliver`).

use asap_overlay::PeerId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Salt xor-ed into the run seed for the dedicated fault RNG stream; must
/// differ from every other per-run stream derivation in the engine.
const FAULT_STREAM_SALT: u64 = 0xFA17_0B5E_55ED_C0DE;

const PPM_SCALE: u32 = 1_000_000;

/// A timed network partition: while `start_us <= now < end_us`, messages
/// crossing the cut `{id < cut_index} | {id >= cut_index}` are dropped in
/// both directions. Intra-side traffic is unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    pub start_us: u64,
    pub end_us: u64,
    pub cut_index: u32,
}

impl PartitionWindow {
    /// Does a message sent now between `from` and `to` cross this cut?
    #[inline]
    pub fn severs(&self, now_us: u64, from: PeerId, to: PeerId) -> bool {
        now_us >= self.start_us
            && now_us < self.end_us
            && (from.0 < self.cut_index) != (to.0 < self.cut_index)
    }
}

/// A declarative fault schedule. The zero value ([`FaultPlan::default`]) is
/// *inert*: attaching it changes nothing observable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Per-message loss probability, parts per million (0..=1_000_000).
    pub loss_ppm: u32,
    /// Extra uniform delivery delay in `[0, jitter_max_us]` µs.
    pub jitter_max_us: u64,
    /// Per-message duplication probability, parts per million.
    pub duplicate_ppm: u32,
    /// Timed partition windows, checked in order; the first active severing
    /// window drops the message.
    pub partitions: Vec<PartitionWindow>,
}

impl FaultPlan {
    /// An inert plan: no loss, no jitter, no duplication, no partitions.
    pub fn none() -> Self {
        Self::default()
    }

    /// True iff attaching this plan cannot change any observable behavior.
    pub fn is_inert(&self) -> bool {
        self.loss_ppm == 0
            && self.jitter_max_us == 0
            && self.duplicate_ppm == 0
            && self.partitions.is_empty()
    }

    /// Structural validity: probabilities within [0, 1e6] ppm and partition
    /// windows non-inverted.
    pub fn validate(&self) -> Result<(), String> {
        if self.loss_ppm > PPM_SCALE {
            return Err(format!("loss_ppm {} > 1_000_000", self.loss_ppm));
        }
        if self.duplicate_ppm > PPM_SCALE {
            return Err(format!("duplicate_ppm {} > 1_000_000", self.duplicate_ppm));
        }
        for w in &self.partitions {
            if w.start_us >= w.end_us {
                return Err(format!(
                    "partition window [{}, {}) is empty or inverted",
                    w.start_us, w.end_us
                ));
            }
        }
        Ok(())
    }
}

/// Counters kept by the fault layer itself; the auditor reconciles them
/// exactly against its own mirrors of the announced events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by the random-loss coin.
    pub dropped: u64,
    /// Messages dropped by an active partition window.
    pub partitioned: u64,
    /// Messages that got a second scheduled copy.
    pub duplicated: u64,
    /// Deliveries whose jitter draw came out non-zero.
    pub jittered: u64,
    /// Total sends evaluated by the fault layer.
    pub decisions: u64,
}

impl FaultStats {
    /// Drops of either kind.
    pub fn total_dropped(&self) -> u64 {
        self.dropped + self.partitioned
    }
}

/// The fate of one send, as decided by [`FaultState::decide`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Schedule delivery `jitter_us` late; if `duplicate_jitter_us` is set,
    /// schedule a second copy with that (independent) extra delay.
    Deliver {
        jitter_us: u64,
        duplicate_jitter_us: Option<u64>,
    },
    /// Drop the message. `partition` distinguishes a partition cut from the
    /// random-loss coin (the two reconcile against separate counters).
    Drop { partition: bool },
}

impl FaultDecision {
    /// The decision an un-faulted engine implicitly makes for every send.
    pub const CLEAN: Self = Self::Deliver {
        jitter_us: 0,
        duplicate_jitter_us: None,
    };
}

/// Live fault-layer state: the plan, the dedicated RNG stream, and the
/// running statistics.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: SmallRng,
    stats: FaultStats,
}

impl FaultState {
    /// Derive the dedicated fault stream from the run seed. Two runs with
    /// the same seed and plan make identical decisions for identical send
    /// sequences.
    pub fn new(plan: FaultPlan, run_seed: u64) -> Self {
        debug_assert!(plan.validate().is_ok(), "invalid fault plan");
        Self {
            plan,
            rng: SmallRng::seed_from_u64(run_seed ^ FAULT_STREAM_SALT),
            stats: FaultStats::default(),
        }
    }

    /// Raw xoshiro state of the dedicated fault stream (checkpointing).
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuild a fault layer mid-run from checkpointed state: the plan, the
    /// dedicated stream's raw RNG state, and the statistics accumulated so
    /// far. Continues the decision stream exactly where the snapshot left
    /// off.
    pub fn from_parts(plan: FaultPlan, rng_state: [u64; 4], stats: FaultStats) -> Self {
        debug_assert!(plan.validate().is_ok(), "invalid fault plan");
        Self {
            plan,
            rng: SmallRng::from_state(rng_state),
            stats,
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    pub fn into_stats(self) -> FaultStats {
        self.stats
    }

    /// Decide the fate of a message sent now from `from` to `to`.
    ///
    /// Draw order is fixed — partition (no draw), loss coin, jitter,
    /// duplicate coin, duplicate jitter — and a disabled knob draws
    /// nothing, so the stream stays aligned across plan variations that
    /// share the enabled knobs.
    pub fn decide(&mut self, now_us: u64, from: PeerId, to: PeerId) -> FaultDecision {
        self.stats.decisions += 1;
        if self
            .plan
            .partitions
            .iter()
            .any(|w| w.severs(now_us, from, to))
        {
            self.stats.partitioned += 1;
            return FaultDecision::Drop { partition: true };
        }
        if self.plan.loss_ppm > 0 && self.rng.gen_range(0..PPM_SCALE) < self.plan.loss_ppm {
            self.stats.dropped += 1;
            return FaultDecision::Drop { partition: false };
        }
        let jitter_us = self.draw_jitter();
        if jitter_us > 0 {
            self.stats.jittered += 1;
        }
        let duplicate_jitter_us = if self.plan.duplicate_ppm > 0
            && self.rng.gen_range(0..PPM_SCALE) < self.plan.duplicate_ppm
        {
            self.stats.duplicated += 1;
            Some(self.draw_jitter())
        } else {
            None
        };
        FaultDecision::Deliver {
            jitter_us,
            duplicate_jitter_us,
        }
    }

    #[inline]
    fn draw_jitter(&mut self) -> u64 {
        if self.plan.jitter_max_us > 0 {
            self.rng.gen_range(0..=self.plan.jitter_max_us)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_plan() -> FaultPlan {
        FaultPlan {
            loss_ppm: 100_000,
            jitter_max_us: 50_000,
            duplicate_ppm: 50_000,
            partitions: vec![PartitionWindow {
                start_us: 1_000,
                end_us: 2_000,
                cut_index: 5,
            }],
        }
    }

    #[test]
    fn inert_plan_is_inert_and_never_draws() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        assert!(plan.validate().is_ok());
        let mut f = FaultState::new(plan, 7);
        for i in 0..1_000u64 {
            let d = f.decide(i, PeerId(0), PeerId(1));
            assert_eq!(d, FaultDecision::CLEAN);
        }
        assert_eq!(f.stats().total_dropped(), 0);
        assert_eq!(f.stats().duplicated, 0);
        assert_eq!(f.stats().jittered, 0);
        assert_eq!(f.stats().decisions, 1_000);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = || {
            let mut f = FaultState::new(lossy_plan(), 42);
            (0..2_000u64)
                .map(|i| f.decide(i * 10, PeerId((i % 20) as u32), PeerId(((i + 1) % 20) as u32)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_diverge() {
        let run = |seed| {
            let mut f = FaultState::new(lossy_plan(), seed);
            (0..500u64)
                .map(|i| f.decide(i * 10, PeerId(0), PeerId(1)))
                .collect::<Vec<_>>()
        };
        assert_ne!(run(1), run(2), "fault stream must depend on the run seed");
    }

    #[test]
    fn partition_severs_only_crossing_edges_during_window() {
        let w = PartitionWindow {
            start_us: 100,
            end_us: 200,
            cut_index: 3,
        };
        assert!(w.severs(100, PeerId(0), PeerId(5)));
        assert!(w.severs(199, PeerId(5), PeerId(0)), "cut is symmetric");
        assert!(!w.severs(200, PeerId(0), PeerId(5)), "end is exclusive");
        assert!(!w.severs(99, PeerId(0), PeerId(5)), "start is inclusive");
        assert!(!w.severs(150, PeerId(0), PeerId(2)), "same side (low)");
        assert!(!w.severs(150, PeerId(4), PeerId(9)), "same side (high)");
    }

    #[test]
    fn partition_drop_consumes_no_randomness() {
        // Two states, same seed: one decides a partitioned send first, the
        // other skips it. Their streams must stay aligned afterwards.
        let plan = lossy_plan();
        let mut a = FaultState::new(plan.clone(), 9);
        let mut b = FaultState::new(plan, 9);
        assert_eq!(
            a.decide(1_500, PeerId(0), PeerId(9)),
            FaultDecision::Drop { partition: true }
        );
        for i in 0..200u64 {
            assert_eq!(
                a.decide(5_000 + i, PeerId(0), PeerId(1)),
                b.decide(5_000 + i, PeerId(0), PeerId(1))
            );
        }
    }

    #[test]
    fn loss_rate_roughly_matches_ppm() {
        let mut f = FaultState::new(
            FaultPlan {
                loss_ppm: 100_000, // 10%
                ..FaultPlan::default()
            },
            3,
        );
        let n = 20_000u64;
        for i in 0..n {
            f.decide(i, PeerId(0), PeerId(1));
        }
        let dropped = f.stats().dropped;
        // 10% ± 2% absolute at n = 20k is > 9 sigma.
        assert!(
            (n / 10).abs_diff(dropped) < n / 50,
            "dropped {dropped} of {n}"
        );
        assert_eq!(f.stats().partitioned, 0);
    }

    #[test]
    fn jitter_stays_in_bounds_and_duplicates_carry_their_own_jitter() {
        let mut f = FaultState::new(
            FaultPlan {
                jitter_max_us: 1_000,
                duplicate_ppm: 500_000,
                ..FaultPlan::default()
            },
            11,
        );
        let mut dups = 0u64;
        for i in 0..5_000u64 {
            match f.decide(i, PeerId(0), PeerId(1)) {
                FaultDecision::Deliver {
                    jitter_us,
                    duplicate_jitter_us,
                } => {
                    assert!(jitter_us <= 1_000);
                    if let Some(dj) = duplicate_jitter_us {
                        assert!(dj <= 1_000);
                        dups += 1;
                    }
                }
                FaultDecision::Drop { .. } => panic!("no loss configured"),
            }
        }
        assert_eq!(dups, f.stats().duplicated);
        assert!(dups > 1_000, "~50% duplication expected, got {dups}");
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan {
            loss_ppm: 1_000_001,
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            duplicate_ppm: 2_000_000,
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            partitions: vec![PartitionWindow {
                start_us: 10,
                end_us: 10,
                cut_index: 1
            }],
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
    }
}
