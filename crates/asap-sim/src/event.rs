//! The engine's event queue.

use crate::collections::DetHashSet;
use asap_overlay::PeerId;
use asap_workload::TraceEvent;
use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Opaque handle to a scheduled event, usable with [`EventQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

impl EventHandle {
    /// The underlying queue sequence number. Sequence numbers survive
    /// checkpoint/resume verbatim, so protocols that keep handles in their
    /// own state can serialize them (`CheckpointProtocol::encode_state`)
    /// and rebuild with [`EventHandle::from_raw`].
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from a checkpointed sequence number.
    pub fn from_raw(seq: u64) -> Self {
        Self(seq)
    }
}

/// An event awaiting execution.
#[derive(Debug, Clone)]
pub enum EngineEvent<M> {
    /// A message arriving at `to`. `dup` marks a fault-injected duplicate
    /// copy; the auditor requires every `dup` delivery to have been
    /// announced by the fault layer.
    Deliver {
        to: PeerId,
        from: PeerId,
        msg: M,
        dup: bool,
    },
    /// A protocol timer firing at `node` with an opaque tag.
    Timer { node: PeerId, tag: u64 },
    /// A workload trace event (query, churn, content change).
    Trace(TraceEvent),
}

/// Heap entry ordered by `(time, seq)` — `seq` makes simultaneous events
/// FIFO and the whole run deterministic.
#[derive(Debug)]
pub struct Scheduled<M> {
    pub time_us: u64,
    pub seq: u64,
    pub event: EngineEvent<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time_us == other.time_us && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time_us, self.seq).cmp(&(other.time_us, other.seq))
    }
}

/// Min-heap of scheduled events with a monotone sequence counter.
///
/// Cancellation is tombstone-based: `cancel` records the handle's sequence
/// number and `pop` silently discards matching entries when they surface, so
/// cancelling is O(1) and never disturbs heap order. The tombstone set is
/// used for membership only — iteration order never influences the
/// simulation — but it is a [`DetHashSet`] anyway, per the repo-wide
/// determinism policy (DESIGN.md §6).
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Reverse<Scheduled<M>>>,
    next_seq: u64,
    cancelled: DetHashSet<u64>,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: DetHashSet::default(),
        }
    }
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, time_us: u64, event: EngineEvent<M>) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled {
            time_us,
            seq,
            event,
        }));
        EventHandle(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if a tombstone was
    /// recorded (i.e. the handle was not already cancelled). Cancelling an
    /// event that has already fired is benign — its tombstone can never match
    /// a future pop — but the return value is not a fired/pending oracle;
    /// callers that need that distinction must track firing themselves.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        debug_assert!(handle.0 < self.next_seq, "cancel of never-issued handle");
        self.cancelled.insert(handle.0)
    }

    pub fn pop(&mut self) -> Option<Scheduled<M>> {
        while let Some(Reverse(s)) = self.heap.pop() {
            if self.cancelled.remove(&s.seq) {
                continue;
            }
            return Some(s);
        }
        None
    }

    /// Time of the next event `pop` would return, without removing it.
    /// Collects tombstoned heads exactly as the next `pop` would, so peeking
    /// never changes what a later `pop` observes.
    pub fn peek_time(&mut self) -> Option<u64> {
        loop {
            let (time_us, seq) = match self.heap.peek() {
                Some(Reverse(s)) => (s.time_us, s.seq),
                None => return None,
            };
            if self.cancelled.remove(&seq) {
                self.heap.pop();
            } else {
                return Some(time_us);
            }
        }
    }

    /// Scheduled entries still in the heap, including cancelled ones whose
    /// tombstones have not yet been collected by `pop`.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The next sequence number `push` would hand out (checkpointing).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Every entry still in the heap — uncollected tombstones included — in
    /// canonical `(time, seq)` order, for checkpoint serialization. Heap
    /// layout is an implementation detail; the sorted view is the state.
    pub fn entries_sorted(&self) -> Vec<&Scheduled<M>> {
        let mut v: Vec<&Scheduled<M>> = self.heap.iter().map(|Reverse(s)| s).collect();
        v.sort_by_key(|s| (s.time_us, s.seq));
        v
    }

    /// Uncollected tombstone sequence numbers in ascending order.
    pub fn cancelled_sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.cancelled.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Rebuild a queue from checkpoint state: the surviving entries (with
    /// their original sequence numbers), the uncollected tombstones, and the
    /// sequence counter to continue from. The heap's internal layout need
    /// not match the originating run's — `pop` always returns the unique
    /// `(time, seq)` minimum, so replay order is identical regardless.
    pub fn from_parts(next_seq: u64, entries: Vec<Scheduled<M>>, cancelled: Vec<u64>) -> Self {
        Self {
            heap: entries.into_iter().map(Reverse).collect(),
            next_seq,
            cancelled: cancelled.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, tag: u64) -> EngineEvent<()> {
        EngineEvent::Timer {
            node: PeerId(node),
            tag,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(300, timer(0, 3));
        q.push(100, timer(0, 1));
        q.push(200, timer(0, 2));
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                EngineEvent::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for tag in 0..10 {
            q.push(42, timer(0, tag));
        }
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                EngineEvent::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, timer(0, 0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn tie_break_is_insertion_order_even_interleaved_with_pops() {
        let mut q = EventQueue::new();
        q.push(10, timer(0, 0));
        q.push(5, timer(0, 100));
        assert_eq!(q.pop().unwrap().time_us, 5);
        // Later insertions at the same time as a pending event sort after it.
        q.push(10, timer(0, 1));
        q.push(10, timer(0, 2));
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                EngineEvent::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![0, 1, 2]);
    }

    #[test]
    fn scheduled_ordering_is_time_then_seq() {
        let a = Scheduled::<()> { time_us: 5, seq: 9, event: timer(0, 0) };
        let b = Scheduled::<()> { time_us: 5, seq: 10, event: timer(0, 1) };
        let c = Scheduled::<()> { time_us: 6, seq: 0, event: timer(0, 2) };
        assert!(a < b, "equal time falls back to seq");
        assert!(b < c, "time dominates seq");
        assert_eq!(a, Scheduled::<()> { time_us: 5, seq: 9, event: timer(1, 7) });
    }

    #[test]
    fn cancelled_event_never_surfaces() {
        let mut q = EventQueue::new();
        q.push(100, timer(0, 0));
        let h = q.push(200, timer(0, 1));
        q.push(300, timer(0, 2));
        assert!(q.cancel(h));
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                EngineEvent::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![0, 2]);
    }

    #[test]
    fn cancel_is_idempotent() {
        let mut q = EventQueue::new();
        let h = q.push(1, timer(0, 0));
        assert!(q.cancel(h));
        assert!(!q.cancel(h), "second cancel of the same handle is a no-op");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_benign() {
        let mut q = EventQueue::new();
        let h = q.push(1, timer(0, 0));
        q.pop().unwrap();
        q.cancel(h); // tombstone for an already-popped seq can never match
        q.push(2, timer(0, 1));
        assert!(q.pop().is_some(), "later events are unaffected");
    }

    #[test]
    fn peek_time_matches_pop_and_collects_tombstones() {
        let mut q = EventQueue::new();
        let h = q.push(100, timer(0, 0));
        q.push(200, timer(0, 1));
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(200), "tombstoned head is skipped");
        assert_eq!(q.pop().unwrap().time_us, 200);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn from_parts_replays_identically() {
        let mut q = EventQueue::new();
        q.push(300, timer(0, 3));
        q.push(100, timer(0, 1));
        let h = q.push(200, timer(0, 2));
        q.cancel(h);
        let entries: Vec<Scheduled<()>> = q
            .entries_sorted()
            .into_iter()
            .map(|s| Scheduled {
                time_us: s.time_us,
                seq: s.seq,
                event: s.event.clone(),
            })
            .collect();
        let mut rebuilt = EventQueue::from_parts(q.next_seq(), entries, q.cancelled_sorted());
        assert_eq!(rebuilt.next_seq(), q.next_seq());
        assert_eq!(rebuilt.len(), q.len());
        loop {
            match (q.pop(), rebuilt.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a.map(|s| (s.time_us, s.seq)), b.map(|s| (s.time_us, s.seq))),
            }
        }
    }

    #[test]
    fn cancelling_head_does_not_reorder_survivors() {
        let mut q = EventQueue::new();
        let h = q.push(10, timer(0, 0));
        q.push(10, timer(0, 1));
        q.push(10, timer(0, 2));
        q.cancel(h);
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                EngineEvent::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![1, 2]);
    }
}
