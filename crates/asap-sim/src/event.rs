//! The engine's event queue.

use asap_overlay::PeerId;
use asap_workload::TraceEvent;
use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event awaiting execution.
#[derive(Debug, Clone)]
pub enum EngineEvent<M> {
    /// A message arriving at `to`.
    Deliver { to: PeerId, from: PeerId, msg: M },
    /// A protocol timer firing at `node` with an opaque tag.
    Timer { node: PeerId, tag: u64 },
    /// A workload trace event (query, churn, content change).
    Trace(TraceEvent),
}

/// Heap entry ordered by `(time, seq)` — `seq` makes simultaneous events
/// FIFO and the whole run deterministic.
#[derive(Debug)]
pub struct Scheduled<M> {
    pub time_us: u64,
    pub seq: u64,
    pub event: EngineEvent<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time_us == other.time_us && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time_us, self.seq).cmp(&(other.time_us, other.seq))
    }
}

/// Min-heap of scheduled events with a monotone sequence counter.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Reverse<Scheduled<M>>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, time_us: u64, event: EngineEvent<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled {
            time_us,
            seq,
            event,
        }));
    }

    pub fn pop(&mut self) -> Option<Scheduled<M>> {
        self.heap.pop().map(|Reverse(s)| s)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, tag: u64) -> EngineEvent<()> {
        EngineEvent::Timer {
            node: PeerId(node),
            tag,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(300, timer(0, 3));
        q.push(100, timer(0, 1));
        q.push(200, timer(0, 2));
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                EngineEvent::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for tag in 0..10 {
            q.push(42, timer(0, tag));
        }
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                EngineEvent::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, timer(0, 0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
