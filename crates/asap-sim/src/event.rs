//! The engine's event queue.
//!
//! Two execution backends share one queue API and one observable behavior
//! (see [`QueueBackend`]):
//!
//! * **Heap** — the classic monolithic `BinaryHeap`, the default.
//! * **Sharded** — a calendar queue sharded by virtual-time window. Events
//!   beyond the current window land in per-window append buffers (O(1), no
//!   heap sift); a window is sorted once — in parallel via the vendored
//!   rayon shim when large — at the moment it becomes current ("sealed").
//!   Pushes into the current or a past window go to a small overflow heap.
//!
//! **Pop-order proof sketch** (the property `golden --check` pins across
//! all 150 digests with sharding enabled): let `W = time_us >> WINDOW_SHIFT`.
//! The sharded backend maintains two invariants — every buffered future
//! entry has `W > current_window`, and every sealed/overflow entry has
//! `W <= current_window`. Since `W` is monotone in `time_us`, every future
//! entry's time strictly exceeds every sealed/overflow entry's time, so the
//! global `(time, seq)` minimum is always `min(sealed head, overflow head)`
//! while either is non-empty; when both are empty it lives in the smallest
//! future window, which sealing makes current. Within a window, the sealed
//! vector is sorted by `(time, seq)` and the overflow heap pops its
//! `(time, seq)` minimum, so every pop returns the unique global minimum —
//! exactly what the monolithic heap returns. `seq` uniqueness makes the
//! minimum unique, so the two backends' pop streams are identical.

use crate::collections::DetHashSet;
use asap_overlay::PeerId;
use asap_workload::TraceEvent;
use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Opaque handle to a scheduled event, usable with [`EventQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

impl EventHandle {
    /// The underlying queue sequence number. Sequence numbers survive
    /// checkpoint/resume verbatim, so protocols that keep handles in their
    /// own state can serialize them (`CheckpointProtocol::encode_state`)
    /// and rebuild with [`EventHandle::from_raw`].
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from a checkpointed sequence number.
    pub fn from_raw(seq: u64) -> Self {
        Self(seq)
    }
}

/// An event awaiting execution.
#[derive(Debug, Clone)]
pub enum EngineEvent<M> {
    /// A message arriving at `to`. `dup` marks a fault-injected duplicate
    /// copy; the auditor requires every `dup` delivery to have been
    /// announced by the fault layer.
    Deliver {
        to: PeerId,
        from: PeerId,
        msg: M,
        dup: bool,
    },
    /// A protocol timer firing at `node` with an opaque tag.
    Timer { node: PeerId, tag: u64 },
    /// A workload trace event (query, churn, content change).
    Trace(TraceEvent),
}

/// Heap entry ordered by `(time, seq)` — `seq` makes simultaneous events
/// FIFO and the whole run deterministic.
#[derive(Debug)]
pub struct Scheduled<M> {
    pub time_us: u64,
    pub seq: u64,
    pub event: EngineEvent<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time_us == other.time_us && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time_us, self.seq).cmp(&(other.time_us, other.seq))
    }
}

/// Which execution backend an [`EventQueue`] runs on. The backend is an
/// execution strategy, not state: both produce identical pop streams (see
/// the module docs), and checkpoints serialize the same sorted entry view
/// regardless (`entries_sorted` / `cancelled_sorted`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    #[default]
    Heap,
    Sharded,
}

/// Virtual-time window width: `1 << WINDOW_SHIFT` µs (≈ 65.5 ms). Runs
/// last tens of virtual seconds, so a run spans hundreds of windows —
/// coarse enough that per-window buffers amortize, fine enough that the
/// sealed sort stays small relative to the run.
const WINDOW_SHIFT: u32 = 16;

/// Sealed-window sorts below this length always use the serial path; the
/// parallel key-sort only pays off for bulk buffers (e.g. the preloaded
/// workload trace).
const PAR_SEAL_MIN: usize = 4096;

/// Tombstone purges trigger once the set outgrows `max(PURGE_TRIGGER,
/// live entries)` — at that point at least one tombstone is provably dead.
const PURGE_TRIGGER: usize = 64;

/// The calendar backend: the current window as a sorted, cursor-consumed
/// run plus an overflow heap for late pushes, and per-window unsorted
/// append buffers for everything further out.
#[derive(Debug)]
struct ShardedQueue<M> {
    /// The current window's pre-existing entries, sorted ascending; consumed
    /// from the front (`as_slice()` peeks, `next()` pops).
    sealed: std::vec::IntoIter<Scheduled<M>>,
    /// Entries pushed into the current or a past window after its seal.
    overflow: BinaryHeap<Reverse<Scheduled<M>>>,
    /// Highest window ever sealed (0 before the first seal — windows only
    /// matter relative to each other, see the module invariants).
    current_window: u64,
    /// Future windows' append buffers, keyed by window index.
    future: BTreeMap<u64, Vec<Scheduled<M>>>,
    /// Total entries across `future` (kept so `len` is O(1)).
    future_len: usize,
}

impl<M> Default for ShardedQueue<M> {
    fn default() -> Self {
        Self {
            sealed: Vec::new().into_iter(),
            overflow: BinaryHeap::new(),
            current_window: 0,
            future: BTreeMap::new(),
            future_len: 0,
        }
    }
}

impl<M> ShardedQueue<M> {
    fn push(&mut self, s: Scheduled<M>) {
        let w = s.time_us >> WINDOW_SHIFT;
        if w <= self.current_window {
            self.overflow.push(Reverse(s));
        } else {
            self.future.entry(w).or_default().push(s);
            self.future_len += 1;
        }
    }

    /// Make the smallest future window current, sorting its buffer.
    /// Returns `false` when no future window exists.
    fn seal_next(&mut self) -> bool {
        let Some((w, mut buf)) = self.future.pop_first() else {
            return false;
        };
        self.future_len -= buf.len();
        sort_scheduled(&mut buf);
        self.current_window = w;
        self.sealed = buf.into_iter();
        true
    }

    /// `(time, seq)` of the backend's head entry, sealing windows as needed.
    fn peek(&mut self) -> Option<(u64, u64)> {
        loop {
            let sealed = self.sealed.as_slice().first().map(|s| (s.time_us, s.seq));
            let over = self.overflow.peek().map(|Reverse(s)| (s.time_us, s.seq));
            match (sealed, over) {
                (Some(a), Some(b)) => return Some(a.min(b)),
                (Some(a), None) => return Some(a),
                (None, Some(b)) => return Some(b),
                (None, None) => {
                    if !self.seal_next() {
                        return None;
                    }
                }
            }
        }
    }

    fn pop(&mut self) -> Option<Scheduled<M>> {
        loop {
            let sealed = self.sealed.as_slice().first().map(|s| (s.time_us, s.seq));
            let over = self.overflow.peek().map(|Reverse(s)| (s.time_us, s.seq));
            match (sealed, over) {
                (Some(a), Some(b)) if b < a => return self.overflow.pop().map(|Reverse(s)| s),
                (Some(_), _) => return self.sealed.next(),
                (None, Some(_)) => return self.overflow.pop().map(|Reverse(s)| s),
                (None, None) => {
                    if !self.seal_next() {
                        return None;
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.sealed.as_slice().len() + self.overflow.len() + self.future_len
    }

    fn entry_refs(&self) -> impl Iterator<Item = &Scheduled<M>> {
        self.sealed
            .as_slice()
            .iter()
            .chain(self.overflow.iter().map(|Reverse(s)| s))
            .chain(self.future.values().flatten())
    }
}

/// Sort a window buffer ascending by `(time, seq)`. Large buffers sort
/// their `Copy` keys through the rayon shim's deterministic parallel sort,
/// then apply the permutation — the events themselves (which may hold
/// non-`Send` protocol messages) never cross a thread boundary. Keys are
/// unique (`seq` is), so the result is identical for every worker count.
fn sort_scheduled<M>(buf: &mut Vec<Scheduled<M>>) {
    if buf.len() < PAR_SEAL_MIN || rayon::current_num_threads() <= 1 {
        buf.sort_unstable();
        return;
    }
    let mut keys: Vec<(u64, u64, u32)> = buf
        .iter()
        .enumerate()
        .map(|(i, s)| (s.time_us, s.seq, i as u32))
        .collect();
    rayon::slice::par_sort_unstable(&mut keys);
    let mut slots: Vec<Option<Scheduled<M>>> =
        std::mem::take(buf).into_iter().map(Some).collect();
    buf.reserve_exact(slots.len());
    for &(_, _, i) in &keys {
        if let Some(s) = slots[i as usize].take() {
            buf.push(s);
        }
    }
    debug_assert_eq!(buf.len(), slots.len(), "permutation must be total");
}

/// Backend storage (see [`QueueBackend`] for semantics).
#[derive(Debug)]
enum Backend<M> {
    Heap(BinaryHeap<Reverse<Scheduled<M>>>),
    Sharded(ShardedQueue<M>),
}

impl<M> Backend<M> {
    fn new(kind: QueueBackend) -> Self {
        match kind {
            QueueBackend::Heap => Self::Heap(BinaryHeap::new()),
            QueueBackend::Sharded => Self::Sharded(ShardedQueue::default()),
        }
    }

    fn kind(&self) -> QueueBackend {
        match self {
            Self::Heap(_) => QueueBackend::Heap,
            Self::Sharded(_) => QueueBackend::Sharded,
        }
    }

    fn push(&mut self, s: Scheduled<M>) {
        match self {
            Self::Heap(h) => h.push(Reverse(s)),
            Self::Sharded(q) => q.push(s),
        }
    }

    fn peek(&mut self) -> Option<(u64, u64)> {
        match self {
            Self::Heap(h) => h.peek().map(|Reverse(s)| (s.time_us, s.seq)),
            Self::Sharded(q) => q.peek(),
        }
    }

    fn pop(&mut self) -> Option<Scheduled<M>> {
        match self {
            Self::Heap(h) => h.pop().map(|Reverse(s)| s),
            Self::Sharded(q) => q.pop(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Self::Heap(h) => h.len(),
            Self::Sharded(q) => q.len(),
        }
    }
}

/// Min-queue of scheduled events with a monotone sequence counter.
///
/// Cancellation is tombstone-based: `cancel` records the handle's sequence
/// number and `pop` silently discards matching entries when they surface, so
/// cancelling is O(1) and never disturbs queue order. Tombstones whose
/// entries never surface (cancel-after-fire, horizon cut-offs) are drained
/// by [`EventQueue::purge_cancelled`] — automatically once the set outgrows
/// the live queue, and at the engine's horizon halt. The tombstone set is
/// used for membership only — iteration order never influences the
/// simulation — but it is a [`DetHashSet`] anyway, per the repo-wide
/// determinism policy (DESIGN.md §6).
#[derive(Debug)]
pub struct EventQueue<M> {
    backend: Backend<M>,
    next_seq: u64,
    cancelled: DetHashSet<u64>,
    /// High-water mark of `cancelled` over the queue's lifetime (diagnostic;
    /// not serialized — a resumed queue restarts its mark).
    cancelled_hwm: usize,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::with_backend(QueueBackend::Heap)
    }
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue on the given backend.
    pub fn with_backend(kind: QueueBackend) -> Self {
        Self {
            backend: Backend::new(kind),
            next_seq: 0,
            cancelled: DetHashSet::default(),
            cancelled_hwm: 0,
        }
    }

    /// The backend this queue executes on.
    pub fn backend_kind(&self) -> QueueBackend {
        self.backend.kind()
    }

    /// Switch backends in place, preserving every entry, its sequence
    /// number, and all tombstones. O(n) moves plus the target backend's
    /// insertion cost; the pop stream is unaffected (see module docs).
    pub fn set_backend(&mut self, kind: QueueBackend) {
        if kind == self.backend.kind() {
            return;
        }
        let old = std::mem::replace(&mut self.backend, Backend::new(kind));
        let entries: Vec<Scheduled<M>> = match old {
            Backend::Heap(h) => h.into_vec().into_iter().map(|Reverse(s)| s).collect(),
            Backend::Sharded(q) => {
                let mut v: Vec<Scheduled<M>> = q.sealed.collect();
                v.extend(q.overflow.into_vec().into_iter().map(|Reverse(s)| s));
                for buf in q.future.into_values() {
                    v.extend(buf);
                }
                v
            }
        };
        for s in entries {
            self.backend.push(s);
        }
    }

    pub fn push(&mut self, time_us: u64, event: EngineEvent<M>) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.backend.push(Scheduled {
            time_us,
            seq,
            event,
        });
        EventHandle(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if a tombstone was
    /// recorded (i.e. the handle was not already cancelled). Cancelling an
    /// event that has already fired is benign — its tombstone can never match
    /// a future pop — but the return value is not a fired/pending oracle;
    /// callers that need that distinction must track firing themselves.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        debug_assert!(handle.0 < self.next_seq, "cancel of never-issued handle");
        let fresh = self.cancelled.insert(handle.0);
        if fresh {
            self.cancelled_hwm = self.cancelled_hwm.max(self.cancelled.len());
            // A tombstone per live entry is the most that can ever match;
            // beyond that the set provably holds dead tombstones. Purging is
            // a pure function of queue state, so it cannot perturb replay.
            if self.cancelled.len() > PURGE_TRIGGER.max(self.backend.len()) {
                self.purge_cancelled();
            }
        }
        fresh
    }

    /// Drop every tombstone whose entry is no longer in the queue (it fired
    /// before the cancel, or a horizon halt cut it off). Dead tombstones can
    /// never match a pop, so purging is behaviorally invisible — it only
    /// bounds memory and checkpoint size.
    pub fn purge_cancelled(&mut self) {
        if self.cancelled.is_empty() {
            return;
        }
        let live: DetHashSet<u64> = match &self.backend {
            Backend::Heap(h) => h.iter().map(|Reverse(s)| s.seq).collect(),
            Backend::Sharded(q) => q.entry_refs().map(|s| s.seq).collect(),
        };
        self.cancelled.retain(|seq| live.contains(seq));
    }

    /// Uncollected tombstones currently held.
    pub fn cancelled_len(&self) -> usize {
        self.cancelled.len()
    }

    /// Largest tombstone count ever held (see the regression test pinning
    /// this against unbounded cancel-after-fire growth).
    pub fn cancelled_hwm(&self) -> usize {
        self.cancelled_hwm
    }

    pub fn pop(&mut self) -> Option<Scheduled<M>> {
        loop {
            let s = self.backend.pop()?;
            if self.cancelled.remove(&s.seq) {
                continue;
            }
            return Some(s);
        }
    }

    /// Time of the next event `pop` would return, without removing it.
    /// Collects tombstoned heads exactly as the next `pop` would, so peeking
    /// never changes what a later `pop` observes.
    pub fn peek_time(&mut self) -> Option<u64> {
        loop {
            let (time_us, seq) = self.backend.peek()?;
            if self.cancelled.remove(&seq) {
                self.backend.pop();
            } else {
                return Some(time_us);
            }
        }
    }

    /// Scheduled entries still queued, including cancelled ones whose
    /// tombstones have not yet been collected by `pop`.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    pub fn is_empty(&self) -> bool {
        self.backend.len() == 0
    }

    /// The next sequence number `push` would hand out (checkpointing).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Every entry still queued — uncollected tombstones included — in
    /// canonical `(time, seq)` order, for checkpoint serialization. Backend
    /// layout is an implementation detail; the sorted view is the state.
    pub fn entries_sorted(&self) -> Vec<&Scheduled<M>> {
        let mut v: Vec<&Scheduled<M>> = match &self.backend {
            Backend::Heap(h) => h.iter().map(|Reverse(s)| s).collect(),
            Backend::Sharded(q) => q.entry_refs().collect(),
        };
        v.sort_by_key(|s| (s.time_us, s.seq));
        v
    }

    /// Uncollected tombstone sequence numbers in ascending order.
    pub fn cancelled_sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.cancelled.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Rebuild a queue from checkpoint state on the default heap backend
    /// (see [`EventQueue::from_parts_in`] to choose).
    pub fn from_parts(next_seq: u64, entries: Vec<Scheduled<M>>, cancelled: Vec<u64>) -> Self {
        Self::from_parts_in(QueueBackend::Heap, next_seq, entries, cancelled)
    }

    /// Rebuild a queue from checkpoint state: the surviving entries (with
    /// their original sequence numbers), the uncollected tombstones, and the
    /// sequence counter to continue from. The backend's internal layout need
    /// not match the originating run's — `pop` always returns the unique
    /// `(time, seq)` minimum, so replay order is identical regardless.
    pub fn from_parts_in(
        kind: QueueBackend,
        next_seq: u64,
        entries: Vec<Scheduled<M>>,
        cancelled: Vec<u64>,
    ) -> Self {
        let mut backend = Backend::new(kind);
        for s in entries {
            backend.push(s);
        }
        Self {
            backend,
            next_seq,
            cancelled: cancelled.into_iter().collect(),
            cancelled_hwm: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, tag: u64) -> EngineEvent<()> {
        EngineEvent::Timer {
            node: PeerId(node),
            tag,
        }
    }

    fn drain_tags(q: &mut EventQueue<()>) -> Vec<u64> {
        std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                EngineEvent::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect()
    }

    const BOTH: [QueueBackend; 2] = [QueueBackend::Heap, QueueBackend::Sharded];

    #[test]
    fn pops_in_time_order() {
        for kind in BOTH {
            let mut q = EventQueue::with_backend(kind);
            q.push(300, timer(0, 3));
            q.push(100, timer(0, 1));
            q.push(200, timer(0, 2));
            assert_eq!(drain_tags(&mut q), vec![1, 2, 3], "{kind:?}");
        }
    }

    #[test]
    fn equal_times_are_fifo() {
        for kind in BOTH {
            let mut q = EventQueue::with_backend(kind);
            for tag in 0..10 {
                q.push(42, timer(0, tag));
            }
            assert_eq!(drain_tags(&mut q), (0..10).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn len_and_empty() {
        for kind in BOTH {
            let mut q: EventQueue<()> = EventQueue::with_backend(kind);
            assert!(q.is_empty());
            q.push(1, timer(0, 0));
            assert_eq!(q.len(), 1);
            q.pop();
            assert!(q.is_empty());
        }
    }

    #[test]
    fn tie_break_is_insertion_order_even_interleaved_with_pops() {
        for kind in BOTH {
            let mut q = EventQueue::with_backend(kind);
            q.push(10, timer(0, 0));
            q.push(5, timer(0, 100));
            assert_eq!(q.pop().unwrap().time_us, 5);
            // Later insertions at the same time as a pending event sort after it.
            q.push(10, timer(0, 1));
            q.push(10, timer(0, 2));
            assert_eq!(drain_tags(&mut q), vec![0, 1, 2], "{kind:?}");
        }
    }

    #[test]
    fn scheduled_ordering_is_time_then_seq() {
        let a = Scheduled::<()> { time_us: 5, seq: 9, event: timer(0, 0) };
        let b = Scheduled::<()> { time_us: 5, seq: 10, event: timer(0, 1) };
        let c = Scheduled::<()> { time_us: 6, seq: 0, event: timer(0, 2) };
        assert!(a < b, "equal time falls back to seq");
        assert!(b < c, "time dominates seq");
        assert_eq!(a, Scheduled::<()> { time_us: 5, seq: 9, event: timer(1, 7) });
    }

    #[test]
    fn cancelled_event_never_surfaces() {
        for kind in BOTH {
            let mut q = EventQueue::with_backend(kind);
            q.push(100, timer(0, 0));
            let h = q.push(200, timer(0, 1));
            q.push(300, timer(0, 2));
            assert!(q.cancel(h));
            assert_eq!(drain_tags(&mut q), vec![0, 2], "{kind:?}");
        }
    }

    #[test]
    fn cancel_is_idempotent() {
        for kind in BOTH {
            let mut q = EventQueue::with_backend(kind);
            let h = q.push(1, timer(0, 0));
            assert!(q.cancel(h));
            assert!(!q.cancel(h), "second cancel of the same handle is a no-op");
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn cancel_after_fire_is_benign() {
        for kind in BOTH {
            let mut q = EventQueue::with_backend(kind);
            let h = q.push(1, timer(0, 0));
            q.pop().unwrap();
            q.cancel(h); // tombstone for an already-popped seq can never match
            q.push(2, timer(0, 1));
            assert!(q.pop().is_some(), "later events are unaffected");
        }
    }

    #[test]
    fn peek_time_matches_pop_and_collects_tombstones() {
        for kind in BOTH {
            let mut q = EventQueue::with_backend(kind);
            let h = q.push(100, timer(0, 0));
            q.push(200, timer(0, 1));
            q.cancel(h);
            assert_eq!(q.peek_time(), Some(200), "tombstoned head is skipped");
            assert_eq!(q.pop().unwrap().time_us, 200);
            assert_eq!(q.peek_time(), None);
        }
    }

    #[test]
    fn from_parts_replays_identically() {
        for src in BOTH {
            for dst in BOTH {
                let mut q = EventQueue::with_backend(src);
                q.push(300, timer(0, 3));
                q.push(100, timer(0, 1));
                let h = q.push(200, timer(0, 2));
                q.cancel(h);
                let entries: Vec<Scheduled<()>> = q
                    .entries_sorted()
                    .into_iter()
                    .map(|s| Scheduled {
                        time_us: s.time_us,
                        seq: s.seq,
                        event: s.event.clone(),
                    })
                    .collect();
                let mut rebuilt =
                    EventQueue::from_parts_in(dst, q.next_seq(), entries, q.cancelled_sorted());
                assert_eq!(rebuilt.backend_kind(), dst);
                assert_eq!(rebuilt.next_seq(), q.next_seq());
                assert_eq!(rebuilt.len(), q.len());
                loop {
                    match (q.pop(), rebuilt.pop()) {
                        (None, None) => break,
                        (a, b) => assert_eq!(
                            a.map(|s| (s.time_us, s.seq)),
                            b.map(|s| (s.time_us, s.seq))
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn cancelling_head_does_not_reorder_survivors() {
        for kind in BOTH {
            let mut q = EventQueue::with_backend(kind);
            let h = q.push(10, timer(0, 0));
            q.push(10, timer(0, 1));
            q.push(10, timer(0, 2));
            q.cancel(h);
            assert_eq!(drain_tags(&mut q), vec![1, 2], "{kind:?}");
        }
    }

    // --- sharded-backend specifics ------------------------------------

    /// Window boundaries: events in far-apart windows interleaved with
    /// same-window pushes after a seal still pop in global order.
    #[test]
    fn sharded_pops_across_window_boundaries() {
        let w = 1u64 << WINDOW_SHIFT;
        let mut q = EventQueue::with_backend(QueueBackend::Sharded);
        q.push(3 * w + 5, timer(0, 30));
        q.push(7, timer(0, 1));
        q.push(w + 1, timer(0, 10));
        assert_eq!(q.pop().unwrap().time_us, 7);
        // After popping into window 0, push into the *current* window and a
        // past time — both must surface before the future windows.
        q.push(9, timer(0, 2));
        assert_eq!(drain_tags(&mut q), vec![2, 10, 30]);
    }

    /// Randomized differential test: an LCG-driven op mix (pushes across
    /// many windows, interleaved pops, cancels of random handles) applied
    /// to both backends yields identical pop streams.
    #[test]
    fn sharded_and_heap_pop_streams_are_identical() {
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        let mut shard = EventQueue::with_backend(QueueBackend::Sharded);
        let mut handles: Vec<EventHandle> = Vec::new();
        let mut popped: Vec<(u64, u64)> = Vec::new();
        let mut x: u64 = 0xDEAD_BEEF_CAFE_1234;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x
        };
        let mut clock = 0u64;
        for step in 0..20_000u64 {
            match rng() % 10 {
                0..=5 => {
                    // Push at a time spread over ±several windows ahead of
                    // the last popped time (never behind it, like a real sim).
                    let t = clock + rng() % (1 << (WINDOW_SHIFT + 2));
                    let ha = heap.push(t, timer(0, step));
                    let hb = shard.push(t, timer(0, step));
                    assert_eq!(ha, hb);
                    handles.push(ha);
                }
                6..=7 => {
                    let a = heap.pop().map(|s| (s.time_us, s.seq));
                    let b = shard.pop().map(|s| (s.time_us, s.seq));
                    assert_eq!(a, b, "pop streams diverged at step {step}");
                    if let Some((t, seq)) = a {
                        clock = clock.max(t);
                        popped.push((t, seq));
                    }
                }
                8 => {
                    if !handles.is_empty() {
                        let h = handles[(rng() % handles.len() as u64) as usize];
                        assert_eq!(heap.cancel(h), shard.cancel(h));
                    }
                }
                _ => {
                    assert_eq!(heap.peek_time(), shard.peek_time());
                }
            }
        }
        loop {
            let a = heap.pop().map(|s| (s.time_us, s.seq));
            let b = shard.pop().map(|s| (s.time_us, s.seq));
            assert_eq!(a, b);
            if let Some(p) = a {
                popped.push(p);
            } else {
                break;
            }
        }
        assert!(popped.windows(2).all(|w| w[0] < w[1]), "global order");
        assert!(!popped.is_empty());
    }

    /// Switching backends mid-stream (tombstones pending, windows open)
    /// changes nothing observable.
    #[test]
    fn set_backend_mid_stream_preserves_order_and_tombstones() {
        for (src, dst) in [
            (QueueBackend::Heap, QueueBackend::Sharded),
            (QueueBackend::Sharded, QueueBackend::Heap),
        ] {
            let mut q = EventQueue::with_backend(src);
            let w = 1u64 << WINDOW_SHIFT;
            for i in 0..100u64 {
                q.push(i * w / 10, timer(0, i));
            }
            let h = q.push(w / 2, timer(0, 1000));
            q.cancel(h);
            let head = q.pop().map(|s| s.seq);
            q.set_backend(dst);
            assert_eq!(q.backend_kind(), dst);
            let mut reference = EventQueue::with_backend(src);
            for i in 0..100u64 {
                reference.push(i * w / 10, timer(0, i));
            }
            let h2 = reference.push(w / 2, timer(0, 1000));
            reference.cancel(h2);
            assert_eq!(reference.pop().map(|s| s.seq), head);
            loop {
                let a = q.pop().map(|s| s.seq);
                let b = reference.pop().map(|s| s.seq);
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }

    // --- tombstone purging (regression: unbounded cancel-after-fire) ---

    /// Before purging landed, a workload that cancels every timer *after*
    /// it fired (the common retry pattern: the reply arrives, the protocol
    /// cancels its retransmit timer, but the timer already popped) grew the
    /// tombstone set without bound. The high-water mark now stays pinned at
    /// the auto-purge trigger.
    #[test]
    fn cancel_after_fire_tombstones_are_purged() {
        for kind in BOTH {
            let mut q = EventQueue::with_backend(kind);
            for i in 0..10_000u64 {
                let h = q.push(i, timer(0, i));
                let fired = q.pop().expect("just pushed");
                assert_eq!(fired.seq, h.raw());
                q.cancel(h); // cancel-after-fire: tombstone can never match
            }
            assert!(
                q.cancelled_hwm() <= PURGE_TRIGGER + 1,
                "{kind:?}: hwm {} must stay pinned at the purge trigger",
                q.cancelled_hwm()
            );
            assert!(q.cancelled_len() <= PURGE_TRIGGER + 1);
        }
    }

    /// Live tombstones (cancelled entries still queued) survive a purge;
    /// dead ones do not. Checkpoint-size parity: the serialized tombstone
    /// list (`cancelled_sorted`, exactly what the checkpoint writes) shrinks
    /// to the live set, while the entry list is untouched.
    #[test]
    fn purge_keeps_live_tombstones_and_shrinks_checkpoint_state() {
        let mut q = EventQueue::with_backend(QueueBackend::Heap);
        // 3 live cancelled entries…
        let live: Vec<EventHandle> = (0..3).map(|i| q.push(1000 + i, timer(0, i))).collect();
        // …and 200 cancel-after-fire tombstones (dead).
        for i in 0..200u64 {
            let h = q.push(i, timer(0, i));
            q.pop();
            q.cancelled.insert(h.raw()); // bypass auto-purge to build backlog
        }
        for &h in &live {
            q.cancelled.insert(h.raw());
        }
        let entries_before = q.entries_sorted().len();
        assert_eq!(q.cancelled_sorted().len(), 203);
        q.purge_cancelled();
        assert_eq!(q.entries_sorted().len(), entries_before, "entries untouched");
        let kept = q.cancelled_sorted();
        assert_eq!(kept.len(), 3, "only live tombstones survive");
        let mut want: Vec<u64> = live.iter().map(|h| h.raw()).collect();
        want.sort_unstable();
        assert_eq!(kept, want);
        // The cancelled entries still never surface.
        assert!(drain_tags(&mut q).is_empty());
    }

    /// A purge mid-stream changes nothing observable: pop order and
    /// tombstone matching are identical with and without it.
    #[test]
    fn purge_is_behaviorally_invisible() {
        for kind in BOTH {
            let build = || {
                let mut q = EventQueue::with_backend(kind);
                let mut cancels = Vec::new();
                for i in 0..50u64 {
                    let h = q.push(i * 7 % 40, timer(0, i));
                    if i % 3 == 0 {
                        cancels.push(h);
                    }
                }
                for h in cancels {
                    q.cancel(h);
                }
                q
            };
            let mut plain = build();
            let mut purged = build();
            purged.purge_cancelled();
            assert_eq!(drain_tags(&mut plain), drain_tags(&mut purged), "{kind:?}");
        }
    }

    /// The parallel seal path (large window buffer + multi-worker pool)
    /// sorts identically to the serial path.
    #[test]
    fn parallel_seal_matches_serial_order() {
        let build = || {
            let mut q = EventQueue::with_backend(QueueBackend::Sharded);
            let w = 1u64 << WINDOW_SHIFT;
            let mut x: u64 = 99;
            for i in 0..(PAR_SEAL_MIN as u64 + 500) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                // All into one far-future window so one seal sorts them all.
                q.push(3 * w + (x % w), timer(0, i));
            }
            q
        };
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build()
            .unwrap_or_else(|e| panic!("pool: {e}"));
        let par: Vec<(u64, u64)> = pool.install(|| {
            let mut q = build();
            std::iter::from_fn(|| q.pop()).map(|s| (s.time_us, s.seq)).collect()
        });
        let serial_pool = rayon::ThreadPoolBuilder::new().num_threads(1).build()
            .unwrap_or_else(|e| panic!("pool: {e}"));
        let ser: Vec<(u64, u64)> = serial_pool.install(|| {
            let mut q = build();
            std::iter::from_fn(|| q.pop()).map(|s| (s.time_us, s.seq)).collect()
        });
        assert_eq!(par, ser);
        assert!(ser.windows(2).all(|w| w[0] < w[1]));
    }
}
