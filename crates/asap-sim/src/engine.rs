//! The simulation engine: world state, protocol trait, event loop.

use crate::adversary::{AdversaryPlan, AdversaryState, AdversaryStats};
use crate::audit::{AuditConfig, AuditReport, SimAuditor};
use crate::event::{EngineEvent, EventHandle, EventQueue, QueueBackend};
use crate::fault::{FaultDecision, FaultPlan, FaultState, FaultStats};
use crate::transport::{ScratchGuard, ScratchSlot, Transport};
use asap_metrics::{LoadRecorder, MsgClass, QueryLedger, RetryCounters, RetryStat};
use asap_overlay::{Overlay, OverlayKind, PeerId};
use asap_topology::{PhysNodeId, PhysicalNetwork};
use asap_trace::{Event as TraceEvt, TraceSink};
use asap_workload::{ContentModel, ContentState, DocId, QuerySpec, TraceEvent, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A search algorithm under test. The backend owns the world (overlay,
/// liveness, content, clock); the protocol owns its own per-node state and
/// reacts to events through these hooks. Every hook is generic over the
/// [`Transport`] it runs against, so the same monomorphized state machine
/// drives the deterministic sim engine and `asap-net`'s wire-crossing
/// runtimes alike.
pub trait Protocol {
    /// Protocol-specific message payload.
    type Msg: Clone;

    /// Called once at time 0, before any trace event — e.g. ASAP's initial
    /// ad delivery wave.
    fn on_init<C: Transport<Msg = Self::Msg>>(&mut self, ctx: &mut C) {
        let _ = ctx;
    }

    /// A search request issued at `ctx.now_us()` by `query.requester`.
    fn on_query<C: Transport<Msg = Self::Msg>>(&mut self, ctx: &mut C, query: &QuerySpec);

    /// A message delivered to live node `to`.
    fn on_message<C: Transport<Msg = Self::Msg>>(
        &mut self,
        ctx: &mut C,
        to: PeerId,
        from: PeerId,
        msg: Self::Msg,
    );

    /// A timer set via [`Transport::set_timer`] fired at live node `node`.
    fn on_timer<C: Transport<Msg = Self::Msg>>(&mut self, ctx: &mut C, node: PeerId, tag: u64) {
        let _ = (ctx, node, tag);
    }

    /// `node` joined (overlay already re-attached).
    fn on_join<C: Transport<Msg = Self::Msg>>(&mut self, ctx: &mut C, node: PeerId) {
        let _ = (ctx, node);
    }

    /// `node` departed (overlay already detached).
    fn on_leave<C: Transport<Msg = Self::Msg>>(&mut self, ctx: &mut C, node: PeerId) {
        let _ = (ctx, node);
    }

    /// `peer`'s shared content changed (state already updated).
    fn on_content_change<C: Transport<Msg = Self::Msg>>(
        &mut self,
        ctx: &mut C,
        peer: PeerId,
        doc: DocId,
        added: bool,
    ) {
        let _ = (ctx, peer, doc, added);
    }

    /// Protocol-level invariant sweep, called once at the end of an
    /// **audited** run (never on unaudited runs). Return one message per
    /// violated protocol invariant; they land in the
    /// [`AuditReport`](crate::audit::AuditReport) beside the engine's own.
    fn audit_invariants<C: Transport<Msg = Self::Msg>>(&self, ctx: &C) -> Vec<String> {
        let _ = ctx;
        Vec::new()
    }
}

/// The world as seen by a protocol: clock, overlay, liveness, content,
/// messaging, timers, metrics.
pub struct Ctx<'a, M> {
    pub(crate) now_us: u64,
    pub(crate) queue: EventQueue<M>,
    /// The mutable overlay graph (read via [`Ctx::neighbors`]).
    pub overlay: Overlay,
    pub(crate) overlay_kind: OverlayKind,
    pub(crate) alive: Vec<bool>,
    pub(crate) alive_count: usize,
    /// The live peers in ascending id order, maintained incrementally on
    /// join/leave so re-attachment never rebuilds it from the bitmap.
    pub(crate) alive_list: Vec<PeerId>,
    /// Reusable per-event buffer slot (see [`Ctx::scratch`]). Shared with
    /// outstanding [`ScratchGuard`]s so the guard can return capacity on
    /// drop while the protocol keeps using `ctx`.
    pub(crate) scratch: ScratchSlot,
    /// Evolving shared-content state.
    pub content: ContentState,
    /// The static content model (documents, interests, vocabulary).
    pub model: &'a ContentModel,
    pub(crate) phys: &'a PhysicalNetwork,
    pub(crate) assignment: Vec<PhysNodeId>,
    /// Deterministic per-run RNG for protocol decisions.
    pub rng: SmallRng,
    /// Byte/load accounting.
    pub load: LoadRecorder,
    /// Query outcome accounting.
    pub ledger: QueryLedger,
    /// Robustness-event accounting (see [`Ctx::count`]).
    pub(crate) retry: RetryCounters,
    pub(crate) messages_sent: u64,
    pub(crate) horizon_us: u64,
    pub(crate) trace_end_us: u64,
    pub(crate) run_seed: u64,
    /// Optional invariant auditor (off by default: one pointer test per
    /// event when disabled).
    pub(crate) audit: Option<Box<SimAuditor>>,
    /// Optional fault-injection layer (off by default, like the auditor).
    pub(crate) faults: Option<Box<FaultState>>,
    /// Optional adversary layer (off by default, like the fault layer: one
    /// pointer test per send when disabled).
    pub(crate) adversary: Option<Box<AdversaryState>>,
    /// Optional trace sink (off by default: one pointer test per event when
    /// disabled, and event construction is deferred behind a closure so the
    /// disabled path does no work at all).
    pub(crate) trace: Option<Box<dyn TraceSink>>,
    /// Event-loop phase counters and queue-depth high-water marks, always on
    /// (plain integer increments).
    pub(crate) profile: EngineProfile,
}

/// Always-on event-loop profile: phase counters and queue-depth high-water
/// marks. Surfaced via [`SimReport::profile`] and the bench `perf` bin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Messages sent (before fault decisions).
    pub sends: u64,
    /// Deliver events dispatched (dead-target drops included).
    pub delivers: u64,
    /// Timer events dispatched (dead-node drops included).
    pub timers_fired: u64,
    /// Timers armed via [`Ctx::set_timer`].
    pub timers_set: u64,
    /// Workload trace events applied (queries, content changes, churn).
    pub trace_events: u64,
    /// Trace-sink records emitted (0 when tracing is disabled).
    pub trace_records: u64,
    /// Highest event-queue depth observed at dispatch.
    pub queue_hwm: usize,
    /// Events still queued past the horizon when the run stopped.
    pub past_horizon: u64,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulation time, µs.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    #[inline]
    pub fn alive(&self, p: PeerId) -> bool {
        self.alive[p.index()]
    }

    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    pub fn num_peers(&self) -> usize {
        self.alive.len()
    }

    /// Currently-alive peers in ascending id order. Maintained
    /// incrementally — no per-call allocation or scan.
    pub fn alive_peers(&self) -> &[PeerId] {
        debug_assert_eq!(self.alive_list.len(), self.alive_count);
        &self.alive_list
    }

    /// Lease the engine's reusable scratch buffer (cleared). Protocols use
    /// it to stage per-event target lists without allocating; the capacity
    /// returns to the engine automatically when the guard drops, so early
    /// returns can't leak it.
    pub fn scratch(&mut self) -> ScratchGuard {
        self.scratch.lease()
    }

    #[inline]
    pub fn neighbors(&self, p: PeerId) -> &[PeerId] {
        self.overlay.neighbors(p)
    }

    /// One-way network latency between two peers, µs.
    #[inline]
    pub fn latency_us(&self, a: PeerId, b: PeerId) -> u64 {
        self.phys
            .latency_us(self.assignment[a.index()], self.assignment[b.index()])
    }

    /// Send a protocol message: bytes are charged to `class` now (the sender
    /// consumed the bandwidth), delivery is scheduled after the network
    /// latency, and messages reaching a dead node are dropped there.
    ///
    /// With a fault layer attached ([`SimBuilder::faults`]) the message
    /// may additionally be dropped, jittered, or duplicated *after* the
    /// bytes are charged — the sender paid for the transmission either way,
    /// so the byte-reconciliation invariant is untouched by faults.
    pub fn send(&mut self, from: PeerId, to: PeerId, class: MsgClass, bytes: usize, msg: M)
    where
        M: Clone,
    {
        debug_assert_ne!(from, to, "no self-messages");
        self.load.record(self.now_us, class, bytes);
        self.messages_sent += 1;
        self.profile.sends += 1;
        if let Some(a) = self.audit.as_deref_mut() {
            a.on_send(self.now_us, from, to, class, bytes);
        }
        // Free-riding targets absorb request-class messages: the bytes are
        // already charged (the sender paid), but nothing is queued — the
        // message reaches the recipient and dies there. The decision draws
        // no randomness, so the fault stream below stays untouched.
        if let Some(adv) = self.adversary.as_deref_mut() {
            if adv.absorb(to, class) {
                if let Some(a) = self.audit.as_deref_mut() {
                    a.on_adversary_absorb(self.now_us, from, to, class);
                }
                self.trace(|| TraceEvt::AdversaryAbsorb { from, to, class });
                return;
            }
        }
        let decision = match self.faults.as_deref_mut() {
            Some(f) => f.decide(self.now_us, from, to),
            None => FaultDecision::CLEAN,
        };
        let base = self.now_us + self.latency_us(from, to);
        match decision {
            FaultDecision::Drop { partition } => {
                if let Some(a) = self.audit.as_deref_mut() {
                    a.on_fault_drop(self.now_us, from, to, partition);
                }
                self.trace(|| TraceEvt::FaultDrop { from, to, partition });
            }
            FaultDecision::Deliver {
                jitter_us,
                duplicate_jitter_us,
            } => {
                let copy = duplicate_jitter_us.map(|dj| {
                    if let Some(a) = self.audit.as_deref_mut() {
                        a.on_fault_duplicate(self.now_us, from, to);
                    }
                    (dj, msg.clone())
                });
                // Delivered sends carry the scheduled delay (latency plus
                // fault jitter); dropped sends show up as `fault-drop`
                // instead, so the latency histograms see deliveries only.
                let delay_us = (base + jitter_us) - self.now_us;
                self.trace(|| TraceEvt::Send {
                    from,
                    to,
                    class,
                    bytes: bytes as u32,
                    delay_us,
                });
                self.queue.push(
                    base + jitter_us,
                    EngineEvent::Deliver {
                        to,
                        from,
                        msg,
                        dup: false,
                    },
                );
                if let Some((dj, msg)) = copy {
                    self.trace(|| TraceEvt::FaultDuplicate { from, to });
                    self.queue.push(
                        base + dj,
                        EngineEvent::Deliver {
                            to,
                            from,
                            msg,
                            dup: true,
                        },
                    );
                }
            }
        }
    }

    /// Emit one trace event if a sink is attached. The closure defers event
    /// construction, so a disabled sink costs one pointer test and nothing
    /// else; a sink never touches engine state, randomness, or scheduling.
    #[inline]
    pub fn trace<F: FnOnce() -> TraceEvt>(&mut self, f: F) {
        if let Some(sink) = self.trace.as_deref_mut() {
            sink.record(self.now_us, &f());
            self.profile.trace_records += 1;
        }
    }

    /// Whether a trace sink is attached (lets protocols skip preparing
    /// expensive event arguments).
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Event-loop phase counters accumulated so far.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Count one protocol-robustness event (retry, duplicate suppressed,
    /// confirmation lost, delivery abandoned). The auditor keeps an
    /// independent mirror and reconciles it exactly at the end of the run —
    /// the same double-entry discipline as [`Ctx::send`]'s byte accounting.
    pub fn count(&mut self, stat: RetryStat) {
        self.retry.record(stat);
        if let Some(a) = self.audit.as_deref_mut() {
            a.on_counter(stat);
        }
        self.trace(|| TraceEvt::Counter { stat });
    }

    /// Robustness counters accumulated so far.
    pub fn retry_counters(&self) -> &RetryCounters {
        &self.retry
    }

    /// Fault-layer statistics so far; `None` when no fault plan is attached.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_deref().map(FaultState::stats)
    }

    /// Adversary-layer statistics so far; `None` when no adversary plan is
    /// attached.
    pub fn adversary_stats(&self) -> Option<&AdversaryStats> {
        self.adversary.as_deref().map(AdversaryState::stats)
    }

    /// Schedule `on_timer(node, tag)` after `delay_us` (dropped if the node
    /// is dead when it fires). The handle can cancel it later.
    pub fn set_timer(&mut self, node: PeerId, delay_us: u64, tag: u64) -> EventHandle {
        self.profile.timers_set += 1;
        self.trace(|| TraceEvt::TimerSet { node, delay_us, tag });
        self.queue
            .push(self.now_us + delay_us, EngineEvent::Timer { node, tag })
    }

    /// Cancel a pending timer set via [`Ctx::set_timer`]; a cancelled timer
    /// never reaches `on_timer`. See [`EventQueue::cancel`] for the return
    /// value's semantics.
    pub fn cancel_timer(&mut self, handle: EventHandle) -> bool {
        let cancelled = self.queue.cancel(handle);
        self.trace(|| TraceEvt::TimerCancelled { cancelled });
        cancelled
    }

    /// Record a confirmed result for `query_id` arriving now.
    pub fn report_answer(&mut self, query_id: u32) {
        self.ledger.answer(query_id, self.now_us);
        self.trace(|| TraceEvt::QueryAnswered { id: query_id });
    }

    /// Total messages sent so far (all classes).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

/// The sim engine is the reference [`Transport`]: every method delegates to
/// the inherent `Ctx` method (or field) protocols used to touch directly,
/// so the split is behaviorally invisible — the golden digests prove it.
impl<'a, M: Clone> Transport for Ctx<'a, M> {
    type Msg = M;

    #[inline]
    fn now_us(&self) -> u64 {
        Ctx::now_us(self)
    }

    #[inline]
    fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    #[inline]
    fn send(&mut self, from: PeerId, to: PeerId, class: MsgClass, bytes: usize, msg: M) {
        Ctx::send(self, from, to, class, bytes, msg);
    }

    #[inline]
    fn set_timer(&mut self, node: PeerId, delay_us: u64, tag: u64) -> EventHandle {
        Ctx::set_timer(self, node, delay_us, tag)
    }

    #[inline]
    fn cancel_timer(&mut self, handle: EventHandle) -> bool {
        Ctx::cancel_timer(self, handle)
    }

    #[inline]
    fn scratch(&mut self) -> ScratchGuard {
        Ctx::scratch(self)
    }

    #[inline]
    fn content(&self) -> &ContentState {
        &self.content
    }

    #[inline]
    fn model(&self) -> &ContentModel {
        self.model
    }

    #[inline]
    fn neighbors(&self, p: PeerId) -> &[PeerId] {
        self.overlay.neighbors(p)
    }

    #[inline]
    fn degree(&self, p: PeerId) -> usize {
        self.overlay.degree(p)
    }

    #[inline]
    fn alive(&self, p: PeerId) -> bool {
        Ctx::alive(self, p)
    }

    #[inline]
    fn alive_count(&self) -> usize {
        Ctx::alive_count(self)
    }

    #[inline]
    fn alive_peers(&self) -> &[PeerId] {
        Ctx::alive_peers(self)
    }

    #[inline]
    fn num_peers(&self) -> usize {
        Ctx::num_peers(self)
    }

    #[inline]
    fn is_answered(&self, query: u32) -> bool {
        self.ledger.is_answered(query)
    }

    #[inline]
    fn report_answer(&mut self, query_id: u32) {
        Ctx::report_answer(self, query_id);
    }

    #[inline]
    fn count(&mut self, stat: RetryStat) {
        Ctx::count(self, stat);
    }

    #[inline]
    fn trace(&mut self, f: impl FnOnce() -> TraceEvt) {
        Ctx::trace(self, f);
    }

    #[inline]
    fn tracing_enabled(&self) -> bool {
        Ctx::tracing_enabled(self)
    }
}

/// Result of a finished run: metrics plus the protocol object (for
/// protocol-specific statistics such as ad-cache occupancy).
pub struct SimReport<P> {
    pub load: LoadRecorder,
    pub ledger: QueryLedger,
    pub protocol: P,
    pub messages_sent: u64,
    pub end_time_us: u64,
    /// Final liveness map.
    pub alive: Vec<bool>,
    /// Final overlay graph.
    pub overlay: Overlay,
    /// Robustness counters accumulated via [`Ctx::count`].
    pub retry: RetryCounters,
    /// Fault-layer statistics; `Some` iff the run was built with
    /// [`SimBuilder::faults`].
    pub faults: Option<FaultStats>,
    /// Adversary-layer statistics; `Some` iff the run was built with
    /// [`SimBuilder::adversary`].
    pub adversary: Option<AdversaryStats>,
    /// Invariant-audit outcome; `Some` iff the run was built with
    /// [`SimBuilder::audit`].
    pub audit: Option<AuditReport>,
    /// The trace sink handed to [`SimBuilder::trace`], after observing the
    /// whole run; `None` when tracing was off. Downcast via
    /// [`asap_trace::TraceSink::into_any`] to recover a concrete recorder.
    pub trace: Option<Box<dyn TraceSink>>,
    /// Event-loop phase counters and queue high-water marks (always on).
    pub profile: EngineProfile,
}

/// A configured simulation, ready to run.
pub struct Simulation<'a, P: Protocol> {
    pub(crate) ctx: Ctx<'a, P::Msg>,
    pub(crate) protocol: P,
    /// Whether `on_init` has run (set before the first dispatched event, and
    /// restored from checkpoints so a resumed run never re-initializes).
    pub(crate) started: bool,
    /// Whether the run has ended: the horizon was crossed or the event queue
    /// drained. A halted simulation dispatches nothing further.
    pub(crate) halted: bool,
}

/// Typed configuration for a [`Simulation`], obtained from
/// [`Simulation::builder`]. Optional layers (audit, faults, tracing, horizon
/// override) are attached here; [`SimBuilder::build`] or the
/// [`SimBuilder::run`] shorthand produce the configured simulation.
pub struct SimBuilder<'a, P: Protocol> {
    sim: Simulation<'a, P>,
}

impl<'a, P: Protocol> SimBuilder<'a, P> {
    /// Enable the invariant auditor for this run; the resulting
    /// [`SimReport::audit`] carries violations, check counts, and the
    /// event-stream digest. See [`crate::audit`] for what is checked.
    pub fn audit(mut self, cfg: AuditConfig) -> Self {
        self.sim.attach_audit(cfg);
        self
    }

    /// Attach a fault-injection plan for this run (off by default — an
    /// un-faulted run pays one pointer test per send). The fault layer uses
    /// a dedicated RNG stream derived from the run seed, so attaching an
    /// inert plan reproduces a fault-free run bit-for-bit; see
    /// [`crate::fault`].
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.sim.attach_faults(plan);
        self
    }

    /// Attach an adversary plan for this run (off by default — an honest run
    /// pays one pointer test per send). Roles are assigned once, on a
    /// dedicated RNG stream derived from the run seed, and eclipse targets
    /// are rewired immediately; attaching an inert plan reproduces an
    /// adversary-free run bit-for-bit. See [`crate::adversary`].
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`AdversaryPlan::validate`].
    pub fn adversary(mut self, plan: AdversaryPlan) -> Self {
        self.sim.attach_adversary(plan);
        self
    }

    /// Override the simulation horizon (default: trace end + 30 s). Events
    /// scheduled past the horizon — periodic protocol timers, stragglers —
    /// are discarded, which is what terminates a run whose protocol re-arms
    /// timers forever (ASAP's refresh beacons).
    pub fn horizon_grace(mut self, grace_us: u64) -> Self {
        self.sim.set_horizon_grace(grace_us);
        self
    }

    /// Run the event queue on the time-window-sharded calendar backend
    /// instead of the monolithic binary heap (off by default). The backend
    /// is an execution strategy only: pop order — and therefore every
    /// digest — is identical on both (see [`crate::event`] for the proof
    /// sketch), but the sharded backend turns out-of-window pushes into
    /// O(1) buffer appends and sorts each window once, in parallel via the
    /// rayon shim when a worker pool is installed.
    pub fn sharded(mut self, on: bool) -> Self {
        self.sim.ctx.queue.set_backend(if on {
            QueueBackend::Sharded
        } else {
            QueueBackend::Heap
        });
        self
    }

    /// Attach a trace sink: every engine and protocol event reaches
    /// [`TraceSink::record`] stamped with the virtual clock. Sinks are
    /// passive, so a traced run replays bit-identically to an untraced one;
    /// the sink comes back out through [`SimReport::trace`].
    pub fn trace(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sim.ctx.trace = Some(sink);
        self
    }

    /// Finish configuration.
    pub fn build(self) -> Simulation<'a, P> {
        self.sim
    }

    /// Shorthand for `build().run()`.
    pub fn run(self) -> SimReport<P> {
        self.sim.run()
    }
}

impl<'a, P: Protocol> Simulation<'a, P> {
    /// Start configuring a simulation: peers are mapped onto distinct random
    /// physical nodes, the trace is preloaded, and initial liveness comes
    /// from the workload (joiners start offline **and detached**). Optional
    /// layers are attached on the returned [`SimBuilder`].
    pub fn builder(
        phys: &'a PhysicalNetwork,
        workload: &'a Workload,
        overlay: Overlay,
        overlay_kind: OverlayKind,
        protocol: P,
        seed: u64,
    ) -> SimBuilder<'a, P> {
        SimBuilder {
            sim: Self::assemble(phys, workload, overlay, overlay_kind, protocol, seed),
        }
    }

    fn assemble(
        phys: &'a PhysicalNetwork,
        workload: &'a Workload,
        mut overlay: Overlay,
        overlay_kind: OverlayKind,
        protocol: P,
        seed: u64,
    ) -> Self {
        let n = workload.model.num_peers();
        // lint: allow(release-assert, reason=construction-time validation; Simulation::assemble runs before any event dispatch)
        assert_eq!(overlay.num_peers(), n, "overlay/workload size mismatch");
        // lint: allow(release-assert, reason=construction-time validation; Simulation::assemble runs before any event dispatch)
        assert!(
            phys.num_nodes() >= n,
            "need at least as many physical nodes as peers"
        );
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x51AE_0F5A_1769);

        // Random distinct physical placement (partial Fisher–Yates).
        let mut ids: Vec<u32> = (0..phys.num_nodes() as u32).collect();
        for i in 0..n {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        let assignment: Vec<PhysNodeId> = ids[..n].iter().map(|&i| PhysNodeId(i)).collect();

        // Initially-offline joiners are not wired into the overlay yet.
        let alive = workload.initially_alive.clone();
        for (i, &a) in alive.iter().enumerate() {
            if !a {
                overlay.detach(PeerId(i as u32));
            }
        }
        let alive_count = alive.iter().filter(|&&a| a).count();
        let alive_list: Vec<PeerId> = alive
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| PeerId(i as u32))
            .collect();

        let mut queue = EventQueue::new();
        for te in &workload.trace.events {
            queue.push(te.time_us, EngineEvent::Trace(te.event.clone()));
        }

        let mut load = LoadRecorder::new();
        load.set_alive(0, alive_count);
        let trace_end_us = workload.trace.duration_us();

        let ctx = Ctx {
            trace_end_us,
            // Default horizon: 30 s of grace after the last trace event, so
            // in-flight searches settle but periodic timers can't run the
            // simulation forever.
            horizon_us: trace_end_us + 30_000_000,
            now_us: 0,
            queue,
            overlay,
            overlay_kind,
            alive,
            alive_count,
            alive_list,
            scratch: ScratchSlot::default(),
            content: ContentState::from_model(&workload.model),
            model: &workload.model,
            phys,
            assignment,
            rng,
            load,
            ledger: QueryLedger::new(),
            retry: RetryCounters::new(),
            messages_sent: 0,
            run_seed: seed,
            audit: None,
            faults: None,
            adversary: None,
            trace: None,
            profile: EngineProfile::default(),
        };
        Self {
            ctx,
            protocol,
            started: false,
            halted: false,
        }
    }

    fn attach_audit(&mut self, cfg: AuditConfig) {
        self.ctx.audit = Some(Box::new(SimAuditor::new(cfg, &self.ctx.alive)));
    }

    fn attach_faults(&mut self, plan: FaultPlan) {
        if let Err(e) = plan.validate() {
            // lint: allow(release-assert, reason=documented construction-time rejection of invalid plans, before run starts)
            panic!("invalid fault plan: {e}");
        }
        self.ctx.faults = Some(Box::new(FaultState::new(plan, self.ctx.run_seed)));
    }

    fn attach_adversary(&mut self, plan: AdversaryPlan) {
        if let Err(e) = plan.validate() {
            // lint: allow(release-assert, reason=documented construction-time rejection of invalid plans, before run starts)
            panic!("invalid adversary plan: {e}");
        }
        let mut state = AdversaryState::new(plan, self.ctx.alive.len(), self.ctx.run_seed);
        let rewired = self.eclipse_rewire(&state);
        state.note_eclipsed(rewired);
        self.ctx.adversary = Some(Box::new(state));
    }

    /// Apply the plan's eclipse targets: swap up to `captured_links` of each
    /// live victim's honest edges for edges toward colluding peers. Entirely
    /// deterministic (no RNG draw) and invariant-preserving: `add_edge`
    /// keeps symmetry and rejects self-loops/duplicates, colluders are
    /// filtered for liveness, and detached (dead) peers are never touched.
    fn eclipse_rewire(&mut self, state: &AdversaryState) -> u64 {
        let ctx = &mut self.ctx;
        let mut rewired = 0u64;
        for t in &state.plan().eclipse {
            if t.victim.index() >= ctx.alive.len() || !ctx.alive[t.victim.index()] {
                continue;
            }
            let pool: Vec<PeerId> = state
                .colluders()
                .filter(|&c| {
                    c != t.victim && ctx.alive[c.index()] && !ctx.overlay.has_edge(t.victim, c)
                })
                .collect();
            let mut old: Vec<PeerId> = ctx
                .overlay
                .neighbors(t.victim)
                .iter()
                .copied()
                .filter(|&n| !state.role(n).is_adversarial())
                .collect();
            old.sort_unstable();
            for (o, c) in old.into_iter().zip(pool).take(t.captured_links as usize) {
                let removed = ctx.overlay.remove_edge(t.victim, o);
                let added = ctx.overlay.add_edge(t.victim, c);
                debug_assert!(removed && added, "eclipse rewiring must be clean");
                if removed && added {
                    rewired += 1;
                }
            }
        }
        rewired
    }

    fn set_horizon_grace(&mut self, grace_us: u64) {
        self.ctx.horizon_us = self.ctx.trace_end_us + grace_us;
    }

    /// Run to the horizon (or queue exhaustion) and return the report.
    pub fn run(mut self) -> SimReport<P> {
        self.ensure_init();
        while self.step() {}
        self.into_report()
    }

    /// Run until every event scheduled at or before `t_us` has dispatched,
    /// then stop with the simulation still live — the checkpoint/resume
    /// split point. Initializes the protocol on first use, exactly like
    /// [`Simulation::run`], and returns early if the run halts first
    /// (horizon crossed or queue exhausted). A run split as
    /// `run_until(t)` → [`Simulation::checkpoint`] → resume → `run()` is
    /// bit-identical to the uninterrupted run.
    pub fn run_until(&mut self, t_us: u64) {
        self.ensure_init();
        while !self.halted && self.ctx.queue.peek_time().is_some_and(|t| t <= t_us) {
            self.step();
        }
    }

    /// Virtual time of the last dispatched event.
    pub fn now_us(&self) -> u64 {
        self.ctx.now_us
    }

    /// Whether the run has ended (horizon crossed or queue drained).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Borrow the attached trace sink, if any — lets tools inspect recorded
    /// events *mid-run* (e.g. the divergence bisector diffing the trace
    /// windows of two [`Simulation::run_until`] probes). Finished runs get
    /// the sink back through [`SimReport::trace`] instead.
    pub fn trace_sink(&self) -> Option<&dyn TraceSink> {
        self.ctx.trace.as_deref()
    }

    /// Borrow the protocol instance mid-run. Tests and tools use this to
    /// inspect protocol state at a checkpoint split point; finished runs
    /// get the protocol back through [`SimReport::protocol`].
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    fn ensure_init(&mut self) {
        if !self.started {
            self.started = true;
            self.protocol.on_init(&mut self.ctx);
        }
    }

    /// Dispatch the next event. Returns `false` when the run halts: the
    /// next event is past the horizon (discarding it and everything behind
    /// it — the queue is time-ordered) or the queue is exhausted.
    fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        let Some(sched) = self.ctx.queue.pop() else {
            self.halted = true;
            self.ctx.queue.purge_cancelled();
            return false;
        };
        debug_assert!(sched.time_us >= self.ctx.now_us, "time goes forward");
        if sched.time_us > self.ctx.horizon_us {
            self.ctx.profile.past_horizon = self.ctx.queue.len() as u64 + 1;
            self.halted = true;
            // Events behind the horizon will never pop, so their tombstones
            // are dead — drain them (behaviorally invisible; bounds the
            // serialized tombstone list of a post-halt checkpoint).
            self.ctx.queue.purge_cancelled();
            return false;
        }
        self.ctx.now_us = sched.time_us;
        let depth = self.ctx.queue.len() + 1;
        if depth > self.ctx.profile.queue_hwm {
            self.ctx.profile.queue_hwm = depth;
        }
        let (time_us, seq) = (sched.time_us, sched.seq);
        match sched.event {
            EngineEvent::Deliver { to, from, msg, dup } => {
                self.ctx.profile.delivers += 1;
                let delivered = self.ctx.alive[to.index()];
                if let Some(a) = self.ctx.audit.as_deref_mut() {
                    a.on_deliver(time_us, seq, to, from, delivered, dup);
                }
                self.ctx.trace(|| TraceEvt::Deliver {
                    to,
                    from,
                    delivered,
                    dup,
                });
                if delivered {
                    self.protocol.on_message(&mut self.ctx, to, from, msg);
                }
            }
            EngineEvent::Timer { node, tag } => {
                self.ctx.profile.timers_fired += 1;
                let fired = self.ctx.alive[node.index()];
                if let Some(a) = self.ctx.audit.as_deref_mut() {
                    a.on_timer(time_us, seq, node, tag, fired);
                }
                self.ctx.trace(|| TraceEvt::TimerFired { node, tag, fired });
                if fired {
                    self.protocol.on_timer(&mut self.ctx, node, tag);
                }
            }
            EngineEvent::Trace(ev) => {
                self.ctx.profile.trace_events += 1;
                self.apply_trace(time_us, seq, ev);
            }
        }
        true
    }

    fn into_report(mut self) -> SimReport<P> {
        let faults = self.ctx.faults.take().map(|f| f.into_stats());
        let adversary = self.ctx.adversary.take().map(|a| a.into_stats());
        let audit = self.ctx.audit.take().map(|auditor| {
            let mut auditor = *auditor;
            for v in self.protocol.audit_invariants(&self.ctx) {
                auditor.push_violation(format!("protocol: {v}"));
            }
            auditor.finish(
                &self.ctx.load,
                &self.ctx.ledger,
                &self.ctx.overlay,
                &self.ctx.alive,
                self.ctx.alive_count,
                self.ctx.messages_sent,
                self.ctx.now_us,
                &self.ctx.retry,
                faults.as_ref(),
                adversary.as_ref(),
            )
        });
        SimReport {
            end_time_us: self.ctx.now_us,
            messages_sent: self.ctx.messages_sent,
            load: self.ctx.load,
            ledger: self.ctx.ledger,
            alive: self.ctx.alive,
            overlay: self.ctx.overlay,
            retry: self.ctx.retry,
            faults,
            adversary,
            protocol: self.protocol,
            audit,
            trace: self.ctx.trace,
            profile: self.ctx.profile,
        }
    }

    fn apply_trace(&mut self, time_us: u64, seq: u64, ev: TraceEvent) {
        let ctx = &mut self.ctx;
        match ev {
            TraceEvent::Query(q) => {
                debug_assert!(ctx.alive[q.requester.index()], "trace guarantees liveness");
                if let Some(a) = ctx.audit.as_deref_mut() {
                    a.on_trace_query(time_us, seq, q.id, q.requester);
                }
                ctx.trace(|| TraceEvt::QueryIssued {
                    id: q.id,
                    requester: q.requester,
                });
                ctx.ledger.register(q.id, ctx.now_us);
                self.protocol.on_query(ctx, &q);
            }
            TraceEvent::AddDocument { peer, doc } => {
                let applied = ctx.content.add(ctx.model, peer, doc);
                if let Some(a) = ctx.audit.as_deref_mut() {
                    a.on_content_change(time_us, seq, peer, doc.0, true, applied);
                }
                ctx.trace(|| TraceEvt::ContentChanged {
                    peer,
                    doc: doc.0,
                    added: true,
                    applied,
                });
                if applied {
                    self.protocol.on_content_change(ctx, peer, doc, true);
                }
            }
            TraceEvent::RemoveDocument { peer, doc } => {
                let applied = ctx.content.remove(ctx.model, peer, doc);
                if let Some(a) = ctx.audit.as_deref_mut() {
                    a.on_content_change(time_us, seq, peer, doc.0, false, applied);
                }
                ctx.trace(|| TraceEvt::ContentChanged {
                    peer,
                    doc: doc.0,
                    added: false,
                    applied,
                });
                if applied {
                    self.protocol.on_content_change(ctx, peer, doc, false);
                }
            }
            TraceEvent::Join(p) => {
                debug_assert!(!ctx.alive[p.index()]);
                ctx.alive[p.index()] = true;
                ctx.alive_count += 1;
                if let Err(pos) = ctx.alive_list.binary_search(&p) {
                    ctx.alive_list.insert(pos, p);
                }
                ctx.load.set_alive(ctx.now_us, ctx.alive_count);
                let degree = ctx.overlay_kind.avg_degree().round() as usize;
                // Borrow dance: attach_* needs &mut overlay and &mut rng.
                // The candidate list (the joiner included, ascending order —
                // same as the old materialized scan) borrows a disjoint field.
                // lint: allow(rng-stream-discipline, reason=derived child stream: seeded from the engine stream's own output, so it inherits the engine salt's lineage deterministically)
                let mut rng = SmallRng::seed_from_u64(ctx.rng.gen());
                match ctx.overlay_kind {
                    OverlayKind::Random => {
                        ctx.overlay.attach_uniform(p, &ctx.alive_list, degree, &mut rng)
                    }
                    OverlayKind::PowerLaw | OverlayKind::Crawled => ctx
                        .overlay
                        .attach_preferential(p, &ctx.alive_list, degree, &mut rng),
                }
                if let Some(a) = ctx.audit.as_deref_mut() {
                    a.on_join(time_us, seq, p);
                    a.check_overlay(&ctx.overlay, &ctx.alive, ctx.alive_count);
                }
                ctx.trace(|| TraceEvt::Join { peer: p });
                self.protocol.on_join(ctx, p);
            }
            TraceEvent::Leave(p) => {
                debug_assert!(ctx.alive[p.index()]);
                ctx.alive[p.index()] = false;
                ctx.alive_count -= 1;
                if let Ok(pos) = ctx.alive_list.binary_search(&p) {
                    ctx.alive_list.remove(pos);
                }
                ctx.load.set_alive(ctx.now_us, ctx.alive_count);
                ctx.overlay.detach(p);
                if let Some(a) = ctx.audit.as_deref_mut() {
                    a.on_leave(time_us, seq, p);
                    a.check_overlay(&ctx.overlay, &ctx.alive, ctx.alive_count);
                }
                ctx.trace(|| TraceEvt::Leave { peer: p });
                self.protocol.on_leave(ctx, p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_overlay::OverlayConfig;
    use asap_topology::TransitStubConfig;
    use asap_workload::WorkloadConfig;

    /// Oracle protocol: on a query, magically contact a live holder of the
    /// target and get one reply — exercises engine plumbing end to end.
    struct OracleProtocol;

    #[derive(Debug, Clone)]
    enum OracleMsg {
        Ask { query: u32, terms: Vec<asap_workload::KeywordId> },
        Reply { query: u32 },
    }

    impl Protocol for OracleProtocol {
        type Msg = OracleMsg;

        fn on_query<C: Transport<Msg = OracleMsg>>(&mut self, ctx: &mut C, q: &QuerySpec) {
            let holder = ctx
                .content()
                .holders(q.target)
                .iter()
                .copied()
                .find(|&h| ctx.alive(h) && h != q.requester);
            if let Some(h) = holder {
                ctx.send(
                    q.requester,
                    h,
                    MsgClass::Query,
                    crate::message::query_size(q.terms.len()),
                    OracleMsg::Ask {
                        query: q.id,
                        terms: q.terms.clone(),
                    },
                );
            }
        }

        fn on_message<C: Transport<Msg = OracleMsg>>(&mut self, ctx: &mut C, to: PeerId, from: PeerId, msg: OracleMsg) {
            match msg {
                OracleMsg::Ask { query, terms } => {
                    if ctx.content().peer_matches(ctx.model(), to, &terms) {
                        ctx.send(
                            to,
                            from,
                            MsgClass::QueryHit,
                            crate::message::query_hit_size(1),
                            OracleMsg::Reply { query },
                        );
                    }
                }
                OracleMsg::Reply { query } => {
                    ctx.report_answer(query);
                }
            }
        }
    }

    fn small_world(seed: u64) -> (PhysicalNetwork, Workload, Overlay) {
        let phys = PhysicalNetwork::generate(&TransitStubConfig::reduced(seed));
        let workload = asap_workload::generate(&WorkloadConfig::reduced(200, 300, seed));
        let overlay = OverlayConfig::new(OverlayKind::Random, 200, seed).build();
        (phys, workload, overlay)
    }

    #[test]
    fn oracle_protocol_answers_most_queries() {
        let (phys, workload, overlay) = small_world(1);
        let report =
            Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, OracleProtocol, 1)
                .run();
        // Every query had a live holder at issue; holders can only die
        // between issue and delivery (rare at this scale).
        assert!(
            report.ledger.success_rate() > 0.95,
            "success {}",
            report.ledger.success_rate()
        );
        // Two messages per answered query.
        assert!(report.messages_sent >= 2 * report.ledger.num_succeeded() as u64);
    }

    #[test]
    fn response_time_is_two_one_way_latencies() {
        let (phys, workload, overlay) = small_world(2);
        let report =
            Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, OracleProtocol, 2)
                .run();
        let rt = report.ledger.avg_response_time_ms();
        // One-way latencies in the reduced transit-stub span 2–~150 ms, so a
        // round trip must land within [4, 400] ms.
        assert!((4.0..=400.0).contains(&rt), "avg response {rt} ms");
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let (phys, workload, overlay) = small_world(7);
            Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, OracleProtocol, seed)
                .run()
        };
        let (a, b) = (run(42), run(42));
        assert_eq!(a.messages_sent, b.messages_sent);
        assert_eq!(a.end_time_us, b.end_time_us);
        assert_eq!(a.load.total_bytes(), b.load.total_bytes());
        assert_eq!(a.ledger.success_rate(), b.ledger.success_rate());
    }

    #[test]
    fn load_is_accounted() {
        let (phys, workload, overlay) = small_world(3);
        let report =
            Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, OracleProtocol, 3)
                .run();
        assert!(report.load.total_bytes() > 0);
        assert!(report.load.mean_load() > 0.0);
        let totals = report.load.class_totals();
        assert!(totals[MsgClass::Query.index()] > 0);
        assert!(totals[MsgClass::QueryHit.index()] > 0);
        assert_eq!(totals[MsgClass::FullAd.index()], 0);
    }

    #[test]
    fn churn_detaches_dead_peers_and_wires_joiners() {
        let (phys, workload, overlay) = small_world(4);
        let report =
            Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, OracleProtocol, 4)
                .run();
        let mut dead = 0;
        let mut isolated_alive = 0;
        for p in 0..report.alive.len() {
            let peer = PeerId(p as u32);
            if report.alive[p] {
                // A live peer may end up isolated if every neighbor departed,
                // but that must stay rare.
                if report.overlay.degree(peer) == 0 {
                    isolated_alive += 1;
                }
            } else {
                assert_eq!(report.overlay.degree(peer), 0, "dead peer {p} still wired");
                dead += 1;
            }
        }
        assert!(dead > 0, "trace should leave some peers offline");
        assert!(
            isolated_alive * 20 < report.alive.len(),
            "{isolated_alive} live peers isolated"
        );
    }

    #[test]
    fn audited_oracle_run_is_clean_and_digest_is_stable() {
        let run = || {
            let (phys, workload, overlay) = small_world(9);
            Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, OracleProtocol, 9)
                .audit(AuditConfig::default())
                .run()
        };
        let a = run();
        let audit = a.audit.as_ref().expect("audited run carries a report");
        assert!(
            audit.is_clean(),
            "violations: {:?} (+{} suppressed)",
            audit.violations,
            audit.suppressed
        );
        assert!(audit.events > 0);
        assert!(audit.checks > audit.events, "several checks per event");
        let b = run();
        assert_eq!(audit.digest, b.audit.unwrap().digest, "replay digest differs");
    }

    #[test]
    fn unaudited_run_reports_no_audit() {
        let (phys, workload, overlay) = small_world(9);
        let report =
            Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, OracleProtocol, 9)
                .run();
        assert!(report.audit.is_none());
        assert!(report.trace.is_none());
    }

    #[test]
    fn protocol_audit_hook_lands_in_report() {
        struct Grumpy;
        impl Protocol for Grumpy {
            type Msg = ();
            fn on_query<C: Transport<Msg = ()>>(&mut self, _: &mut C, _: &QuerySpec) {}
            fn on_message<C: Transport<Msg = ()>>(&mut self, _: &mut C, _: PeerId, _: PeerId, _: ()) {}
            fn audit_invariants<C: Transport<Msg = ()>>(&self, _: &C) -> Vec<String> {
                vec!["cache over capacity".into()]
            }
        }
        let (phys, workload, overlay) = small_world(9);
        let report = Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, Grumpy, 9)
            .audit(AuditConfig::default())
            .run();
        let audit = report.audit.unwrap();
        assert!(audit
            .violations
            .iter()
            .any(|v| v == "protocol: cache over capacity"));
    }

    #[test]
    fn cancelled_timer_never_fires() {
        struct CancelProto {
            handle: Option<crate::event::EventHandle>,
            fired: Vec<u64>,
        }
        impl Protocol for CancelProto {
            type Msg = ();
            fn on_init<C: Transport<Msg = ()>>(&mut self, ctx: &mut C) {
                ctx.set_timer(PeerId(0), 1_000, 1);
                self.handle = Some(ctx.set_timer(PeerId(0), 2_000, 2));
                ctx.set_timer(PeerId(0), 3_000, 3);
            }
            fn on_query<C: Transport<Msg = ()>>(&mut self, _: &mut C, _: &QuerySpec) {}
            fn on_message<C: Transport<Msg = ()>>(&mut self, _: &mut C, _: PeerId, _: PeerId, _: ()) {}
            fn on_timer<C: Transport<Msg = ()>>(&mut self, ctx: &mut C, _: PeerId, tag: u64) {
                if tag == 1 {
                    assert!(ctx.cancel_timer(self.handle.take().unwrap()));
                }
                self.fired.push(tag);
            }
        }
        let (phys, workload, overlay) = small_world(5);
        let report = Simulation::builder(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            CancelProto {
                handle: None,
                fired: vec![],
            },
            5,
        )
        .audit(AuditConfig::default())
        .run();
        assert_eq!(report.protocol.fired, vec![1, 3], "timer 2 was cancelled");
        assert!(report.audit.unwrap().is_clean());
    }

    #[test]
    fn alive_list_tracks_churn_and_scratch_is_reused() {
        struct ChurnWatcher {
            checked: usize,
        }
        impl ChurnWatcher {
            fn check<C: Transport<Msg = ()>>(&mut self, ctx: &mut C) {
                let list = ctx.alive_peers();
                assert_eq!(list.len(), ctx.alive_count());
                assert!(list.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
                for &p in list {
                    assert!(ctx.alive(p));
                }
                self.checked += 1;
                let mut buf = ctx.scratch();
                assert!(buf.is_empty());
                let peers: Vec<PeerId> = ctx.alive_peers().to_vec();
                buf.extend_from_slice(&peers);
                assert_eq!(buf.len(), ctx.alive_count());
            }
        }
        impl Protocol for ChurnWatcher {
            type Msg = ();
            fn on_query<C: Transport<Msg = ()>>(&mut self, _: &mut C, _: &QuerySpec) {}
            fn on_message<C: Transport<Msg = ()>>(&mut self, _: &mut C, _: PeerId, _: PeerId, _: ()) {}
            fn on_join<C: Transport<Msg = ()>>(&mut self, ctx: &mut C, _: PeerId) {
                self.check(ctx);
            }
            fn on_leave<C: Transport<Msg = ()>>(&mut self, ctx: &mut C, _: PeerId) {
                self.check(ctx);
            }
        }
        let (phys, workload, overlay) = small_world(6);
        let report = Simulation::builder(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            ChurnWatcher { checked: 0 },
            6,
        )
        .run();
        assert!(report.protocol.checked > 0, "trace should churn");
    }

    #[test]
    fn timers_fire_in_order_and_respect_death() {
        struct TimerProto {
            fired: Vec<u64>,
        }
        impl Protocol for TimerProto {
            type Msg = ();
            fn on_init<C: Transport<Msg = ()>>(&mut self, ctx: &mut C) {
                ctx.set_timer(PeerId(0), 1_000, 1);
                ctx.set_timer(PeerId(0), 3_000, 3);
                ctx.set_timer(PeerId(0), 2_000, 2);
            }
            fn on_query<C: Transport<Msg = ()>>(&mut self, _: &mut C, _: &QuerySpec) {}
            fn on_message<C: Transport<Msg = ()>>(&mut self, _: &mut C, _: PeerId, _: PeerId, _: ()) {}
            fn on_timer<C: Transport<Msg = ()>>(&mut self, ctx: &mut C, _: PeerId, tag: u64) {
                self.fired.push(tag);
                let _ = ctx.now_us();
            }
        }
        let (phys, workload, overlay) = small_world(5);
        let report = Simulation::builder(
            &phys,
            &workload,
            overlay,
            OverlayKind::Random,
            TimerProto { fired: vec![] },
            5,
        )
        .run();
        assert_eq!(report.protocol.fired, vec![1, 2, 3]);
    }

    #[test]
    fn tracing_is_passive_and_comes_back_out() {
        use asap_trace::Recorder;
        let run = |traced: bool| {
            let (phys, workload, overlay) = small_world(8);
            let mut b = Simulation::builder(
                &phys,
                &workload,
                overlay,
                OverlayKind::Random,
                OracleProtocol,
                8,
            )
            .audit(AuditConfig::default());
            if traced {
                b = b.trace(Box::new(Recorder::default()));
            }
            b.run()
        };
        let plain = run(false);
        let traced = run(true);
        // A passive sink must not perturb the run: identical audit digest.
        assert_eq!(
            plain.audit.as_ref().map(|a| a.digest),
            traced.audit.as_ref().map(|a| a.digest),
            "tracing changed the event stream"
        );
        assert_eq!(plain.messages_sent, traced.messages_sent);
        let sink = traced.trace.expect("traced run returns its sink");
        let rec = match sink.into_any().downcast::<Recorder>() {
            Ok(r) => r,
            Err(_) => panic!("recorder downcasts back"),
        };
        assert!(rec.total() > 0, "recorder saw events");
        assert_eq!(rec.total(), traced.profile.trace_records);
        assert!(rec.stats().counts().contains_key("send"));
        assert!(rec.stats().counts().contains_key("query-issued"));
    }

    #[test]
    fn profile_counts_event_loop_phases() {
        let (phys, workload, overlay) = small_world(1);
        let report =
            Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, OracleProtocol, 1)
                .run();
        let p = report.profile;
        assert_eq!(p.sends, report.messages_sent);
        assert!(p.delivers > 0 && p.delivers <= p.sends);
        assert!(p.trace_events > 0, "workload events counted");
        assert!(p.queue_hwm > 0);
        assert_eq!(p.trace_records, 0, "tracing was off");
    }

    #[test]
    fn scratch_guard_returns_capacity_on_drop() {
        struct ScratchProto;
        impl Protocol for ScratchProto {
            type Msg = ();
            fn on_query<C: Transport<Msg = ()>>(&mut self, ctx: &mut C, _: &QuerySpec) {
                {
                    let mut buf = ctx.scratch();
                    assert!(buf.is_empty());
                    buf.push(PeerId(0));
                    buf.reserve(1024);
                    // ctx stays usable while the lease is held.
                    let _ = ctx.now_us();
                }
                let buf = ctx.scratch();
                assert!(buf.is_empty(), "next lease starts cleared");
                assert!(buf.capacity() >= 1024, "capacity was recycled");
            }
            fn on_message<C: Transport<Msg = ()>>(&mut self, _: &mut C, _: PeerId, _: PeerId, _: ()) {}
        }
        let (phys, workload, overlay) = small_world(2);
        Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, ScratchProto, 2).run();
    }
}
