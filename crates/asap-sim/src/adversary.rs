//! Deterministic adversary model: ad-spam / Bloom-poisoning peers,
//! query-absorbing free riders, and eclipse-style neighbor capture.
//!
//! An [`AdversaryPlan`] attached via
//! [`SimBuilder::adversary`](crate::SimBuilder::adversary) assigns a
//! per-peer [`AdversaryRole`] once at attach time and then intercepts every
//! [`Ctx::send`](crate::Ctx::send) *after* the bytes are charged (the sender
//! consumed the bandwidth whether or not the recipient cooperates):
//!
//! 1. **ad spam** — spam peers advertise content they do not hold; the
//!    protocol layer poisons their Bloom snapshots (see
//!    `Asap::new_with_adversaries` in asap-core), so their ads attract
//!    confirmations that fail against ground truth. The engine itself treats
//!    spam peers as honest message handlers.
//! 2. **free riding** — request-class messages (`Query`, `AdsRequest`,
//!    `Confirm`) addressed to a free rider are absorbed: charged, counted,
//!    announced to the auditor, and never queued for delivery. Replies to
//!    the free rider's *own* requests still flow — free riders consume
//!    service, they just never provide it.
//! 3. **eclipse** — at attach time the victim's neighbor table is rewired
//!    toward colluding (adversarial) peers, up to `captured_links` edges per
//!    victim, preserving every overlay invariant (symmetry, no self-loops,
//!    dead peers keep degree 0).
//!
//! Determinism rules (DESIGN.md), identical to the fault layer:
//!
//! * All adversary randomness comes from a **dedicated RNG stream**, seeded
//!   from the run seed xor an adversary-layer salt. Role assignment is a
//!   pure function of (plan, peer count, run seed) — enabling faults never
//!   changes which peers are adversarial, and vice versa.
//! * An *inert* plan (both role fractions zero, no eclipse targets) draws
//!   **nothing** and absorbs nothing, so attaching it reproduces an
//!   adversary-free run's golden digest bit-for-bit.
//! * The absorb decision itself draws no randomness at all: it is a pure
//!   function of (target role, message class).
//! * Role fractions are integer parts-per-million: this module sits inside
//!   lint rule R3's no-float scope.
//!
//! The auditor reconciles [`AdversaryStats`] exactly against its own mirror
//! of the announced absorb events (see `SimAuditor::on_adversary_absorb`).

use asap_metrics::MsgClass;
use asap_overlay::PeerId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Salt xor-ed into the run seed for the dedicated adversary RNG stream;
/// must differ from every other per-run stream derivation (fault layer
/// `0xFA17_0B5E_55ED_C0DE`, engine placement `0x51AE_0F5A_1769`, workload
/// `0x40AD_10AD`).
const ADVERSARY_STREAM_SALT: u64 = 0xBAD5_EED5_0DD0_5A17;

const PPM_SCALE: u32 = 1_000_000;

/// An eclipse-capture target: rewire up to `captured_links` of the victim's
/// overlay edges toward colluding (adversarial) peers at attach time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EclipseTarget {
    /// The peer whose neighbor table is captured.
    pub victim: PeerId,
    /// Maximum number of the victim's edges to rewire toward colluders.
    pub captured_links: u32,
}

/// A declarative adversary schedule. The zero value
/// ([`AdversaryPlan::default`]) is *inert*: attaching it changes nothing
/// observable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdversaryPlan {
    /// Fraction of peers assigned the ad-spam role, parts per million.
    pub spam_ppm: u32,
    /// Fraction of peers assigned the free-rider role, parts per million.
    pub free_rider_ppm: u32,
    /// Eclipse-capture targets, applied once at attach time.
    pub eclipse: Vec<EclipseTarget>,
}

impl AdversaryPlan {
    /// An inert plan: no adversarial roles, no eclipse targets.
    pub fn none() -> Self {
        Self::default()
    }

    /// True iff attaching this plan cannot change any observable behavior.
    pub fn is_inert(&self) -> bool {
        self.spam_ppm == 0 && self.free_rider_ppm == 0 && self.eclipse.is_empty()
    }

    /// Structural validity: role fractions within [0, 1e6] ppm combined, and
    /// eclipse targets capturing at least one link each.
    pub fn validate(&self) -> Result<(), String> {
        let total = self.spam_ppm as u64 + self.free_rider_ppm as u64;
        if total > PPM_SCALE as u64 {
            return Err(format!("role fractions sum to {total} ppm > 1_000_000"));
        }
        for t in &self.eclipse {
            if t.captured_links == 0 {
                return Err(format!(
                    "eclipse target {:?} captures zero links",
                    t.victim
                ));
            }
        }
        Ok(())
    }
}

/// The role a peer plays for the whole run, decided once at attach time on
/// the dedicated adversary stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdversaryRole {
    /// Follows the protocol faithfully.
    #[default]
    Honest,
    /// Advertises content it does not hold (poisoned Bloom snapshot).
    AdSpammer,
    /// Absorbs request-class messages, never forwards or answers.
    FreeRider,
}

impl AdversaryRole {
    /// Adversarial peers collude: eclipse capture rewires victims toward
    /// every non-honest peer.
    #[inline]
    pub fn is_adversarial(self) -> bool {
        !matches!(self, Self::Honest)
    }
}

/// Counters kept by the adversary layer itself; the auditor reconciles
/// `absorbed` exactly against its own mirror of the announced events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdversaryStats {
    /// Sends absorbed by a free-riding target (never queued for delivery).
    pub absorbed: u64,
    /// Peers assigned the ad-spam role.
    pub spam_peers: u64,
    /// Peers assigned the free-rider role.
    pub free_riders: u64,
    /// Overlay edges rewired toward colluders at attach time.
    pub eclipsed_edges: u64,
}

/// Assign every peer a role. Pure function of (plan, peer count, run seed):
/// one draw per peer when any fraction is enabled, zero draws otherwise.
///
/// The spam band `[0, spam_ppm)` comes first, so changing
/// `free_rider_ppm` never changes *which* peers are spammers — fractions
/// can be swept independently.
pub fn assign_roles(plan: &AdversaryPlan, num_peers: usize, run_seed: u64) -> Vec<AdversaryRole> {
    let mut roles = vec![AdversaryRole::Honest; num_peers];
    if plan.spam_ppm == 0 && plan.free_rider_ppm == 0 {
        return roles;
    }
    let mut rng = SmallRng::seed_from_u64(run_seed ^ ADVERSARY_STREAM_SALT);
    for role in roles.iter_mut() {
        let draw = rng.gen_range(0..PPM_SCALE);
        if draw < plan.spam_ppm {
            *role = AdversaryRole::AdSpammer;
        } else if draw < plan.spam_ppm + plan.free_rider_ppm {
            *role = AdversaryRole::FreeRider;
        }
    }
    roles
}

/// Does a message of `class` addressed to a peer of `role` get absorbed?
/// Pure — draws no randomness, so enabling the adversary layer never
/// perturbs any RNG stream mid-run.
#[inline]
pub fn absorbs(role: AdversaryRole, class: MsgClass) -> bool {
    role == AdversaryRole::FreeRider
        && matches!(
            class,
            MsgClass::Query | MsgClass::AdsRequest | MsgClass::Confirm
        )
}

/// Live adversary-layer state: the plan, the per-peer role table, and the
/// running statistics. Holds no RNG — all randomness is consumed at
/// construction.
#[derive(Debug)]
pub struct AdversaryState {
    plan: AdversaryPlan,
    roles: Vec<AdversaryRole>,
    stats: AdversaryStats,
}

impl AdversaryState {
    /// Assign roles on the dedicated stream and freeze them for the run.
    pub fn new(plan: AdversaryPlan, num_peers: usize, run_seed: u64) -> Self {
        debug_assert!(plan.validate().is_ok(), "invalid adversary plan");
        let roles = assign_roles(&plan, num_peers, run_seed);
        let stats = AdversaryStats {
            spam_peers: roles
                .iter()
                .filter(|r| **r == AdversaryRole::AdSpammer)
                .count() as u64,
            free_riders: roles
                .iter()
                .filter(|r| **r == AdversaryRole::FreeRider)
                .count() as u64,
            ..AdversaryStats::default()
        };
        Self { plan, roles, stats }
    }

    /// Rebuild an adversary layer mid-run from checkpointed state. Roles are
    /// *recomputed* rather than serialized: [`assign_roles`] is a pure
    /// function of `(plan, num_peers, run_seed)`, all of which the checkpoint
    /// carries, so the table comes back bit-identical. Eclipse rewiring is
    /// **not** reapplied — the checkpointed overlay adjacency already has it.
    pub fn from_parts(
        plan: AdversaryPlan,
        num_peers: usize,
        run_seed: u64,
        stats: AdversaryStats,
    ) -> Self {
        debug_assert!(plan.validate().is_ok(), "invalid adversary plan");
        let roles = assign_roles(&plan, num_peers, run_seed);
        Self { plan, roles, stats }
    }

    pub fn plan(&self) -> &AdversaryPlan {
        &self.plan
    }

    pub fn stats(&self) -> &AdversaryStats {
        &self.stats
    }

    pub fn into_stats(self) -> AdversaryStats {
        self.stats
    }

    /// The frozen role of `peer` (Honest for out-of-range ids).
    #[inline]
    pub fn role(&self, peer: PeerId) -> AdversaryRole {
        self.roles
            .get(peer.0 as usize)
            .copied()
            .unwrap_or(AdversaryRole::Honest)
    }

    /// Colluding peers in id order (used for eclipse rewiring).
    pub fn colluders(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_adversarial())
            .map(|(i, _)| PeerId(i as u32))
    }

    /// Decide whether a send to `to` of `class` is absorbed, updating stats.
    #[inline]
    pub fn absorb(&mut self, to: PeerId, class: MsgClass) -> bool {
        if absorbs(self.role(to), class) {
            self.stats.absorbed += 1;
            true
        } else {
            false
        }
    }

    /// Record `n` overlay edges rewired toward colluders at attach time.
    pub fn note_eclipsed(&mut self, n: u64) {
        self.stats.eclipsed_edges += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_plan() -> AdversaryPlan {
        AdversaryPlan {
            spam_ppm: 100_000,
            free_rider_ppm: 250_000,
            eclipse: vec![EclipseTarget {
                victim: PeerId(0),
                captured_links: 4,
            }],
        }
    }

    #[test]
    fn inert_plan_is_inert_and_never_absorbs() {
        let plan = AdversaryPlan::none();
        assert!(plan.is_inert());
        assert!(plan.validate().is_ok());
        let mut a = AdversaryState::new(plan, 500, 7);
        for i in 0..500u32 {
            assert_eq!(a.role(PeerId(i)), AdversaryRole::Honest);
            assert!(!a.absorb(PeerId(i), MsgClass::Query));
        }
        assert_eq!(*a.stats(), AdversaryStats::default());
    }

    #[test]
    fn same_seed_same_roles() {
        let plan = mixed_plan();
        assert_eq!(
            assign_roles(&plan, 2_000, 42),
            assign_roles(&plan, 2_000, 42)
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let plan = mixed_plan();
        assert_ne!(
            assign_roles(&plan, 2_000, 1),
            assign_roles(&plan, 2_000, 2),
            "role assignment must depend on the run seed"
        );
    }

    #[test]
    fn role_fractions_roughly_match_ppm() {
        let a = AdversaryState::new(mixed_plan(), 20_000, 3);
        let s = a.stats();
        // 10% spam, 25% free riders, ±2% absolute at n = 20k is > 9 sigma.
        assert!(
            (20_000u64 / 10).abs_diff(s.spam_peers) < 400,
            "spam {} of 20k",
            s.spam_peers
        );
        assert!(
            (20_000u64 / 4).abs_diff(s.free_riders) < 400,
            "free riders {} of 20k",
            s.free_riders
        );
    }

    #[test]
    fn spam_band_is_stable_under_free_rider_sweep() {
        // Sweeping the free-rider fraction must never change which peers
        // are spammers: the spam band comes first in the single draw.
        let spam_set = |free_ppm| {
            let plan = AdversaryPlan {
                spam_ppm: 100_000,
                free_rider_ppm: free_ppm,
                eclipse: Vec::new(),
            };
            assign_roles(&plan, 3_000, 9)
                .into_iter()
                .enumerate()
                .filter(|(_, r)| *r == AdversaryRole::AdSpammer)
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        };
        assert_eq!(spam_set(0), spam_set(400_000));
    }

    #[test]
    fn absorb_matrix_covers_request_classes_only() {
        for class in MsgClass::ALL {
            let request = matches!(
                class,
                MsgClass::Query | MsgClass::AdsRequest | MsgClass::Confirm
            );
            assert_eq!(absorbs(AdversaryRole::FreeRider, class), request);
            assert!(!absorbs(AdversaryRole::Honest, class));
            assert!(!absorbs(AdversaryRole::AdSpammer, class));
        }
    }

    #[test]
    fn absorb_updates_stats_exactly() {
        let plan = AdversaryPlan {
            free_rider_ppm: PPM_SCALE,
            ..AdversaryPlan::default()
        };
        let mut a = AdversaryState::new(plan, 10, 5);
        assert!(a.absorb(PeerId(3), MsgClass::Query));
        assert!(a.absorb(PeerId(4), MsgClass::Confirm));
        assert!(!a.absorb(PeerId(4), MsgClass::ConfirmReply));
        assert_eq!(a.stats().absorbed, 2);
        assert_eq!(a.stats().free_riders, 10);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(AdversaryPlan {
            spam_ppm: 600_000,
            free_rider_ppm: 600_000,
            ..AdversaryPlan::default()
        }
        .validate()
        .is_err());
        assert!(AdversaryPlan {
            eclipse: vec![EclipseTarget {
                victim: PeerId(1),
                captured_links: 0
            }],
            ..AdversaryPlan::default()
        }
        .validate()
        .is_err());
    }
}
