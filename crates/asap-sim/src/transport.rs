//! The transport capability trait: what a [`Protocol`](crate::Protocol)
//! may ask of the world it runs in.
//!
//! Protocols used to be written directly against the simulator's
//! [`Ctx`](crate::Ctx), which welded them to the discrete-event engine.
//! [`Transport`] extracts the engine-coupled surface — clock, messaging,
//! timers, randomness, liveness, content, metrics, tracing — into a trait
//! that `Protocol` hooks are generic over, so the *same* monomorphized
//! state machines drive both backends:
//!
//! * the deterministic sim engine (`Ctx` implements `Transport` by
//!   delegating to its inherent methods — zero behavior change, every
//!   golden digest bit-identical), and
//! * `asap-net`'s loopback/daemon runtimes, where [`Transport::send`]
//!   crosses a real wire codec (length-prefixed frames, per-peer outbound
//!   queues) instead of pushing a typed event.
//!
//! The trait is deliberately *not* object-safe ([`Transport::trace`] is
//! generic so a disabled sink costs one pointer test and never constructs
//! the event); protocols take `&mut C` with `C: Transport<Msg = Self::Msg>`
//! and the call devirtualizes at monomorphization time.
//!
//! # Contract
//!
//! Implementations must uphold what protocols assume of the engine:
//!
//! * **Clock** — [`now_us`](Transport::now_us) is monotonically
//!   non-decreasing across callbacks, and equals the scheduled time of the
//!   event being dispatched.
//! * **Messaging** — [`send`](Transport::send) charges `bytes` to the
//!   sender immediately and delivers to `to` later (never re-entrantly,
//!   never to a dead node). Ordering between two sends is
//!   implementation-defined; protocols may not rely on it.
//! * **Timers** — [`set_timer`](Transport::set_timer) fires
//!   `on_timer(node, tag)` no earlier than `delay_us` from now, and never
//!   fires after a successful [`cancel_timer`](Transport::cancel_timer)
//!   or on a dead node.
//! * **Randomness** — [`rng`](Transport::rng) is the backend's decision
//!   stream. Deterministic backends must document its seeding discipline
//!   (see `lint.toml` rule R6); protocols must draw from it and nothing
//!   else.
//! * **World views** — liveness, neighbors, degree, and content reflect
//!   the world as of the current event; they only change between
//!   callbacks.

use crate::event::EventHandle;
use asap_metrics::{MsgClass, RetryStat};
use asap_overlay::PeerId;
use asap_trace::Event as TraceEvt;
use asap_workload::{ContentModel, ContentState};
use rand::rngs::SmallRng;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

/// Engine capabilities a protocol runs against. See the module docs for
/// the behavioral contract each backend must uphold.
pub trait Transport {
    /// Protocol-specific message payload. `Clone` because fault layers and
    /// wire backends may need to duplicate or re-encode a payload.
    type Msg: Clone;

    /// Current virtual time, µs.
    fn now_us(&self) -> u64;

    /// The backend's deterministic decision RNG stream.
    fn rng(&mut self) -> &mut SmallRng;

    /// Send a protocol message: `bytes` are charged to `class` now (the
    /// sender consumed the bandwidth), delivery happens later.
    fn send(&mut self, from: PeerId, to: PeerId, class: MsgClass, bytes: usize, msg: Self::Msg);

    /// Schedule `on_timer(node, tag)` after `delay_us` (dropped if the node
    /// is dead when it fires). The handle can cancel it later.
    fn set_timer(&mut self, node: PeerId, delay_us: u64, tag: u64) -> EventHandle;

    /// Cancel a pending timer; a cancelled timer never reaches `on_timer`.
    fn cancel_timer(&mut self, handle: EventHandle) -> bool;

    /// Lease the backend's reusable scratch buffer (cleared); capacity
    /// returns automatically when the guard drops.
    fn scratch(&mut self) -> ScratchGuard;

    /// Evolving shared-content state.
    fn content(&self) -> &ContentState;

    /// The static content model (documents, interests, vocabulary).
    fn model(&self) -> &ContentModel;

    /// Live neighbors of `p` in the overlay.
    fn neighbors(&self, p: PeerId) -> &[PeerId];

    /// Overlay degree of `p`.
    fn degree(&self, p: PeerId) -> usize;

    /// Whether `p` is currently alive.
    fn alive(&self, p: PeerId) -> bool;

    /// Number of currently-alive peers.
    fn alive_count(&self) -> usize;

    /// Currently-alive peers in ascending id order.
    fn alive_peers(&self) -> &[PeerId];

    /// Total peers in the world (alive or not).
    fn num_peers(&self) -> usize;

    /// Whether `query` has already been answered (protocols use this to
    /// stop retransmitting).
    fn is_answered(&self, query: u32) -> bool;

    /// Record a confirmed result for `query_id` arriving now.
    fn report_answer(&mut self, query_id: u32);

    /// Count one protocol-robustness event (retry, duplicate suppressed,
    /// confirmation lost, delivery abandoned).
    fn count(&mut self, stat: RetryStat);

    /// Emit one trace event if a sink is attached. The closure defers event
    /// construction, so a disabled sink costs one pointer test.
    fn trace(&mut self, f: impl FnOnce() -> TraceEvt);

    /// Whether a trace sink is attached (lets protocols skip preparing
    /// expensive event arguments).
    fn tracing_enabled(&self) -> bool;
}

/// A shareable scratch-capacity slot. Backends hold one and lease it to
/// protocols via [`Transport::scratch`]; the lease hands capacity back on
/// drop, so concurrent leases simply allocate fresh.
#[derive(Clone, Default)]
pub struct ScratchSlot(Rc<RefCell<Vec<PeerId>>>);

impl ScratchSlot {
    /// Lease the slot's buffer (cleared). The guard returns the capacity on
    /// drop, early returns included.
    pub fn lease(&self) -> ScratchGuard {
        let mut buf = std::mem::take(&mut *self.0.borrow_mut());
        buf.clear();
        ScratchGuard {
            slot: Rc::clone(&self.0),
            buf,
        }
    }
}

/// RAII scratch-buffer lease (see [`Transport::scratch`]): derefs to the
/// `Vec<PeerId>`, and hands the capacity back to the backend on drop.
pub struct ScratchGuard {
    slot: Rc<RefCell<Vec<PeerId>>>,
    buf: Vec<PeerId>,
}

impl Deref for ScratchGuard {
    type Target = Vec<PeerId>;
    fn deref(&self) -> &Vec<PeerId> {
        &self.buf
    }
}

impl DerefMut for ScratchGuard {
    fn deref_mut(&mut self) -> &mut Vec<PeerId> {
        &mut self.buf
    }
}

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        *self.slot.borrow_mut() = std::mem::take(&mut self.buf);
    }
}
