//! Toggleable invariant auditing and event-stream digesting for the engine.
//!
//! The auditor is a passive observer threaded through the event loop. It
//! keeps **independent mirrors** of the state it checks — its own liveness
//! map, its own per-class byte and message counters — so a bookkeeping bug
//! in the engine cannot hide by corrupting both sides of a comparison. At
//! the end of a run the mirrors must reconcile *exactly* with the engine's
//! [`LoadRecorder`] and liveness map, and the [`QueryLedger`] must pass its
//! structural consistency check.
//!
//! Checks performed while running (all O(1) per event, except the overlay
//! sweep after churn):
//!
//! * no message is dispatched to a dead node, and drops match the mirror;
//! * event `(time, seq)` keys are strictly increasing at dispatch;
//! * joins/leaves flip liveness in the legal direction only;
//! * after churn, dead peers have degree 0, adjacency stays symmetric and
//!   self-loop-free, and the engine's live count matches the mirror.
//!
//! The auditor also folds every dispatched event (and every send) into an
//! FNV-1a digest. The digest covers integers only — peer ids, times,
//! sequence numbers, byte counts — so it is identical across debug/release
//! builds and platforms, which is what the differential-replay harness in
//! `asap-bench` pins as golden values.
//!
//! Auditing is **off by default**: a `Simulation` without
//! [`with_audit`](crate::Simulation::with_audit) carries `None` and pays one
//! pointer test per event.

use crate::adversary::AdversaryStats;
use crate::fault::FaultStats;
use asap_metrics::{LoadRecorder, MsgClass, QueryLedger, RetryCounters, RetryStat};
use asap_overlay::{Overlay, PeerId};

/// Streaming FNV-1a 64-bit hash. Stable, dependency-free, and fast enough
/// to run per-event; collisions are irrelevant for a regression digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub const fn new() -> Self {
        Self(Self::OFFSET)
    }

    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        let mut h = self.0;
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// Fold a whole record at once.
    #[inline]
    pub fn write_all(&mut self, vs: &[u64]) {
        for &v in vs {
            self.write_u64(v);
        }
    }

    /// Fold raw bytes (the checkpoint trailer checksum).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    pub const fn finish(self) -> u64 {
        self.0
    }

    /// Rebuild a streaming hash from a previously observed [`Fnv64::finish`]
    /// value, continuing the fold exactly where the snapshot left off
    /// (checkpointing; FNV-1a state is just the running hash word).
    pub const fn from_raw(h: u64) -> Self {
        Self(h)
    }
}

/// What the auditor does. Both halves are independent: digesting without
/// invariant checks gives the cheapest replay fingerprint; checks without
/// digesting gives a pure tripwire.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Run structural invariant checks on every event.
    pub check_invariants: bool,
    /// Fold events and sends into the replay digest.
    pub digest_events: bool,
    /// Keep at most this many violation messages; further ones are counted
    /// but not formatted (a broken invariant usually fires per-event).
    pub max_violations: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            check_invariants: true,
            digest_events: true,
            max_violations: 64,
        }
    }
}

/// Outcome of an audited run.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Formatted violations, capped at `max_violations`.
    pub violations: Vec<String>,
    /// Violations beyond the cap (count only).
    pub suppressed: u64,
    /// Individual invariant checks evaluated.
    pub checks: u64,
    /// Events observed at dispatch (delivers + timers + trace events).
    pub events: u64,
    /// FNV-1a digest over the event stream, sends, and final metrics;
    /// 0 if `digest_events` was off.
    pub digest: u64,
}

impl AuditReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }
}

// Event-kind tags folded ahead of each digest record, so records of
// different kinds can never alias.
const TAG_SEND: u64 = 1;
const TAG_DELIVER: u64 = 2;
const TAG_TIMER: u64 = 3;
const TAG_QUERY: u64 = 4;
const TAG_CONTENT: u64 = 5;
const TAG_JOIN: u64 = 6;
const TAG_LEAVE: u64 = 7;
const TAG_FINAL: u64 = 8;
// Fault-layer records. These tags are folded only when a fault actually
// fires, so a fault-free (or inert-plan) run's digest is bit-for-bit
// identical to a run without a fault layer at all.
const TAG_FAULT_DROP: u64 = 9;
const TAG_FAULT_DUP: u64 = 10;
// Adversary-layer record: folded only when an absorption actually fires, so
// an adversary-free (or inert-plan) run's digest is bit-for-bit identical to
// a run without an adversary layer at all.
const TAG_ADVERSARY_ABSORB: u64 = 11;

/// The audit hook object owned by the engine context. See the module docs
/// for the invariant list.
#[derive(Debug)]
pub struct SimAuditor {
    cfg: AuditConfig,
    violations: Vec<String>,
    suppressed: u64,
    checks: u64,
    events: u64,
    digest: Fnv64,
    /// Last dispatched `(time, seq)` key.
    last_key: Option<(u64, u64)>,
    /// Independent liveness mirror, driven only by observed join/leave.
    alive: Vec<bool>,
    alive_count: usize,
    /// Independent per-class accounting, driven only by observed sends.
    sent_bytes: [u64; MsgClass::COUNT],
    sent_msgs: [u64; MsgClass::COUNT],
    /// Independent robustness-counter mirror, driven only by [`Self::on_counter`].
    retry_mirror: RetryCounters,
    /// Fault-event mirrors, driven only by the `on_fault_*` hooks.
    fault_drops: u64,
    fault_partition_drops: u64,
    fault_dups_announced: u64,
    /// Duplicate deliveries observed at dispatch; may never exceed the
    /// announced count (the tripwire), and stragglers past the horizon make
    /// "fewer seen than announced" legal.
    fault_dups_seen: u64,
    /// Adversary-absorption mirror, driven only by
    /// [`Self::on_adversary_absorb`].
    adversary_absorbed: u64,
}

impl SimAuditor {
    /// Build an auditor whose liveness mirror starts from `alive` (the
    /// engine's initial map, before any event runs).
    pub fn new(cfg: AuditConfig, alive: &[bool]) -> Self {
        Self {
            cfg,
            violations: Vec::new(),
            suppressed: 0,
            checks: 0,
            events: 0,
            digest: Fnv64::new(),
            last_key: None,
            alive_count: alive.iter().filter(|&&a| a).count(),
            alive: alive.to_vec(),
            sent_bytes: [0; MsgClass::COUNT],
            sent_msgs: [0; MsgClass::COUNT],
            retry_mirror: RetryCounters::new(),
            fault_drops: 0,
            fault_partition_drops: 0,
            fault_dups_announced: 0,
            fault_dups_seen: 0,
            adversary_absorbed: 0,
        }
    }

    #[inline]
    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            if self.violations.len() < self.cfg.max_violations {
                self.violations.push(msg());
            } else {
                self.suppressed += 1;
            }
        }
    }

    /// Record an externally detected violation (protocol hooks, ledger).
    pub(crate) fn push_violation(&mut self, msg: String) {
        self.check(false, || msg);
    }

    /// Serialize the full auditor state in checkpoint field order (see
    /// DESIGN.md §8): config, violation ledger, counters, digest word, last
    /// dispatch key, liveness mirror, per-class accounting, robustness and
    /// fault/adversary mirrors.
    pub(crate) fn encode_checkpoint(&self, enc: &mut crate::checkpoint::Encoder) {
        enc.put_bool(self.cfg.check_invariants);
        enc.put_bool(self.cfg.digest_events);
        enc.put_u64(self.cfg.max_violations as u64);
        enc.put_u64(self.violations.len() as u64);
        for v in &self.violations {
            enc.put_str(v);
        }
        enc.put_u64(self.suppressed);
        enc.put_u64(self.checks);
        enc.put_u64(self.events);
        enc.put_u64(self.digest.finish());
        match self.last_key {
            Some((t, s)) => {
                enc.put_bool(true);
                enc.put_u64(t);
                enc.put_u64(s);
            }
            None => enc.put_bool(false),
        }
        enc.put_u64(self.alive.len() as u64);
        for &a in &self.alive {
            enc.put_bool(a);
        }
        enc.put_u64(self.alive_count as u64);
        for &b in &self.sent_bytes {
            enc.put_u64(b);
        }
        for &m in &self.sent_msgs {
            enc.put_u64(m);
        }
        for &c in &self.retry_mirror.counts() {
            enc.put_u64(c);
        }
        enc.put_u64(self.fault_drops);
        enc.put_u64(self.fault_partition_drops);
        enc.put_u64(self.fault_dups_announced);
        enc.put_u64(self.fault_dups_seen);
        enc.put_u64(self.adversary_absorbed);
    }

    /// Rebuild an auditor mid-run from [`Self::encode_checkpoint`] output.
    pub(crate) fn decode_checkpoint(
        dec: &mut crate::checkpoint::Decoder<'_>,
    ) -> Result<Self, crate::checkpoint::CodecError> {
        let cfg = AuditConfig {
            check_invariants: dec.get_bool()?,
            digest_events: dec.get_bool()?,
            max_violations: dec.get_len()?,
        };
        let n_violations = dec.get_count()?;
        let mut violations = Vec::with_capacity(n_violations);
        for _ in 0..n_violations {
            violations.push(dec.get_str()?);
        }
        let suppressed = dec.get_u64()?;
        let checks = dec.get_u64()?;
        let events = dec.get_u64()?;
        let digest = Fnv64::from_raw(dec.get_u64()?);
        let last_key = if dec.get_bool()? {
            Some((dec.get_u64()?, dec.get_u64()?))
        } else {
            None
        };
        let n_alive = dec.get_count()?;
        let mut alive = Vec::with_capacity(n_alive);
        for _ in 0..n_alive {
            alive.push(dec.get_bool()?);
        }
        let alive_count = dec.get_len()?;
        let mut sent_bytes = [0u64; MsgClass::COUNT];
        for b in sent_bytes.iter_mut() {
            *b = dec.get_u64()?;
        }
        let mut sent_msgs = [0u64; MsgClass::COUNT];
        for m in sent_msgs.iter_mut() {
            *m = dec.get_u64()?;
        }
        let mut retry_counts = [0u64; 4];
        for c in retry_counts.iter_mut() {
            *c = dec.get_u64()?;
        }
        Ok(Self {
            cfg,
            violations,
            suppressed,
            checks,
            events,
            digest,
            last_key,
            alive,
            alive_count,
            sent_bytes,
            sent_msgs,
            retry_mirror: RetryCounters::from_counts(retry_counts),
            fault_drops: dec.get_u64()?,
            fault_partition_drops: dec.get_u64()?,
            fault_dups_announced: dec.get_u64()?,
            fault_dups_seen: dec.get_u64()?,
            adversary_absorbed: dec.get_u64()?,
        })
    }

    /// Length of the liveness mirror (decode validation: must equal the
    /// engine's peer count).
    pub(crate) fn mirror_len(&self) -> usize {
        self.alive.len()
    }

    /// Common per-dispatch bookkeeping: count the event and require the
    /// `(time, seq)` key to strictly increase.
    fn observe_key(&mut self, time_us: u64, seq: u64) {
        self.events += 1;
        if self.cfg.check_invariants {
            let key = (time_us, seq);
            if let Some(last) = self.last_key {
                self.check(key > last, || {
                    format!("event key {key:?} not after previous {last:?}")
                });
            }
            self.last_key = Some(key);
        }
    }

    /// A message left `from` for `to`: mirror the byte/message accounting
    /// and require the sender to be alive.
    pub fn on_send(&mut self, now_us: u64, from: PeerId, to: PeerId, class: MsgClass, bytes: usize) {
        self.sent_bytes[class.index()] += bytes as u64;
        self.sent_msgs[class.index()] += 1;
        if self.cfg.check_invariants {
            self.check(from != to, || format!("self-send at {from:?}"));
            self.check(self.alive[from.index()], || {
                format!("dead node {from:?} sent {class:?} at {now_us}")
            });
        }
        if self.cfg.digest_events {
            self.digest.write_all(&[
                TAG_SEND,
                now_us,
                from.0 as u64,
                to.0 as u64,
                class.index() as u64,
                bytes as u64,
            ]);
        }
    }

    /// A `Deliver` event reached dispatch. `delivered` is the engine's
    /// decision (false = dropped because `to` is dead); `dup` marks a
    /// fault-injected duplicate copy, which must have been announced via
    /// [`Self::on_fault_duplicate`] — a double delivery without a matching
    /// duplication event is a violation.
    ///
    /// The `dup` flag is deliberately **not** folded into the digest record:
    /// fault-free records keep their exact historical shape, and a duplicate
    /// is already visible in the stream as an extra record.
    pub fn on_deliver(
        &mut self,
        time_us: u64,
        seq: u64,
        to: PeerId,
        from: PeerId,
        delivered: bool,
        dup: bool,
    ) {
        self.observe_key(time_us, seq);
        if dup {
            self.fault_dups_seen += 1;
        }
        if self.cfg.check_invariants {
            let mirror = self.alive[to.index()];
            self.check(delivered == mirror, || {
                if delivered {
                    format!("message from {from:?} delivered to dead node {to:?} at {time_us}")
                } else {
                    format!("message from {from:?} dropped at live node {to:?} at {time_us}")
                }
            });
            if dup {
                self.check(self.fault_dups_seen <= self.fault_dups_announced, || {
                    format!(
                        "duplicate delivery from {from:?} to {to:?} at {time_us} \
                         without a matching fault-layer duplication event"
                    )
                });
            }
        }
        if self.cfg.digest_events {
            self.digest.write_all(&[
                TAG_DELIVER,
                time_us,
                seq,
                to.0 as u64,
                from.0 as u64,
                delivered as u64,
            ]);
        }
    }

    /// The fault layer dropped a send (random loss or a partition cut).
    pub fn on_fault_drop(&mut self, now_us: u64, from: PeerId, to: PeerId, partition: bool) {
        if partition {
            self.fault_partition_drops += 1;
        } else {
            self.fault_drops += 1;
        }
        if self.cfg.digest_events {
            self.digest.write_all(&[
                TAG_FAULT_DROP,
                now_us,
                from.0 as u64,
                to.0 as u64,
                partition as u64,
            ]);
        }
    }

    /// The fault layer scheduled a duplicate copy of a send.
    pub fn on_fault_duplicate(&mut self, now_us: u64, from: PeerId, to: PeerId) {
        self.fault_dups_announced += 1;
        if self.cfg.digest_events {
            self.digest
                .write_all(&[TAG_FAULT_DUP, now_us, from.0 as u64, to.0 as u64]);
        }
    }

    /// The adversary layer absorbed a send at a free-riding target (the
    /// bytes were charged, nothing was queued).
    pub fn on_adversary_absorb(
        &mut self,
        now_us: u64,
        from: PeerId,
        to: PeerId,
        class: MsgClass,
    ) {
        self.adversary_absorbed += 1;
        if self.cfg.digest_events {
            self.digest.write_all(&[
                TAG_ADVERSARY_ABSORB,
                now_us,
                from.0 as u64,
                to.0 as u64,
                class.index() as u64,
            ]);
        }
    }

    /// The protocol counted a robustness event via `Ctx::count`; mirror it.
    /// Counters are reconciled exactly at [`Self::finish`] but never folded
    /// into the digest (fault-free digests keep their historical values).
    pub fn on_counter(&mut self, stat: RetryStat) {
        self.retry_mirror.record(stat);
    }

    /// A `Timer` event reached dispatch. `fired` mirrors the liveness gate.
    pub fn on_timer(&mut self, time_us: u64, seq: u64, node: PeerId, tag: u64, fired: bool) {
        self.observe_key(time_us, seq);
        if self.cfg.check_invariants {
            let mirror = self.alive[node.index()];
            self.check(fired == mirror, || {
                format!("timer tag {tag} at {node:?}: fired={fired} but mirror alive={mirror}")
            });
        }
        if self.cfg.digest_events {
            self.digest
                .write_all(&[TAG_TIMER, time_us, seq, node.0 as u64, tag, fired as u64]);
        }
    }

    /// A trace query is about to be handed to the protocol.
    pub fn on_trace_query(&mut self, time_us: u64, seq: u64, id: u32, requester: PeerId) {
        self.observe_key(time_us, seq);
        if self.cfg.check_invariants {
            self.check(self.alive[requester.index()], || {
                format!("query {id} issued by dead node {requester:?} at {time_us}")
            });
        }
        if self.cfg.digest_events {
            self.digest
                .write_all(&[TAG_QUERY, time_us, seq, id as u64, requester.0 as u64]);
        }
    }

    /// A content-change trace event was applied (or skipped as a no-op).
    pub fn on_content_change(
        &mut self,
        time_us: u64,
        seq: u64,
        peer: PeerId,
        doc: u32,
        added: bool,
        applied: bool,
    ) {
        self.observe_key(time_us, seq);
        if self.cfg.digest_events {
            self.digest.write_all(&[
                TAG_CONTENT,
                time_us,
                seq,
                peer.0 as u64,
                doc as u64,
                added as u64,
                applied as u64,
            ]);
        }
    }

    /// A join trace event was applied: flip the mirror, legal direction only.
    pub fn on_join(&mut self, time_us: u64, seq: u64, p: PeerId) {
        self.observe_key(time_us, seq);
        if self.cfg.check_invariants {
            self.check(!self.alive[p.index()], || {
                format!("join of already-live node {p:?} at {time_us}")
            });
        }
        if !self.alive[p.index()] {
            self.alive[p.index()] = true;
            self.alive_count += 1;
        }
        if self.cfg.digest_events {
            self.digest.write_all(&[TAG_JOIN, time_us, seq, p.0 as u64]);
        }
    }

    /// A leave trace event was applied.
    pub fn on_leave(&mut self, time_us: u64, seq: u64, p: PeerId) {
        self.observe_key(time_us, seq);
        if self.cfg.check_invariants {
            self.check(self.alive[p.index()], || {
                format!("leave of already-dead node {p:?} at {time_us}")
            });
        }
        if self.alive[p.index()] {
            self.alive[p.index()] = false;
            self.alive_count -= 1;
        }
        if self.cfg.digest_events {
            self.digest.write_all(&[TAG_LEAVE, time_us, seq, p.0 as u64]);
        }
    }

    /// Overlay/liveness consistency sweep, run after churn and at the end:
    /// dead ⇒ degree 0, adjacency symmetric and self-loop-free, engine
    /// liveness identical to the mirror.
    pub fn check_overlay(&mut self, overlay: &Overlay, engine_alive: &[bool], engine_count: usize) {
        if !self.cfg.check_invariants {
            return;
        }
        self.check(engine_alive == self.alive.as_slice(), || {
            "engine liveness map diverged from audit mirror".to_string()
        });
        let mirror_count = self.alive_count;
        self.check(engine_count == mirror_count, || {
            format!("engine alive count {engine_count} != mirror {mirror_count}")
        });
        for i in 0..overlay.num_peers() {
            let p = PeerId(i as u32);
            let deg = overlay.degree(p);
            if !self.alive[i] {
                self.check(deg == 0, || {
                    format!("dead node {p:?} still has degree {deg}")
                });
            }
            for &q in overlay.neighbors(p) {
                self.check(q != p, || format!("self-loop at {p:?}"));
                self.check(overlay.has_edge(q, p), || {
                    format!("asymmetric edge {p:?} -> {q:?}")
                });
            }
        }
    }

    /// Final reconciliation against the engine's metrics, then fold the
    /// final world state into the digest and produce the report.
    ///
    /// `retry` is the engine's robustness-counter ledger, `faults` the
    /// fault layer's own statistics, and `adversary` the adversary layer's
    /// (`None` when the respective plan was not attached); all must
    /// reconcile exactly with this auditor's independent mirrors.
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        mut self,
        load: &LoadRecorder,
        ledger: &QueryLedger,
        overlay: &Overlay,
        engine_alive: &[bool],
        engine_count: usize,
        messages_sent: u64,
        end_time_us: u64,
        retry: &RetryCounters,
        faults: Option<&FaultStats>,
        adversary: Option<&AdversaryStats>,
    ) -> AuditReport {
        if self.cfg.check_invariants {
            // Robustness counters: the engine's ledger and the mirror saw
            // the same `Ctx::count` calls and nothing else.
            for s in RetryStat::ALL {
                let (eng, mir) = (retry.get(s), self.retry_mirror.get(s));
                self.check(eng == mir, || {
                    format!("{} counter: engine {eng} != audit mirror {mir}", s.label())
                });
            }

            // Fault statistics: every drop and duplication the layer counted
            // must have been announced to the auditor, and none invented.
            let (drops, partitioned, duplicated) = match faults {
                Some(f) => (f.dropped, f.partitioned, f.duplicated),
                None => (0, 0, 0),
            };
            let (md, mp, ma) = (
                self.fault_drops,
                self.fault_partition_drops,
                self.fault_dups_announced,
            );
            self.check(drops == md, || {
                format!("fault drops: layer {drops} != audit mirror {md}")
            });
            self.check(partitioned == mp, || {
                format!("partition drops: layer {partitioned} != audit mirror {mp}")
            });
            self.check(duplicated == ma, || {
                format!("duplications: layer {duplicated} != audit mirror {ma}")
            });
            // Stragglers past the horizon make "fewer seen" legal, never more.
            let seen = self.fault_dups_seen;
            self.check(seen <= ma, || {
                format!("duplicate deliveries seen {seen} > announced {ma}")
            });
            // Adversary statistics: every absorption the layer counted must
            // have been announced to the auditor, and none invented.
            let absorbed = adversary.map_or(0, |a| a.absorbed);
            let mirror_absorbed = self.adversary_absorbed;
            self.check(absorbed == mirror_absorbed, || {
                format!("adversary absorbs: layer {absorbed} != audit mirror {mirror_absorbed}")
            });
            // Per-class bytes and message counts must reconcile *exactly*:
            // both sides saw the same `send` calls and nothing else.
            let bytes = load.class_totals();
            let msgs = load.class_message_totals();
            for c in MsgClass::ALL {
                let i = c.index();
                let (sb, sm) = (self.sent_bytes[i], self.sent_msgs[i]);
                self.check(bytes[i] == sb, || {
                    format!("{} bytes: recorder {} != audited sends {sb}", c.label(), bytes[i])
                });
                self.check(msgs[i] == sm, || {
                    format!("{} messages: recorder {} != audited sends {sm}", c.label(), msgs[i])
                });
            }
            let total_msgs: u64 = self.sent_msgs.iter().sum();
            self.check(messages_sent == total_msgs, || {
                format!("engine messages_sent {messages_sent} != audited sends {total_msgs}")
            });

            // Ledger outcome consistency (success ⇒ in-range response time,
            // issued = resolved + unanswered).
            for v in ledger.check_consistency(end_time_us) {
                self.push_violation(v);
            }

            // The live-peer step timeline must be monotone in time.
            let steps = load.alive_steps();
            for w in steps.windows(2) {
                self.check(w[0].0 <= w[1].0, || {
                    format!("alive timeline goes backwards: {:?} then {:?}", w[0], w[1])
                });
            }

            self.check_overlay(overlay, engine_alive, engine_count);
        }

        if self.cfg.digest_events {
            // Final metrics: everything integral the replay harness pins.
            self.digest.write_all(&[TAG_FINAL, end_time_us, messages_sent]);
            self.digest.write_all(&load.class_totals());
            self.digest.write_all(&load.class_message_totals());
            self.digest.write_all(&[
                ledger.num_queries() as u64,
                ledger.num_succeeded() as u64,
                ledger.num_unanswered() as u64,
            ]);
            for (id, rec) in ledger.records_with_ids() {
                self.digest.write_all(&[
                    id as u64,
                    rec.issue_us,
                    rec.first_answer_us.map_or(u64::MAX, |t| t),
                    rec.answers as u64,
                ]);
            }
            for (i, &a) in engine_alive.iter().enumerate() {
                if a {
                    self.digest.write_u64(i as u64);
                }
            }
        }

        AuditReport {
            violations: self.violations,
            suppressed: self.suppressed,
            checks: self.checks,
            events: self.events,
            digest: if self.cfg.digest_events {
                self.digest.finish()
            } else {
                0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        // One zero byte from write_u64 folds eight zero bytes; cross-check
        // against a direct byte-at-a-time computation.
        let mut h = Fnv64::new();
        h.write_u64(0x0102_0304_0506_0708);
        let mut expect = 0xcbf2_9ce4_8422_2325u64;
        for b in [0x08u8, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01] {
            expect = (expect ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        assert_eq!(h.finish(), expect);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_all(&[1, 2]);
        let mut b = Fnv64::new();
        b.write_all(&[2, 1]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn delivery_to_dead_node_is_flagged() {
        let mut a = SimAuditor::new(AuditConfig::default(), &[true, false]);
        a.on_deliver(10, 0, PeerId(1), PeerId(0), true, false);
        assert_eq!(a.violations.len(), 1);
        assert!(a.violations[0].contains("dead node"));
    }

    #[test]
    fn drop_at_live_node_is_flagged() {
        let mut a = SimAuditor::new(AuditConfig::default(), &[true, true]);
        a.on_deliver(10, 0, PeerId(1), PeerId(0), false, false);
        assert_eq!(a.violations.len(), 1);
        assert!(a.violations[0].contains("dropped at live node"));
    }

    #[test]
    fn non_monotone_keys_are_flagged() {
        let mut a = SimAuditor::new(AuditConfig::default(), &[true, true]);
        a.on_deliver(10, 5, PeerId(1), PeerId(0), true, false);
        a.on_deliver(10, 4, PeerId(0), PeerId(1), true, false); // same time, seq back
        assert_eq!(a.violations.len(), 1);
        assert!(a.violations[0].contains("not after"));
        // Equal times with increasing seq are fine.
        let mut b = SimAuditor::new(AuditConfig::default(), &[true, true]);
        b.on_deliver(10, 5, PeerId(1), PeerId(0), true, false);
        b.on_deliver(10, 6, PeerId(0), PeerId(1), true, false);
        assert!(b.violations.is_empty());
    }

    #[test]
    fn join_leave_mirror_tracks_and_flags_illegal_flips() {
        let mut a = SimAuditor::new(AuditConfig::default(), &[true, false]);
        a.on_join(5, 0, PeerId(1));
        assert!(a.violations.is_empty());
        a.on_join(6, 1, PeerId(1)); // already live
        assert_eq!(a.violations.len(), 1);
        a.on_leave(7, 2, PeerId(0));
        a.on_leave(8, 3, PeerId(0)); // already dead
        assert_eq!(a.violations.len(), 2);
        assert_eq!(a.alive_count, 1); // node 1 alive, node 0 dead
    }

    #[test]
    fn violation_cap_suppresses_formatting() {
        let cfg = AuditConfig {
            max_violations: 2,
            ..AuditConfig::default()
        };
        let mut a = SimAuditor::new(cfg, &[false]);
        for i in 0..5 {
            a.on_deliver(i, i, PeerId(0), PeerId(0), true, false);
        }
        assert_eq!(a.violations.len(), 2);
        assert_eq!(a.suppressed, 3);
    }

    #[test]
    fn disabled_checks_still_digest() {
        let cfg = AuditConfig {
            check_invariants: false,
            ..AuditConfig::default()
        };
        let mut a = SimAuditor::new(cfg, &[false]);
        a.on_deliver(1, 0, PeerId(0), PeerId(0), true, false); // would violate
        assert!(a.violations.is_empty());
        assert_eq!(a.events, 1);
    }

    #[test]
    fn unannounced_duplicate_delivery_is_flagged() {
        let mut a = SimAuditor::new(AuditConfig::default(), &[true, true]);
        a.on_deliver(10, 0, PeerId(1), PeerId(0), true, true);
        assert_eq!(a.violations.len(), 1);
        assert!(a.violations[0].contains("without a matching fault-layer duplication event"));
    }

    #[test]
    fn announced_duplicate_delivery_is_clean() {
        let mut a = SimAuditor::new(AuditConfig::default(), &[true, true]);
        a.on_fault_duplicate(5, PeerId(0), PeerId(1));
        a.on_deliver(10, 0, PeerId(1), PeerId(0), true, false);
        a.on_deliver(11, 1, PeerId(1), PeerId(0), true, true);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        // A second duplicate without a second announcement trips.
        a.on_deliver(12, 2, PeerId(1), PeerId(0), true, true);
        assert_eq!(a.violations.len(), 1);
    }

    #[test]
    fn fault_records_change_the_digest_only_when_faults_fire() {
        let stream = |fault: bool| {
            let mut a = SimAuditor::new(AuditConfig::default(), &[true, true]);
            a.on_send(5, PeerId(0), PeerId(1), MsgClass::Query, 40);
            if fault {
                a.on_fault_drop(5, PeerId(0), PeerId(1), false);
            } else {
                a.on_deliver(9, 0, PeerId(1), PeerId(0), true, false);
            }
            a
        };
        // Same sends, different fate ⇒ different digests (drop vs deliver).
        assert_ne!(
            stream(true).digest.finish(),
            stream(false).digest.finish()
        );
    }

    #[test]
    fn counter_mirror_reconciles_in_finish() {
        use asap_overlay::{Overlay, OverlayConfig, OverlayKind};
        let finish_with = |mirror_hits: u32, engine_hits: u32| {
            let alive = vec![true; 4];
            let mut a = SimAuditor::new(AuditConfig::default(), &alive);
            for _ in 0..mirror_hits {
                a.on_counter(RetryStat::Retries);
            }
            let mut retry = RetryCounters::new();
            for _ in 0..engine_hits {
                retry.record(RetryStat::Retries);
            }
            let overlay: Overlay = OverlayConfig::new(OverlayKind::Random, 4, 1).build();
            a.finish(
                &LoadRecorder::new(),
                &QueryLedger::new(),
                &overlay,
                &alive,
                4,
                0,
                0,
                &retry,
                None,
                None,
            )
        };
        assert!(finish_with(3, 3).is_clean());
        let bad = finish_with(3, 2);
        assert!(!bad.is_clean());
        assert!(bad.violations.iter().any(|v| v.contains("retries counter")));
    }

    #[test]
    fn fault_stats_mirror_reconciles_in_finish() {
        use asap_overlay::{Overlay, OverlayConfig, OverlayKind};
        let finish_with = |announce: bool| {
            let alive = vec![true; 4];
            let mut a = SimAuditor::new(AuditConfig::default(), &alive);
            if announce {
                a.on_fault_drop(5, PeerId(0), PeerId(1), false);
            }
            let stats = FaultStats {
                dropped: 1,
                ..FaultStats::default()
            };
            let overlay: Overlay = OverlayConfig::new(OverlayKind::Random, 4, 1).build();
            a.finish(
                &LoadRecorder::new(),
                &QueryLedger::new(),
                &overlay,
                &alive,
                4,
                0,
                0,
                &RetryCounters::new(),
                Some(&stats),
                None,
            )
        };
        assert!(finish_with(true).is_clean());
        let bad = finish_with(false);
        assert!(bad
            .violations
            .iter()
            .any(|v| v.contains("fault drops")));
    }

    #[test]
    fn adversary_stats_mirror_reconciles_in_finish() {
        use asap_overlay::{Overlay, OverlayConfig, OverlayKind};
        let finish_with = |announce: bool| {
            let alive = vec![true; 4];
            let mut a = SimAuditor::new(AuditConfig::default(), &alive);
            if announce {
                a.on_adversary_absorb(5, PeerId(0), PeerId(1), MsgClass::Query);
            }
            let stats = AdversaryStats {
                absorbed: 1,
                free_riders: 1,
                ..AdversaryStats::default()
            };
            let overlay: Overlay = OverlayConfig::new(OverlayKind::Random, 4, 1).build();
            a.finish(
                &LoadRecorder::new(),
                &QueryLedger::new(),
                &overlay,
                &alive,
                4,
                0,
                0,
                &RetryCounters::new(),
                None,
                Some(&stats),
            )
        };
        assert!(finish_with(true).is_clean());
        let bad = finish_with(false);
        assert!(bad
            .violations
            .iter()
            .any(|v| v.contains("adversary absorbs")));
    }

    #[test]
    fn absorb_records_change_the_digest_only_when_they_fire() {
        let stream = |absorbed: bool| {
            let mut a = SimAuditor::new(AuditConfig::default(), &[true, true]);
            a.on_send(5, PeerId(0), PeerId(1), MsgClass::Query, 40);
            if absorbed {
                a.on_adversary_absorb(5, PeerId(0), PeerId(1), MsgClass::Query);
            } else {
                a.on_deliver(9, 0, PeerId(1), PeerId(0), true, false);
            }
            a
        };
        assert_ne!(
            stream(true).digest.finish(),
            stream(false).digest.finish()
        );
    }
}
