//! Dense per-node state arenas.
//!
//! Simulated peers are identified by [`PeerId`]s that are dense by
//! construction — the workload numbers peers `0..n` and nothing ever
//! allocates a new id mid-run — so per-node protocol state belongs in flat
//! arrays indexed by that id, not in hash maps keyed by it. [`NodeTable`]
//! is that array: a thin `Vec` wrapper whose index is a [`NodeIdx`] (or a
//! `PeerId`/`usize` directly, for call sites that already hold one).
//!
//! **NodeIdx lifetime**: an index is valid for the whole simulation — the
//! table is sized once at protocol construction (`new(n)` / `from_vec`)
//! and never grows or shrinks. Peers that leave keep their slot (liveness
//! is the engine's `alive` bitmap, not table membership), so an index
//! captured in an event or checkpoint can never dangle or be reused for a
//! different peer. That fixed-size discipline is what makes the map → arena
//! swap digest-neutral: there is no iteration-order or rehashing freedom
//! left to observe.
//!
//! Iteration (`iter`, `iter().enumerate()`) is ascending index order ==
//! ascending `PeerId` order, which the checkpoint byte format and the
//! replay digests rely on.

use asap_overlay::PeerId;
use std::ops::{Index, IndexMut};

/// Dense index of a simulated node; interconvertible with [`PeerId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    pub fn peer(self) -> PeerId {
        PeerId(self.0)
    }
}

impl From<PeerId> for NodeIdx {
    #[inline]
    fn from(p: PeerId) -> Self {
        NodeIdx(p.0)
    }
}

/// Struct-of-arrays building block: one `T` per node, densely indexed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTable<T> {
    slots: Vec<T>,
}

impl<T> NodeTable<T> {
    /// A table of `n` default slots.
    pub fn new(n: usize) -> Self
    where
        T: Default,
    {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, T::default);
        Self { slots }
    }

    /// Wrap an existing dense vector (slot `i` belongs to peer `i`).
    pub fn from_vec(slots: Vec<T>) -> Self {
        Self { slots }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    #[inline]
    pub fn get(&self, p: PeerId) -> Option<&T> {
        self.slots.get(p.index())
    }

    #[inline]
    pub fn get_mut(&mut self, p: PeerId) -> Option<&mut T> {
        self.slots.get_mut(p.index())
    }

    /// Slice iteration in ascending node order (digest-relevant).
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.slots.iter()
    }

    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.slots.iter_mut()
    }

    /// The backing slice (read-only; the length is the node count).
    pub fn as_slice(&self) -> &[T] {
        &self.slots
    }
}

impl<T> Index<NodeIdx> for NodeTable<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: NodeIdx) -> &T {
        &self.slots[i.index()]
    }
}

impl<T> IndexMut<NodeIdx> for NodeTable<T> {
    #[inline]
    fn index_mut(&mut self, i: NodeIdx) -> &mut T {
        &mut self.slots[i.index()]
    }
}

impl<T> Index<PeerId> for NodeTable<T> {
    type Output = T;
    #[inline]
    fn index(&self, p: PeerId) -> &T {
        &self.slots[p.index()]
    }
}

impl<T> IndexMut<PeerId> for NodeTable<T> {
    #[inline]
    fn index_mut(&mut self, p: PeerId) -> &mut T {
        &mut self.slots[p.index()]
    }
}

impl<T> Index<usize> for NodeTable<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.slots[i]
    }
}

impl<T> IndexMut<usize> for NodeTable<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.slots[i]
    }
}

impl<'a, T> IntoIterator for &'a NodeTable<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.slots.iter()
    }
}

impl<'a, T> IntoIterator for &'a mut NodeTable<T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.slots.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_indexing_and_conversions() {
        let mut t: NodeTable<u64> = NodeTable::new(4);
        t[PeerId(2)] = 7;
        t[NodeIdx(0)] = 1;
        t[3usize] = 9;
        assert_eq!(t[PeerId(0)], 1);
        assert_eq!(t[NodeIdx(2)], 7);
        assert_eq!(t[3usize], 9);
        assert_eq!(t.get(PeerId(4)), None, "out of range is None, not panic");
        assert_eq!(NodeIdx::from(PeerId(5)).peer(), PeerId(5));
        assert_eq!(NodeIdx(5).index(), 5);
    }

    #[test]
    fn iteration_is_ascending_node_order() {
        let t = NodeTable::from_vec(vec![10, 20, 30]);
        let pairs: Vec<(usize, i32)> = t.iter().copied().enumerate().collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30)]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.as_slice(), &[10, 20, 30]);
    }
}
