//! Wire-size model (bytes) for load accounting.
//!
//! The paper never states exact message sizes; only *relative* loads matter,
//! and all algorithms share this model (DESIGN.md §6). A message is a fixed
//! header plus payload: keywords ride as length-prefixed strings (8 bytes
//! average), topics as 1-byte class ids, result records (file name + source)
//! as 50 bytes, versions as 16-bit integers (paper §III-B). Full/patch-ad
//! filter payloads are sized by `asap-bloom`'s wire encodings.

/// Fixed per-message overhead (addresses, type, ids).
pub const HEADER_BYTES: usize = 20;
/// Average on-the-wire size of one keyword.
pub const KEYWORD_WIRE_BYTES: usize = 8;
/// One topic (semantic class id).
pub const TOPIC_WIRE_BYTES: usize = 1;
/// One search result record in a hit/confirm reply.
pub const RESULT_WIRE_BYTES: usize = 50;
/// Ad version number ("a 16-bit integer").
pub const VERSION_WIRE_BYTES: usize = 2;

/// Baseline query / walker probe carrying `terms` keywords.
pub fn query_size(terms: usize) -> usize {
    HEADER_BYTES + terms * KEYWORD_WIRE_BYTES
}

/// Query hit returning `results` records directly to the requester.
pub fn query_hit_size(results: usize) -> usize {
    HEADER_BYTES + results * RESULT_WIRE_BYTES
}

/// ASAP content confirmation (carries the search terms for re-evaluation).
pub fn confirm_size(terms: usize) -> usize {
    HEADER_BYTES + terms * KEYWORD_WIRE_BYTES
}

/// ASAP confirmation reply with `results` matching records.
pub fn confirm_reply_size(results: usize) -> usize {
    HEADER_BYTES + results * RESULT_WIRE_BYTES
}

/// ASAP ads request advertising the requester's `interests`.
pub fn ads_request_size(interests: usize) -> usize {
    HEADER_BYTES + interests * TOPIC_WIRE_BYTES
}

/// ASAP ads reply: header plus the summed encoded sizes of the shipped ads.
pub fn ads_reply_size(ads_payload_bytes: usize) -> usize {
    HEADER_BYTES + ads_payload_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_with_payload() {
        assert_eq!(query_size(0), HEADER_BYTES);
        assert_eq!(query_size(3), HEADER_BYTES + 24);
        assert_eq!(query_hit_size(2), HEADER_BYTES + 100);
        assert_eq!(confirm_size(4), query_size(4));
        assert_eq!(confirm_reply_size(1), HEADER_BYTES + 50);
        assert_eq!(ads_request_size(14), HEADER_BYTES + 14);
        assert_eq!(ads_reply_size(500), HEADER_BYTES + 500);
    }

    #[test]
    fn query_is_much_smaller_than_a_full_filter() {
        // Sanity: the paper notes "the size of a full ad is larger than a
        // query message because a full ad contains the Bloom filter".
        let full_filter_bytes = 11_542 / 8;
        assert!(query_size(4) * 10 < full_filter_bytes);
    }
}
