//! Deterministic discrete-event P2P simulator.
//!
//! The paper's evaluation is a trace-driven simulation (§IV): overlay
//! messages travel with the physical network's shortest-path latency, every
//! message's bytes are charged to a per-second, per-class load bucket, and
//! churn/content events from the trace mutate the world as the clock
//! advances. Node processing time is ignored ("the processing time at a node
//! is negligible compared to the network delay").
//!
//! Search algorithms implement the [`Protocol`] trait; the engine is
//! deterministic — a fixed seed yields byte-identical ledgers — which the
//! integration suite exploits for replay tests.

pub mod adversary;
pub mod arena;
pub mod audit;
pub mod checkpoint;
pub mod engine;
pub mod event;
pub mod fault;
pub mod message;
pub mod transport;
pub mod util;

/// Deterministic fixed-seed hash collections (see `lint.toml` rule R1).
/// Defined in `asap-overlay` so that crates below the simulator can share
/// them; this re-export is the canonical path for everyone else.
pub use asap_overlay::collections;

/// The observability layer (trace events, sinks, recorder). Re-exported so
/// protocol crates depending on `asap-sim` can name trace events without a
/// direct `asap-trace` dependency.
pub use asap_trace as trace;

pub use adversary::{
    assign_roles, AdversaryPlan, AdversaryRole, AdversaryState, AdversaryStats, EclipseTarget,
};
pub use arena::{NodeIdx, NodeTable};
pub use audit::{AuditConfig, AuditReport, Fnv64};
pub use checkpoint::{Checkpoint, CheckpointProtocol, CodecError, Decoder, Encoder};
pub use engine::{Ctx, EngineProfile, Protocol, SimBuilder, SimReport, Simulation};
pub use event::{EngineEvent, EventHandle};
pub use transport::{ScratchGuard, ScratchSlot, Transport};
pub use fault::{FaultDecision, FaultPlan, FaultState, FaultStats, PartitionWindow};
pub use message::{
    ads_reply_size, ads_request_size, confirm_reply_size, confirm_size, query_hit_size,
    query_size, HEADER_BYTES, KEYWORD_WIRE_BYTES, RESULT_WIRE_BYTES, TOPIC_WIRE_BYTES,
    VERSION_WIRE_BYTES,
};
