//! Tier 8 — adversary replay: properties of the adversary layer observed
//! through whole audited simulations (see TESTING.md), mirroring the chaos
//! tier in `fault_props.rs`.
//!
//! The load-bearing claims:
//!
//! * role assignment is a pure function of (plan, peers, run seed) — same
//!   seed, same adversarial peer set, every time, for arbitrary plans;
//! * the adversary RNG stream is independent of the fault stream: toggling
//!   fault injection never changes which peers are adversarial, and an
//!   **inert** adversary plan under faults reproduces the faults-only
//!   digest bit-for-bit;
//! * an inert plan attached to a fault-free run reproduces the honest
//!   digest bit-for-bit (merely attaching the layer changes nothing);
//! * absorption and eclipse capture run auditor-clean, with the layer's own
//!   statistics reconciled exactly against the auditor's mirrors.

use asap_overlay::{Overlay, OverlayConfig, OverlayKind, PeerId};
use asap_metrics::MsgClass;
use asap_sim::{
    assign_roles, query_hit_size, query_size, AdversaryPlan, AdversaryRole, AuditConfig,
    EclipseTarget, FaultPlan, Protocol, SimReport, Simulation, Transport,
};
use asap_topology::{PhysicalNetwork, TransitStubConfig};
use asap_workload::{QuerySpec, Workload, WorkloadConfig};
use proptest::prelude::*;

const PEERS: usize = 200;
const QUERIES: usize = 300;

/// Oracle-style protocol: ask one live holder directly, report the reply.
/// Small enough that every absorbed message has an obvious cause.
struct Echo;

#[derive(Debug, Clone)]
enum EchoMsg {
    Ask { query: u32, terms: Vec<asap_workload::KeywordId> },
    Reply { query: u32 },
}

impl Protocol for Echo {
    type Msg = EchoMsg;

    fn on_query<C: Transport<Msg = EchoMsg>>(&mut self, ctx: &mut C, q: &QuerySpec) {
        let holder = ctx
            .content()
            .holders(q.target)
            .iter()
            .copied()
            .find(|&h| ctx.alive(h) && h != q.requester);
        if let Some(h) = holder {
            ctx.send(
                q.requester,
                h,
                MsgClass::Query,
                query_size(q.terms.len()),
                EchoMsg::Ask {
                    query: q.id,
                    terms: q.terms.clone(),
                },
            );
        }
    }

    fn on_message<C: Transport<Msg = EchoMsg>>(&mut self, ctx: &mut C, to: PeerId, from: PeerId, msg: EchoMsg) {
        match msg {
            EchoMsg::Ask { query, terms } => {
                if ctx.content().peer_matches(ctx.model(), to, &terms) {
                    ctx.send(
                        to,
                        from,
                        MsgClass::QueryHit,
                        query_hit_size(1),
                        EchoMsg::Reply { query },
                    );
                }
            }
            EchoMsg::Reply { query } => ctx.report_answer(query),
        }
    }
}

fn world(seed: u64) -> (PhysicalNetwork, Workload, Overlay) {
    let phys = PhysicalNetwork::generate(&TransitStubConfig::reduced(seed));
    let workload = asap_workload::generate(&WorkloadConfig::reduced(PEERS, QUERIES, seed));
    let overlay = OverlayConfig::new(OverlayKind::Random, PEERS, seed).build();
    (phys, workload, overlay)
}

fn run(
    seed: u64,
    faults: Option<FaultPlan>,
    adversary: Option<AdversaryPlan>,
) -> SimReport<Echo> {
    let (phys, workload, overlay) = world(seed);
    let mut sim = Simulation::builder(&phys, &workload, overlay, OverlayKind::Random, Echo, seed)
        .audit(AuditConfig::default());
    if let Some(p) = faults {
        sim = sim.faults(p);
    }
    if let Some(p) = adversary {
        sim = sim.adversary(p);
    }
    sim.run()
}

fn assert_clean(report: &SimReport<Echo>, what: &str) -> u64 {
    let audit = report.audit.as_ref().expect("audited run");
    assert!(
        audit.is_clean(),
        "{what}: violations {:?} (+{} suppressed)",
        audit.violations,
        audit.suppressed
    );
    audit.digest
}

fn free_rider_plan(ppm: u32) -> AdversaryPlan {
    AdversaryPlan {
        free_rider_ppm: ppm,
        ..AdversaryPlan::none()
    }
}

proptest! {
    /// Same (plan, peers, seed) ⇒ the identical adversarial peer set, for
    /// arbitrary valid plans; role bands never overlap (a peer is spammer
    /// XOR free-rider XOR honest).
    #[test]
    fn role_assignment_is_deterministic(
        seed in any::<u64>(),
        spam_ppm in 0u32..=1_000_000,
        free_raw in 0u32..=1_000_000,
    ) {
        let free_rider_ppm = free_raw.min(1_000_000 - spam_ppm);
        let plan = AdversaryPlan { spam_ppm, free_rider_ppm, eclipse: vec![] };
        plan.validate().expect("clamped fractions are valid");
        let roles = assign_roles(&plan, PEERS, seed);
        prop_assert_eq!(&roles, &assign_roles(&plan, PEERS, seed));
        let spam = roles.iter().filter(|r| **r == AdversaryRole::AdSpammer).count();
        let free = roles.iter().filter(|r| **r == AdversaryRole::FreeRider).count();
        prop_assert!(spam + free <= PEERS);
        if spam_ppm == 0 { prop_assert_eq!(spam, 0); }
        if free_rider_ppm == 0 { prop_assert_eq!(free, 0); }
    }

    /// A different seed is allowed to (and for non-trivial fractions will)
    /// pick a different peer set, but the all-honest plan never draws at all.
    #[test]
    fn empty_plan_assigns_nobody(seed in any::<u64>()) {
        let roles = assign_roles(&AdversaryPlan::none(), PEERS, seed);
        prop_assert!(roles.iter().all(|r| *r == AdversaryRole::Honest));
    }
}

#[test]
fn inert_plan_reproduces_honest_digest() {
    let bare = run(17, None, None);
    let inert = run(17, None, Some(AdversaryPlan::none()));
    assert_eq!(
        assert_clean(&bare, "honest run"),
        assert_clean(&inert, "inert adversary plan"),
        "attaching an inert adversary layer must not change the digest"
    );
    let stats = inert.adversary.expect("plan attached ⇒ stats reported");
    assert_eq!(stats.absorbed, 0);
    assert_eq!(stats.spam_peers, 0);
    assert_eq!(stats.free_riders, 0);
    assert_eq!(stats.eclipsed_edges, 0);
    assert!(bare.adversary.is_none());
}

#[test]
fn fault_toggle_never_changes_the_adversarial_peer_set() {
    // The adversary stream is salted independently of the fault stream, so
    // switching fault injection on cannot re-deal the roles. Observed
    // through the engine: the layer's role censuses agree exactly.
    let plan = free_rider_plan(250_000);
    let lossy = FaultPlan {
        loss_ppm: 100_000,
        jitter_max_us: 20_000,
        ..FaultPlan::default()
    };
    let quiet = run(19, None, Some(plan.clone()));
    let noisy = run(19, Some(lossy), Some(plan.clone()));
    let a = quiet.adversary.expect("stats");
    let b = noisy.adversary.expect("stats");
    assert_eq!(a.free_riders, b.free_riders, "fault toggle re-dealt the roles");
    assert_eq!(a.spam_peers, b.spam_peers);
    assert_clean(&quiet, "adversary-only run");
    assert_clean(&noisy, "adversary+faults run");
    // And the pure assignment agrees with what both runs used.
    let roles = assign_roles(&plan, PEERS, 19);
    let free = roles.iter().filter(|r| **r == AdversaryRole::FreeRider).count();
    assert_eq!(a.free_riders as usize, free);
}

#[test]
fn inert_adversary_under_faults_reproduces_faults_only_digest() {
    let lossy = FaultPlan {
        loss_ppm: 100_000,
        ..FaultPlan::default()
    };
    let faults_only = run(23, Some(lossy.clone()), None);
    let with_inert = run(23, Some(lossy), Some(AdversaryPlan::none()));
    assert_eq!(
        assert_clean(&faults_only, "faults-only run"),
        assert_clean(&with_inert, "faults + inert adversary"),
        "an inert adversary layer must not perturb the fault stream"
    );
}

#[test]
fn free_riders_absorb_and_stay_auditor_clean() {
    let rich = run(29, None, Some(free_rider_plan(250_000)));
    let honest = run(29, None, None);
    let da = assert_clean(&rich, "free-rider run");
    assert_ne!(
        da,
        assert_clean(&honest, "honest run"),
        "absorbed queries must be visible in the digest"
    );
    let stats = rich.adversary.expect("stats");
    assert!(stats.free_riders > 0, "25% of 200 peers fires");
    assert!(stats.absorbed > 0, "free riders hold content too, so they get asked");
    // Absorption can only hurt this oracle protocol: no retries exist.
    assert!(rich.ledger.num_succeeded() <= honest.ledger.num_succeeded());
    // Replay is bit-exact.
    let again = run(29, None, Some(free_rider_plan(250_000)));
    assert_eq!(da, assert_clean(&again, "free-rider replay"));
    assert_eq!(rich.adversary, again.adversary, "statistics replay too");
}

#[test]
fn eclipse_capture_rewires_and_replays() {
    let plan = AdversaryPlan {
        free_rider_ppm: 200_000,
        eclipse: (0..PEERS)
            .step_by(10)
            .map(|v| EclipseTarget {
                victim: PeerId(v as u32),
                captured_links: 4,
            })
            .collect(),
        ..AdversaryPlan::none()
    };
    let a = run(31, None, Some(plan.clone()));
    let b = run(31, None, Some(plan));
    let da = assert_clean(&a, "eclipse run");
    assert_eq!(da, assert_clean(&b, "eclipse replay"), "rewiring must replay");
    let stats = a.adversary.expect("stats");
    assert!(stats.eclipsed_edges > 0, "colluders exist, so edges were captured");
    assert!(stats.free_riders > 0);
    assert_eq!(a.adversary, b.adversary);
}
